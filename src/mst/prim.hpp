// Classic Prim's algorithm (the paper's Algorithm 2): grow one fragment from
// a root, always adding the minimum-weight outgoing edge, with an indexed
// binary heap supporting insertOrAdjust (decrease-key).
//
// This is the "Prim" baseline of Fig. 2.  Requires a connected graph (a
// spanning *tree* is produced); LLPMST_CHECKs otherwise — use the forest
// algorithms (Kruskal/Boruvka family) for disconnected inputs, as the paper
// does.
#pragma once

#include "mst/mst_result.hpp"

namespace llpmst {

/// Runs Prim from `root`.  Heap type is the indexed binary heap; see
/// prim_with_heap in prim_heaps.hpp for the heap-choice ablation.
[[nodiscard]] MstResult prim(const CsrGraph& g, VertexId root = 0);

}  // namespace llpmst
