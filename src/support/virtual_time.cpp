#include "support/virtual_time.hpp"

namespace llpmst::vtime {

namespace detail {
std::atomic<VirtualClock*> g_clock{nullptr};
}  // namespace detail

VirtualClock* install_clock(VirtualClock* clock) {
  return detail::g_clock.exchange(clock, std::memory_order_acq_rel);
}

}  // namespace llpmst::vtime
