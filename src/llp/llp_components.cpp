#include "llp/llp_components.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"

namespace llpmst {

LlpComponentsResult llp_connected_components(const CsrGraph& g,
                                             Executor& pool) {
  const std::size_t n = g.num_vertices();
  std::vector<std::atomic<VertexId>> G(n);
  parallel_for(pool, 0, n, [&](std::size_t v) {
    G[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
  });

  // The forced bound for v: min of its parent's label (pointer jumping) and
  // its neighbors' labels (hooking) — both folded into one advance.
  const auto forced = [&](std::size_t v) -> VertexId {
    VertexId lo = G[G[v].load(std::memory_order_relaxed)].load(
        std::memory_order_relaxed);
    for (const VertexId u : g.neighbors(static_cast<VertexId>(v))) {
      const VertexId lu = G[u].load(std::memory_order_relaxed);
      if (lu < lo) lo = lu;
    }
    return lo;
  };

  LlpComponentsResult out;
  out.llp = llp_solve(
      pool, n,
      [&](std::size_t v) {
        return forced(v) < G[v].load(std::memory_order_relaxed);
      },
      [&](std::size_t v) {
        // Labels only decrease; a concurrent lower write must win, hence
        // fetch-min rather than a blind store.
        atomic_fetch_min(G[v], forced(v));
      });
  // A stopped run (cap hit, cancellation, injected fault) leaves labels as
  // a sound over-approximation (labels only ever decrease toward the
  // fixpoint), so surface the condition instead of aborting and let
  // callers/reports decide.
  if (!out.llp.converged) {
    obs::add_warning(std::string("llp_connected_components: run stopped (") +
                     run_outcome_name(out.llp.outcome) +
                     "); labels are an unconverged over-approximation");
    std::fprintf(stderr,
                 "warning: llp_connected_components stopped without "
                 "converging (%s)\n",
                 run_outcome_name(out.llp.outcome));
  }

  out.label.resize(n);
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v) {
    out.label[v] = G[v].load(std::memory_order_relaxed);
    if (out.label[v] == v) ++roots;
  }
  out.num_components = roots;
  return out;
}

}  // namespace llpmst
