// General-purpose random graph generators used by tests and the examples:
// Erdős–Rényi G(n, m) and random geometric graphs (unit-square k-nearest
// style).  Both are normalized; neither is guaranteed connected (use
// connect_components() from rmat.hpp when a connected graph is required).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace llpmst {

struct ErdosRenyiParams {
  std::uint32_t num_vertices = 1024;
  std::uint64_t num_edges = 4096;   // target before dedup
  Weight max_weight = 1u << 20;
  std::uint64_t seed = 1;
};

/// G(n, m): num_edges endpoint pairs sampled uniformly, then normalized.
[[nodiscard]] EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

struct GeometricParams {
  std::uint32_t num_vertices = 1024;
  /// Connect each vertex to its k nearest in a unit-square grid-bucketed
  /// neighborhood search.
  std::uint32_t neighbors = 4;
  Weight unit = 1u << 20;  // weight = distance * unit + 1
  std::uint64_t seed = 1;
};

/// Random geometric graph: n points in the unit square, each joined to its
/// `neighbors` nearest points; edge weight proportional to distance.
/// Morphologically between road (local) and RMAT (irregular degree).
[[nodiscard]] EdgeList generate_geometric(const GeometricParams& params);

}  // namespace llpmst
