#include "graph/io/read_graph.hpp"

#include <utility>

#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/metis.hpp"

namespace llpmst {

namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

GraphFormat detect_graph_format(const std::string& path) {
  if (ends_with(path, ".gr")) return GraphFormat::kDimacs;
  if (ends_with(path, ".metis") || ends_with(path, ".graph")) {
    return GraphFormat::kMetis;
  }
  if (ends_with(path, ".bin")) return GraphFormat::kBinary;
  return GraphFormat::kText;
}

Expected<EdgeList> read_graph(const std::string& path, GraphFormat format) {
  if (format == GraphFormat::kAuto) format = detect_graph_format(path);
  switch (format) {
    case GraphFormat::kDimacs: {
      DimacsResult r = read_dimacs(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kMetis: {
      EdgeListResult r = read_metis(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kBinary: {
      EdgeListResult r = read_edge_list_binary(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
    case GraphFormat::kText:
    case GraphFormat::kAuto: {
      EdgeListResult r = read_edge_list_text(path);
      if (!r.ok()) return r.status;
      return std::move(r.graph);
    }
  }
  return Status{StatusCode::kInvalidArgument, "unknown graph format"};
}

}  // namespace llpmst
