// Shared round engine for the two parallel Boruvka variants.
//
// Both the GBBS-style baseline (mst/parallel_boruvka.hpp) and LLP-Boruvka
// (llp/llp_boruvka.hpp, the paper's Algorithm 6) perform the same rounds:
//
//   1. per-component minimum-weight-edge (MWE) selection — round 0 reads the
//      CSR's precomputed per-vertex minima; later rounds fuse the atomic min
//      into the previous round's contraction pass, so each round only runs a
//      cheap read-only "extract" sweep that recovers the partner component
//      of every winning edge;
//   2. hook — each component chooses its parent across its MWE, breaking the
//      2-cycle of a mutually-chosen edge by component id (Algorithm 6's
//      "break symmetry with w" initialization) and emitting the edge into
//      the MSF;
//   3. pointer jumping until every component is a rooted star — THIS is
//      where the two algorithms differ (see PointerJumping below);
//   4. contraction — relabel surviving edges into a *dense* component id
//      space [0, k), drop self-loops (and optionally bundle-heavy parallel
//      edges, see dedup_contracted_edges) in the same pass, and compute the
//      next round's per-component minima while the edge data is in cache.
//
// Cache design: after round 0 the engine leaves the original vertex-id space
// entirely — every per-component array (parent, best, partner) is sized to
// the current number of live components, which at least halves per round, so
// later rounds touch geometrically shrinking flat arrays instead of O(n)
// memory.  All round-local buffers live in a BoruvkaScratch that is reused
// across rounds (and, optionally, across runs): steady-state rounds perform
// no heap allocation.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "mst/mst_result.hpp"
#include "parallel/parallel_for.hpp"
#include "support/cancel.hpp"

namespace llpmst {

class RunContext;

/// How step 3 runs.
enum class PointerJumping {
  /// Bulk-synchronous: repeat { next[v] = parent[parent[v]] } with a barrier
  /// between jump rounds until a fixpoint — the conventional parallel
  /// formulation the baseline uses.
  kSynchronized,
  /// Chaotic/asynchronous: one parallel pass in which every vertex chases
  /// its chain to the root with relaxed atomics and writes the root back
  /// into EVERY node it visited (full path compression) — the paper's LLP
  /// formulation (`forbidden(j) = G[j] != G[G[j]]`,
  /// `advance(j) = G[j] := G[G[j]]`) "evaluated in parallel and without
  /// synchronization".
  kAsynchronous,
};

/// Scheduling policy for the engine's per-round parallel sweeps.
enum class BoruvkaLoadBalance {
  /// Adaptive-grain chunked loops (GrainFeedback); the MWE-extract sweep
  /// falls back to the work-stealing runtime for the rest of the run once a
  /// round measures heavy per-worker imbalance (max worker time > 2x mean).
  kAdaptive,
  /// Always route the MWE-extract sweep through parallel_for_stealing.
  kWorkStealing,
  /// Fixed-size chunks (detail::kDynamicChunk), no feedback — the
  /// pre-adaptive behaviour, kept for ablation.
  kFixedChunk,
};

/// Per-round telemetry handed to BoruvkaConfig::round_observer (tests use
/// this to assert the contraction invariants round by round).
struct BoruvkaRoundStats {
  std::uint64_t round = 0;          // 1-based
  std::size_t components = 0;       // live components entering the round
  std::size_t active_edges = 0;     // edge-list length entering the round
  std::size_t msf_edges_emitted = 0;
  std::size_t self_loops_dropped = 0;    // intra-component edges contracted
  std::size_t bundle_edges_dropped = 0;  // heavier parallel edges filtered
  std::size_t components_after = 0;      // live components after contraction
  std::size_t edges_after = 0;
  /// Original edge ids dropped this round, populated only when
  /// BoruvkaConfig::collect_dropped_edges is set (testing hook; costs a
  /// gather pass).  Self-loop and bundle drops combined.
  const std::vector<EdgeId>* dropped_edge_ids = nullptr;
};

/// An edge of the contracted multigraph: endpoints are CURRENT dense
/// component ids; prio carries the original (weight, edge id) packing, so
/// the chosen MSF edge is always recoverable regardless of how many
/// contractions happened.
struct BoruvkaActiveEdge {
  VertexId u;
  VertexId v;
  EdgePriority prio;
};

/// All round-local buffers, owned by the caller so repeated runs (benchmark
/// repetitions, service request loops) reuse capacity instead of
/// reallocating.  A default-constructed scratch works for any graph/pool;
/// the engine grows each vector on first use and never shrinks capacity.
/// Not thread-safe: one run at a time per scratch.
struct BoruvkaScratch {
  std::vector<VertexId> parent;        // component parent links (atomic_ref)
  std::vector<EdgePriority> best;      // per-component MWE (atomic_ref)
  std::vector<VertexId> partner;       // partner component across the MWE
  std::vector<VertexId> dense;         // live marks, then scanned dense ids
  std::vector<BoruvkaActiveEdge> edges;       // current round's edge list
  std::vector<BoruvkaActiveEdge> next_edges;  // contraction output
  std::vector<VertexId> jump_buf;      // synchronized jumping double buffer
  std::vector<EdgeId> msf_edges;       // emitted MSF edges (atomic cursor)
  std::vector<std::size_t> chunk_count;   // per-chunk survivor counts
  std::vector<std::uint64_t> worker_ns;   // per-worker sweep times (skew)
  std::vector<std::uint64_t> filter_key;  // bundle-min hash: packed (u,v)
  std::vector<EdgePriority> filter_min;   // bundle-min hash: lightest prio
  std::vector<EdgeId> dropped;            // collect_dropped_edges gather
  GrainFeedback extract_grain;  // MWE extract sweep (reads, rare writes)
  GrainFeedback contract_grain;  // contraction sweeps (relabel + filter)
  GrainFeedback vertex_grain;    // per-component sweeps (hook, jumping)
};

struct BoruvkaConfig {
  PointerJumping jumping = PointerJumping::kAsynchronous;
  /// Drop all but the lightest parallel edge between each pair of components
  /// during contraction (the cycle property makes the heavier ones provably
  /// non-MSF).  Implemented as a sort-free hash bundle-min fused into the
  /// contraction sweeps: best effort under collisions — a kept duplicate is
  /// only a longer edge list, never a wrong forest.  The baseline engine
  /// enables it; LLP-Boruvka skips it, trading a longer edge list for one
  /// less sweep per round.
  bool dedup_contracted_edges = false;
  /// Scheduling policy for the per-round sweeps.
  BoruvkaLoadBalance load_balance = BoruvkaLoadBalance::kAdaptive;
  /// Prefix for observability metrics/phases ("<obs_label>/round/hook", ...)
  /// so the two engine clients stay distinguishable in reports.  Must be a
  /// string literal (borrowed, not owned).
  const char* obs_label = "boruvka";
  /// Optional cooperative cancellation, polled once per round (rounds shrink
  /// the edge list geometrically, so this is O(log n) polls total).  A
  /// triggered token — or the "boruvka/contract" failpoint — stops the run
  /// with stats.outcome != kOk and the PARTIAL forest built so far.
  /// nullptr = the engine falls back to RunContext::cancel_token().
  const CancelToken* cancel = nullptr;
  /// Optional caller-owned scratch, reused across runs.  nullptr = the
  /// engine uses an internal scratch for the run (still reused across
  /// rounds, so per-round allocation stays zero either way).  The named
  /// entry points (parallel_boruvka, llp_boruvka) pass the RunContext's
  /// arena scratch; the engine itself deliberately does NOT default to it,
  /// so the ablation's fresh-vs-reused scratch axis stays measurable.
  BoruvkaScratch* scratch = nullptr;
  /// Called after every round's contraction with that round's stats.
  std::function<void(const BoruvkaRoundStats&)> round_observer;
  /// Populate BoruvkaRoundStats::dropped_edge_ids (testing; extra pass).
  bool collect_dropped_edges = false;
};

/// Runs Boruvka rounds until no edges remain; returns the unique MSF.
/// Sweeps run on ctx.executor().
[[nodiscard]] MstResult boruvka_engine(const CsrGraph& g, RunContext& ctx,
                                       const BoruvkaConfig& config);

}  // namespace llpmst
