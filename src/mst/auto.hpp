// Portfolio entry point: pick the MST/MSF algorithm the paper's conclusions
// recommend for the given graph and thread budget.
//
// Section VII/VIII's findings, operationalized:
//   * 1 thread            -> LLP-Prim (1T) — fastest sequential (Fig. 2);
//   * few threads (< the crossover the paper places around 8) and a
//     connected graph     -> parallel LLP-Prim (Fig. 3 left);
//   * many threads, or a disconnected graph (the Prim family cannot run)
//                         -> LLP-Boruvka (Fig. 3 right / Fig. 4).
//
// The crossover is a tunable with the paper's observed default.
#pragma once

#include <string>

#include "mst/mst_result.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {

struct AutoMstOptions {
  /// Thread count at which the Boruvka family starts winning (Fig. 3's ~8).
  std::size_t boruvka_crossover = 8;
};

struct AutoMstResult {
  MstResult result;
  std::string algorithm;  // which algorithm the portfolio chose
};

/// Computes the MSF with the recommended algorithm.  `connected` may be
/// passed when the caller already knows it (kUnknown triggers a check).
enum class Connectivity { kUnknown, kConnected, kDisconnected };

[[nodiscard]] AutoMstResult minimum_spanning_forest(
    const CsrGraph& g, ThreadPool& pool,
    Connectivity connectivity = Connectivity::kUnknown,
    const AutoMstOptions& options = {});

}  // namespace llpmst
