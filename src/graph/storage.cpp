#include "graph/storage.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace llpmst {

namespace {

std::size_t section_bytes(const CsrSections& s) {
  return s.offsets.size_bytes() + s.targets.size_bytes() +
         s.priorities.size_bytes() + s.mwe.size_bytes() +
         s.mwe_flags.size_bytes() + s.edges.size_bytes();
}

}  // namespace

std::size_t GraphStorage::resident_bytes_estimate() const {
  return section_bytes(sections_);
}

HeapStorage::HeapStorage(std::vector<std::uint64_t> offsets,
                         std::vector<VertexId> targets,
                         std::vector<EdgePriority> priorities,
                         std::vector<EdgePriority> mwe,
                         std::vector<std::uint8_t> mwe_flags,
                         std::vector<WeightedEdge> edges)
    : offsets_(std::move(offsets)),
      targets_(std::move(targets)),
      priorities_(std::move(priorities)),
      mwe_(std::move(mwe)),
      mwe_flags_(std::move(mwe_flags)),
      edges_(std::move(edges)) {
  sections_.offsets = offsets_;
  sections_.targets = targets_;
  sections_.priorities = priorities_;
  sections_.mwe = mwe_;
  sections_.mwe_flags = mwe_flags_;
  sections_.edges = edges_;
}

MmapStorage::MmapStorage(void* base, std::size_t length, CsrSections sections,
                         std::string path)
    : base_(base), length_(length), path_(std::move(path)) {
  sections_ = sections;
}

MmapStorage::~MmapStorage() {
  if (base_ != nullptr && base_ != MAP_FAILED) ::munmap(base_, length_);
}

std::size_t MmapStorage::resident_bytes_estimate() const {
  if (base_ == nullptr || length_ == 0) return 0;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t pages = (length_ + page - 1) / page;
  // mincore reports one byte per page; a 1B-edge snapshot is millions of
  // pages, so probe at most 64 evenly spaced contiguous windows (one
  // syscall each) and scale.  This feeds a stats field, not a decision.
  constexpr std::size_t kWindows = 64;
  constexpr std::size_t kWindowPages = 4096;
  const std::size_t windows = pages < kWindows ? 1 : kWindows;
  const std::size_t window_pages =
      pages / windows < kWindowPages ? (pages + windows - 1) / windows
                                     : kWindowPages;
  std::vector<unsigned char> vec(window_pages);
  std::size_t resident = 0, probed = 0;
  auto* b = static_cast<unsigned char*>(base_);
  for (std::size_t w = 0; w < windows; ++w) {
    const std::size_t start = pages * w / windows;
    const std::size_t count = std::min(window_pages, pages - start);
    if (count == 0) continue;
    if (::mincore(b + start * page, count * page, vec.data()) != 0) {
      return 0;  // estimate unavailable; report nothing rather than garbage
    }
    for (std::size_t i = 0; i < count; ++i) resident += (vec[i] & 1u);
    probed += count;
  }
  if (probed == 0) return 0;
  const double frac = static_cast<double>(resident) / static_cast<double>(probed);
  return static_cast<std::size_t>(frac * static_cast<double>(length_));
}

}  // namespace llpmst
