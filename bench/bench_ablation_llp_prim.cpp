// Ablation: where does LLP-Prim's single-thread win over Prim come from?
//
// Runs Prim, lazy-heap Prim (the paper's Section IV analysis variant), and
// LLP-Prim with each optimization toggled independently:
//   * MWE early fixing (the R set),
//   * Q staging of heap inserts,
// reporting wall time and the direct mechanism metrics: heap pushes / pops /
// adjusts and the fraction of vertices fixed without any heap operation.
#include <cstdio>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "llp/llp_prim.hpp"
#include "mst/registry.hpp"
#include "parallel/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_ablation_llp_prim",
                "Ablation of LLP-Prim's optimizations (MWE fixing, Q "
                "staging) vs classic and lazy Prim");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& threads = cli.add_int("threads", 4, "threads for the parallel rows");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);

  Table t({"Graph", "Variant", "Median", "HeapPush", "HeapPop", "HeapAdjust",
           "SiftSteps", "MWE-fixed%"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale)),
  };

  RunContext ctx;
  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));
    const double n = static_cast<double>(w.graph.num_vertices());

    const auto add = [&](const char* variant, const BenchMeasurement& m) {
      const MstAlgoStats& s = m.last_result.stats;
      t.add_row({w.name, variant, time_cell(m.time_ms),
                 format_count(s.heap.pushes), format_count(s.heap.pops),
                 format_count(s.heap.adjusts),
                 format_count(s.heap.sift_steps),
                 strf("%.1f%%", 100.0 * static_cast<double>(s.fixed_via_mwe) / n)});
    };

    const auto registry_row = [&](const char* name) {
      const MstAlgorithm& algo = mst_algorithm(name);
      return measure_mst(
          algo.name, w.graph, reference,
          [&] { return algo.run(w.graph, ctx); }, opts);
    };
    add("Prim (indexed heap)", registry_row("prim"));
    add("Prim (lazy heap, Sec. IV)", registry_row("prim-lazy"));

    // Toggled variants are bespoke LlpPrimOptions runs, not registry
    // entries; their record keys carry the knob settings so every key in
    // the JSONL stays unique.
    const auto llp_variant = [&](bool mwe, bool q) {
      LlpPrimOptions o;
      o.mwe_fixing = mwe;
      o.q_staging = q;
      const std::string key =
          strf("llp-prim mwe=%d q=%d", mwe ? 1 : 0, q ? 1 : 0);
      return measure_mst(key, w.graph, reference,
                         [&, o] { return llp_prim(w.graph, 0, o); }, opts);
    };
    add("LLP-Prim (no MWE, no Q)", llp_variant(false, false));
    add("LLP-Prim (MWE only)", llp_variant(true, false));
    add("LLP-Prim (Q only)", llp_variant(false, true));
    add("LLP-Prim (full)", llp_variant(true, true));

    // Parallel scheduling: bulk-synchronous frontier super-steps vs the
    // Galois-style asynchronous work-stealing drain of R.
    ThreadPool pool(static_cast<std::size_t>(threads));
    ctx.attach_pool(pool);
    add(strf("LLP-Prim (superstep, %lldT)",
             static_cast<long long>(threads)).c_str(),
        registry_row("llp-prim-parallel"));
    add(strf("LLP-Prim (async WS, %lldT)",
             static_cast<long long>(threads)).c_str(),
        registry_row("llp-prim-async"));
  }

  std::printf("Ablation: LLP-Prim optimization breakdown\n\n");
  t.print(csv);
  obs_cli.write_table(t);
  std::printf("\nExpected: MWE fixing removes most heap pushes/pops; Q "
              "staging removes adjusts for vertices later fixed for free.\n");
  obs_cli.finish("bench_ablation_llp_prim");
  return 0;
}
