#include "serve/service.hpp"

#include <chrono>
#include <cstdio>
#include <exception>
#include <thread>
#include <utility>

#include "core/run_context.hpp"
#include "mst/auto.hpp"
#include "mst/registry.hpp"
#include "mst/verifier.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "support/failpoint.hpp"

namespace llpmst::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", ms < 0 ? 0.0 : ms);
  return buf;
}

std::string error_json(const Status& status) {
  if (status.ok()) return "null";
  std::string out = "{\"code\":";
  out += obs::json_quote(status_code_name(status.code()));
  out += ",\"message\":";
  out += obs::json_quote(status.message());
  out += "}";
  return out;
}

/// Caps pause_ms so a typo cannot park a worker for an hour.
constexpr double kMaxPauseMs = 60'000.0;

}  // namespace

/// Everything one admitted query carries from admission to response.
struct QueryService::QueryJob {
  std::string id;
  std::uint64_t client = 0;
  ResponseFn respond;
  SnapshotPtr snapshot;
  std::string algo;            // requested name; "auto" = portfolio
  const MstAlgorithm* entry = nullptr;  // resolved; null for auto
  double budget_ms = -1;       // < 0 = no budget
  double pause_ms = 0;         // cancellable delay before running (tests/CI)
  bool verify = false;
  std::shared_ptr<CancelToken> token = std::make_shared<CancelToken>();
  Clock::time_point enqueued = Clock::now();
};

QueryService::QueryService(GraphCatalog& catalog, ServiceOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  if (options_.start_workers) {
    const std::size_t n = options_.workers == 0 ? 1 : options_.workers;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
}

QueryService::~QueryService() { shutdown(); }

void QueryService::respond_envelope(const ResponseFn& respond,
                                    const std::string& id, const char* op,
                                    const Status& status,
                                    const std::string& data_json) {
  std::string out = "{\"schema\":\"llpmst-serve-response\",\"schema_version\":1";
  out += ",\"id\":";
  out += id.empty() ? "null" : obs::json_quote(id);
  out += ",\"op\":";
  out += obs::json_quote(op);
  out += ",\"status\":";
  out += status.ok() ? "\"ok\"" : "\"error\"";
  out += ",\"error\":";
  out += error_json(status);
  out += ",\"data\":";
  out += data_json.empty() ? "null" : data_json;
  out += "}";
  respond(out);
}

void QueryService::handle(const std::string& line, std::uint64_t client,
                          ResponseFn respond) {
  Json request;
  std::string parse_error;
  if (!parse_json(line, &request, &parse_error)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(respond, "", "",
                     Status(StatusCode::kInvalidArgument,
                            "malformed request: " + parse_error),
                     "");
    return;
  }
  if (!request.is_object()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(respond, "", "",
                     Status(StatusCode::kInvalidArgument,
                            "request must be a JSON object"),
                     "");
    return;
  }
  const std::string id = request.get_string("id", "");
  const std::string op = request.get_string("op", "");
  if (obs::kCompiledIn) obs::counter("serve/requests").increment();
  if (op == "query") {
    submit_query(request, client, std::move(respond));
  } else if (op == "load") {
    handle_load(request, respond);
  } else if (op == "unload") {
    handle_unload(request, respond);
  } else if (op == "list") {
    handle_list(request, respond);
  } else if (op == "cancel") {
    handle_cancel(request, respond);
  } else if (op == "healthz") {
    handle_healthz(request, respond);
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(
        respond, id, op.c_str(),
        Status(StatusCode::kInvalidArgument,
               "unknown op '" + op +
                   "' (load | unload | list | query | cancel | healthz)"),
        "");
  }
}

void QueryService::handle_load(const Json& request,
                               const ResponseFn& respond) {
  const std::string id = request.get_string("id", "");
  const std::string name = request.get_string("name", "");
  const std::string source = request.get_string("source", "");
  if (name.empty() || source.empty()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(respond, id, "load",
                     Status(StatusCode::kInvalidArgument,
                            "load needs string fields 'name' and 'source'"),
                     "");
    return;
  }
  const auto seed =
      static_cast<std::uint64_t>(request.get_number("seed", 1));
  Expected<SnapshotPtr> loaded = catalog_.load(name, source, seed);
  if (!loaded.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(respond, id, "load", loaded.status(), "");
    return;
  }
  const GraphSnapshot& s = **loaded;
  std::string data = "{\"name\":" + obs::json_quote(s.name) +
                     ",\"vertices\":" + std::to_string(s.graph.num_vertices()) +
                     ",\"edges\":" + std::to_string(s.graph.num_edges()) +
                     ",\"components\":" + std::to_string(s.components) +
                     ",\"backend\":" + obs::json_quote(s.backend) +
                     ",\"bytes_mapped\":" + std::to_string(s.bytes_mapped) +
                     ",\"load_ms\":" + fmt_ms(s.load_ms) + "}";
  respond_envelope(respond, id, "load", Status::Ok(), data);
}

void QueryService::handle_unload(const Json& request,
                                 const ResponseFn& respond) {
  const std::string id = request.get_string("id", "");
  const std::string name = request.get_string("name", "");
  Expected<std::size_t> pinned = catalog_.unload(name);
  if (!pinned.ok()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(respond, id, "unload", pinned.status(), "");
    return;
  }
  respond_envelope(respond, id, "unload", Status::Ok(),
                   "{\"pinned\":" + std::to_string(*pinned) + "}");
}

void QueryService::handle_list(const Json& request,
                               const ResponseFn& respond) {
  const std::string id = request.get_string("id", "");
  std::string data = "{\"graphs\":[";
  bool first = true;
  for (const GraphCatalog::Entry& e : catalog_.list()) {
    if (!first) data += ",";
    first = false;
    data += "{\"name\":" + obs::json_quote(e.name) +
            ",\"source\":" + obs::json_quote(e.source) +
            ",\"seed\":" + std::to_string(e.seed) +
            ",\"vertices\":" + std::to_string(e.vertices) +
            ",\"edges\":" + std::to_string(e.edges) +
            ",\"components\":" + std::to_string(e.components) +
            ",\"pinned\":" + std::to_string(e.pinned) +
            ",\"backend\":" + obs::json_quote(e.backend) +
            ",\"bytes_mapped\":" + std::to_string(e.bytes_mapped) +
            ",\"load_ms\":" + fmt_ms(e.load_ms) +
            ",\"resident_bytes\":" + std::to_string(e.resident_bytes) + "}";
  }
  data += "]}";
  respond_envelope(respond, id, "list", Status::Ok(), data);
}

void QueryService::handle_cancel(const Json& request,
                                 const ResponseFn& respond) {
  const std::string id = request.get_string("id", "");
  const std::string target = request.get_string("target", "");
  bool found = false;
  {
    std::lock_guard lock(mutex_);
    const auto it = live_.find(target);
    if (it != live_.end()) {
      it->second->token->cancel();
      found = true;
    }
  }
  // Unknown target is OK, not an error: the query may have just completed —
  // cancel is inherently racy and idempotent from the client's view.
  respond_envelope(respond, id, "cancel", Status::Ok(),
                   std::string("{\"found\":") + (found ? "true" : "false") +
                       "}");
}

void QueryService::handle_healthz(const Json& request,
                                  const ResponseFn& respond) {
  const std::string id = request.get_string("id", "");
  const Stats s = stats();
  std::string data =
      "{\"ok\":true,\"graphs\":" + std::to_string(catalog_.size()) +
      ",\"queued\":" + std::to_string(s.queued) +
      ",\"active\":" + std::to_string(s.active) +
      ",\"admitted\":" + std::to_string(s.admitted) +
      ",\"served\":" + std::to_string(s.served) +
      ",\"rejected\":" + std::to_string(s.rejected) +
      ",\"overloaded\":" + std::to_string(s.overloaded) +
      ",\"cancelled\":" + std::to_string(s.cancelled) +
      ",\"batched\":" + std::to_string(s.batched) + "}";
  respond_envelope(respond, id, "healthz", Status::Ok(), data);
}

void QueryService::submit_query(const Json& request, std::uint64_t client,
                                ResponseFn respond) {
  std::string id = request.get_string("id", "");
  const auto reject = [&](StatusCode code, const std::string& message) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (code == StatusCode::kResourceExhausted) {
      overloaded_.fetch_add(1, std::memory_order_relaxed);
    }
    if (obs::kCompiledIn) obs::counter("serve/rejected").increment();
    respond_envelope(respond, id, "query", Status(code, message), "");
  };

  // Field shape checks first: a present-but-mistyped field must reject, not
  // silently fall back to a default.
  if (request.has_wrong_type("graph", Json::Type::kString) ||
      request.has_wrong_type("algo", Json::Type::kString) ||
      request.has_wrong_type("id", Json::Type::kString) ||
      request.has_wrong_type("budget_ms", Json::Type::kNumber) ||
      request.has_wrong_type("pause_ms", Json::Type::kNumber) ||
      request.has_wrong_type("verify", Json::Type::kBool)) {
    reject(StatusCode::kInvalidArgument,
           "mistyped field (graph/algo/id: string, budget_ms/pause_ms: "
           "number, verify: bool)");
    return;
  }

  const std::string graph = request.get_string("graph", "");
  if (graph.empty()) {
    reject(StatusCode::kInvalidArgument,
           "query needs a 'graph' field naming a loaded snapshot");
    return;
  }
  SnapshotPtr snapshot = catalog_.get(graph);
  if (snapshot == nullptr) {
    reject(StatusCode::kInvalidArgument,
           "graph '" + graph + "' is not loaded (op:load first)");
    return;
  }

  const std::string algo = request.get_string("algo", "auto");
  const MstAlgorithm* entry = nullptr;
  if (algo != "auto") {
    entry = find_mst_algorithm(algo);
    if (entry == nullptr) {
      reject(StatusCode::kInvalidArgument,
             "unknown algorithm '" + algo + "' (auto | " +
                 mst_algorithm_names() + ")");
      return;
    }
    // Capability filtering at admission: a tree-only entry would abort the
    // PROCESS on a forest (the Prim family asserts connectivity), so the
    // mismatch must be caught here, where it costs one rejected request.
    if (!entry->caps.msf_capable && snapshot->components != 1) {
      reject(StatusCode::kInvalidArgument,
             "algorithm '" + algo + "' requires a connected graph but '" +
                 graph + "' has " + std::to_string(snapshot->components) +
                 " components; use an msf-capable algorithm or auto");
      return;
    }
  }

  double budget_ms = -1;
  if (const Json* b = request.find("budget_ms"); b != nullptr && !b->is_null()) {
    budget_ms = b->as_number();
    // 0 is rejected rather than interpreted: historically "--deadline-ms 0"
    // meant "no deadline", and a budget of zero is also a nonsensical ask.
    // Omit the field (or send null) for "no budget".
    if (budget_ms <= 0) {
      reject(StatusCode::kInvalidArgument,
             "budget_ms must be > 0; omit the field for no budget");
      return;
    }
  }
  double pause_ms = request.get_number("pause_ms", 0);
  if (pause_ms < 0 || pause_ms > kMaxPauseMs) {
    reject(StatusCode::kInvalidArgument, "pause_ms must be in [0, 60000]");
    return;
  }

  auto job = std::make_shared<QueryJob>();
  if (id.empty()) {
    id = "q" + std::to_string(next_id_.fetch_add(1, std::memory_order_relaxed));
  }
  job->id = id;
  job->client = client;
  job->respond = std::move(respond);
  job->snapshot = std::move(snapshot);
  job->algo = algo;
  job->entry = entry;
  job->budget_ms = budget_ms;
  job->pause_ms = pause_ms;
  job->verify = request.get_bool("verify", false);

  {
    std::lock_guard lock(mutex_);
    if (stopping_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      respond_envelope(job->respond, id, "query",
                       Status(StatusCode::kCancelled, "service shutting down"),
                       "");
      return;
    }
    if (queue_.size() >= options_.queue_depth) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      overloaded_.fetch_add(1, std::memory_order_relaxed);
      if (obs::kCompiledIn) obs::counter("serve/overloaded").increment();
      respond_envelope(
          job->respond, id, "query",
          Status(StatusCode::kResourceExhausted,
                 "overloaded: queue depth " +
                     std::to_string(options_.queue_depth) +
                     " reached; retry with backoff"),
          "");
      return;
    }
    if (live_.count(id) != 0) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      respond_envelope(job->respond, id, "query",
                       Status(StatusCode::kInvalidArgument,
                              "query id '" + id + "' is already in flight"),
                       "");
      return;
    }
    queue_.push_back(job);
    live_[id] = job;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::kCompiledIn) obs::counter("serve/admitted").increment();
  cv_.notify_one();
}

void QueryService::disconnect_client(std::uint64_t client) {
  if (client == 0) return;
  std::lock_guard lock(mutex_);
  for (auto& [id, job] : live_) {
    if (job->client == client) job->token->cancel();
  }
}

std::vector<QueryService::JobPtr> QueryService::claim_batch() {
  std::lock_guard lock(mutex_);
  std::vector<JobPtr> batch;
  if (queue_.empty()) return batch;
  batch.push_back(queue_.front());
  queue_.pop_front();
  // Claim same-snapshot followers (in queue order, skipping others) up to
  // batch_max: one graph per dispatch keeps that snapshot hot in cache.
  const std::size_t cap = options_.batch_max == 0 ? 1 : options_.batch_max;
  for (auto it = queue_.begin(); it != queue_.end() && batch.size() < cap;) {
    if ((*it)->snapshot == batch.front()->snapshot) {
      batch.push_back(*it);
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return batch;
}

std::size_t QueryService::drain_one(ThreadPool* pool) {
  const std::vector<JobPtr> batch = claim_batch();
  if (batch.empty()) return 0;
  if (batch.size() > 1) {
    batched_.fetch_add(batch.size(), std::memory_order_relaxed);
    if (obs::kCompiledIn) {
      obs::counter("serve/batched_queries").add(batch.size());
    }
  }
  for (const JobPtr& job : batch) {
    active_.fetch_add(1, std::memory_order_relaxed);
    execute(job, batch.size(), pool);
    active_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard lock(mutex_);
      const auto it = live_.find(job->id);
      if (it != live_.end() && it->second == job) live_.erase(it);
    }
  }
  return batch.size();
}

void QueryService::worker_loop() {
  // One persistent pool per worker: queries are cheap to contextualize, the
  // pool's threads are not.  Each query still gets a fresh RunContext
  // attached to this pool.
  ThreadPool pool(options_.threads_per_query == 0 ? 1
                                                  : options_.threads_per_query);
  while (true) {
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
    }
    // claim_batch() may lose the race to a sibling and run nothing; the
    // wait predicate re-arms either way.
    drain_one(&pool);
  }
}

void QueryService::execute(const JobPtr& job, std::size_t batch_size,
                           ThreadPool* pool) {
  const double queue_ms = ms_since(job->enqueued);
  const CsrGraph& g = job->snapshot->graph;

  RunContext ctx;
  if (pool != nullptr) ctx.attach_pool(*pool);
  ctx.set_cancel(job->token.get());
  if (job->budget_ms > 0) ctx.set_deadline_ms(job->budget_ms);
  ctx.seed_components(g, job->snapshot->components);

  Status status = Status::Ok();
  obs::RunInfo info;
  info.tool = "llpmstd";
  info.algorithm = job->algo;
  info.threads = ctx.threads();
  info.vertices = g.num_vertices();
  info.edges = g.num_edges();

  MstResult result;
  bool have_result = false;
  std::string verified = "null";
  const Clock::time_point start = Clock::now();

  // The serve-side failpoint: a chaos spec can fault the dispatch itself
  // (distinct from faults inside the algorithms), exercising the
  // "one request degrades, the process survives" contract end to end.
  if (LLPMST_FAILPOINT("serve/execute") != fail::Action::kNone) {
    status = Status(StatusCode::kInjectedFault,
                    "injected fault at serve/execute");
    info.outcome = run_outcome_name(RunOutcome::kInjectedFault);
  } else {
    // Cancellable pre-run pause (tests/CI drive deterministic mid-flight
    // cancellation with it).  Polls the composed token, so a budget expiry
    // or client cancel ends the pause early with the right reason.
    const CancelToken* tok = ctx.cancel_token();
    if (job->pause_ms > 0) {
      const Clock::time_point pause_end =
          start + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(job->pause_ms));
      while (Clock::now() < pause_end) {
        if (tok != nullptr && tok->cancelled()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    if (job->token->cancelled()) {
      // The CLIENT cancelled before the algorithm started (while queued or
      // mid-pause) — a tiny graph would otherwise finish before the first
      // checkpoint poll and mask the cancellation with an "ok".  Only the
      // external token short-circuits here: an already-expired budget still
      // flows into the run so the portfolio's Kruskal fallback can answer.
      status = job->token->status();
      info.outcome = run_outcome_name(job->token->reason());
    } else {
      try {
        if (job->entry == nullptr) {
          AutoMstResult auto_result = minimum_spanning_forest(g, ctx);
          result = std::move(auto_result.result);
          have_result = true;
          info.algorithm = auto_result.algorithm;
          info.fallback_reason = auto_result.fallback_reason;
          info.outcome = run_outcome_name(result.stats.outcome);
          if (result.stats.outcome != RunOutcome::kOk) {
            status = outcome_status(result.stats.outcome);
          }
        } else {
          auto scope = ctx.obs_scope("serve/query");
          result = job->entry->run(g, ctx);
          have_result = true;
          info.algorithm = job->entry->name;
          info.outcome = run_outcome_name(result.stats.outcome);
          if (result.stats.outcome != RunOutcome::kOk) {
            status = outcome_status(result.stats.outcome);
          }
        }
      } catch (const std::exception& e) {
        status = Status(StatusCode::kInternal,
                        std::string("algorithm threw: ") + e.what());
        info.outcome = "internal_error";
      } catch (...) {
        status =
            Status(StatusCode::kInternal, "algorithm threw a non-exception");
        info.outcome = "internal_error";
      }
    }
  }
  info.wall_ms = ms_since(start);

  if (status.ok() && have_result && job->verify) {
    // O(n+m) shape/spanning check (not full minimality — that is a test-
    // suite tool, too slow to run per query at service scale).
    const VerifyResult v = verify_spanning_forest(g, result, ctx);
    verified = v.ok ? "true" : "false";
    if (!v.ok) {
      status = Status(StatusCode::kInternal, "verification failed: " + v.error);
    }
  }

  if (status.code() == StatusCode::kCancelled) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    if (obs::kCompiledIn) obs::counter("serve/cancelled").increment();
  }

  // Response: always a full run report (even for faulted/cancelled runs —
  // partial stats are exactly what an operator wants to see), with the
  // request section spliced in as the last object member.
  std::string report =
      obs::build_run_report(info, have_result ? &result.stats : nullptr);
  report.pop_back();  // trailing '}' — reopened to append "request"
  report += ",\"request\":{\"id\":" + obs::json_quote(job->id);
  report += ",\"graph\":" + obs::json_quote(job->snapshot->name);
  report += ",\"algo\":" + obs::json_quote(job->algo);
  report += ",\"status\":";
  report += status.ok() ? "\"ok\"" : "\"error\"";
  report += ",\"error\":" + error_json(status);
  report += ",\"queue_ms\":" + fmt_ms(queue_ms);
  report += ",\"batch\":" + std::to_string(batch_size);
  report += ",\"verified\":" + verified;
  report += "}}";

  served_.fetch_add(1, std::memory_order_relaxed);
  if (obs::kCompiledIn) obs::counter("serve/served").increment();
  job->respond(report);
}

void QueryService::shutdown() {
  std::vector<JobPtr> orphaned;
  {
    std::lock_guard lock(mutex_);
    if (stopping_ && workers_.empty() && queue_.empty()) return;
    stopping_ = true;
    orphaned.assign(queue_.begin(), queue_.end());
    queue_.clear();
    for (auto& [id, job] : live_) job->token->cancel();
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (const JobPtr& job : orphaned) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    respond_envelope(job->respond, job->id, "query",
                     Status(StatusCode::kCancelled,
                            "service shut down before the query ran"),
                     "");
    std::lock_guard lock(mutex_);
    const auto it = live_.find(job->id);
    if (it != live_.end() && it->second == job) live_.erase(it);
  }
}

QueryService::Stats QueryService::stats() const {
  Stats s;
  {
    std::lock_guard lock(mutex_);
    s.queued = queue_.size();
  }
  s.active = active_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.overloaded = overloaded_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.batched = batched_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace llpmst::serve
