// Shared helpers for the llpmst test suite.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/edge_list.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_async.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/boruvka.hpp"
#include "mst/filter_kruskal.hpp"
#include "mst/kkt.hpp"
#include "mst/kruskal.hpp"
#include "mst/kruskal_parallel.hpp"
#include "mst/mst_result.hpp"
#include "mst/parallel_boruvka.hpp"
#include "mst/prim.hpp"
#include "mst/prim_lazy.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst::test {

/// Builds a CSR graph from an already-normalized edge list.
inline CsrGraph csr(const EdgeList& list) { return CsrGraph::build(list); }

/// Named MSF algorithm for sweep-style tests.  `connected_only` marks the
/// Prim family, which requires connected inputs.
struct MsfAlgo {
  std::string name;
  bool connected_only;
  std::function<MstResult(const CsrGraph&, ThreadPool&)> run;
};

/// Every MSF implementation in the library, all expected to produce the
/// identical (unique) forest.
inline std::vector<MsfAlgo> all_msf_algorithms() {
  return {
      {"kruskal", false,
       [](const CsrGraph& g, ThreadPool&) { return kruskal(g); }},
      {"kruskal_parallel", false,
       [](const CsrGraph& g, ThreadPool& p) {
         return kruskal_parallel(g, p);
       }},
      {"filter_kruskal", false,
       [](const CsrGraph& g, ThreadPool& p) { return filter_kruskal(g, p); }},
      {"kkt", false,
       [](const CsrGraph& g, ThreadPool&) { return kkt_msf(g); }},
      {"prim", true, [](const CsrGraph& g, ThreadPool&) { return prim(g); }},
      {"prim_lazy", true,
       [](const CsrGraph& g, ThreadPool&) { return prim_lazy(g); }},
      {"boruvka", false,
       [](const CsrGraph& g, ThreadPool&) { return boruvka(g); }},
      {"parallel_boruvka", false,
       [](const CsrGraph& g, ThreadPool& p) { return parallel_boruvka(g, p); }},
      {"llp_prim", true,
       [](const CsrGraph& g, ThreadPool&) { return llp_prim(g); }},
      {"llp_prim_msf", false,
       [](const CsrGraph& g, ThreadPool&) { return llp_prim_msf(g); }},
      {"llp_prim_parallel", true,
       [](const CsrGraph& g, ThreadPool& p) {
         return llp_prim_parallel(g, p);
       }},
      {"llp_prim_async", true,
       [](const CsrGraph& g, ThreadPool& p) { return llp_prim_async(g, p); }},
      {"llp_boruvka", false,
       [](const CsrGraph& g, ThreadPool& p) { return llp_boruvka(g, p); }},
  };
}

}  // namespace llpmst::test
