// Wall-clock timer used by the benchmark harness and examples.
#pragma once

#include <chrono>

namespace llpmst {

/// Monotonic wall-clock stopwatch.  Starts running on construction.
class Timer {
 public:
  using Clock = std::chrono::steady_clock;

  Timer() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

  /// Microseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  Clock::time_point start_;
};

}  // namespace llpmst
