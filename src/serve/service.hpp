// The query service: admission control, the bounded request queue, and the
// serve-side worker pool that executes queries against catalog snapshots.
//
// Request flow (docs/serving.md has the wire-level view):
//
//   handle(line) ── parse ──> admission ── enqueue ──> worker ──> respond
//
// Admission happens on the CALLER's thread and is synchronous: a request
// that cannot run (unknown graph/algo, capability mismatch, bad budget,
// queue full) is rejected with a structured serve-response envelope before
// it ever costs a queue slot.  The two contracts worth naming:
//
//   * every query runs in its OWN RunContext: own deadline token (armed
//     from the request's budget_ms and observing the per-query cancel
//     token, so "budget expired" and "client went away" both stop it with
//     the true reason), own scratch, connectivity seeded from the
//     snapshot's load-time component count.  Workers keep a persistent
//     ThreadPool across queries — the pool is the expensive part — but
//     context state never leaks between requests;
//   * faults degrade one request, never the process: an armed failpoint or
//     a thrown exception inside an algorithm becomes a structured error in
//     THAT query's response (the existing Status taxonomy), and the worker
//     moves on.  The CI chaos job asserts exactly this.
//
// Batching: when a worker pops a query it also claims up to batch_max-1
// queued queries against the SAME snapshot and runs them back-to-back —
// one graph resident in cache per worker dispatch instead of round-robin
// thrash across snapshots.  Responses still stream per query; the report's
// request.batch field records the dispatch size so the effect is visible.
//
// Overload: the queue is bounded (queue_depth).  A full queue rejects with
// RESOURCE_EXHAUSTED / "overloaded" — loudly, synchronously — instead of
// buffering unboundedly; clients are expected to back off and retry.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/json.hpp"
#include "support/cancel.hpp"

namespace llpmst {
class ThreadPool;
}

namespace llpmst::serve {

struct ServiceOptions {
  /// Serve-side worker threads executing queries.
  std::size_t workers = 2;
  /// ThreadPool size each worker runs its queries on.
  std::size_t threads_per_query = 1;
  /// Bounded queue depth; admission rejects RESOURCE_EXHAUSTED beyond it.
  std::size_t queue_depth = 64;
  /// Max same-snapshot queries one worker dispatch claims (>= 1).
  std::size_t batch_max = 4;
  /// Tests set false to exercise the queue/batching machinery without
  /// worker threads racing them; drain_one() then runs dispatches inline.
  bool start_workers = true;
};

/// Delivery callback for one response line (no trailing newline).  Called
/// synchronously from handle() for admission results and control ops, and
/// from a worker thread for executed queries — implementations serialize
/// their own writes.
using ResponseFn = std::function<void(const std::string&)>;

class QueryService {
 public:
  QueryService(GraphCatalog& catalog, ServiceOptions options);
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Parses and executes one request line.  Exactly one response line is
  /// (eventually) delivered through `respond` per call: synchronously for
  /// control ops and rejections, from a worker for admitted queries.
  /// `client` tags the requesting connection so disconnect_client() can
  /// cancel its in-flight queries; 0 = untracked.
  void handle(const std::string& line, std::uint64_t client,
              ResponseFn respond);

  /// Cancels every queued/running query admitted with this client tag —
  /// the "client went away" path.  Queued queries still produce their
  /// (cancelled) response through the stored ResponseFn; the server side
  /// discards writes to a closed connection.
  void disconnect_client(std::uint64_t client);

  /// Stops workers: in-flight queries are cancelled (kCancelled), queued
  /// queries respond cancelled without running, workers join.  Idempotent;
  /// the destructor calls it.
  void shutdown();

  /// Runs one worker dispatch (one batch) inline on the calling thread,
  /// optionally on `pool` (nullptr = each query's own 1-thread context).
  /// Returns the number of queries executed (0 = queue empty).  This is
  /// the worker loop's body, exposed for start_workers=false tests.
  std::size_t drain_one(ThreadPool* pool = nullptr);

  struct Stats {
    std::size_t queued = 0;        // waiting in the queue right now
    std::size_t active = 0;        // executing right now
    std::uint64_t admitted = 0;    // queries accepted into the queue, ever
    std::uint64_t served = 0;      // responses delivered for executed queries
    std::uint64_t rejected = 0;    // admission rejections (all codes)
    std::uint64_t overloaded = 0;  // the RESOURCE_EXHAUSTED subset
    std::uint64_t cancelled = 0;   // queries stopped by cancel/disconnect
    std::uint64_t batched = 0;     // queries that rode a multi-query dispatch
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct QueryJob;
  using JobPtr = std::shared_ptr<QueryJob>;

  void worker_loop();
  /// Claims the next batch (front job + same-snapshot followers) under the
  /// queue lock.  Empty when the queue is empty.
  std::vector<JobPtr> claim_batch();
  void execute(const JobPtr& job, std::size_t batch_size, ThreadPool* pool);
  void respond_envelope(const ResponseFn& respond, const std::string& id,
                        const char* op, const Status& status,
                        const std::string& data_json);
  void submit_query(const Json& request, std::uint64_t client,
                    ResponseFn respond);
  void handle_load(const Json& request, const ResponseFn& respond);
  void handle_unload(const Json& request, const ResponseFn& respond);
  void handle_list(const Json& request, const ResponseFn& respond);
  void handle_cancel(const Json& request, const ResponseFn& respond);
  void handle_healthz(const Json& request, const ResponseFn& respond);

  GraphCatalog& catalog_;
  const ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<JobPtr> queue_;
  bool stopping_ = false;
  /// Live queries by id (queued + running) for cancel / disconnect.
  std::map<std::string, JobPtr> live_;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> next_id_{1};

  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> overloaded_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> batched_{0};
};

}  // namespace llpmst::serve
