// Classic sequential Boruvka (the paper's Algorithm 3): repeatedly identify
// components of (V, T) by BFS, find each component's minimum outgoing edge
// by an edge sweep, add all of them to T.  Handles forests.
//
// Kept faithful to the paper's formulation — including the per-round BFS
// over the tree-so-far, which is what makes single-threaded Boruvka ~3x
// slower than the Prim family in Fig. 2.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

[[nodiscard]] MstResult boruvka(const CsrGraph& g);
/// Uniform registry entry point (sequential; the context is unused).
[[nodiscard]] MstResult boruvka(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm boruvka_algorithm();

}  // namespace llpmst
