// Reproduces Fig. 3: thread scaling of LLP-Prim, parallel Boruvka, and
// LLP-Boruvka on the USA-road stand-in, threads 1..32.
//
// Paper's claims to reproduce (shape):
//   * the Boruvka-family algorithms overtake LLP-Prim around 8 threads and
//     scale near-linearly;
//   * LLP-Prim speeds up a little, plateaus, and regresses past ~8 threads
//     (its heap phase is sequential);
//   * LLP-Boruvka stays at or below parallel Boruvka's time, with the gap
//     tapering at high thread counts.
//
// NOTE: on a machine with fewer physical cores than the sweep (this repro
// ran on 1), thread counts beyond the core count measure oversubscription
// overhead, not parallel speedup; EXPERIMENTS.md discusses this.
#include <cstdio>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "mst/registry.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_fig3_scaling",
                "Reproduces Fig. 3 (multithreaded scaling on the road "
                "graph)");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& workload_spec = cli.add_string(
      "workload", "",
      "workload override: scenario:NAME (the src/scenario/ registry), "
      "road:SIDE, or rmat:SCALE; default is road:<--road-side>");
  auto& threads_flag =
      cli.add_string("threads", "1,2,4,8,16,32", "thread counts to sweep");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& seed = cli.add_int("seed", 1, "workload generator seed");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  const std::vector<int> thread_counts =
      CliParser::parse_int_list(threads_flag);
  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);

  Workload w;
  if (workload_spec.empty()) {
    w = make_road_workload(static_cast<std::uint32_t>(road_side),
                           static_cast<std::uint64_t>(seed));
  } else {
    std::string werr;
    if (!make_workload_spec(workload_spec, static_cast<std::uint64_t>(seed),
                            &w, &werr)) {
      std::fprintf(stderr, "bad --workload: %s\n", werr.c_str());
      return 2;
    }
  }
  const MstResult reference = kruskal(w.graph);

  std::printf("Fig. 3: thread scaling on %s (%zu vertices, %zu edges)\n\n",
              w.name.c_str(), w.graph.num_vertices(), w.graph.num_edges());

  Table t({"Threads", "LLP-Prim", "Boruvka", "LLP-Boruvka",
           "LLP-Prim speedup", "Boruvka speedup", "LLP-Boruvka speedup"});

  const MstAlgorithm& llp_prim = mst_algorithm("llp-prim-parallel");
  const MstAlgorithm& boruvka = mst_algorithm("parallel-boruvka");
  const MstAlgorithm& llp_boruvka = mst_algorithm("llp-boruvka");

  // One context for the whole sweep: the Boruvka scratch arena persists
  // across thread counts, as the engine's thread_local scratch used to.
  RunContext ctx;
  double base_llp_prim = 0, base_boruvka = 0, base_llp_boruvka = 0;
  for (const int threads : thread_counts) {
    set_bench_context(w.name, static_cast<std::size_t>(threads));
    ThreadPool pool(static_cast<std::size_t>(threads));
    ctx.attach_pool(pool);
    const BenchMeasurement lp = measure_mst(
        llp_prim.name, w.graph, reference,
        [&] { return llp_prim.run(w.graph, ctx); }, opts);
    const BenchMeasurement pb = measure_mst(
        boruvka.name, w.graph, reference,
        [&] { return boruvka.run(w.graph, ctx); }, opts);
    const BenchMeasurement lb = measure_mst(
        llp_boruvka.name, w.graph, reference,
        [&] { return llp_boruvka.run(w.graph, ctx); }, opts);

    if (threads == thread_counts.front()) {
      base_llp_prim = lp.time_ms.median;
      base_boruvka = pb.time_ms.median;
      base_llp_boruvka = lb.time_ms.median;
    }
    t.add_row({strf("%d", threads), time_cell(lp.time_ms),
               time_cell(pb.time_ms), time_cell(lb.time_ms),
               speedup_cell(base_llp_prim, lp.time_ms.median),
               speedup_cell(base_boruvka, pb.time_ms.median),
               speedup_cell(base_llp_boruvka, lb.time_ms.median)});
  }

  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_fig3_scaling");
  return 0;
}
