#include "obs/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/mem_stats.hpp"
#include "obs/metrics.hpp"

namespace llpmst::obs {

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

void append_kv_ms(std::string& out, const char* key, double ms,
                  bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f%s", key, ms, comma ? "," : "");
  out += buf;
}

/// Emits a counter field that may be kHwAbsent (JSON null).
void append_hw_u64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  if (v == kHwAbsent) {
    out += "\"";
    out += key;
    out += "\":null";
    if (comma) out.push_back(',');
  } else {
    append_kv_u64(out, key, v, comma);
  }
}

/// The five counters + task-clock of one sample (no braces, no trailing
/// comma) — shared by the run-level hw section and its phase entries.
void append_hw_fields(std::string& out, const HwSample& s) {
  append_hw_u64(out, "cycles", s.cycles);
  append_hw_u64(out, "instructions", s.instructions);
  append_hw_u64(out, "cache_references", s.cache_references);
  append_hw_u64(out, "cache_misses", s.cache_misses);
  append_hw_u64(out, "branch_misses", s.branch_misses);
  if (s.task_clock_ms < 0) {
    out += "\"task_clock_ms\":null";
  } else {
    append_kv_ms(out, "task_clock_ms", s.task_clock_ms, false);
  }
}

}  // namespace

std::string build_run_report(const RunInfo& info, const MstAlgoStats* algo,
                             const HwSample* hw) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"llpmst-run-report\",\"schema_version\":2,";

  // --- run metadata
  out += "\"run\":{\"tool\":";
  out += json_quote(info.tool);
  out += ",\"algorithm\":";
  out += json_quote(info.algorithm);
  out += ",";
  append_kv_u64(out, "threads", info.threads);
  out += "\"graph\":{";
  append_kv_u64(out, "vertices", info.vertices);
  append_kv_u64(out, "edges", info.edges, false);
  out += "},";
  append_kv_ms(out, "wall_ms", info.wall_ms);
  out += "\"outcome\":";
  out += json_quote(info.outcome);
  out += ",\"fallback_reason\":";
  out += json_quote(info.fallback_reason);
  out += "},";

  // --- per-algorithm stats
  if (algo != nullptr) {
    out += "\"algo\":{";
    append_kv_u64(out, "fixed_via_heap", algo->fixed_via_heap);
    append_kv_u64(out, "fixed_via_mwe", algo->fixed_via_mwe);
    append_kv_u64(out, "staged_in_q", algo->staged_in_q);
    append_kv_u64(out, "edges_relaxed", algo->edges_relaxed);
    append_kv_u64(out, "rounds", algo->rounds);
    append_kv_u64(out, "pointer_jumps", algo->pointer_jumps);
    out += "\"heap\":{";
    append_kv_u64(out, "pushes", algo->heap.pushes);
    append_kv_u64(out, "pops", algo->heap.pops);
    append_kv_u64(out, "adjusts", algo->heap.adjusts);
    append_kv_u64(out, "sift_steps", algo->heap.sift_steps, false);
    out += "},\"llp\":{";
    append_kv_u64(out, "sweeps", algo->llp_sweeps);
    append_kv_u64(out, "advances", algo->llp_advances);
    out += "\"converged\":";
    out += algo->llp_converged ? "true" : "false";
    out += ",\"outcome\":";
    out += json_quote(run_outcome_name(algo->outcome));
    out += "}},";
  } else {
    out += "\"algo\":null,";
  }

  // --- hardware counters (schema v2)
  if (hw == nullptr) {
    out += "\"hw\":null,";
  } else if (!hw->available) {
    out += "\"hw\":{\"available\":false,\"reason\":";
    out += json_quote(hw->unavailable_reason);
    out += "},";
  } else {
    out += "\"hw\":{\"available\":true,";
    append_hw_fields(out, *hw);
    out += ",";
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"multiplex_ratio\":%.4f,",
                  hw->multiplex_ratio);
    out += buf;
    out += "\"phases\":[";
    bool first_hw = true;
    for (const HwPhaseSample& p : snapshot_hw_phases()) {
      if (!first_hw) out.push_back(',');
      first_hw = false;
      out += "{\"name\":";
      out += json_quote(p.name);
      out += ",";
      append_kv_u64(out, "count", p.count);
      append_hw_fields(out, p.totals);
      out += "}";
    }
    out += "]},";
  }

  // --- memory (schema v2; peak RSS works in every flavour)
  {
    const MemSample mem = mem_sample();
    out += "\"mem\":{";
    append_kv_u64(out, "peak_rss_bytes", mem.peak_rss_bytes);
    if (mem.alloc_tracking) {
      out += "\"alloc\":{";
      append_kv_u64(out, "count", mem.alloc_count);
      append_kv_u64(out, "bytes", mem.alloc_bytes);
      append_kv_u64(out, "frees", mem.free_count, false);
      out += "}},";
    } else {
      out += "\"alloc\":null},";
    }
  }

  // --- registry metrics
  const std::vector<MetricSample> metrics = snapshot_metrics();
  out += "\"counters\":{";
  bool first = true;
  for (const MetricSample& m : metrics) {
    if (m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSample& m : metrics) {
    if (!m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},";

  // --- phase aggregates
  out += "\"phases\":[";
  first = true;
  for (const PhaseSample& p : snapshot_phases()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    out += json_quote(p.name);
    out += ",";
    append_kv_u64(out, "count", p.count);
    append_kv_ms(out, "total_ms", static_cast<double>(p.total_us) / 1000.0,
                 false);
    out += "}";
  }
  out += "],";

  // --- warnings
  out += "\"warnings\":[";
  first = true;
  for (const std::string& w : snapshot_warnings()) {
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(w);
  }
  out += "]}";
  return out;
}

bool write_run_report(const std::string& path, const std::string& json,
                      std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace llpmst::obs
