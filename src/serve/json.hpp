// Minimal JSON value + recursive-descent parser for llpmstd's wire surface.
//
// The daemon speaks newline-delimited JSON (docs/serving.md).  The repo
// already *emits* JSON (obs/report builds run reports by hand) but nothing
// ever needed to *read* it until requests arrived over a socket.  This
// parser is deliberately small and strict:
//
//   * full JSON grammar: objects, arrays, strings (with \uXXXX escapes,
//     surrogate pairs included), numbers, true/false/null;
//   * strict — trailing garbage, control characters in strings, and
//     truncated input are errors, because a malformed request must become
//     a structured INVALID_ARGUMENT response, never a guess;
//   * depth-capped (kMaxDepth) so a hostile request of 1 MB of '[' cannot
//     overflow the stack of a serve thread;
//   * no number cleverness: numbers parse to double, which covers every
//     field the protocol defines (ids, budgets, seeds, scales).
//
// It is not a general-purpose library: no serialization (responses are
// built with obs::json_quote like every other emitter in the repo), no
// streaming, no comments.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace llpmst::serve {

/// A parsed JSON value.  Object keys are kept sorted (std::map) — request
/// field lookup is by name and order never matters on the wire.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Json>& as_array() const { return array_; }
  [[nodiscard]] const std::map<std::string, Json>& as_object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;

  // -- Typed convenience accessors for request decoding -------------------
  /// get_string("algo", "auto"): the member as a string, or `fallback` when
  /// the member is absent or null.  A present member of the WRONG type is
  /// not silently coerced — callers that must distinguish use find().
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback) const;
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] bool get_bool(std::string_view key, bool fallback) const;
  /// True when the member exists, is non-null, and has the wrong type for
  /// the accessor that would read it — admission rejects such requests
  /// instead of running them with fallback values.
  [[nodiscard]] bool has_wrong_type(std::string_view key, Type want) const;

  // -- Construction (parser + tests) --------------------------------------
  static Json make_null() { return Json(); }
  static Json make_bool(bool v);
  static Json make_number(double v);
  static Json make_string(std::string v);
  static Json make_array(std::vector<Json> v);
  static Json make_object(std::map<std::string, Json> v);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::map<std::string, Json> object_;
};

/// Parses one complete JSON document from `text`.  On success returns true
/// and fills *out; on failure returns false and sets *error to a short
/// human-readable reason with a byte offset.  Trailing non-whitespace after
/// the document is an error.
bool parse_json(std::string_view text, Json* out, std::string* error);

}  // namespace llpmst::serve
