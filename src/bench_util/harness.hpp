// Repetition/timing harness for the figure benchmarks: runs a callable
// several times (after warmup), verifies the result against a reference on
// the first repetition, and reports median wall time.
//
// When bench-record collection is active (the ObsCli --bench-json flag),
// every measurement also lands in an in-memory list of structured
// datapoints that ObsCli::finish() writes out as JSON Lines — one
// `llpmst-bench` schema document per line:
//
//   {"schema":"llpmst-bench","schema_version":1,"bench":"bench_fig3_scaling",
//    "workload":"Road 262,144","algo":"LLP-Prim","threads":2,
//    "warmup":1,"repetitions":3,"verified":true,
//    "ms":{"median":..,"p25":..,"p75":..,"iqr":..,"min":..,"max":..,
//          "mean":..,"stddev":..},
//    "samples_ms":[..],"hw":null|{..},"mem":{..},"sched":null|{..},
//    "profile":null|{"hz":97,"samples":N,
//                    "top_phases":[{"name":..,"samples":N}, ...x3],
//                    "est_gbps":X|null}}
//
// The "profile" section (--profile) brackets the timed repetitions with the
// sampling profiler (obs/profiler.hpp) and records the top-3 hottest phase
// paths plus the estimated DRAM bandwidth (cache-miss delta x line size /
// timed wall, needs --hw-counters).  tools/bench_compare.py *reports* hot-
// path drift between records — it never gates on it.
//
// tools/bench_compare.py consumes directories of these records for the
// perf-regression gate; tools/check_report_schema.py validates them.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "mst/mst_result.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace llpmst {

class Table;

struct BenchOptions {
  int warmup = 1;
  int repetitions = 3;
  bool verify = true;  // cross-check the edge set against a reference MSF
};

struct BenchMeasurement {
  std::string name;
  Summary time_ms;        // across repetitions
  MstResult last_result;  // instrumentation from the last repetition
  bool verified = false;  // result matched the reference (when requested)
};

/// Times `run` (which must return the MSF of `g`).  When options.verify is
/// set, compares the edge set of the first repetition with `reference`
/// (dies loudly on mismatch — a benchmark of a wrong algorithm is worse
/// than no benchmark).  When recording is active, also captures a bench
/// record (with the hw-counter delta across the timed repetitions, if the
/// counter group is running).
[[nodiscard]] BenchMeasurement measure_mst(
    const std::string& name, const CsrGraph& g, const MstResult& reference,
    const std::function<MstResult()>& run, const BenchOptions& options = {});

/// Names the workload/thread-count that subsequent measurements belong to
/// (stamped into their bench records).  Benches call this at the top of
/// their workload/thread loops; threads == 0 means single-thread/unknown.
void set_bench_context(const std::string& workload, std::size_t threads = 0);

/// Appends one bench record directly — for benches with bespoke timing
/// loops (e.g. the interleaved fig2 measurement) that bypass measure_mst.
/// No-op unless recording is active.
void record_bench_samples(const std::string& algo,
                          const std::vector<double>& samples_ms, int warmup,
                          bool verified);

/// Shared observability flags for the bench binaries.  Construct before
/// cli.parse() (registers --metrics-json, --trace, --bench-json, --csv-out,
/// --hw-counters, --profile and --profile-hz), call begin() right after
/// parse (flips the runtime gates / opens the hw-counter group / arms
/// record collection), and finish() once the benchmark work is done
/// (writes the run report, trace, and bench records).  With no flag
/// passed, every call is a no-op, so benches pay nothing for carrying the
/// flags.
class ObsCli {
 public:
  explicit ObsCli(CliParser& cli);

  /// Enables metrics collection / trace recording / hw counters / bench
  /// records as requested.
  void begin() const;

  /// Writes the rendered table as CSV to the --csv-out file (truncating on
  /// the first call, appending with a blank separator line after that, so
  /// multi-table benches produce one readable file).  No-op without the
  /// flag.  Returns false after printing to stderr on I/O failure.
  bool write_table(const Table& t) const;

  /// Stops tracing and writes the requested artefacts.  `tool` names the
  /// emitting binary in the report and the bench records; `threads`
  /// (0 = unknown/swept) lands in the report's run section.  Returns false
  /// after printing to stderr if a file could not be written.
  bool finish(const std::string& tool, std::size_t threads = 0) const;

 private:
  std::string* metrics_json_;
  std::string* trace_;
  std::string* bench_json_;
  std::string* csv_out_;
  bool* hw_counters_;
  bool* profile_;
  std::int64_t* profile_hz_;
  mutable bool csv_written_ = false;
};

}  // namespace llpmst
