// The executor seam: the minimal team-execution surface the data-parallel
// primitives need.
//
// Everything above this layer (parallel_for, reduce, scan, sort, the LLP
// solvers, the Boruvka engine) is written against Executor&, not a concrete
// pool.  Two implementations exist:
//
//   * ThreadPool — N real OS threads, the production substrate;
//   * SimExecutor (src/sim/) — N *virtual* workers serialized under a
//     deterministic scheduler, for replayable schedule exploration.
//
// The surface is deliberately tiny — run_team(f) + num_threads() — because
// the whole library is bulk-synchronous: one region at a time, every worker
// runs f(worker_id), the submitter joins.  Keeping the seam this narrow is
// what makes a deterministic implementation feasible at all.
#pragma once

#include <cstddef>
#include <type_traits>

namespace llpmst {

class Executor {
 public:
  Executor() = default;
  virtual ~Executor() = default;

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Number of workers, including the submitting thread (id 0).
  [[nodiscard]] virtual std::size_t num_threads() const = 0;

  /// Runs f(worker_id) on every worker (ids 0..num_threads-1) and returns
  /// when all have finished.  Exceptions escaping f on any worker are
  /// rethrown here on the submitting thread after the join (first thrower
  /// wins).  NOT reentrant — no nested regions.
  ///
  /// Dispatch is by borrowed reference (a {object pointer, invoke thunk}
  /// pair), NOT by std::function: team regions are the hottest dispatch
  /// path in the library and a capturing lambda must not cost a heap
  /// allocation per region.  `f` only needs to outlive the call, which the
  /// join guarantees.
  template <typename F>
  void run_team(F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_region_impl(TeamFn{
        const_cast<void*>(static_cast<const void*>(&f)),
        [](void* obj, std::size_t worker_id) {
          (*static_cast<Fn*>(obj))(worker_id);
        }});
  }

 protected:
  /// Borrowed callable: no ownership, no allocation, trivially copyable.
  struct TeamFn {
    void* obj = nullptr;
    void (*invoke)(void*, std::size_t) = nullptr;
  };

  virtual void run_region_impl(const TeamFn& fn) = 0;
};

}  // namespace llpmst
