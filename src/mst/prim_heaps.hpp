// Heap-generic Prim implementation backing both the classic baseline
// (indexed binary heap) and the heap-choice ablation bench (d-ary, pairing,
// lazy heaps).  The heap interface required is:
//   push(id, key), pop() -> (id, key), empty()
//   insert_or_adjust(id, key)  — optional; heaps without it (LazyHeap) get
//                                duplicate insertion + stale-pop skipping,
//                                exactly the variant the paper analyses in
//                                Section IV.
#pragma once

#include "mst/mst_result.hpp"
#include "support/assert.hpp"

namespace llpmst {

template <typename Heap>
[[nodiscard]] MstResult prim_with_heap(const CsrGraph& g, VertexId root) {
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK_MSG(n >= 1, "Prim requires a non-empty graph");
  LLPMST_CHECK(root < n);

  MstResult r;
  std::vector<EdgePriority> dist(n, kInfinitePriority);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<std::uint8_t> fixed(n, 0);

  Heap heap(n);
  dist[root] = 0;
  heap.push(root, EdgePriority{0});

  std::size_t num_fixed = 0;
  while (!heap.empty()) {
    const auto [j, key] = heap.pop();
    if (fixed[j]) continue;  // stale entry (lazy heaps only)
    (void)key;
    fixed[j] = 1;
    ++num_fixed;
    ++r.stats.fixed_via_heap;
    if (j != root) r.edges.push_back(parent_edge[j]);

    const auto nbrs = g.neighbors(j);
    const auto prios = g.arc_priorities(j);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId k = nbrs[i];
      if (fixed[k]) continue;
      ++r.stats.edges_relaxed;
      const EdgePriority p = prios[i];
      if (p < dist[k]) {
        dist[k] = p;
        parent_edge[k] = priority_edge(p);
        if constexpr (requires(Heap& h) { h.insert_or_adjust(k, p); }) {
          heap.insert_or_adjust(k, p);
        } else {
          heap.push(k, p);  // lazy: duplicates allowed, stale pops skipped
        }
      }
    }
  }

  LLPMST_CHECK_MSG(num_fixed == n,
                   "Prim requires a connected graph; use a forest algorithm "
                   "(Kruskal / Boruvka family) for disconnected inputs");
  r.stats.heap = heap.stats();
  finalize_result(g, r);
  return r;
}

}  // namespace llpmst
