// Internal helpers shared by the graph readers (not part of the public API).
#pragma once

#include <cstdio>
#include <string>

#include "support/failpoint.hpp"
#include "support/status.hpp"

namespace llpmst::io_detail {

/// Reads one full line of unbounded length into `line` (newline stripped).
/// Returns false at EOF with nothing read.  Fixed-size fgets buffers are NOT
/// equivalent: a >buffer-size line gets chunked, and the continuation of a
/// long comment line silently parses as data — an adversarial-input bug the
/// fuzz suite caught.
inline bool read_line(std::FILE* f, std::string& line) {
  line.clear();
  char buf[4096];
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      return true;
    }
  }
  return !line.empty();
}

/// Converts a fired reader failpoint into the Status the reader returns:
/// a `return` spec models an I/O-layer fault, an `alloc` spec models memory
/// exhaustion while parsing.  kNone maps to OK (nothing fired).
inline Status injected_status(fail::Action a, const char* point) {
  switch (a) {
    case fail::Action::kNone:
      return Status::Ok();
    case fail::Action::kAlloc:
      return {StatusCode::kResourceExhausted,
              std::string("injected allocation failure at ") + point};
    case fail::Action::kError:
      break;
  }
  return {StatusCode::kInjectedFault,
          std::string("injected fault at ") + point};
}

}  // namespace llpmst::io_detail
