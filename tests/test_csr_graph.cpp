#include <gtest/gtest.h>

#include <algorithm>

#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/special.hpp"
#include "parallel/thread_pool.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

EdgeList fig1() { return make_paper_figure1(); }

TEST(CsrGraph, BasicCounts) {
  const CsrGraph g = CsrGraph::build(fig1());
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_EQ(g.num_arcs(), 14u);
  EXPECT_EQ(g.total_weight(), 5u + 4 + 3 + 7 + 9 + 11 + 2);
}

TEST(CsrGraph, DegreesMatchFigure1) {
  const CsrGraph g = CsrGraph::build(fig1());
  EXPECT_EQ(g.degree(0), 2u);  // a: b, c
  EXPECT_EQ(g.degree(1), 3u);  // b: a, c, d
  EXPECT_EQ(g.degree(2), 4u);  // c: a, b, d, e
  EXPECT_EQ(g.degree(3), 3u);  // d: b, c, e
  EXPECT_EQ(g.degree(4), 2u);  // e: c, d
}

TEST(CsrGraph, RowsSortedByPriorityAndConsistent) {
  const CsrGraph g = CsrGraph::build(fig1());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto prios = g.arc_priorities(v);
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(prios.size(), nbrs.size());
    EXPECT_TRUE(std::is_sorted(prios.begin(), prios.end()));
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const EdgeId e = priority_edge(prios[i]);
      const WeightedEdge& we = g.edge(e);
      EXPECT_EQ(priority_weight(prios[i]), we.w);
      // Arc endpoints must be the edge's endpoints.
      EXPECT_TRUE((we.u == v && we.v == nbrs[i]) ||
                  (we.v == v && we.u == nbrs[i]));
    }
  }
}

TEST(CsrGraph, MinIncidentPriorityMatchesFigure1) {
  const CsrGraph g = CsrGraph::build(fig1());
  // Minimum incident weights from the paper's adjacency table: a:4, b:3,
  // c:3, d:2, e:2.
  EXPECT_EQ(priority_weight(g.min_incident_priority(0)), 4u);
  EXPECT_EQ(priority_weight(g.min_incident_priority(1)), 3u);
  EXPECT_EQ(priority_weight(g.min_incident_priority(2)), 3u);
  EXPECT_EQ(priority_weight(g.min_incident_priority(3)), 2u);
  EXPECT_EQ(priority_weight(g.min_incident_priority(4)), 2u);
}

TEST(CsrGraph, IsolatedVertexHasInfiniteMwe) {
  EdgeList list(3);
  list.add_edge(0, 1, 5);
  list.normalize();
  const CsrGraph g = CsrGraph::build(list);
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.min_incident_priority(2), kInfinitePriority);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph g = CsrGraph::build(EdgeList(0));
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(CsrGraph, VerticesWithoutEdges) {
  const CsrGraph g = CsrGraph::build(EdgeList(7));
  EXPECT_EQ(g.num_vertices(), 7u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(CsrGraph, ParallelBuildMatchesSequential) {
  ErdosRenyiParams params;
  params.num_vertices = 2000;
  params.num_edges = 12000;
  params.seed = 31;
  const EdgeList list = generate_erdos_renyi(params);

  const CsrGraph seq = CsrGraph::build(list);
  ThreadPool pool(4);
  const CsrGraph par = CsrGraph::build(list, &pool);

  ASSERT_EQ(seq.num_vertices(), par.num_vertices());
  ASSERT_EQ(seq.num_edges(), par.num_edges());
  for (VertexId v = 0; v < seq.num_vertices(); ++v) {
    const auto sp = seq.arc_priorities(v);
    const auto pp = par.arc_priorities(v);
    ASSERT_TRUE(std::equal(sp.begin(), sp.end(), pp.begin(), pp.end()))
        << "row " << v;
    const auto sn = seq.neighbors(v);
    const auto pn = par.neighbors(v);
    ASSERT_TRUE(std::equal(sn.begin(), sn.end(), pn.begin(), pn.end()))
        << "row " << v;
    ASSERT_EQ(seq.min_incident_priority(v), par.min_incident_priority(v));
  }
}

TEST(CsrGraph, BuildRejectsUnnormalizedInput) {
  EdgeList list(3);
  list.add_edge(2, 1, 5);  // reversed endpoints, not normalized
  EXPECT_DEATH(CsrGraph::build(list), "normalized");
}

TEST(CsrGraph, ArcMweFlagsMatchDefinition) {
  ErdosRenyiParams params;
  params.num_vertices = 300;
  params.num_edges = 1500;
  params.seed = 19;
  const CsrGraph g = CsrGraph::build(generate_erdos_renyi(params));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    const auto prios = g.arc_priorities(v);
    const auto flags = g.arc_mwe_flags(v);
    ASSERT_EQ(flags.size(), nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const bool expected = prios[i] == g.min_incident_priority(v) ||
                            prios[i] == g.min_incident_priority(nbrs[i]);
      ASSERT_EQ(flags[i] != 0, expected) << "v=" << v << " arc " << i;
    }
  }
}

TEST(CsrGraph, EveryVertexHasExactlyOneMweAndItIsFlagged) {
  const CsrGraph g = CsrGraph::build(make_paper_figure1());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto prios = g.arc_priorities(v);
    const auto flags = g.arc_mwe_flags(v);
    ASSERT_FALSE(prios.empty());
    // Row is priority-sorted: arc 0 is v's MWE and must be flagged.
    EXPECT_EQ(prios[0], g.min_incident_priority(v));
    EXPECT_TRUE(flags[0]);
  }
}

TEST(PackedPriority, RoundTripsAndOrders) {
  const EdgePriority p = make_priority(100, 7);
  EXPECT_EQ(priority_weight(p), 100u);
  EXPECT_EQ(priority_edge(p), 7u);
  // Weight dominates; edge id breaks ties.
  EXPECT_LT(make_priority(5, 999), make_priority(6, 0));
  EXPECT_LT(make_priority(5, 3), make_priority(5, 4));
  EXPECT_LT(make_priority(5, 4), kInfinitePriority);
}

}  // namespace
}  // namespace llpmst
