// LLP-Boruvka specifics: engine configurations, forests, round structure,
// pointer-jumping statistics.
#include <gtest/gtest.h>

#include "graph/algorithms/connected_components.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_boruvka.hpp"
#include "mst/boruvka.hpp"
#include "mst/kruskal.hpp"
#include "mst/verifier.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

class LlpBoruvka : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
  RunContext ctx_{pool_};
};
INSTANTIATE_TEST_SUITE_P(Threads, LlpBoruvka, testing::Values(1, 2, 4, 8));

TEST_P(LlpBoruvka, AllEngineConfigsProduceTheMsf) {
  ErdosRenyiParams p;
  p.num_vertices = 3000;
  p.num_edges = 12000;
  p.seed = 9;
  const CsrGraph g = csr(generate_erdos_renyi(p));
  const MstResult reference = kruskal(g);
  for (const auto jumping :
       {PointerJumping::kAsynchronous, PointerJumping::kSynchronized}) {
    for (const bool dedup : {false, true}) {
      BoruvkaConfig c;
      c.jumping = jumping;
      c.dedup_contracted_edges = dedup;
      const MstResult r = llp_boruvka_configured(g, ctx_, c);
      ASSERT_EQ(r.edges, reference.edges)
          << "async=" << (jumping == PointerJumping::kAsynchronous)
          << " dedup=" << dedup;
    }
  }
}

TEST_P(LlpBoruvka, HandlesForestsAndIsolatedVertices) {
  EdgeList list = make_forest(6, 40, 13);
  list.ensure_vertices(list.num_vertices() + 5);  // extra isolated vertices
  const CsrGraph g = csr(list);
  const MstResult r = llp_boruvka(g, ctx_);
  const MstResult reference = kruskal(g);
  EXPECT_EQ(r.edges, reference.edges);
  EXPECT_EQ(r.num_trees, 6u + 5u);
  const VerifyResult v = verify_msf(g, r);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_P(LlpBoruvka, PathGraphWorstCaseRounds) {
  // A path halves its component count per round: rounds ~ log2(n).
  const CsrGraph g = csr(make_path(1024));
  const MstResult r = llp_boruvka(g, ctx_);
  EXPECT_EQ(r.edges.size(), 1023u);
  EXPECT_LE(r.stats.rounds, 11u);
}

TEST_P(LlpBoruvka, StarGraphOneRound) {
  const CsrGraph g = csr(make_star(512));
  const MstResult r = llp_boruvka(g, ctx_);
  EXPECT_EQ(r.edges.size(), 511u);
  // Every leaf's MWE is its star edge; one round suffices (a second may
  // run to observe emptiness depending on contraction, allow 2).
  EXPECT_LE(r.stats.rounds, 2u);
}

TEST_P(LlpBoruvka, MutualMweSymmetryBreaking) {
  // Two vertices joined by one edge: both pick it; the smaller id must stay
  // root and the edge must appear exactly once.
  EdgeList list(2);
  list.add_edge(0, 1, 7);
  list.normalize();
  const CsrGraph g = csr(list);
  const MstResult r = llp_boruvka(g, ctx_);
  EXPECT_EQ(r.edges, (std::vector<EdgeId>{0}));
  EXPECT_EQ(r.num_trees, 1u);
}

TEST_P(LlpBoruvka, ParallelEdgeBundlesWithoutDedup) {
  // Contracted multigraphs: a 4-cycle with chords contracts into parallel
  // bundle edges; no-dedup must still pick each component's true minimum.
  EdgeList list(6);
  // Two triangles bridged by three parallel-ish paths of different weight.
  list.add_edge(0, 1, 1);
  list.add_edge(1, 2, 2);
  list.add_edge(0, 2, 3);
  list.add_edge(3, 4, 1);
  list.add_edge(4, 5, 2);
  list.add_edge(3, 5, 3);
  list.add_edge(0, 3, 50);
  list.add_edge(1, 4, 40);
  list.add_edge(2, 5, 30);
  list.normalize();
  const CsrGraph g = csr(list);
  const MstResult r = llp_boruvka(g, ctx_);
  EXPECT_EQ(r.edges, kruskal(g).edges);
  EXPECT_EQ(r.total_weight, 1u + 2 + 1 + 2 + 30);
}

TEST_P(LlpBoruvka, PointerJumpStatsPopulatedOnDeepTrees) {
  // A long path creates deep hook trees; pointer jumping must do real work.
  const CsrGraph g = csr(make_path(4096, 0));
  const MstResult r = llp_boruvka(g, ctx_);
  EXPECT_EQ(r.edges.size(), 4095u);
  EXPECT_GT(r.stats.pointer_jumps, 0u);
}

TEST(LlpBoruvkaSequentialEquivalence, MatchesClassicBoruvka) {
  ThreadPool pool(1);
  RunContext ctx(pool);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 500;
    p.num_edges = 1500;
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    EXPECT_EQ(llp_boruvka(g, ctx).edges, boruvka(g).edges)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace llpmst
