#include "obs/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/bandwidth.hpp"
#include "obs/critical_path.hpp"
#include "obs/mem_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/round_stats.hpp"

namespace llpmst::obs {

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

void append_kv_ms(std::string& out, const char* key, double ms,
                  bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f%s", key, ms, comma ? "," : "");
  out += buf;
}

/// Emits a counter field that may be kHwAbsent (JSON null).
void append_hw_u64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  if (v == kHwAbsent) {
    out += "\"";
    out += key;
    out += "\":null";
    if (comma) out.push_back(',');
  } else {
    append_kv_u64(out, key, v, comma);
  }
}

/// The five counters + task-clock of one sample (no braces, no trailing
/// comma) — shared by the run-level hw section and its phase entries.
void append_hw_fields(std::string& out, const HwSample& s) {
  append_hw_u64(out, "cycles", s.cycles);
  append_hw_u64(out, "instructions", s.instructions);
  append_hw_u64(out, "cache_references", s.cache_references);
  append_hw_u64(out, "cache_misses", s.cache_misses);
  append_hw_u64(out, "branch_misses", s.branch_misses);
  if (s.task_clock_ms < 0) {
    out += "\"task_clock_ms\":null";
  } else {
    append_kv_ms(out, "task_clock_ms", s.task_clock_ms, false);
  }
}

}  // namespace

std::string build_run_report(const RunInfo& info, const MstAlgoStats* algo,
                             const HwSample* hw, const ProfSnapshot* profile) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"llpmst-run-report\",\"schema_version\":4,";

  // --- run metadata
  out += "\"run\":{\"tool\":";
  out += json_quote(info.tool);
  out += ",\"algorithm\":";
  out += json_quote(info.algorithm);
  out += ",";
  append_kv_u64(out, "threads", info.threads);
  out += "\"graph\":{";
  append_kv_u64(out, "vertices", info.vertices);
  append_kv_u64(out, "edges", info.edges, false);
  out += "},";
  append_kv_ms(out, "wall_ms", info.wall_ms);
  out += "\"outcome\":";
  out += json_quote(info.outcome);
  out += ",\"fallback_reason\":";
  out += json_quote(info.fallback_reason);
  out += "},";

  // --- per-algorithm stats
  if (algo != nullptr) {
    out += "\"algo\":{";
    append_kv_u64(out, "fixed_via_heap", algo->fixed_via_heap);
    append_kv_u64(out, "fixed_via_mwe", algo->fixed_via_mwe);
    append_kv_u64(out, "staged_in_q", algo->staged_in_q);
    append_kv_u64(out, "edges_relaxed", algo->edges_relaxed);
    append_kv_u64(out, "rounds", algo->rounds);
    append_kv_u64(out, "pointer_jumps", algo->pointer_jumps);
    out += "\"heap\":{";
    append_kv_u64(out, "pushes", algo->heap.pushes);
    append_kv_u64(out, "pops", algo->heap.pops);
    append_kv_u64(out, "adjusts", algo->heap.adjusts);
    append_kv_u64(out, "sift_steps", algo->heap.sift_steps, false);
    out += "},\"llp\":{";
    append_kv_u64(out, "sweeps", algo->llp_sweeps);
    append_kv_u64(out, "advances", algo->llp_advances);
    out += "\"converged\":";
    out += algo->llp_converged ? "true" : "false";
    out += ",\"outcome\":";
    out += json_quote(run_outcome_name(algo->outcome));
    out += "}},";
  } else {
    out += "\"algo\":null,";
  }

  // --- hardware counters (schema v2)
  if (hw == nullptr) {
    out += "\"hw\":null,";
  } else if (!hw->available) {
    out += "\"hw\":{\"available\":false,\"reason\":";
    out += json_quote(hw->unavailable_reason);
    out += "},";
  } else {
    out += "\"hw\":{\"available\":true,";
    append_hw_fields(out, *hw);
    out += ",";
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"multiplex_ratio\":%.4f,",
                  hw->multiplex_ratio);
    out += buf;
    out += "\"phases\":[";
    bool first_hw = true;
    for (const HwPhaseSample& p : snapshot_hw_phases()) {
      if (!first_hw) out.push_back(',');
      first_hw = false;
      out += "{\"name\":";
      out += json_quote(p.name);
      out += ",";
      append_kv_u64(out, "count", p.count);
      append_hw_fields(out, p.totals);
      out += "}";
    }
    out += "]},";
  }

  // --- memory (schema v2; peak RSS works in every flavour)
  {
    const MemSample mem = mem_sample();
    out += "\"mem\":{";
    append_kv_u64(out, "peak_rss_bytes", mem.peak_rss_bytes);
    if (mem.alloc_tracking) {
      out += "\"alloc\":{";
      append_kv_u64(out, "count", mem.alloc_count);
      append_kv_u64(out, "bytes", mem.alloc_bytes);
      append_kv_u64(out, "frees", mem.free_count, false);
      out += "}},";
    } else {
      out += "\"alloc\":null},";
    }
  }

  // --- registry metrics
  const std::vector<MetricSample> metrics = snapshot_metrics();
  out += "\"counters\":{";
  bool first = true;
  for (const MetricSample& m : metrics) {
    if (m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSample& m : metrics) {
    if (!m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},";

  // --- phase aggregates
  out += "\"phases\":[";
  first = true;
  for (const PhaseSample& p : snapshot_phases()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    out += json_quote(p.name);
    out += ",";
    append_kv_u64(out, "count", p.count);
    append_kv_ms(out, "total_ms", static_cast<double>(p.total_us) / 1000.0,
                 false);
    out += "}";
  }
  out += "],";

  // --- per-round solver telemetry (schema v3; [] when nothing recorded)
  out += "\"rounds\":[";
  first = true;
  for (const RoundRecord& rr : snapshot_rounds()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"label\":";
    out += json_quote(rr.label);
    out += ",";
    append_kv_u64(out, "round", rr.round);
    append_kv_u64(out, "components", rr.components);
    append_kv_u64(out, "edges", rr.edges);
    append_kv_u64(out, "advances", rr.advances);
    append_kv_ms(out, "wall_ms", rr.wall_ms);
    char ibuf[48];
    std::snprintf(ibuf, sizeof(ibuf), "\"imbalance\":%.4f}", rr.imbalance);
    out += ibuf;
  }
  out += "],";

  // --- scheduler summary (schema v3; null when no events were collected)
  {
    const SchedulerSummary sched = scheduler_summary();
    if (!sched.has_events) {
      out += "\"scheduler\":null,";
    } else {
      char buf[96];
      out += "\"scheduler\":{";
      std::snprintf(buf, sizeof(buf), "\"utilization\":%.4f,",
                    sched.utilization);
      out += buf;
      std::snprintf(buf, sizeof(buf), "\"steal_success_rate\":%.4f,",
                    sched.steal_success_rate);
      out += buf;
      append_kv_u64(out, "span_us", sched.span_us);
      append_kv_u64(out, "busy_us", sched.busy_us);
      append_kv_u64(out, "idle_us", sched.idle_us);
      append_kv_u64(out, "steal_attempts", sched.steal_attempts);
      append_kv_u64(out, "steal_successes", sched.steal_successes);
      append_kv_u64(out, "critical_path_us", sched.critical_path_us);
      append_kv_u64(out, "dropped_events", sched.dropped_events);
      out += "\"workers\":[";
      bool first_w = true;
      for (const WorkerBreakdown& w : sched.workers) {
        if (!first_w) out.push_back(',');
        first_w = false;
        out += "{";
        append_kv_u64(out, "worker", w.worker);
        append_kv_u64(out, "busy_us", w.busy_us);
        append_kv_u64(out, "idle_us", w.idle_us);
        append_kv_u64(out, "tasks", w.tasks);
        append_kv_u64(out, "steal_attempts", w.steal_attempts);
        append_kv_u64(out, "steal_successes", w.steal_successes, false);
        out += "}";
      }
      out += "],\"grain_hist\":[";
      bool first_g = true;
      for (const auto& [bucket, count] : sched.grain_hist) {
        if (!first_g) out.push_back(',');
        first_g = false;
        out += "{";
        append_kv_u64(out, "grain", bucket);
        append_kv_u64(out, "count", count, false);
        out += "}";
      }
      out += "]},";
    }
  }

  // --- profiler samples (schema v4; null when not requested)
  if (profile == nullptr) {
    out += "\"profile\":null,";
  } else if (!profile->available) {
    out += "\"profile\":{\"available\":false,\"reason\":";
    out += json_quote(profile->unavailable_reason);
    out += "},";
  } else {
    out += "\"profile\":{\"available\":true,";
    append_kv_u64(out, "hz", profile->hz);
    append_kv_u64(out, "samples", profile->samples);
    append_kv_u64(out, "dropped", profile->dropped);
    out += "\"phases\":[";
    bool first_p = true;
    for (const ProfPhaseCount& p : profile->phases) {
      if (!first_p) out.push_back(',');
      first_p = false;
      out += "{\"name\":";
      out += json_quote(p.name);
      out += ",";
      append_kv_u64(out, "samples", p.samples, false);
      out += "}";
    }
    // Top stacks only: the full fold goes to the --profile-out file; the
    // report carries enough for drift triage without ballooning.
    out += "],\"top_stacks\":[";
    first_p = true;
    std::size_t emitted = 0;
    for (const ProfStack& st : profile->stacks) {
      if (emitted++ == 20) break;
      if (!first_p) out.push_back(',');
      first_p = false;
      out += "{\"stack\":";
      out += json_quote(st.stack);
      out += ",";
      append_kv_u64(out, "samples", st.samples, false);
      out += "}";
    }
    out += "]},";
  }

  // --- estimated DRAM bandwidth per phase (schema v4; derived from hw)
  if (hw == nullptr) {
    out += "\"bandwidth\":null,";
  } else {
    const BandwidthSnapshot bw = bandwidth_snapshot(hw);
    if (!bw.available) {
      out += "\"bandwidth\":{\"available\":false,\"reason\":";
      out += json_quote(bw.unavailable_reason);
      out += "},";
    } else {
      out += "\"bandwidth\":{\"available\":true,";
      append_kv_u64(out, "line_bytes", bw.line_bytes);
      out += "\"phases\":[";
      bool first_b = true;
      for (const PhaseBandwidth& p : bw.phases) {
        if (!first_b) out.push_back(',');
        first_b = false;
        out += "{\"name\":";
        out += json_quote(p.name);
        out += ",";
        append_kv_u64(out, "cache_misses", p.cache_misses);
        append_kv_u64(out, "est_bytes", p.est_bytes);
        append_kv_ms(out, "wall_ms", p.wall_ms);
        char bbuf[96];
        std::snprintf(bbuf, sizeof(bbuf),
                      "\"est_gbps\":%.4f,\"instr_per_byte\":%.4f,",
                      p.est_gbps, p.instr_per_byte);
        out += bbuf;
        out += "\"verdict\":";
        out += json_quote(bound_verdict_name(p.verdict));
        out += "}";
      }
      out += "]},";
    }
  }

  // --- warnings
  out += "\"warnings\":[";
  first = true;
  for (const std::string& w : snapshot_warnings()) {
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(w);
  }
  out += "]}";
  return out;
}

bool write_run_report(const std::string& path, const std::string& json,
                      std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace llpmst::obs
