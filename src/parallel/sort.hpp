// Parallel merge sort over an Executor.
//
// Blocks are std::sort-ed in parallel, then merged in log(blocks) rounds of
// pairwise parallel merges (double-buffered).  The result is identical to a
// sequential std::stable-ordering for unique keys and deterministic for any
// comparator, independent of thread count — which matters because Kruskal's
// edge order must not depend on parallelism.
//
// Work O(n log n), depth O((n/t) log n + log t).  The comparator must be a
// strict weak ordering.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "parallel/executor.hpp"

namespace llpmst {

template <typename T, typename Compare = std::less<T>>
void parallel_sort(Executor& pool, std::vector<T>& data,
                   Compare comp = Compare{}) {
  const std::size_t n = data.size();
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 4096) {
    std::sort(data.begin(), data.end(), comp);
    return;
  }

  // Block boundaries: t equal blocks.
  std::vector<std::size_t> bounds(t + 1);
  for (std::size_t b = 0; b <= t; ++b) bounds[b] = n * b / t;

  pool.run_team([&](std::size_t w) {
    std::sort(data.begin() + static_cast<std::ptrdiff_t>(bounds[w]),
              data.begin() + static_cast<std::ptrdiff_t>(bounds[w + 1]),
              comp);
  });

  // Pairwise merge rounds, double-buffered.  Run lengths double each round;
  // every worker merges (at most) one pair.
  std::vector<T> buffer(n);
  std::vector<T>* src = &data;
  std::vector<T>* dst = &buffer;
  for (std::size_t width = 1; width < t; width *= 2) {
    const std::size_t pairs = (t + 2 * width - 1) / (2 * width);
    pool.run_team([&](std::size_t w) {
      // Worker w handles pair w if it exists (cheap static assignment: the
      // number of pairs never exceeds the team size).
      if (w >= pairs) return;
      const std::size_t lo_block = w * 2 * width;
      const std::size_t mid_block = std::min(lo_block + width, t);
      const std::size_t hi_block = std::min(lo_block + 2 * width, t);
      const auto lo = static_cast<std::ptrdiff_t>(bounds[lo_block]);
      const auto mid = static_cast<std::ptrdiff_t>(bounds[mid_block]);
      const auto hi = static_cast<std::ptrdiff_t>(bounds[hi_block]);
      std::merge(src->begin() + lo, src->begin() + mid, src->begin() + mid,
                 src->begin() + hi, dst->begin() + lo, comp);
    });
    std::swap(src, dst);
  }
  if (src != &data) data.swap(*src);
}

}  // namespace llpmst
