#include "llp/llp_boruvka.hpp"

namespace llpmst {

MstResult llp_boruvka(const CsrGraph& g, ThreadPool& pool,
                      const CancelToken* cancel) {
  BoruvkaConfig config;
  config.jumping = PointerJumping::kAsynchronous;
  config.dedup_contracted_edges = false;
  config.obs_label = "llp_boruvka";
  config.cancel = cancel;
  return boruvka_engine(g, pool, config);
}

MstResult llp_boruvka_configured(const CsrGraph& g, ThreadPool& pool,
                                 const BoruvkaConfig& config) {
  return boruvka_engine(g, pool, config);
}

}  // namespace llpmst
