#include "bench_util/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace llpmst {

BenchMeasurement measure_mst(const std::string& name, const CsrGraph& g,
                             const MstResult& reference,
                             const std::function<MstResult()>& run,
                             const BenchOptions& options) {
  (void)g;
  BenchMeasurement m;
  m.name = name;

  for (int i = 0; i < options.warmup; ++i) {
    MstResult r = run();
    if (options.verify && i == 0) {
      if (r.edges != reference.edges ||
          r.total_weight != reference.total_weight) {
        std::fprintf(stderr,
                     "FATAL: %s produced a different MSF than the reference "
                     "(weight %llu vs %llu, %zu vs %zu edges)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.total_weight),
                     static_cast<unsigned long long>(reference.total_weight),
                     r.edges.size(), reference.edges.size());
        std::abort();
      }
      m.verified = true;
    }
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int i = 0; i < options.repetitions; ++i) {
    Timer t;
    m.last_result = run();
    samples.push_back(t.elapsed_ms());
  }
  m.time_ms = summarize(samples);
  return m;
}

ObsCli::ObsCli(CliParser& cli)
    : metrics_json_(&cli.add_string(
          "metrics-json", "",
          "write the JSON run report (counters, phases) to this file")),
      trace_(&cli.add_string(
          "trace", "",
          "collect and write a Chrome trace-event JSON to this file")) {}

void ObsCli::begin() const {
  if (!metrics_json_->empty() || !trace_->empty()) obs::set_enabled(true);
  if (!trace_->empty()) {
    ThreadPool::set_trace_regions(true);
    obs::trace_start();
  }
}

bool ObsCli::finish(const std::string& tool, std::size_t threads) const {
  if (!trace_->empty()) obs::trace_stop();
  bool ok = true;
  if (!metrics_json_->empty()) {
    obs::RunInfo info;
    info.tool = tool;
    info.threads = threads;
    std::string err;
    if (obs::write_run_report(*metrics_json_,
                              obs::build_run_report(info, nullptr), &err)) {
      std::printf("metrics: %s\n", metrics_json_->c_str());
    } else {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_json_->c_str(),
                   err.c_str());
      ok = false;
    }
  }
  if (!trace_->empty()) {
    std::string err;
    if (obs::write_trace_json(*trace_, &err)) {
      std::printf("trace: %s (%zu events)\n", trace_->c_str(),
                  obs::trace_event_count());
    } else {
      std::fprintf(stderr, "error writing %s: %s\n", trace_->c_str(),
                   err.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace llpmst
