// LLP market clearing prices (Demange–Gale–Sotomayor ascending auction) —
// the fourth framework-transfer problem; the paper's related work lists the
// "Gale-Demange-Sotomayor algorithm for the market clearing prices" among
// the algorithms derivable from the LLP schema.
//
// Setting: n buyers, n items, integer valuations value[b][i].  A price
// vector p is *market clearing* if the demand graph (buyer b — item i when
// i maximizes value[b][i] - p[i]) has a perfect matching.  Clearing vectors
// form a lattice; the combinatorial problem is its minimum element.
//
// LLP reading: the lattice is price vectors ordered component-wise; an item
// j is FORBIDDEN when it belongs to the neighborhood N(S) of a constricted
// buyer set S (|N(S)| < |S| — Hall violation), because no clearing vector
// >= p keeps p[j] unchanged; ADVANCE raises p[j] by one.  As in the MST
// algorithms, forbidden() is evaluated for all indices per round (here via
// one maximum-matching computation) and all forbidden indices advance in
// parallel.
#pragma once

#include <cstdint>
#include <vector>

#include "parallel/executor.hpp"

namespace llpmst {

struct MarketInstance {
  std::size_t n = 0;
  /// value[buyer][item], non-negative integers.
  std::vector<std::vector<std::uint32_t>> value;
};

/// Builds a random instance with valuations in [0, max_value].
[[nodiscard]] MarketInstance random_market_instance(std::size_t n,
                                                    std::uint32_t max_value,
                                                    std::uint64_t seed);

struct MarketResult {
  /// The minimum market-clearing price vector.
  std::vector<std::uint32_t> price;
  /// assignment[b] = item sold to buyer b under a clearing matching.
  std::vector<std::uint32_t> assignment;
  std::uint64_t rounds = 0;    // forbidden/advance rounds
  std::uint64_t advances = 0;  // total unit price raises
};

[[nodiscard]] MarketResult llp_market_clearing(const MarketInstance& inst,
                                               Executor& pool);

/// True iff `price` admits a perfect matching in its demand graph.
[[nodiscard]] bool is_clearing(const MarketInstance& inst,
                               const std::vector<std::uint32_t>& price);

}  // namespace llpmst
