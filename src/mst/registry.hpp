// The MST/MSF algorithm registry: one canonical table of every algorithm in
// the repo, each entry carrying the canonical (kebab-case) name, a display
// label, capability flags, and the uniform `MstResult run(g, ctx)` entry
// point.  Everything that used to hand-maintain an algorithm list —
// mst_tool's dispatch chain and --algo help text, mst::auto's selection,
// the benches' record keys, the cross-check tests — iterates this table
// instead, so adding algorithm #11 is: write the file (entry point +
// descriptor), then add one line to the aggregation in registry.cpp.
//
// Descriptor functions (not static-initializer self-registration) are
// deliberate: llpmst is a static library, and a linker is free to drop a
// translation unit whose only referenced symbol is a self-registering
// global.  Each algorithm's .cpp defines `<name>_algorithm()` next to its
// implementation — the metadata lives with the code — and registry.cpp
// references them all, which pins every entry into any linked binary.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mst/mst_result.hpp"

namespace llpmst {

class RunContext;

/// What a registered algorithm can do; consumers filter on these instead of
/// knowing names.  (mst::auto picks msf_capable entries for disconnected
/// inputs; the conformance test skips forest inputs for tree-only entries;
/// --list-algos prints them.)
struct AlgoCaps {
  /// Uses the RunContext's thread pool (sequential entries ignore it).
  bool parallel = false;
  /// Handles disconnected inputs (and the empty graph), producing the
  /// minimum spanning FOREST.  Tree-only entries require a connected,
  /// non-empty graph and assert otherwise (the Prim family).
  bool msf_capable = false;
  /// Produces the unique priority-ordered MSF bit-identically on every run
  /// and thread count.  (Every current entry does; the flag exists so a
  /// future heuristic/approximate entry is skipped by exact cross-checks.)
  bool deterministic = true;
  /// Polls RunContext::cancel_token() and stops cooperatively (partial
  /// result, stats.outcome != kOk).  Non-cancellable entries run to
  /// completion regardless of the token.
  bool cancellable = false;
};

/// One registry entry.  `name` is the canonical id used by `mst_tool
/// --algo`, bench record keys, and reports; `label` is the human/table
/// display form; all strings are static literals (borrowed, not owned).
struct MstAlgorithm {
  const char* name;
  const char* label;
  const char* summary;
  AlgoCaps caps;
  MstResult (*run)(const CsrGraph& g, RunContext& ctx);
};

/// All registered algorithms, in presentation order (sequential classics,
/// then parallel baselines, then the LLP family).  Stable for the process
/// lifetime; entries' addresses may be cached.
[[nodiscard]] const std::vector<MstAlgorithm>& mst_algorithms();

/// Lookup by canonical name; nullptr when unknown.
[[nodiscard]] const MstAlgorithm* find_mst_algorithm(std::string_view name);

/// Lookup that LLPMST_CHECKs the name exists — for internal call sites
/// (mst::auto, benches) where a miss is a programming error, not input.
[[nodiscard]] const MstAlgorithm& mst_algorithm(std::string_view name);

/// "kruskal | kruskal-parallel | ..." — the --algo help text, generated so
/// it cannot drift from the registry.
[[nodiscard]] std::string mst_algorithm_names(const char* separator = " | ");

/// Compact flag rendering for --list-algos / docs checks: one token per
/// capability — "par|seq", "msf|tree", "det|rnd", "can|-" — joined by
/// single spaces.  Example: "seq msf det -" for Kruskal.
[[nodiscard]] std::string describe_caps(const AlgoCaps& caps);

}  // namespace llpmst
