#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parallel/sort.hpp"
#include "parallel/thread_pool.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

class ParallelSort : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, ParallelSort, testing::Values(1, 2, 3, 4, 8));

TEST_P(ParallelSort, MatchesStdSortOnRandomData) {
  Xoshiro256 rng(11);
  for (const std::size_t n : {0ul, 1ul, 100ul, 4096ul, 100000ul, 131071ul}) {
    std::vector<std::uint64_t> data(n);
    for (auto& v : data) v = rng.next();
    std::vector<std::uint64_t> expected = data;
    std::sort(expected.begin(), expected.end());
    parallel_sort(pool_, data);
    ASSERT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(ParallelSort, CustomComparatorDescending) {
  Xoshiro256 rng(3);
  std::vector<std::uint32_t> data(50000);
  for (auto& v : data) v = static_cast<std::uint32_t>(rng.next());
  parallel_sort(pool_, data, std::greater<std::uint32_t>{});
  EXPECT_TRUE(
      std::is_sorted(data.begin(), data.end(), std::greater<std::uint32_t>{}));
}

TEST_P(ParallelSort, AlreadySortedAndReversed) {
  std::vector<std::uint32_t> asc(50000), desc(50000);
  for (std::size_t i = 0; i < asc.size(); ++i) {
    asc[i] = static_cast<std::uint32_t>(i);
    desc[i] = static_cast<std::uint32_t>(asc.size() - i);
  }
  parallel_sort(pool_, asc);
  parallel_sort(pool_, desc);
  EXPECT_TRUE(std::is_sorted(asc.begin(), asc.end()));
  EXPECT_TRUE(std::is_sorted(desc.begin(), desc.end()));
}

TEST(ParallelSortDeterminism, IdenticalAcrossThreadCounts) {
  Xoshiro256 rng(21);
  std::vector<std::uint64_t> base(60000);
  for (auto& v : base) v = rng.next();
  std::vector<std::uint64_t> reference = base;
  {
    ThreadPool p1(1);
    parallel_sort(p1, reference);
  }
  for (const int t : {2, 3, 5, 8}) {
    ThreadPool pool(static_cast<std::size_t>(t));
    std::vector<std::uint64_t> data = base;
    parallel_sort(pool, data);
    ASSERT_EQ(data, reference) << "threads " << t;
  }
}

TEST_P(ParallelSort, ManyDuplicates) {
  Xoshiro256 rng(9);
  std::vector<std::uint8_t> data(80000);
  for (auto& v : data) v = static_cast<std::uint8_t>(rng.next_below(4));
  std::vector<std::uint8_t> expected = data;
  std::sort(expected.begin(), expected.end());
  parallel_sort(pool_, data);
  EXPECT_EQ(data, expected);
}

TEST_P(ParallelSort, StructsWithComparator) {
  struct Item {
    std::uint32_t key;
    std::uint32_t payload;
    bool operator==(const Item&) const = default;
  };
  Xoshiro256 rng(5);
  std::vector<Item> data(30000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = {static_cast<std::uint32_t>(rng.next_below(1u << 20)),
               static_cast<std::uint32_t>(i)};
  }
  const auto by_key_then_payload = [](const Item& a, const Item& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  std::vector<Item> expected = data;
  std::sort(expected.begin(), expected.end(), by_key_then_payload);
  parallel_sort(pool_, data, by_key_then_payload);
  EXPECT_EQ(data, expected);
}

}  // namespace
}  // namespace llpmst
