#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/failpoint.hpp"

namespace llpmst {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.run_team([&](std::size_t id) {
    EXPECT_EQ(id, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, AllWorkerIdsParticipate) {
  constexpr std::size_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::vector<std::atomic<int>> hits(kThreads);
  for (auto& h : hits) h.store(0);
  pool.run_team([&](std::size_t id) {
    ASSERT_LT(id, kThreads);
    hits[id].fetch_add(1);
  });
  for (std::size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "worker " << i;
  }
}

TEST(ThreadPool, ManyConsecutiveRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_team([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, RegionsSeeEachOthersWrites) {
  // The join of region k must happen-before region k+1: worker 0 writes,
  // all workers read in the next region.
  ThreadPool pool(4);
  int shared = 0;
  std::atomic<int> mismatches{0};
  for (int round = 1; round <= 50; ++round) {
    pool.run_team([&](std::size_t id) {
      if (id == 0) shared = round;
    });
    pool.run_team([&](std::size_t) {
      if (shared != round) mismatches.fetch_add(1);
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPool, CallerIsWorkerZero) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen{};
  pool.run_team([&](std::size_t id) {
    if (id == 0) seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, DestructionWithNoRegionsIsClean) {
  // Pools that never ran anything must still shut their workers down.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
  }
  SUCCEED();
}

TEST(ThreadPool, WorkerExceptionPropagatesToSubmitter) {
  // An exception escaping a *worker* task must surface on the submitting
  // thread, not std::terminate the process.
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.run_team([&](std::size_t id) {
        if (id == 2) throw std::runtime_error("boom from worker 2");
      }),
      std::runtime_error);
}

TEST(ThreadPool, CallerExceptionStillJoinsTheTeam) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run_team([&](std::size_t id) {
        if (id == 0) throw std::runtime_error("boom from caller");
        completed.fetch_add(1);
      }),
      std::runtime_error);
  // run_team only returns (even by throwing) after the join, so every other
  // worker finished its share.
  EXPECT_EQ(completed.load(), 3);
}

TEST(ThreadPool, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        pool.run_team([&](std::size_t id) {
          if (id == 1) throw std::runtime_error("transient");
        }),
        std::runtime_error);
    std::atomic<int> ok{0};
    pool.run_team([&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 3);
  }
}

TEST(ThreadPool, SingleThreadPoolPropagatesInline) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.run_team([](std::size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

TEST(ThreadPool, ParallelForBodyExceptionReachesCaller) {
  ThreadPool pool(4);
  const std::size_t n = 100000;  // big enough to actually dispatch a team
  EXPECT_THROW(parallel_for(pool, 0, n,
                            [&](std::size_t i) {
                              if (i == n / 2) {
                                throw std::runtime_error("body");
                              }
                            }),
               std::runtime_error);
}

TEST(ThreadPool, InjectedPoolFaultSurfacesAsFailpointError) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(fail::arm("pool/task", "1*return"));
  ThreadPool pool(4);
  try {
    pool.run_team([](std::size_t) {});
    FAIL() << "injected fault did not surface";
  } catch (const fail::FailpointError& e) {
    EXPECT_NE(std::string(e.what()).find("pool/task"), std::string::npos);
  }
  fail::disarm_all();
  // The budget was 1: the next region runs clean.
  std::atomic<int> ok{0};
  pool.run_team([&](std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
}  // namespace llpmst
