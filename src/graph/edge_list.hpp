// EdgeList: the ingestion format for generators and file readers, and the
// working representation for Boruvka's contracted graphs.
//
// Stores undirected edges (u, v, w) once each.  Helpers normalize raw input
// (drop self-loops, canonicalize endpoint order, deduplicate parallel edges
// keeping the lightest) before a CSR graph is built.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace llpmst {

class EdgeList {
 public:
  EdgeList() = default;
  /// Creates an edge list over vertices [0, num_vertices).
  explicit EdgeList(std::size_t num_vertices) : num_vertices_(num_vertices) {}
  EdgeList(std::size_t num_vertices, std::vector<WeightedEdge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  [[nodiscard]] std::size_t num_vertices() const { return num_vertices_; }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] bool empty() const { return edges_.empty(); }

  [[nodiscard]] const std::vector<WeightedEdge>& edges() const {
    return edges_;
  }
  [[nodiscard]] std::vector<WeightedEdge>& edges() { return edges_; }

  [[nodiscard]] const WeightedEdge& operator[](std::size_t i) const {
    return edges_[i];
  }

  /// Appends an edge.  Endpoints must be < num_vertices().
  void add_edge(VertexId u, VertexId v, Weight w);

  /// Grows the vertex space to at least n.
  void ensure_vertices(std::size_t n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  void reserve(std::size_t m) { edges_.reserve(m); }

  /// Removes self-loops, orders endpoints as u < v, and deduplicates
  /// parallel edges keeping the minimum weight (ties by first occurrence).
  /// This is the canonical preprocessing before CSR construction.
  void normalize();

  /// True iff edges are normalized: no self loops, u < v, strictly
  /// ascending (u, v) pairs (hence no duplicates).
  [[nodiscard]] bool is_normalized() const;

 private:
  std::size_t num_vertices_ = 0;
  std::vector<WeightedEdge> edges_;
};

}  // namespace llpmst
