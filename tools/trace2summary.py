#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON produced by --trace.

Aggregates the complete ("ph":"X") spans by name and prints per-phase
totals, counts, and percentages of the traced wall span:

    tools/trace2summary.py trace.json
    tools/trace2summary.py --top 10 trace.json

Works on any trace-event file (the format is a de-facto standard), but the
phase names it prints are the nested paths emitted by the llpmst
observability layer ("llp_boruvka/round/hook", "pool/region", ...).
"""
import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    # Both container shapes of the spec: {"traceEvents": [...]} or a bare
    # JSON array.
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError("no traceEvents array found")
    return events


def summarize(events):
    """Returns (per-name stats, wall span in us, counter-track names)."""
    spans = defaultdict(lambda: {"count": 0, "total_us": 0, "max_us": 0})
    counters = set()
    t_min, t_max = None, None
    for e in events:
        ph = e.get("ph")
        if ph == "C":
            counters.add(e.get("name", "?"))
            continue
        if ph != "X":
            continue
        name = e.get("name", "?")
        ts = e.get("ts", 0)
        dur = e.get("dur", 0)
        s = spans[name]
        s["count"] += 1
        s["total_us"] += dur
        s["max_us"] = max(s["max_us"], dur)
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts + dur if t_max is None else max(t_max, ts + dur)
    wall_us = (t_max - t_min) if t_min is not None else 0
    return spans, wall_us, counters


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace-event JSON file (from --trace)")
    ap.add_argument("--top", type=int, default=0,
                    help="only print the N phases with the largest totals")
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error reading {args.trace}: {e}", file=sys.stderr)
        return 1

    spans, wall_us, counters = summarize(events)
    if not spans:
        print("no complete ('ph':'X') spans in the trace")
        return 0

    # Sort by total time, largest first.  Percentages are of the traced
    # wall span; nested phases overlap their parents, so columns do not
    # sum to 100%.
    rows = sorted(spans.items(), key=lambda kv: -kv[1]["total_us"])
    if args.top > 0:
        rows = rows[: args.top]

    name_w = max(len("phase"), max(len(n) for n, _ in rows))
    print(f"{'phase':<{name_w}}  {'count':>8}  {'total ms':>10}  "
          f"{'mean us':>9}  {'max us':>8}  {'% wall':>6}")
    for name, s in rows:
        pct = 100.0 * s["total_us"] / wall_us if wall_us else 0.0
        mean = s["total_us"] / s["count"]
        print(f"{name:<{name_w}}  {s['count']:>8}  "
              f"{s['total_us'] / 1000.0:>10.3f}  {mean:>9.1f}  "
              f"{s['max_us']:>8}  {pct:>5.1f}%")
    print(f"\ntraced wall span: {wall_us / 1000.0:.3f} ms, "
          f"{sum(s['count'] for s in spans.values())} spans, "
          f"{len(spans)} distinct phases"
          + (f", counter tracks: {', '.join(sorted(counters))}"
             if counters else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
