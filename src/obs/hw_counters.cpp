#include "obs/hw_counters.hpp"

#if LLPMST_OBS

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>

#if defined(__linux__)
#define LLPMST_HW_PERF 1
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#else
#define LLPMST_HW_PERF 0
#endif

namespace llpmst::obs {

namespace {

// Event table.  Index order matches detail::HwRaw::v and the HwSample
// fields.  The five hardware events form one group (leader = cycles) so
// the kernel co-schedules them and miss *rates* stay consistent;
// task-clock is software and opened ungrouped (always schedulable).
enum EventIndex {
  kCycles = 0,
  kInstructions,
  kCacheReferences,
  kCacheMisses,
  kBranchMisses,
  kTaskClock,
  kNumEvents,
};

struct HwState {
  std::mutex mu;
  bool active = false;
  bool forced_unavailable = false;
  std::string begin_error;   // reason of the last failed hw_begin
  int fds[kNumEvents] = {-1, -1, -1, -1, -1, -1};

  std::mutex phase_mu;
  struct PhaseAgg {
    std::uint64_t count = 0;
    std::uint64_t v[kNumEvents] = {0, 0, 0, 0, 0, 0};
    std::uint32_t mask = 0;
  };
  std::map<std::string, PhaseAgg> phases;
};

HwState& state() {
  static HwState* s = new HwState;  // leaked: outlives all threads
  return *s;
}

#if LLPMST_HW_PERF

long perf_open(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.size = sizeof attr;
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  // Count this process and every thread it spawns after the open (the
  // ThreadPool workers).  inherit forbids PERF_FORMAT_GROUP reads, so
  // each fd is read individually below.
  attr.inherit = 1;
  attr.exclude_kernel = 1;  // user-space only: works at perf_event_paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
}

std::string describe_open_error(int err) {
  std::string why = "perf_event_open(cycles): ";
  why += std::strerror(err);
  if (err == EACCES || err == EPERM) {
    why += " (perf_event_paranoid too high or seccomp-filtered?)";
  } else if (err == ENOENT || err == EOPNOTSUPP || err == ENODEV) {
    why += " (no PMU exposed on this machine/VM)";
  }
  return why;
}

#endif  // LLPMST_HW_PERF

void close_all_locked(HwState& s) {
#if LLPMST_HW_PERF
  for (int& fd : s.fds) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
#else
  (void)s;
#endif
}

}  // namespace

bool hw_begin(std::string* why) {
  HwState& s = state();
  std::lock_guard lock(s.mu);
  if (s.active) return true;

  const char* env = std::getenv("LLPMST_HW_DISABLE");
  if (s.forced_unavailable || (env != nullptr && env[0] == '1')) {
    s.begin_error = "hardware counters disabled (LLPMST_HW_DISABLE)";
    if (why != nullptr) *why = s.begin_error;
    return false;
  }

#if LLPMST_HW_PERF
  static constexpr struct {
    std::uint32_t type;
    std::uint64_t config;
  } kEvents[kNumEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
  };

  // The cycles leader is mandatory: if it cannot open, the PMU is absent
  // or forbidden and the whole section degrades to "unavailable".
  const long leader = perf_open(kEvents[kCycles].type,
                                kEvents[kCycles].config, -1);
  if (leader < 0) {
    s.begin_error = describe_open_error(errno);
    if (why != nullptr) *why = s.begin_error;
    return false;
  }
  s.fds[kCycles] = static_cast<int>(leader);

  // Siblings are best-effort: a PMU without (say) branch-miss support
  // yields a null field, not a failed run.
  for (int i = kInstructions; i <= kBranchMisses; ++i) {
    const long fd = perf_open(kEvents[i].type, kEvents[i].config,
                              static_cast<int>(leader));
    s.fds[i] = fd < 0 ? -1 : static_cast<int>(fd);
  }
  const long tc = perf_open(kEvents[kTaskClock].type,
                            kEvents[kTaskClock].config, -1);
  s.fds[kTaskClock] = tc < 0 ? -1 : static_cast<int>(tc);

  ioctl(s.fds[kCycles], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(s.fds[kCycles], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  if (s.fds[kTaskClock] >= 0) {
    ioctl(s.fds[kTaskClock], PERF_EVENT_IOC_RESET, 0);
    ioctl(s.fds[kTaskClock], PERF_EVENT_IOC_ENABLE, 0);
  }
  s.active = true;
  s.begin_error.clear();
  return true;
#else
  s.begin_error = "perf_event_open is Linux-only";
  if (why != nullptr) *why = s.begin_error;
  return false;
#endif
}

void hw_end() {
  HwState& s = state();
  std::lock_guard lock(s.mu);
  if (!s.active) return;
#if LLPMST_HW_PERF
  ioctl(s.fds[kCycles], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  if (s.fds[kTaskClock] >= 0) {
    ioctl(s.fds[kTaskClock], PERF_EVENT_IOC_DISABLE, 0);
  }
#endif
  close_all_locked(s);
  s.active = false;
}

bool hw_active() {
  HwState& s = state();
  std::lock_guard lock(s.mu);
  return s.active;
}

void hw_force_unavailable(bool forced) {
  HwState& s = state();
  std::lock_guard lock(s.mu);
  s.forced_unavailable = forced;
}

namespace detail {

HwRaw hw_read_raw() {
  HwRaw raw;
  HwState& s = state();
  std::lock_guard lock(s.mu);
  if (!s.active) return raw;
#if LLPMST_HW_PERF
  for (int i = 0; i < kNumEvents; ++i) {
    if (s.fds[i] < 0) continue;
    // {value, time_enabled, time_running} per the read_format above.
    std::uint64_t buf[3] = {0, 0, 0};
    if (read(s.fds[i], buf, sizeof buf) != sizeof buf) continue;
    std::uint64_t v = buf[0];
    if (buf[2] > 0 && buf[2] < buf[1]) {
      // PMU was multiplexed: extrapolate to the full enabled window.
      v = static_cast<std::uint64_t>(
          static_cast<double>(v) * static_cast<double>(buf[1]) /
          static_cast<double>(buf[2]));
    }
    raw.v[i] = v;
    raw.mask |= 1u << i;
  }
#endif
  return raw;
}

void hw_fold_phase(const char* label, const HwRaw& start, const HwRaw& end) {
  const std::uint32_t mask = start.mask & end.mask;
  if (mask == 0) return;
  // Attribute to the live PhaseTimer path; the label is the fallback for
  // scopes opened outside any phase (or with phase timing runtime-off).
  std::string path = phase_path();
  if (path.empty()) path = label;

  HwState& s = state();
  std::lock_guard lock(s.phase_mu);
  HwState::PhaseAgg& agg = s.phases[path];
  ++agg.count;
  agg.mask |= mask;
  for (int i = 0; i < kNumEvents; ++i) {
    if ((mask & (1u << i)) == 0) continue;
    // Readings are cumulative and monotone; clamp against scaled jitter.
    if (end.v[i] > start.v[i]) agg.v[i] += end.v[i] - start.v[i];
  }
}

}  // namespace detail

namespace {

// Shared shaping of raw per-event values into the public sample struct.
void fill_sample(HwSample& out, const std::uint64_t v[], std::uint32_t mask) {
  const auto take = [&](int i) {
    return (mask & (1u << i)) != 0 ? v[i] : kHwAbsent;
  };
  out.cycles = take(kCycles);
  out.instructions = take(kInstructions);
  out.cache_references = take(kCacheReferences);
  out.cache_misses = take(kCacheMisses);
  out.branch_misses = take(kBranchMisses);
  if ((mask & (1u << kTaskClock)) != 0) {
    // task-clock counts nanoseconds.
    out.task_clock_ms = static_cast<double>(v[kTaskClock]) / 1e6;
  }
}

}  // namespace

HwSample hw_read() {
  HwSample out;
  {
    HwState& s = state();
    std::lock_guard lock(s.mu);
    if (!s.active) {
      out.unavailable_reason = s.begin_error.empty()
                                   ? "hardware counters not started"
                                   : s.begin_error;
      return out;
    }
  }
#if LLPMST_HW_PERF
  double min_ratio = 1.0;
  std::uint64_t v[kNumEvents] = {0, 0, 0, 0, 0, 0};
  std::uint32_t mask = 0;
  {
    HwState& s = state();
    std::lock_guard lock(s.mu);
    for (int i = 0; i < kNumEvents; ++i) {
      if (s.fds[i] < 0) continue;
      std::uint64_t buf[3] = {0, 0, 0};
      if (read(s.fds[i], buf, sizeof buf) != sizeof buf) continue;
      std::uint64_t value = buf[0];
      if (buf[1] > 0) {
        const double ratio = static_cast<double>(buf[2]) /
                             static_cast<double>(buf[1]);
        min_ratio = std::min(min_ratio, ratio);
        if (buf[2] > 0 && buf[2] < buf[1]) {
          value = static_cast<std::uint64_t>(
              static_cast<double>(value) * static_cast<double>(buf[1]) /
              static_cast<double>(buf[2]));
        }
      }
      v[i] = value;
      mask |= 1u << i;
    }
  }
  out.available = true;
  out.multiplex_ratio = min_ratio;
  fill_sample(out, v, mask);
#endif
  return out;
}

std::vector<HwPhaseSample> snapshot_hw_phases() {
  HwState& s = state();
  std::vector<HwPhaseSample> out;
  std::lock_guard lock(s.phase_mu);
  out.reserve(s.phases.size());
  for (const auto& [name, agg] : s.phases) {  // std::map: already sorted
    HwPhaseSample p;
    p.name = name;
    p.count = agg.count;
    p.totals.available = true;
    fill_sample(p.totals, agg.v, agg.mask);
    out.push_back(std::move(p));
  }
  return out;
}

void hw_reset_phases() {
  HwState& s = state();
  std::lock_guard lock(s.phase_mu);
  s.phases.clear();
}

}  // namespace llpmst::obs

#endif  // LLPMST_OBS
