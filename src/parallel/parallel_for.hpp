// Data-parallel loop primitives over a ThreadPool.
//
//   parallel_for(pool, 0, n, [&](std::size_t i) { ... });          // dynamic
//   parallel_for_static(pool, 0, n, [&](std::size_t i) { ... });   // static
//   parallel_blocks(pool, 0, n, [&](size_t lo, size_t hi, size_t w) {...});
//
// The dynamic variant hands out fixed-size chunks from a shared atomic
// counter — good for irregular per-element cost (graph loops whose cost is a
// vertex's degree).  The static variant pre-splits the range evenly — good
// for uniform cost, no atomic traffic.  parallel_blocks exposes the chunk
// bounds and worker id so callers can keep per-thread accumulators.
#pragma once

#include <atomic>
#include <cstddef>

#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"

namespace llpmst {

namespace detail {
/// Chunk size for dynamic scheduling: big enough to amortize the atomic,
/// small enough to balance skewed work.
inline constexpr std::size_t kDynamicChunk = 1024;
}  // namespace detail

/// Dynamic (chunk-stealing) parallel for over [begin, end).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body,
                  std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  pool.run_team([&](std::size_t) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

/// Dynamic parallel for that polls a CancelToken between chunks: when the
/// token triggers, workers stop taking new chunks (in-flight chunks finish).
/// Returns true iff the whole range was processed.  The poll costs one
/// relaxed load (plus a clock read while a deadline is armed) per `chunk`
/// elements — this is the cancellation granularity a watchdog can rely on,
/// as long as individual loop bodies are short.
template <typename Body>
bool parallel_for_interruptible(ThreadPool& pool, std::size_t begin,
                                std::size_t end, const CancelToken& cancel,
                                Body&& body,
                                std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return true;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      if (cancel.cancelled()) return false;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
    return true;
  }
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> stopped{false};
  pool.run_team([&](std::size_t) {
    for (;;) {
      if (cancel.cancelled()) {
        stopped.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
  return !stopped.load(std::memory_order_relaxed);
}

/// Static (even pre-split) parallel for over [begin, end).
template <typename Body>
void parallel_for_static(ThreadPool& pool, std::size_t begin, std::size_t end,
                         Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 2 * t) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = begin + n * w / t;
    const std::size_t hi = begin + n * (w + 1) / t;
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Dynamic parallel for whose body also receives the worker id — for loops
/// that feed per-worker buffers (ConcurrentBag) while still load-balancing
/// skewed per-element work (e.g. high-degree frontier vertices).
template <typename Body>
void parallel_for_worker(ThreadPool& pool, std::size_t begin, std::size_t end,
                         Body&& body,
                         std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t i = begin; i < end; ++i) body(i, std::size_t{0});
    return;
  }
  std::atomic<std::size_t> next{begin};
  pool.run_team([&](std::size_t w) {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i, w);
    }
  });
}

/// Runs body(lo, hi, worker_id) on per-worker contiguous blocks covering
/// [begin, end).  Workers with an empty block still get called with lo==hi so
/// per-worker state can be initialized unconditionally.
template <typename BlockBody>
void parallel_blocks(ThreadPool& pool, std::size_t begin, std::size_t end,
                     BlockBody&& body) {
  const std::size_t n = end >= begin ? end - begin : 0;
  const std::size_t t = pool.num_threads();
  if (t == 1) {
    body(begin, end >= begin ? end : begin, std::size_t{0});
    return;
  }
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = begin + n * w / t;
    const std::size_t hi = begin + n * (w + 1) / t;
    body(lo, hi, w);
  });
}

}  // namespace llpmst
