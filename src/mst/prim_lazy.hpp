// Lazy-heap Prim: the variant the paper's Section IV complexity analysis
// describes ("instead of adjusting the key ... simply insert the vertex in
// the heap"; stale pops are skipped).  O(m) heap entries, O(m log m) time.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

[[nodiscard]] MstResult prim_lazy(const CsrGraph& g, VertexId root = 0);
/// Uniform registry entry point (sequential; the context is unused).
[[nodiscard]] MstResult prim_lazy(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm prim_lazy_algorithm();

}  // namespace llpmst
