// Fixed-size atomic bitset: concurrent test-and-set over packed 64-bit words.
// Used for "visited"/"fixed" style flags where a byte per element would blow
// the cache (e.g. marking contracted vertices in Boruvka rounds).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/assert.hpp"

namespace llpmst {

class AtomicBitset {
 public:
  explicit AtomicBitset(std::size_t n)
      : n_(n), words_((n + 63) / 64) {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] bool test(std::size_t i) const {
    LLPMST_ASSERT(i < n_);
    return (words_[i >> 6].load(std::memory_order_acquire) >> (i & 63)) & 1u;
  }

  /// Sets bit i; returns true iff this call flipped it from 0 to 1.
  bool test_and_set(std::size_t i) {
    LLPMST_ASSERT(i < n_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    const std::uint64_t old =
        words_[i >> 6].fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  /// Non-atomic bulk clear; callers must quiesce first.
  void clear() {
    for (auto& w : words_) w.store(0, std::memory_order_relaxed);
  }

  /// Population count (call outside parallel regions).
  [[nodiscard]] std::size_t count() const {
    std::size_t c = 0;
    for (const auto& w : words_) {
      c += static_cast<std::size_t>(
          __builtin_popcountll(w.load(std::memory_order_relaxed)));
    }
    return c;
  }

 private:
  std::size_t n_;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace llpmst
