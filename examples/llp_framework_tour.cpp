// A tour of the generic LLP framework (the paper's Section II): the same
// Algorithm-1 engine solving three different problems —
//   1. a toy scheduling problem (chained lower bounds),
//   2. single-source shortest paths (LLP Bellman-Ford),
//   3. connected components (LLP pointer jumping),
// demonstrating the paper's claim that formulating problems as predicate
// detection puts them "under a single, general framework".
//
//   $ ./examples/llp_framework_tour
#include <atomic>
#include <cstdio>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/generators/road.hpp"
#include "llp/llp_components.hpp"
#include "llp/llp_shortest_path.hpp"
#include "llp/llp_solver.hpp"
#include "parallel/thread_pool.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace {

using namespace llpmst;

// Problem 1: five jobs; job i cannot start before release[i], and each job
// must start at least gap after its predecessor starts.  Find the earliest
// (least) start vector — a textbook lattice-linear predicate.
void scheduling_demo(ThreadPool& pool) {
  const std::vector<std::uint64_t> release = {0, 2, 1, 9, 3};
  const std::uint64_t gap = 3;

  std::vector<std::atomic<std::uint64_t>> start(release.size());
  for (auto& s : start) s.store(0);

  const auto bound = [&](std::size_t j) {
    std::uint64_t lo = release[j];
    if (j > 0) {
      lo = std::max(lo, start[j - 1].load(std::memory_order_relaxed) + gap);
    }
    return lo;
  };

  const LlpStats stats = llp_solve(
      pool, release.size(),
      [&](std::size_t j) {
        return start[j].load(std::memory_order_relaxed) < bound(j);
      },
      [&](std::size_t j) {
        start[j].store(bound(j), std::memory_order_relaxed);
      });

  std::printf("1. Earliest job starts (releases 0,2,1,9,3; gap 3): ");
  for (const auto& s : start) {
    std::printf("%llu ", static_cast<unsigned long long>(s.load()));
  }
  std::printf(" [%llu sweeps, %llu advances]\n",
              static_cast<unsigned long long>(stats.sweeps),
              static_cast<unsigned long long>(stats.advances));
}

}  // namespace

int main() {
  ThreadPool pool(4);
  std::printf("The LLP framework: one engine, three problems\n");
  std::printf("=============================================\n\n");

  scheduling_demo(pool);

  // A shared road graph for the two graph problems.
  RoadParams params;
  params.width = 96;
  params.height = 96;
  params.unit = 10;  // modest weights keep the chaotic SSSP iteration quick
  const CsrGraph g = CsrGraph::build(generate_road_network(params));

  {
    Timer t;
    const ShortestPathResult sp = llp_shortest_paths(g, pool, 0);
    Dist farthest = 0;
    for (const Dist d : sp.dist) {
      if (d != kUnreachableDist) farthest = std::max(farthest, d);
    }
    std::printf(
        "2. LLP shortest paths on a %zu-vertex road grid: eccentricity(v0) "
        "= %llu  [%llu sweeps, %s]\n",
        g.num_vertices(), static_cast<unsigned long long>(farthest),
        static_cast<unsigned long long>(sp.llp.sweeps),
        format_duration_ms(t.elapsed_ms()).c_str());
  }

  {
    Timer t;
    const LlpComponentsResult cc = llp_connected_components(g, pool);
    std::printf(
        "3. LLP connected components: %zu component(s)  [%llu sweeps, %s]\n",
        cc.num_components, static_cast<unsigned long long>(cc.llp.sweeps),
        format_duration_ms(t.elapsed_ms()).c_str());
  }

  std::printf(
      "\nAll three used the identical llp_solve(forbidden, advance) engine.\n");
  return 0;
}
