#include "bench_util/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/assert.hpp"
#include "support/timer.hpp"

namespace llpmst {

BenchMeasurement measure_mst(const std::string& name, const CsrGraph& g,
                             const MstResult& reference,
                             const std::function<MstResult()>& run,
                             const BenchOptions& options) {
  (void)g;
  BenchMeasurement m;
  m.name = name;

  for (int i = 0; i < options.warmup; ++i) {
    MstResult r = run();
    if (options.verify && i == 0) {
      if (r.edges != reference.edges ||
          r.total_weight != reference.total_weight) {
        std::fprintf(stderr,
                     "FATAL: %s produced a different MSF than the reference "
                     "(weight %llu vs %llu, %zu vs %zu edges)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.total_weight),
                     static_cast<unsigned long long>(reference.total_weight),
                     r.edges.size(), reference.edges.size());
        std::abort();
      }
      m.verified = true;
    }
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int i = 0; i < options.repetitions; ++i) {
    Timer t;
    m.last_result = run();
    samples.push_back(t.elapsed_ms());
  }
  m.time_ms = summarize(samples);
  return m;
}

}  // namespace llpmst
