// The algorithm portfolio (mst/auto.hpp): picks per the paper's conclusions
// and always returns the unique MSF.
#include <gtest/gtest.h>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "mst/auto.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

CsrGraph road_graph() {
  RoadParams p;
  p.width = 40;
  p.height = 40;
  return csr(generate_road_network(p));
}

TEST(AutoMst, SingleThreadPicksSequentialLlpPrim) {
  ThreadPool pool(1);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, pool);
  EXPECT_EQ(r.algorithm, "llp_prim");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, FewThreadsPickParallelLlpPrim) {
  ThreadPool pool(4);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, pool);
  EXPECT_EQ(r.algorithm, "llp_prim_parallel");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, ManyThreadsPickLlpBoruvka) {
  ThreadPool pool(8);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, pool);
  EXPECT_EQ(r.algorithm, "llp_boruvka");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, DisconnectedAlwaysPicksLlpBoruvka) {
  ThreadPool pool(2);
  const CsrGraph g = csr(make_forest(3, 50, 7));
  const AutoMstResult r = minimum_spanning_forest(g, pool);
  EXPECT_EQ(r.algorithm, "llp_boruvka");
  EXPECT_EQ(r.result.num_trees, 3u);
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, ConnectivityHintSkipsTheCheck) {
  ThreadPool pool(2);
  const CsrGraph g = road_graph();
  const AutoMstResult hinted =
      minimum_spanning_forest(g, pool, Connectivity::kConnected);
  EXPECT_EQ(hinted.algorithm, "llp_prim_parallel");
  const AutoMstResult forced =
      minimum_spanning_forest(g, pool, Connectivity::kDisconnected);
  EXPECT_EQ(forced.algorithm, "llp_boruvka");  // hint respected
  EXPECT_EQ(hinted.result.edges, forced.result.edges);
}

TEST(AutoMst, CrossoverTunable) {
  ThreadPool pool(4);
  const CsrGraph g = road_graph();
  AutoMstOptions opts;
  opts.boruvka_crossover = 2;  // lower the crossover below the pool size
  const AutoMstResult r =
      minimum_spanning_forest(g, pool, Connectivity::kConnected, opts);
  EXPECT_EQ(r.algorithm, "llp_boruvka");
}

TEST(AutoMst, EmptyGraph) {
  ThreadPool pool(2);
  const CsrGraph g = csr(EdgeList(0));
  const AutoMstResult r = minimum_spanning_forest(g, pool);
  EXPECT_EQ(r.algorithm, "trivial");
  EXPECT_TRUE(r.result.edges.empty());
}

}  // namespace
}  // namespace llpmst
