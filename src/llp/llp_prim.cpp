#include "llp/llp_prim.hpp"

#include <vector>

#include "ds/binary_heap.hpp"
#include "obs/hw_counters.hpp"
#include "obs/phase_timer.hpp"
#include "support/assert.hpp"

namespace llpmst {

MstResult llp_prim(const CsrGraph& g, VertexId root,
                   const LlpPrimOptions& options) {
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK_MSG(n >= 1, "LLP-Prim requires a non-empty graph");
  LLPMST_CHECK(root < n);

  obs::PhaseTimer algo_span("llp_prim");
  obs::ScopedHwCounters hw_scope("llp_prim");
  MstResult r;
  r.edges.reserve(n - 1);
  std::vector<EdgePriority> dist(n, kInfinitePriority);
  std::vector<EdgeId> parent_edge(n, kInvalidEdge);
  std::vector<std::uint8_t> fixed(n, 0);
  std::vector<std::uint8_t> in_q(n, 0);

  BinaryHeap<EdgePriority> heap(n);
  std::vector<VertexId> bag_r;   // the unordered R set
  std::vector<VertexId> q;       // staged insertOrAdjust targets

  std::size_t num_fixed = 1;
  std::size_t next_root = 0;  // forest-restart scan cursor
  fixed[root] = 1;
  ++r.stats.fixed_via_heap;  // the root counts as the initial heap seed
  bag_r.push_back(root);

  for (;;) {
    // "This algorithm can be terminated as soon as n-1 edges have been
    // chosen" (Section V-A) — once everything is fixed, the remaining R
    // members' arcs lead only to fixed vertices and the heap holds only
    // stale entries.
    if (num_fixed == n) break;

    // Drain R: vertices here are already fixed; explore their edges.  Order
    // within R is irrelevant (the LLP property) — we pop LIFO.  Each drain
    // is one worklist sweep in the Algorithm 1 sense.
    if (!bag_r.empty()) ++r.stats.llp_sweeps;
    {
      obs::PhaseTimer relax_span("relax");
      while (!bag_r.empty() && num_fixed < n) {
        const VertexId j = bag_r.back();
        bag_r.pop_back();

        const auto nbrs = g.neighbors(j);
        const auto prios = g.arc_priorities(j);
        const auto mwe_flags = g.arc_mwe_flags(j);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const VertexId k = nbrs[i];
          if (fixed[k]) continue;
          ++r.stats.edges_relaxed;
          const EdgePriority p = prios[i];

          // Early fixing: (j, k) is the MWE of j or of k -> it is an MST edge
          // and j is fixed, so k's parent is j (see Section V-A).  The flag is
          // precomputed per arc so this is a sequential-stream read.
          if (options.mwe_fixing && mwe_flags[i]) {
            fixed[k] = 1;
            ++num_fixed;
            ++r.stats.fixed_via_mwe;
            parent_edge[k] = priority_edge(p);
            r.edges.push_back(parent_edge[k]);
            bag_r.push_back(k);
            continue;
          }

          if (p < dist[k]) {
            dist[k] = p;
            parent_edge[k] = priority_edge(p);
            if (options.q_staging) {
              if (!in_q[k]) {
                in_q[k] = 1;
                q.push_back(k);
              }
            } else {
              heap.insert_or_adjust(k, p);
            }
          }
        }
      }
    }

    // Everything fixed during the drain: skip the flush and the stale heap
    // pops entirely (keeps the heap-op counters meaningful).
    if (num_fixed == n) break;

    // R drained: flush the staged heap updates.  Vertices fixed for free in
    // the meantime never touch the heap — that is the optimization.
    {
      obs::PhaseTimer flush_span("heap_flush");
      for (const VertexId k : q) {
        in_q[k] = 0;
        if (!fixed[k]) {
          heap.insert_or_adjust(k, dist[k]);
          ++r.stats.staged_in_q;
        }
      }
      q.clear();
    }

    // Fall back to the heap for the next nearest non-fixed vertex.
    bool advanced = false;
    obs::PhaseTimer pop_span("heap_pop");
    while (!heap.empty()) {
      const auto [j, key] = heap.pop();
      (void)key;
      if (fixed[j]) continue;  // fixed via R while resident: skip (stale)
      fixed[j] = 1;
      ++num_fixed;
      ++r.stats.fixed_via_heap;
      r.edges.push_back(parent_edge[j]);
      bag_r.push_back(j);
      advanced = true;
      break;
    }

    // Forest extension: component exhausted but vertices remain — start a
    // new tree from the next unfixed vertex (it becomes that tree's root
    // and contributes no edge).
    if (!advanced && options.allow_forest && num_fixed < n) {
      while (next_root < n && fixed[next_root]) ++next_root;
      if (next_root < n) {
        fixed[next_root] = 1;
        ++num_fixed;
        ++r.stats.fixed_via_heap;
        bag_r.push_back(static_cast<VertexId>(next_root));
        advanced = true;
      }
    }
    if (!advanced) break;
  }

  LLPMST_CHECK_MSG(num_fixed == n,
                   "LLP-Prim requires a connected graph; use llp_prim_msf "
                   "or LLP-Boruvka for forests");
  r.stats.heap = heap.stats();
  record_algo_metrics("llp_prim", r.stats);
  finalize_result(g, r);
  return r;
}

MstResult llp_prim_msf(const CsrGraph& g) {
  if (g.num_vertices() == 0) return {};  // empty graph: the empty forest
  LlpPrimOptions options;
  options.allow_forest = true;
  return llp_prim(g, 0, options);
}

MstResult llp_prim_msf(const CsrGraph& g, RunContext& /*ctx*/) {
  return llp_prim_msf(g);
}

MstAlgorithm llp_prim_algorithm() {
  return {"llp-prim", "LLP-Prim (1T)",
          "Prim with early fixing + staged heap inserts (Algorithm 5)",
          {.parallel = false, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) {
            return llp_prim_msf(g, ctx);
          }};
}

}  // namespace llpmst
