#include "obs/profiler.hpp"

#if LLPMST_OBS

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
#define LLPMST_PROF_PLATFORM 1
#else
#define LLPMST_PROF_PLATFORM 0
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#if LLPMST_PROF_PLATFORM
#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <cstdlib>

#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // LLPMST_PROF_PLATFORM

namespace llpmst::obs {

namespace {

/// Phase frames stored per sample (the deeper tail is folded into the last
/// stored frame's attribution; real nesting is ~4).
constexpr std::size_t kMaxSamplePhase = 8;
/// Code frames stored per sample: the leaf PC plus up to 15 return
/// addresses from the frame-pointer walk.
constexpr std::size_t kMaxSampleCode = 16;

#if LLPMST_PROF_PLATFORM

// One captured sample.  Every word is a relaxed atomic so the SIGPROF
// handler (the owning thread, asynchronously) and a snapshot (another
// thread) never tear memory; the ring head's release store publishes the
// slot, exactly the sched_events protocol.
struct ProfSlot {
  std::atomic<std::uint64_t> meta{0};  // nphase << 8 | ncode
  std::atomic<std::uint64_t> phase[kMaxSamplePhase];  // const char* literals
  std::atomic<std::uint64_t> code[kMaxSampleCode];    // program counters
};

// Per-thread profiler state.  Registered once under the cold mutex and
// leaked with the global state, so a straggling timer signal after thread
// registration can never touch freed memory.
struct ProfThread {
  explicit ProfThread(std::uint32_t w)
      : worker(w), slots(new ProfSlot[kProfRingCapacity]) {}
  const std::uint32_t worker;
  std::atomic<std::uint64_t> head{0};  // total samples ever written
  std::unique_ptr<ProfSlot[]> slots;

  detail::PhaseStack* phase_stack = nullptr;  // the owning thread's stack
  std::uintptr_t stack_lo = 0;  // thread stack extent for the bounded walk
  std::uintptr_t stack_hi = 0;
  pid_t tid = 0;
  timer_t timer{};
  bool timer_created = false;
  bool timer_running = false;
  std::atomic<std::uint64_t> armed_gen{0};  // prof_start generation armed for
};

struct ProfState {
  std::atomic<bool> collecting{false};
  std::atomic<std::uint64_t> generation{0};  // bumped by every prof_start
  std::atomic<unsigned> hz{kDefaultProfileHz};

  std::mutex mu;
  std::vector<std::unique_ptr<ProfThread>> threads;  // stable addresses
  bool handler_installed = false;
  bool session_ok = false;     // a prof_start() succeeded (samples readable)
  std::string fail_reason = "profiler not started";
};

ProfState& state() {
  static ProfState* s = new ProfState;  // leaked: outlives all threads
  return *s;
}

// The handler finds its thread's state through this pointer.  Its first
// (TLS-allocating) access happens at registration on the owning thread,
// never inside the handler.
thread_local ProfThread* tls_prof_thread = nullptr;

// -- the signal handler ----------------------------------------------------

// The handler reads raw stack memory (bounds-checked, but pointing at saved
// frame slots the sanitizers may consider poisoned or unsequenced), so
// instrumentation is disabled for it and its helpers.
#if defined(__clang__) || defined(__GNUC__)
#define LLPMST_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#else
#define LLPMST_NO_SANITIZE
#endif

/// Extracts pc / frame pointer / stack pointer from the interrupted
/// context.
LLPMST_NO_SANITIZE inline void context_registers(void* uctx,
                                                 std::uintptr_t* pc,
                                                 std::uintptr_t* fp,
                                                 std::uintptr_t* sp) {
  const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
#if defined(__x86_64__)
  *pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  *fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  *sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  *pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  *fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  *sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#endif
}

LLPMST_NO_SANITIZE void prof_signal_handler(int, siginfo_t*, void* uctx) {
  ProfThread* t = tls_prof_thread;
  if (t == nullptr) return;  // recycled tid or unregistered thread
  ProfState& s = state();
  if (!s.collecting.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;

  std::uintptr_t pc = 0, fp = 0, sp = 0;
  context_registers(uctx, &pc, &fp, &sp);

  const std::uint64_t h = t->head.load(std::memory_order_relaxed);
  ProfSlot& slot = t->slots[h & (kProfRingCapacity - 1)];

  // Phase path: depth first (acquire pairs with phase_push's release), then
  // the frames it publishes.
  std::uint64_t nphase = 0;
  if (t->phase_stack != nullptr) {
    const std::uint32_t depth = std::min<std::uint32_t>(
        t->phase_stack->depth.load(std::memory_order_acquire),
        static_cast<std::uint32_t>(detail::kMaxPhaseDepth));
    nphase = std::min<std::uint64_t>(depth, kMaxSamplePhase);
    for (std::uint64_t i = 0; i < nphase; ++i) {
      slot.phase[i].store(
          reinterpret_cast<std::uint64_t>(t->phase_stack->frames[i]),
          std::memory_order_relaxed);
    }
  }

  // Leaf PC, then a bounded frame-pointer walk.  Every dereference is
  // checked against [sp, stack_hi): aligned, in-extent, and monotonically
  // ascending, so the loop cannot fault and cannot spin — in a build
  // without frame pointers the first check fails and we keep just the leaf.
  std::uint64_t ncode = 0;
  slot.code[ncode++].store(pc, std::memory_order_relaxed);
  std::uintptr_t lo = sp > t->stack_lo ? sp : t->stack_lo;
  const std::uintptr_t hi = t->stack_hi;
  while (ncode < kMaxSampleCode) {
    // Overflow-safe: `hi - fp` only after `fp >= hi` is excluded, never
    // `fp + 16` (which wraps for the small negative scratch values an
    // FP-less library frame can leave in the register).
    if (fp < lo || fp >= hi || hi - fp < 2 * sizeof(void*) ||
        (fp & (sizeof(void*) - 1)) != 0) {
      break;
    }
    const std::uintptr_t next_fp = *reinterpret_cast<std::uintptr_t*>(fp);
    const std::uintptr_t ret =
        *reinterpret_cast<std::uintptr_t*>(fp + sizeof(void*));
    if (ret < 4096) break;  // null / near-null: not a return address
    slot.code[ncode++].store(ret, std::memory_order_relaxed);
    if (next_fp <= fp) break;  // must ascend, or we could loop forever
    fp = next_fp;
  }

  slot.meta.store((nphase << 8) | ncode, std::memory_order_relaxed);
  // Release: a snapshot that sees this head sees the slot words above.
  t->head.store(h + 1, std::memory_order_release);
  errno = saved_errno;
}

#undef LLPMST_NO_SANITIZE

// -- arming ----------------------------------------------------------------

/// Thread-exit hygiene: delete the timer so a recycled tid can never
/// receive a stray SIGPROF meant for this thread.  The ProfThread itself
/// (ring included) stays registered — buffered samples remain readable.
/// Initialized (and so registered with __cxa_thread_atexit) by the odr-use
/// in arm_current_thread.
struct ProfTlsCleanup {
  ~ProfTlsCleanup() {
    ProfThread* t = tls_prof_thread;
    if (t == nullptr) return;
    tls_prof_thread = nullptr;
    ProfState& s = state();
    std::lock_guard lock(s.mu);
    if (t->timer_created) {
      timer_delete(t->timer);
      t->timer_created = false;
      t->timer_running = false;
    }
  }
};
thread_local ProfTlsCleanup tls_prof_cleanup;

/// Creates/starts the calling thread's timer for the current generation.
/// Cold path (mutex): runs once per thread per prof_start().  Returns false
/// with a reason on syscall failure.
bool arm_current_thread(std::string* why) {
  ProfState& s = state();
  std::lock_guard lock(s.mu);
  // Re-checked under the mutex: a worker that passed the prof_collecting()
  // fast check can reach here after prof_stop()'s disarm loop ran, and
  // arming now would leave a no-op timer firing until the next session.
  if (!s.collecting.load(std::memory_order_relaxed)) {
    if (why != nullptr) *why = "profiler stopped before this thread armed";
    return false;
  }
  ProfThread* t = tls_prof_thread;
  if (t == nullptr) {
    s.threads.push_back(std::make_unique<ProfThread>(
        static_cast<std::uint32_t>(shard_id())));
    t = s.threads.back().get();
    t->phase_stack = &detail::phase_stack();
    t->tid = static_cast<pid_t>(::syscall(SYS_gettid));
    // Stack extent for the handler's bounded walk.  pthread_getattr_np
    // allocates (fine here, never in the handler); on failure the walk
    // degrades to leaf-only samples.
    pthread_attr_t attr;
    if (pthread_getattr_np(pthread_self(), &attr) == 0) {
      void* addr = nullptr;
      std::size_t size = 0;
      if (pthread_attr_getstack(&attr, &addr, &size) == 0) {
        t->stack_lo = reinterpret_cast<std::uintptr_t>(addr);
        t->stack_hi = t->stack_lo + size;
      }
      pthread_attr_destroy(&attr);
    }
    tls_prof_thread = t;
    // Odr-use forces the thread_local's lazy initialization here, which is
    // what registers ~ProfTlsCleanup via __cxa_thread_atexit; without it
    // the destructor never runs and the timer outlives the thread.
    (void)&tls_prof_cleanup;
  }

  const std::uint64_t gen = s.generation.load(std::memory_order_relaxed);
  if (t->armed_gen.load(std::memory_order_relaxed) == gen &&
      t->timer_running) {
    return true;
  }
  if (!t->timer_created) {
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_notify_thread_id = t->tid;
    if (timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &t->timer) != 0) {
      if (why != nullptr) {
        *why = std::string("timer_create failed: ") + std::strerror(errno);
      }
      return false;
    }
    t->timer_created = true;
  }
  const unsigned hz = s.hz.load(std::memory_order_relaxed);
  const long interval_ns = static_cast<long>(1000000000ull / (hz ? hz : 1));
  struct itimerspec its;
  its.it_interval.tv_sec = 0;
  its.it_interval.tv_nsec = interval_ns;
  its.it_value = its.it_interval;
  if (timer_settime(t->timer, 0, &its, nullptr) != 0) {
    if (why != nullptr) {
      *why = std::string("timer_settime failed: ") + std::strerror(errno);
    }
    return false;
  }
  t->timer_running = true;
  t->armed_gen.store(gen, std::memory_order_relaxed);
  return true;
}

// -- symbolization (snapshot time, normal context) -------------------------

/// Makes a symbol safe inside a folded stack: ';' separates frames and the
/// trailing " count" is split on the last space, so both become '_'/':'.
void sanitize_frame(std::string* sym) {
  for (char& c : *sym) {
    if (c == ';') c = ':';
    if (c == ' ' || c == '\n' || c == '\t') c = '_';
  }
}

std::string symbolize(std::uintptr_t pc,
                      std::map<std::uintptr_t, std::string>* cache) {
  auto it = cache->find(pc);
  if (it != cache->end()) return it->second;
  std::string name;
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = demangled;
    } else {
      name = info.dli_sname;
    }
    std::free(demangled);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, pc);
    name = buf;
  }
  sanitize_frame(&name);
  cache->emplace(pc, name);
  return name;
}

#endif  // LLPMST_PROF_PLATFORM

}  // namespace

// -- public API ------------------------------------------------------------

#if LLPMST_PROF_PLATFORM

bool prof_supported() { return true; }

bool prof_start(unsigned hz, std::string* why) {
  ProfState& s = state();
  if (hz > kMaxProfileHz) {
    // Also catches a negative CLI value wrapped through the unsigned cast;
    // accepting it would compute a 0 ns interval and timer_settime would
    // silently disarm (empty profile reported as success).
    std::lock_guard lock(s.mu);
    s.session_ok = false;
    s.fail_reason = "profile rate " + std::to_string(hz) +
                    " Hz out of range [1, " + std::to_string(kMaxProfileHz) +
                    "]";
    if (why != nullptr) *why = s.fail_reason;
    return false;
  }
  {
    std::lock_guard lock(s.mu);
    if (!s.handler_installed) {
      struct sigaction sa;
      std::memset(&sa, 0, sizeof(sa));
      sa.sa_sigaction = prof_signal_handler;
      sa.sa_flags = SA_SIGINFO | SA_RESTART;
      sigemptyset(&sa.sa_mask);
      if (sigaction(SIGPROF, &sa, nullptr) != 0) {
        s.session_ok = false;
        s.fail_reason =
            std::string("sigaction(SIGPROF) failed: ") + std::strerror(errno);
        if (why != nullptr) *why = s.fail_reason;
        return false;
      }
      s.handler_installed = true;
    }
    // Fresh session: drop buffered samples and invalidate old arms.
    for (auto& t : s.threads) t->head.store(0, std::memory_order_relaxed);
    s.hz.store(hz == 0 ? kDefaultProfileHz : hz, std::memory_order_relaxed);
    s.generation.fetch_add(1, std::memory_order_relaxed);
  }
  s.collecting.store(true, std::memory_order_release);

  std::string arm_why;
  if (!arm_current_thread(&arm_why)) {
    s.collecting.store(false, std::memory_order_release);
    std::lock_guard lock(s.mu);
    s.session_ok = false;
    s.fail_reason = arm_why;
    if (why != nullptr) *why = arm_why;
    return false;
  }
  std::lock_guard lock(s.mu);
  s.session_ok = true;
  s.fail_reason.clear();
  return true;
}

void prof_stop() {
  ProfState& s = state();
  s.collecting.store(false, std::memory_order_release);
  std::lock_guard lock(s.mu);
  struct itimerspec zero;
  std::memset(&zero, 0, sizeof(zero));
  for (auto& t : s.threads) {
    if (t->timer_running) {
      timer_settime(t->timer, 0, &zero, nullptr);
      t->timer_running = false;
    }
  }
}

bool prof_collecting() {
  return state().collecting.load(std::memory_order_relaxed);
}

void prof_ensure_thread_timer() {
  if (!prof_collecting()) return;  // the one-relaxed-load fast path
  ProfState& s = state();
  ProfThread* t = tls_prof_thread;
  if (t != nullptr &&
      t->armed_gen.load(std::memory_order_relaxed) ==
          s.generation.load(std::memory_order_acquire) &&
      t->timer_running) {
    return;
  }
  // Worker arm failures are silent by design: profiling a run with one
  // unarmed worker is degraded attribution, not a failed run.
  (void)arm_current_thread(nullptr);
}

ProfSnapshot prof_snapshot() {
  ProfSnapshot snap;
  ProfState& s = state();
  std::lock_guard lock(s.mu);
  if (!s.session_ok) {
    snap.unavailable_reason = s.fail_reason;
    return snap;
  }
  snap.available = true;
  snap.hz = s.hz.load(std::memory_order_relaxed);

  std::map<std::uintptr_t, std::string> symcache;
  std::map<std::string, std::uint64_t> folded;
  std::map<std::string, std::uint64_t> by_phase;

  for (auto& t : s.threads) {
    const std::uint64_t h = t->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(h, kProfRingCapacity);
    snap.dropped += h - count;
    for (std::uint64_t i = h - count; i < h; ++i) {
      const ProfSlot& slot = t->slots[i & (kProfRingCapacity - 1)];
      const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
      const std::uint64_t nphase = (meta >> 8) & 0xff;
      const std::uint64_t ncode = meta & 0xff;

      std::string phase_fold;   // ';'-joined for the stack key
      std::string phase_slash;  // '/'-joined to match snapshot_phases()
      for (std::uint64_t p = 0; p < nphase && p < kMaxSamplePhase; ++p) {
        const char* frame = reinterpret_cast<const char*>(
            slot.phase[p].load(std::memory_order_relaxed));
        if (frame == nullptr) continue;
        if (!phase_fold.empty()) phase_fold.push_back(';');
        phase_fold += frame;
        if (!phase_slash.empty()) phase_slash.push_back('/');
        phase_slash += frame;
      }
      if (phase_fold.empty()) {
        phase_fold = "(no_phase)";
        phase_slash = "(no_phase)";
      }

      std::string key = phase_fold;
      // Code frames were captured leaf-first; folded stacks read
      // outermost-first.
      for (std::uint64_t c = std::min<std::uint64_t>(ncode, kMaxSampleCode);
           c > 0; --c) {
        const std::uintptr_t pc = static_cast<std::uintptr_t>(
            slot.code[c - 1].load(std::memory_order_relaxed));
        key.push_back(';');
        key += symbolize(pc, &symcache);
      }
      ++folded[key];
      ++by_phase[phase_slash];
      ++snap.samples;
    }
  }

  snap.phases.reserve(by_phase.size());
  for (const auto& [name, n] : by_phase) snap.phases.push_back({name, n});
  snap.stacks.reserve(folded.size());
  for (const auto& [stack, n] : folded) snap.stacks.push_back({stack, n});
  std::sort(snap.stacks.begin(), snap.stacks.end(),
            [](const ProfStack& a, const ProfStack& b) {
              if (a.samples != b.samples) return a.samples > b.samples;
              return a.stack < b.stack;
            });
  return snap;
}

#else  // OBS on, platform unsupported: explicit-unavailable everywhere.

bool prof_supported() { return false; }

bool prof_start(unsigned, std::string* why) {
  if (why != nullptr) {
    *why = "sampling profiler unsupported on this platform "
           "(requires Linux on x86-64 or AArch64)";
  }
  return false;
}

void prof_stop() {}
bool prof_collecting() { return false; }
void prof_ensure_thread_timer() {}

ProfSnapshot prof_snapshot() {
  ProfSnapshot snap;
  snap.unavailable_reason =
      "sampling profiler unsupported on this platform "
      "(requires Linux on x86-64 or AArch64)";
  return snap;
}

#endif  // LLPMST_PROF_PLATFORM

std::string prof_render_folded(const ProfSnapshot& snap) {
  std::string out;
  if (!snap.available) return out;
  out.reserve(snap.stacks.size() * 64);
  for (const ProfStack& st : snap.stacks) {
    out += st.stack;
    char buf[32];
    std::snprintf(buf, sizeof(buf), " %" PRIu64 "\n", st.samples);
    out += buf;
  }
  return out;
}

}  // namespace llpmst::obs

#endif  // LLPMST_OBS
