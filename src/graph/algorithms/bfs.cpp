#include "graph/algorithms/bfs.hpp"

#include <deque>

#include "support/assert.hpp"

namespace llpmst {

namespace {

BfsResult bfs_impl(const CsrGraph& g, VertexId source,
                   const std::vector<bool>* edge_filter) {
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK(source < n);

  BfsResult r;
  r.parent.assign(n, kInvalidVertex);
  r.depth.assign(n, kInvalidVertex);
  r.order.reserve(n);

  std::deque<VertexId> queue;
  r.parent[source] = source;
  r.depth[source] = 0;
  queue.push_back(source);

  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    r.order.push_back(u);
    const auto nbrs = g.neighbors(u);
    const auto prios = g.arc_priorities(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (edge_filter != nullptr && !(*edge_filter)[priority_edge(prios[i])]) {
        continue;
      }
      const VertexId v = nbrs[i];
      if (r.parent[v] != kInvalidVertex) continue;
      r.parent[v] = u;
      r.depth[v] = r.depth[u] + 1;
      queue.push_back(v);
    }
  }
  return r;
}

}  // namespace

BfsResult bfs(const CsrGraph& g, VertexId source) {
  return bfs_impl(g, source, nullptr);
}

BfsResult bfs_subgraph(const CsrGraph& g, VertexId source,
                       const std::vector<bool>& edge_in_subgraph) {
  LLPMST_CHECK(edge_in_subgraph.size() == g.num_edges());
  return bfs_impl(g, source, &edge_in_subgraph);
}

}  // namespace llpmst
