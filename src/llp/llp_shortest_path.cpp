#include "llp/llp_shortest_path.hpp"

#include <atomic>
#include <cstdio>
#include <string>

#include "ds/binary_heap.hpp"
#include "obs/metrics.hpp"
#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"

namespace llpmst {

ShortestPathResult llp_shortest_paths(const CsrGraph& g, Executor& pool,
                                      VertexId source) {
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK(source < n);

  // G starts at the lattice bottom (all zeros, except conceptually the
  // source which is pinned at 0 and never forbidden).  Vertices in other
  // components have no finite fixpoint — their Bellman inequalities only
  // reference each other and would raise G forever — so they start (and
  // stay) at the lattice top, kUnreachableDist.  A BFS identifies them.
  std::vector<std::uint8_t> reachable(n, 0);
  {
    std::vector<VertexId> stack{source};
    reachable[source] = 1;
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (const VertexId v : g.neighbors(u)) {
        if (!reachable[v]) {
          reachable[v] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  std::vector<std::atomic<Dist>> G(n);
  parallel_for(pool, 0, n, [&](std::size_t v) {
    G[v].store(reachable[v] ? 0 : kUnreachableDist,
               std::memory_order_relaxed);
  });

  // The forced lower bound for v: min over incident edges of G[u] + w; the
  // empty min (isolated vertex) is unreachable.
  const auto forced = [&](std::size_t v) -> Dist {
    Dist lo = kUnreachableDist;
    const auto nbrs = g.neighbors(v);
    const auto prios = g.arc_priorities(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      // Clamp at the lattice top so paths through unreachable-marked
      // vertices never push the bound past it.
      Dist via = G[nbrs[i]].load(std::memory_order_relaxed) +
                 priority_weight(prios[i]);
      if (via > kUnreachableDist) via = kUnreachableDist;
      if (via < lo) lo = via;
    }
    return lo;
  };

  ShortestPathResult out;
  // Distances only rise toward the least fixpoint, so concurrent sweeps are
  // monotone; the cap guards against a non-lattice-linear mistake.
  LlpOptions opts;
  opts.max_sweeps = (std::uint64_t{1} << 22);  // see convergence note
  out.llp = llp_solve(
      pool, n,
      [&](std::size_t v) {
        if (v == source) return false;
        return G[v].load(std::memory_order_relaxed) < forced(v);
      },
      [&](std::size_t v) {
        // advance: raise to the forced bound (recomputed — it may have risen
        // since the forbidden test, and overshooting the stale value would
        // still be <= the final fixpoint, but recomputing converges faster).
        G[v].store(forced(v), std::memory_order_relaxed);
      },
      opts);
  // Distances below the fixpoint are lower bounds, not answers — but an
  // abort would hide *how far* the run got.  Report the non-convergence
  // (callers see out.llp.converged, reports get a warning) and return the
  // partial vector.
  if (!out.llp.converged) {
    obs::add_warning(std::string("llp_shortest_paths: run stopped (") +
                     run_outcome_name(out.llp.outcome) +
                     "); distances are unconverged lower bounds");
    std::fprintf(stderr,
                 "warning: llp_shortest_paths stopped without converging "
                 "(%s)\n",
                 run_outcome_name(out.llp.outcome));
  }

  out.dist.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    out.dist[v] = G[v].load(std::memory_order_relaxed);
  }
  out.dist[source] = 0;
  return out;
}

std::vector<Dist> dijkstra(const CsrGraph& g, VertexId source) {
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK(source < n);
  std::vector<Dist> dist(n, kUnreachableDist);
  std::vector<std::uint8_t> done(n, 0);
  BinaryHeap<Dist> heap(n);
  dist[source] = 0;
  heap.push(source, 0);
  while (!heap.empty()) {
    const auto [u, d] = heap.pop();
    if (done[u]) continue;
    done[u] = 1;
    const auto nbrs = g.neighbors(u);
    const auto prios = g.arc_priorities(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId v = nbrs[i];
      const Dist nd = d + priority_weight(prios[i]);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_adjust(v, nd);
      }
    }
  }
  return dist;
}

}  // namespace llpmst
