#include "llp/llp_prim_async.hpp"

#include <atomic>
#include <vector>

#include "core/run_context.hpp"
#include "ds/binary_heap.hpp"
#include "obs/phase_timer.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/concurrent_bag.hpp"
#include "parallel/work_stealing.hpp"
#include "support/assert.hpp"

namespace llpmst {

MstResult llp_prim_async(const CsrGraph& g, RunContext& run_ctx,
                         VertexId root) {
  Executor& pool = run_ctx.executor();
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK_MSG(n >= 1, "LLP-Prim requires a non-empty graph");
  LLPMST_CHECK(root < n);

  obs::PhaseTimer algo_span("llp_prim_async");
  MstResult r;
  std::vector<std::atomic<EdgePriority>> dist(n);
  std::vector<std::atomic<std::uint8_t>> fixed(n);
  std::vector<EdgeId> chosen_edge(n, kInvalidEdge);
  for (std::size_t v = 0; v < n; ++v) {
    dist[v].store(kInfinitePriority, std::memory_order_relaxed);
    fixed[v].store(0, std::memory_order_relaxed);
  }

  const std::size_t workers = pool.num_threads();
  ConcurrentBag<VertexId> bag_q(workers);      // staged heap candidates
  ConcurrentBag<VertexId> newly_fixed(workers);  // for edge collection
  BinaryHeap<EdgePriority> heap(n);
  std::atomic<std::uint64_t> fixed_via_mwe{0};
  std::atomic<std::uint64_t> edges_relaxed{0};

  fixed[root].store(1, std::memory_order_relaxed);
  std::size_t num_fixed = 1;
  ++r.stats.fixed_via_heap;

  std::vector<VertexId> seeds{root};
  for (;;) {
    // --- Asynchronous drain of R: fixed vertices are explored as soon as
    // any worker can pick them up; early-fixed vertices feed straight back
    // into the worklist (ctx.push), no barrier in between.  One drain is
    // one worklist sweep (stats.llp_sweeps).
    ++r.stats.llp_sweeps;
    {
      obs::PhaseTimer relax_span("relax");
      work_stealing_run<VertexId>(
          pool, seeds, [&](VertexId j, WorkStealingContext<VertexId>& ctx) {
            const auto nbrs = g.neighbors(j);
            const auto prios = g.arc_priorities(j);
            const auto mwe_flags = g.arc_mwe_flags(j);
            std::uint64_t relaxed = 0;
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              const VertexId k = nbrs[i];
              if (fixed[k].load(std::memory_order_relaxed)) continue;
              ++relaxed;
              const EdgePriority p = prios[i];
              if (mwe_flags[i]) {
                if (atomic_claim(fixed[k])) {
                  chosen_edge[k] = priority_edge(p);
                  fixed_via_mwe.fetch_add(1, std::memory_order_relaxed);
                  newly_fixed.push(ctx.worker(), k);
                  ctx.push(k);
                }
                continue;
              }
              if (atomic_fetch_min(dist[k], p)) {
                bag_q.push(ctx.worker(), k);
              }
            }
            if (relaxed != 0) {
              edges_relaxed.fetch_add(relaxed, std::memory_order_relaxed);
            }
          });
    }

    // Collect the edges of everything fixed during the drain.
    {
      std::vector<VertexId> fixed_now;
      newly_fixed.drain_into(fixed_now);
      num_fixed += fixed_now.size();
      for (const VertexId k : fixed_now) r.edges.push_back(chosen_edge[k]);
    }

    // --- Sequential heap phase (identical to the other variants).
    {
      obs::PhaseTimer flush_span("heap_flush");
      std::vector<VertexId> staged;
      bag_q.drain_into(staged);
      for (const VertexId k : staged) {
        if (fixed[k].load(std::memory_order_relaxed)) continue;
        heap.insert_or_adjust(k, dist[k].load(std::memory_order_relaxed));
        ++r.stats.staged_in_q;
      }
    }

    seeds.clear();
    obs::PhaseTimer pop_span("heap_pop");
    while (!heap.empty()) {
      const auto [j, key] = heap.pop();
      (void)key;
      if (fixed[j].load(std::memory_order_relaxed)) continue;
      fixed[j].store(1, std::memory_order_relaxed);
      ++num_fixed;
      ++r.stats.fixed_via_heap;
      chosen_edge[j] = priority_edge(dist[j].load(std::memory_order_relaxed));
      r.edges.push_back(chosen_edge[j]);
      seeds.push_back(j);
      break;
    }
    if (seeds.empty()) break;
  }

  LLPMST_CHECK_MSG(num_fixed == n,
                   "LLP-Prim requires a connected graph; use LLP-Boruvka "
                   "for forests");
  r.stats.fixed_via_mwe = fixed_via_mwe.load(std::memory_order_relaxed);
  r.stats.edges_relaxed = edges_relaxed.load(std::memory_order_relaxed);
  r.stats.heap = heap.stats();
  record_algo_metrics("llp_prim_async", r.stats);
  finalize_result(g, r);
  return r;
}

MstAlgorithm llp_prim_async_algorithm() {
  return {"llp-prim-async", "LLP-Prim (async)",
          "early-fixing Prim, R drained by a work-stealing worklist",
          {.parallel = true, .msf_capable = false, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) {
            return llp_prim_async(g, ctx);
          }};
}

}  // namespace llpmst
