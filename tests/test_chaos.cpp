// Chaos suite: the loosely-synchronized parallel MST algorithms must produce
// the exact same forest under ANY schedule, so we perturb schedules with
// probabilistic yield/sleep failpoints across 100 deterministic seeds and
// compare bit-for-bit against sequential Kruskal.  The second half exercises
// the graceful-degradation story end to end: deadlines and watchdogs stop
// wedged runs, and mst::auto falls back to sequential Kruskal with a
// structured reason when its parallel pick fails.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/road.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "llp/llp_solver.hpp"
#include "mst/auto.hpp"
#include "mst/kruskal.hpp"
#include "mst/verifier.hpp"
#include "scenario/repro.hpp"
#include "scenario/scenario.hpp"
#include "support/cancel.hpp"
#include "support/failpoint.hpp"
#include "support/status.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

constexpr int kChaosSeeds = 100;

// Chaos workloads come from the named scenario registry so a failure can
// print a repro command that regenerates the EXACT graph by name.
constexpr std::uint64_t kConnectedSeed = 7;
constexpr std::uint64_t kSparseSeed = 11;

CsrGraph connected_graph() {
  // A grid road network: always connected, large enough that every
  // parallel_for dispatches a real team.
  return csr(find_scenario("road-baseline")->make(kConnectedSeed));
}

CsrGraph sparse_random_graph() {
  // ER topology with near-duplicate weights: sparse AND tie-break heavy.
  return csr(find_scenario("near-duplicate-weights")->make(kSparseSeed));
}

/// The copy-pasteable one-liner every chaos failure message carries.
std::string repro(const char* scenario, std::uint64_t graph_seed,
                  const char* algo, const char* failpoints,
                  std::uint64_t chaos_seed) {
  ReproSpec rs;
  rs.scenario = scenario;
  rs.algo = algo;
  rs.seed = graph_seed;
  rs.threads = 4;
  rs.failpoints = failpoints;
  std::string line = format_repro_command(rs);
  if (chaos_seed != 0) {
    line += "  # failpoint seed " + std::to_string(chaos_seed);
  }
  return line;
}

class Chaos : public testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
    fail::disarm_all();
  }
  void TearDown() override {
    if (fail::kCompiledIn) fail::disarm_all();
  }
};

// ------------------------------------------- schedule-perturbation chaos

TEST_F(Chaos, LlpPrimParallelMatchesKruskalUnderAHundredSeeds) {
  const CsrGraph g = connected_graph();
  const MstResult reference = kruskal(g);
  ThreadPool pool(4);
  RunContext ctx(pool);

  // Yield a fifth of team tasks at dispatch and stall a quarter of the
  // bag/heap handoffs: exactly the windows where a stale frontier or a
  // half-flushed Q buffer would surface as a wrong tree.
  const char* spec = "pool/task=20%yield;llp_prim/handoff=25%sleep(50)";
  std::string error;
  ASSERT_EQ(fail::configure(spec, &error), 2u) << error;

  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    fail::set_seed(seed);
    const std::string at = repro("road-baseline", kConnectedSeed,
                                 "llp-prim-parallel", spec, seed);
    const MstResult r = llp_prim_parallel(g, ctx);
    ASSERT_EQ(r.stats.outcome, RunOutcome::kOk) << at;
    ASSERT_EQ(r.edges, reference.edges) << at;
    ASSERT_EQ(r.total_weight, reference.total_weight) << at;
    const VerifyResult v = verify_spanning_forest(g, r);
    ASSERT_TRUE(v.ok) << v.error << "\n" << at;
  }
  EXPECT_GT(fail::fire_count("llp_prim/handoff"), 0u);
}

TEST_F(Chaos, LlpBoruvkaMatchesKruskalUnderAHundredSeeds) {
  const CsrGraph g = sparse_random_graph();
  const MstResult reference = kruskal(g);
  ThreadPool pool(4);
  RunContext ctx(pool);

  const char* spec = "pool/task=20%yield;boruvka/contract=50%sleep(50)";
  std::string error;
  ASSERT_EQ(fail::configure(spec, &error), 2u) << error;

  for (std::uint64_t seed = 1; seed <= kChaosSeeds; ++seed) {
    fail::set_seed(seed);
    const std::string at = repro("near-duplicate-weights", kSparseSeed,
                                 "llp-boruvka", spec, seed);
    const MstResult r = llp_boruvka(g, ctx);
    ASSERT_EQ(r.stats.outcome, RunOutcome::kOk) << at;
    ASSERT_EQ(r.edges, reference.edges) << at;
    const VerifyResult v = verify_spanning_forest(g, r);
    ASSERT_TRUE(v.ok) << v.error << "\n" << at;
  }
  EXPECT_GT(fail::fire_count("boruvka/contract"), 0u);
}

// ------------------------------------------------- deadlines & watchdogs

TEST_F(Chaos, DeadlineStopsANonConvergingLlpSolve) {
  // forbidden() is always true, so without the deadline this solve would
  // grind through a million sweeps.  The deadline must stop it at a sweep
  // (or chunk) checkpoint long before that.
  ThreadPool pool(4);
  CancelToken token;
  token.set_deadline_after_ms(30);
  LlpOptions o;
  o.max_sweeps = 1'000'000;
  o.cancel = &token;
  const auto start = std::chrono::steady_clock::now();
  const LlpStats s = llp_solve(
      pool, 3000, [](std::size_t) { return true; }, [](std::size_t) {}, o);
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_EQ(s.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_FALSE(s.converged);
  EXPECT_LT(s.sweeps, 1'000'000u);
  EXPECT_LT(elapsed_ms, 10'000) << "deadline failed to stop the solve";
}

TEST_F(Chaos, WatchdogStopsAWedgedLlpSolve) {
  // The wedge: every sweep stalls on an injected 1ms sleep and the predicate
  // never converges.  Nobody calls cancel() — the watchdog must.
  ASSERT_TRUE(fail::arm("llp/sweep", "sleep(1000)"));
  ThreadPool pool(2);
  CancelToken token;
  Watchdog dog(token, 25);
  LlpOptions o;
  o.max_sweeps = 1'000'000;
  o.cancel = &token;
  const LlpStats s = llp_solve(
      pool, 2000, [](std::size_t) { return true; }, [](std::size_t) {}, o);
  dog.disarm();
  EXPECT_EQ(s.outcome, RunOutcome::kCancelled);
  EXPECT_LT(s.sweeps, 1'000'000u);
}

// ------------------------------------------------- graceful degradation

TEST_F(Chaos, AutoFallsBackToKruskalOnInjectedPrimFault) {
  const CsrGraph g = connected_graph();
  const MstResult reference = kruskal(g);
  ThreadPool pool(4);  // connected + below the crossover -> llp-prim-parallel
  RunContext ctx(pool);
  ASSERT_TRUE(fail::arm("llp_prim/handoff", "return"));

  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.algorithm, "kruskal");
  EXPECT_EQ(r.fallback_reason, "injected_fault");
  EXPECT_EQ(r.result.edges, reference.edges);
  const VerifyResult v = verify_spanning_forest(g, r.result);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST_F(Chaos, AutoFallsBackToKruskalOnInjectedBoruvkaFault) {
  const CsrGraph g = sparse_random_graph();
  const MstResult reference = kruskal(g);
  ThreadPool pool(8);  // at the crossover -> llp-boruvka
  RunContext ctx(pool);
  ASSERT_TRUE(fail::arm("boruvka/contract", "return"));

  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.algorithm, "kruskal");
  EXPECT_EQ(r.fallback_reason, "injected_fault");
  EXPECT_EQ(r.result.edges, reference.edges);
}

TEST_F(Chaos, AutoFallsBackToKruskalOnDeadline) {
  // An already-expired deadline plus a stall on every handoff: the parallel
  // run stops at its first checkpoint and the portfolio must recover with a
  // full sequential answer, not hand back the empty partial forest.
  const CsrGraph g = connected_graph();
  const MstResult reference = kruskal(g);
  ThreadPool pool(4);
  RunContext ctx(pool);
  ASSERT_TRUE(fail::arm("llp_prim/handoff", "sleep(500)"));

  ctx.set_deadline_ms(0.001);
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_TRUE(r.fell_back);
  EXPECT_EQ(r.algorithm, "kruskal");
  EXPECT_EQ(r.fallback_reason, "deadline_exceeded");
  EXPECT_EQ(r.result.edges, reference.edges);
}

TEST_F(Chaos, AutoHonoursUserCancelWithoutFallback) {
  const CsrGraph g = connected_graph();
  ThreadPool pool(4);
  CancelToken token;
  token.cancel();

  RunContext ctx(pool);
  ctx.set_cancel(&token);
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  // A user cancel is a request to stop, not a failure to route around.
  EXPECT_FALSE(r.fell_back);
  EXPECT_EQ(r.result.stats.outcome, RunOutcome::kCancelled);
}

TEST_F(Chaos, FallbackCanBeDisabled) {
  const CsrGraph g = connected_graph();
  ThreadPool pool(4);
  RunContext ctx(pool);
  ASSERT_TRUE(fail::arm("llp_prim/handoff", "return"));

  AutoMstOptions options;
  options.fallback_to_sequential = false;
  const AutoMstResult r = minimum_spanning_forest(g, ctx, options);
  EXPECT_FALSE(r.fell_back);
  EXPECT_EQ(r.result.stats.outcome, RunOutcome::kInjectedFault);
}

}  // namespace
}  // namespace llpmst
