// Compressed sparse row (CSR) graph: the traversal representation used by
// Prim, LLP-Prim, and round 0 of Boruvka.
//
// Built from a *normalized* EdgeList (see EdgeList::normalize).  The i-th
// edge of that list is undirected edge id i; the CSR stores both directed
// arcs of every undirected edge.  Arcs carry the packed priority of their
// undirected edge (see graph/types.hpp), so the arc's weight and edge id are
// both recoverable from one 64-bit load, and per-vertex minimum-weight-edge
// (MWE) selection is a plain min over the arc priorities.
//
// The original edge list is retained: edge-id -> (u, v, w) lookups are O(1)
// and the edge-centric passes of Boruvka iterate it directly.
//
// Since the storage refactor a CsrGraph is a cheap HANDLE: the six arrays
// live behind a shared, immutable GraphStorage (graph/storage.hpp) — owned
// heap vectors for built graphs, a read-only mmap for `llpmstb` snapshot
// files (graph/io/binary_csr.hpp) — and every accessor is a span over that
// storage.  Copying a CsrGraph copies two pointers and the section table;
// the bytes are shared.  Algorithm code is unchanged either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/storage.hpp"
#include "graph/types.hpp"
#include "parallel/executor.hpp"
#include "support/assert.hpp"

namespace llpmst {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from a normalized edge list into owned heap storage.  If `pool`
  /// is non-null the offsets and arcs are computed with parallel scans; the
  /// result is identical either way.  LLPMST_CHECKs that the list is
  /// normalized.
  static CsrGraph build(const EdgeList& list, Executor* pool = nullptr);

  /// Wraps an already-validated storage backend (the mmap loader's entry
  /// point).  LLPMST_CHECKs the section shape contract (offsets n+1,
  /// targets/priorities/flags 2m, mwe n, edges m).
  static CsrGraph from_storage(StoragePtr storage);

  [[nodiscard]] std::size_t num_vertices() const {
    return sec_.offsets.empty() ? 0 : sec_.offsets.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const { return sec_.edges.size(); }
  [[nodiscard]] std::size_t num_arcs() const { return sec_.targets.size(); }

  /// Degree of v (number of incident undirected edges).
  [[nodiscard]] std::size_t degree(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return static_cast<std::size_t>(sec_.offsets[v + 1] - sec_.offsets[v]);
  }

  /// Neighbor vertex ids of v, parallel to arc_priorities(v).
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return sec_.targets.subspan(sec_.offsets[v], degree(v));
  }

  /// Packed priorities of the arcs out of v, parallel to neighbors(v).
  [[nodiscard]] std::span<const EdgePriority> arc_priorities(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return sec_.priorities.subspan(sec_.offsets[v], degree(v));
  }

  /// The undirected edges, indexed by edge id.
  [[nodiscard]] std::span<const WeightedEdge> edges() const {
    return sec_.edges;
  }

  [[nodiscard]] const WeightedEdge& edge(EdgeId e) const {
    LLPMST_ASSERT(e < sec_.edges.size());
    return sec_.edges[e];
  }

  /// Packed priority of undirected edge e.
  [[nodiscard]] EdgePriority edge_priority(EdgeId e) const {
    LLPMST_ASSERT(e < sec_.edges.size());
    return make_priority(sec_.edges[e].w, e);
  }

  /// Priority of v's minimum-weight incident edge, or kInfinitePriority for
  /// an isolated vertex.  Precomputed at build time — the paper notes the
  /// MWE set "can be computed when the graph is input".
  [[nodiscard]] EdgePriority min_incident_priority(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return sec_.mwe[v];
  }

  /// Per-arc MWE flags, parallel to neighbors(v)/arc_priorities(v): flag i
  /// is 1 iff that arc's edge is the minimum-weight incident edge of EITHER
  /// endpoint (i.e. it is in the paper's MWE set and triggers LLP-Prim's
  /// early fixing).  Stored alongside the arc stream so the hot relaxation
  /// loop reads it sequentially instead of chasing mwe_[target] randomly.
  [[nodiscard]] std::span<const std::uint8_t> arc_mwe_flags(VertexId v) const {
    LLPMST_ASSERT(v < num_vertices());
    return sec_.mwe_flags.subspan(sec_.offsets[v], degree(v));
  }

  /// Sum of all edge weights (useful as an upper bound in tests).
  [[nodiscard]] TotalWeight total_weight() const;

  // -- Storage introspection ----------------------------------------------
  /// The backing storage; nullptr only for a default-constructed empty
  /// graph.  Its address is the graph's identity for caches: two CsrGraph
  /// handles over one storage are the same graph.
  [[nodiscard]] const GraphStorage* storage() const { return storage_.get(); }
  [[nodiscard]] StoragePtr storage_ptr() const { return storage_; }
  /// "heap" | "mmap" | "none" (empty default-constructed graph).
  [[nodiscard]] const char* backend_name() const {
    return storage_ != nullptr ? storage_->backend_name() : "none";
  }

 private:
  StoragePtr storage_;
  CsrSections sec_;  // cached copy of storage_->sections() (one less hop)
};

}  // namespace llpmst
