#include "obs/report.hpp"

#include <cinttypes>
#include <cstdio>

#include "obs/metrics.hpp"

namespace llpmst::obs {

namespace {

void append_kv_u64(std::string& out, const char* key, std::uint64_t v,
                   bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64 "%s", key, v,
                comma ? "," : "");
  out += buf;
}

void append_kv_ms(std::string& out, const char* key, double ms,
                  bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.3f%s", key, ms, comma ? "," : "");
  out += buf;
}

}  // namespace

std::string build_run_report(const RunInfo& info, const MstAlgoStats* algo) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"llpmst-run-report\",\"schema_version\":1,";

  // --- run metadata
  out += "\"run\":{\"tool\":";
  out += json_quote(info.tool);
  out += ",\"algorithm\":";
  out += json_quote(info.algorithm);
  out += ",";
  append_kv_u64(out, "threads", info.threads);
  out += "\"graph\":{";
  append_kv_u64(out, "vertices", info.vertices);
  append_kv_u64(out, "edges", info.edges, false);
  out += "},";
  append_kv_ms(out, "wall_ms", info.wall_ms);
  out += "\"outcome\":";
  out += json_quote(info.outcome);
  out += ",\"fallback_reason\":";
  out += json_quote(info.fallback_reason);
  out += "},";

  // --- per-algorithm stats
  if (algo != nullptr) {
    out += "\"algo\":{";
    append_kv_u64(out, "fixed_via_heap", algo->fixed_via_heap);
    append_kv_u64(out, "fixed_via_mwe", algo->fixed_via_mwe);
    append_kv_u64(out, "staged_in_q", algo->staged_in_q);
    append_kv_u64(out, "edges_relaxed", algo->edges_relaxed);
    append_kv_u64(out, "rounds", algo->rounds);
    append_kv_u64(out, "pointer_jumps", algo->pointer_jumps);
    out += "\"heap\":{";
    append_kv_u64(out, "pushes", algo->heap.pushes);
    append_kv_u64(out, "pops", algo->heap.pops);
    append_kv_u64(out, "adjusts", algo->heap.adjusts);
    append_kv_u64(out, "sift_steps", algo->heap.sift_steps, false);
    out += "},\"llp\":{";
    append_kv_u64(out, "sweeps", algo->llp_sweeps);
    append_kv_u64(out, "advances", algo->llp_advances);
    out += "\"converged\":";
    out += algo->llp_converged ? "true" : "false";
    out += ",\"outcome\":";
    out += json_quote(run_outcome_name(algo->outcome));
    out += "}},";
  } else {
    out += "\"algo\":null,";
  }

  // --- registry metrics
  const std::vector<MetricSample> metrics = snapshot_metrics();
  out += "\"counters\":{";
  bool first = true;
  for (const MetricSample& m : metrics) {
    if (m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const MetricSample& m : metrics) {
    if (!m.is_gauge) continue;
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(m.name);
    out.push_back(':');
    out += std::to_string(m.value);
  }
  out += "},";

  // --- phase aggregates
  out += "\"phases\":[";
  first = true;
  for (const PhaseSample& p : snapshot_phases()) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":";
    out += json_quote(p.name);
    out += ",";
    append_kv_u64(out, "count", p.count);
    append_kv_ms(out, "total_ms", static_cast<double>(p.total_us) / 1000.0,
                 false);
    out += "}";
  }
  out += "],";

  // --- warnings
  out += "\"warnings\":[";
  first = true;
  for (const std::string& w : snapshot_warnings()) {
    if (!first) out.push_back(',');
    first = false;
    out += json_quote(w);
  }
  out += "]}";
  return out;
}

bool write_run_report(const std::string& path, const std::string& json,
                      std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace llpmst::obs
