#include "llp/llp_boruvka.hpp"

#include "core/run_context.hpp"

namespace llpmst {

MstResult llp_boruvka(const CsrGraph& g, RunContext& ctx) {
  // Context-owned persistent scratch: repeated runs through one context
  // reuse capacity and grain feedback (see parallel_boruvka.cpp).
  BoruvkaConfig config;
  config.jumping = PointerJumping::kAsynchronous;
  config.dedup_contracted_edges = false;
  config.obs_label = "llp_boruvka";
  config.scratch = &ctx.scratch().get<BoruvkaScratch>();
  return boruvka_engine(g, ctx, config);
}

MstResult llp_boruvka_configured(const CsrGraph& g, RunContext& ctx,
                                 const BoruvkaConfig& config) {
  return boruvka_engine(g, ctx, config);
}

MstAlgorithm llp_boruvka_algorithm() {
  return {"llp-boruvka", "LLP-Boruvka",
          "Boruvka with async LLP pointer jumping, no dedup (Algorithm 6)",
          {.parallel = true, .msf_capable = true, .deterministic = true,
           .cancellable = true},
          [](const CsrGraph& g, RunContext& ctx) {
            return llp_boruvka(g, ctx);
          }};
}

}  // namespace llpmst
