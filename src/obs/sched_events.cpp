#include "obs/sched_events.hpp"

#if LLPMST_OBS

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>

namespace llpmst::obs {

namespace {

// An event packed into two 64-bit words so the ring can be written and read
// with plain relaxed atomics (no per-slot locking, no seqlock):
//   word a: kind in the top 8 bits, timestamp (us) in the low 56 — the obs
//           epoch is process-relative, so 56 bits is > 2000 years;
//   word b: the value payload.
constexpr std::uint64_t kTsMask = (std::uint64_t{1} << 56) - 1;

struct Slot {
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
};

// One ring per emitting thread.  The owner is the only writer of `slots`
// and the only thread advancing `head`; sched_start() resets `head` from
// the coordinator, which the lifecycle contract makes safe (no region in
// flight) and the atomics keep defined even when violated.
struct SchedRing {
  explicit SchedRing(std::uint32_t w)
      : worker(w), slots(new Slot[kSchedRingCapacity]) {}
  const std::uint32_t worker;
  std::atomic<std::uint64_t> head{0};  // total events ever written
  std::unique_ptr<Slot[]> slots;
};

struct SchedState {
  std::atomic<bool> collecting{false};
  std::mutex rings_mu;
  std::vector<std::unique_ptr<SchedRing>> rings;  // stable addresses
};

SchedState& state() {
  static SchedState* s = new SchedState;  // leaked: outlives all threads
  return *s;
}

SchedRing& local_ring() {
  thread_local SchedRing* ring = [] {
    SchedState& s = state();
    std::lock_guard lock(s.rings_mu);
    s.rings.push_back(std::make_unique<SchedRing>(
        static_cast<std::uint32_t>(shard_id())));
    return s.rings.back().get();
  }();
  return *ring;
}

}  // namespace

bool sched_collecting() {
  return state().collecting.load(std::memory_order_relaxed);
}

void sched_start() {
  SchedState& s = state();
  {
    std::lock_guard lock(s.rings_mu);
    for (auto& ring : s.rings) {
      ring->head.store(0, std::memory_order_relaxed);
    }
  }
  s.collecting.store(true, std::memory_order_release);
}

void sched_stop() {
  state().collecting.store(false, std::memory_order_release);
}

void sched_record(SchedEventKind kind, std::uint64_t ts_us,
                  std::uint64_t value) {
  if (!sched_collecting()) return;
  SchedRing& ring = local_ring();
  const std::uint64_t h = ring.head.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[h & (kSchedRingCapacity - 1)];
  slot.a.store((static_cast<std::uint64_t>(kind) << 56) | (ts_us & kTsMask),
               std::memory_order_relaxed);
  slot.b.store(value, std::memory_order_relaxed);
  // Release: a snapshot that sees this head sees the slot words above.
  ring.head.store(h + 1, std::memory_order_release);
}

SchedSnapshot snapshot_sched_events() {
  SchedSnapshot snap;
  SchedState& s = state();
  std::lock_guard lock(s.rings_mu);
  for (auto& ring : s.rings) {
    const std::uint64_t h = ring->head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(h, kSchedRingCapacity);
    snap.dropped += h - count;
    snap.events.reserve(snap.events.size() + count);
    for (std::uint64_t i = h - count; i < h; ++i) {
      const Slot& slot = ring->slots[i & (kSchedRingCapacity - 1)];
      const std::uint64_t a = slot.a.load(std::memory_order_relaxed);
      SchedEvent e;
      e.kind = static_cast<SchedEventKind>(a >> 56);
      e.worker = ring->worker;
      e.ts_us = a & kTsMask;
      e.value = slot.b.load(std::memory_order_relaxed);
      snap.events.push_back(e);
    }
  }
  return snap;
}

}  // namespace llpmst::obs

#endif  // LLPMST_OBS
