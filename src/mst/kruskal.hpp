// Kruskal's algorithm: globally sort edges by priority, add each edge that
// joins two different union-find components.  Handles forests naturally.
// Serves as the oracle implementation in tests (simplest to audit) and as a
// sequential baseline.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

[[nodiscard]] MstResult kruskal(const CsrGraph& g);
/// Uniform registry entry point (the context is unused: sequential, no
/// cancellation points).
[[nodiscard]] MstResult kruskal(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm kruskal_algorithm();

}  // namespace llpmst
