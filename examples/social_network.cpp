// Social-network backbone example: on a scale-free (Kronecker/RMAT) graph —
// the paper's graph500 workload family — compute the minimum spanning
// FOREST with LLP-Boruvka.  Scale-free samples are naturally disconnected,
// which is exactly the case LLP-Boruvka handles and the Prim family does
// not: the forest gives, per community, the cheapest backbone that keeps
// everyone connected (think: minimum-latency overlay links to lease).
//
//   $ ./examples/social_network --scale 16 --threads 4
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/run_context.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_components.hpp"
#include "mst/verifier.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;

  CliParser cli("social_network",
                "Minimum spanning forest of a scale-free network with "
                "LLP-Boruvka + LLP connected components");
  auto& scale = cli.add_int("scale", 15, "log2 of the vertex count");
  auto& edge_factor = cli.add_int("edge-factor", 8, "edges per vertex");
  auto& threads = cli.add_int("threads", 4, "worker threads");
  auto& seed = cli.add_int("seed", 1, "generator seed");
  cli.parse(argc, argv);

  RmatParams params;
  params.scale = static_cast<int>(scale);
  params.edge_factor = static_cast<int>(edge_factor);
  params.seed = static_cast<std::uint64_t>(seed);

  Timer gen;
  const EdgeList list = generate_rmat(params);
  const CsrGraph g = CsrGraph::build(list);
  std::printf("Generated RMAT scale %lld (graph500 parameters) in %s\n",
              static_cast<long long>(scale),
              format_duration_ms(gen.elapsed_ms()).c_str());
  std::printf("Network: %s\n", describe(compute_stats(g)).c_str());

  ThreadPool pool(static_cast<std::size_t>(threads));

  // Community structure via the LLP connected-components solver.
  Timer cc_timer;
  const LlpComponentsResult cc = llp_connected_components(g, pool);
  std::printf("\nLLP components: %zu communities in %s (%llu sweeps)\n",
              cc.num_components,
              format_duration_ms(cc_timer.elapsed_ms()).c_str(),
              static_cast<unsigned long long>(cc.llp.sweeps));

  std::map<VertexId, std::size_t> sizes;
  for (const VertexId l : cc.label) ++sizes[l];
  std::vector<std::size_t> by_size;
  for (const auto& [label, count] : sizes) by_size.push_back(count);
  std::sort(by_size.rbegin(), by_size.rend());
  std::printf("  largest communities:");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, by_size.size()); ++i) {
    std::printf(" %s", format_count(by_size[i]).c_str());
  }
  std::printf("\n");

  // Backbone forest.
  Timer msf_timer;
  RunContext ctx(pool);
  const MstResult msf = llp_boruvka(g, ctx);
  const double msf_ms = msf_timer.elapsed_ms();
  const VerifyResult v = verify_spanning_forest(g, msf);
  if (!v.ok) {
    std::fprintf(stderr, "verification failed: %s\n", v.error.c_str());
    return 1;
  }
  if (msf.num_trees != cc.num_components) {
    std::fprintf(stderr, "tree/component count mismatch\n");
    return 1;
  }

  std::printf("\nBackbone forest (LLP-Boruvka, %lld threads, %s):\n",
              static_cast<long long>(threads),
              format_duration_ms(msf_ms).c_str());
  std::printf("  links kept   : %s of %s (%.2f%%)\n",
              format_count(msf.edges.size()).c_str(),
              format_count(g.num_edges()).c_str(),
              100.0 * static_cast<double>(msf.edges.size()) /
                  static_cast<double>(std::max<std::size_t>(1, g.num_edges())));
  std::printf("  total cost   : %s\n",
              format_count(msf.total_weight).c_str());
  std::printf("  Boruvka rounds: %llu, pointer jumps: %llu\n",
              static_cast<unsigned long long>(msf.stats.rounds),
              static_cast<unsigned long long>(msf.stats.pointer_jumps));
  return 0;
}
