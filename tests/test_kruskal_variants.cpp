// kruskal_parallel and filter_kruskal against the plain Kruskal oracle.
// (They are also swept by test_mst_property; this file covers their
// specific mechanics.)
#include <gtest/gtest.h>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/special.hpp"
#include "mst/filter_kruskal.hpp"
#include "mst/kruskal.hpp"
#include "mst/kruskal_parallel.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

class KruskalVariants : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
  RunContext ctx_{pool_};
};
INSTANTIATE_TEST_SUITE_P(Threads, KruskalVariants, testing::Values(1, 4));

TEST_P(KruskalVariants, ParallelKruskalMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 2000;
    p.num_edges = 10000;
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    EXPECT_EQ(kruskal_parallel(g, ctx_).edges, kruskal(g).edges)
        << "seed " << seed;
  }
}

TEST_P(KruskalVariants, FilterKruskalMatchesOracle) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 2000;
    p.num_edges = 20000;  // dense enough that filtering actually kicks in
    p.seed = seed + 50;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    EXPECT_EQ(filter_kruskal(g, ctx_).edges, kruskal(g).edges)
        << "seed " << seed;
  }
}

TEST_P(KruskalVariants, FilterKruskalBelowBaseThreshold) {
  // Small inputs take the pure base-case path.
  const CsrGraph g = csr(make_complete(30, 7));
  EXPECT_EQ(filter_kruskal(g, ctx_).edges, kruskal(g).edges);
}

TEST_P(KruskalVariants, FilterKruskalOnForest) {
  const CsrGraph g = csr(make_forest(4, 500, 3));
  const MstResult r = filter_kruskal(g, ctx_);
  EXPECT_EQ(r.edges, kruskal(g).edges);
  EXPECT_EQ(r.num_trees, 4u);
}

TEST_P(KruskalVariants, ParallelKruskalOnRmat) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 10;
  p.seed = 4;
  const CsrGraph g = csr(generate_rmat(p));
  EXPECT_EQ(kruskal_parallel(g, ctx_).edges, kruskal(g).edges);
  EXPECT_EQ(filter_kruskal(g, ctx_).edges, kruskal(g).edges);
}

TEST_P(KruskalVariants, TrivialGraphs) {
  const CsrGraph empty = csr(EdgeList(1));
  EXPECT_TRUE(kruskal_parallel(empty, ctx_).edges.empty());
  EXPECT_TRUE(filter_kruskal(empty, ctx_).edges.empty());
  EdgeList two(2);
  two.add_edge(0, 1, 9);
  two.normalize();
  const CsrGraph g2 = csr(two);
  EXPECT_EQ(filter_kruskal(g2, ctx_).total_weight, 9u);
}

}  // namespace
}  // namespace llpmst
