#include "mst/parallel_boruvka.hpp"

#include "mst/boruvka_engine.hpp"

namespace llpmst {

MstResult parallel_boruvka(const CsrGraph& g, ThreadPool& pool) {
  BoruvkaConfig config;
  config.jumping = PointerJumping::kSynchronized;
  config.dedup_contracted_edges = true;
  config.obs_label = "parallel_boruvka";
  return boruvka_engine(g, pool, config);
}

}  // namespace llpmst
