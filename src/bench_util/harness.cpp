#include "bench_util/harness.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "bench_util/table.hpp"
#include "obs/bandwidth.hpp"
#include "obs/critical_path.hpp"
#include "obs/hw_counters.hpp"
#include "obs/mem_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/sched_events.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"
#include "support/timer.hpp"

namespace llpmst {

namespace {

// One structured datapoint, buffered until ObsCli::finish() writes the
// JSONL file.  Collection is opt-in (--bench-json) and guarded by a mutex
// only on the record path — the timed region itself is untouched.
struct BenchRecord {
  std::string workload;
  std::size_t threads = 0;
  std::string algo;
  int warmup = 0;
  bool verified = false;
  std::vector<double> samples_ms;
  obs::HwSample hw;       // delta across the timed reps; available=false
  bool has_hw = false;    // ... unless the group was running
  obs::MemSample mem;     // alloc_* are deltas across the timed reps;
  bool has_mem = false;   // ... unless the allocator hooks are compiled out
  double sched_util = 0;  // scheduler utilization across the timed reps;
  double steal_rate = 0;  // ... and steal success rate,
  bool has_sched = false;  // ... unless obs is compiled out / no events
  // --profile: the top-3 hottest phase paths by profiler samples across
  // the timed reps, and the estimated DRAM bandwidth (needs hw).
  std::vector<obs::ProfPhaseCount> prof_top;
  std::uint64_t prof_samples = 0;
  unsigned prof_hz = 0;
  bool has_prof = false;
  double est_gbps = -1.0;  // < 0 means not computable (no hw / no wall)
};

struct RecordStore {
  std::mutex mu;
  bool recording = false;
  bool profile = false;  // bracket timed reps with the sampling profiler
  unsigned profile_hz = obs::kDefaultProfileHz;
  std::string ctx_workload;
  std::size_t ctx_threads = 0;
  std::vector<BenchRecord> records;
};

RecordStore& store() {
  static RecordStore* s = new RecordStore;
  return *s;
}

void append_json_f(std::string& out, const char* key, double v,
                   bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "\"%s\":%.6g%s", key, v, comma ? "," : "");
  out += buf;
}

void append_hw_or_null(std::string& out, const char* key, std::uint64_t v,
                       bool comma = true) {
  char buf[96];
  if (v == obs::kHwAbsent) {
    std::snprintf(buf, sizeof buf, "\"%s\":null%s", key, comma ? "," : "");
  } else {
    std::snprintf(buf, sizeof buf, "\"%s\":%" PRIu64 "%s", key, v,
                  comma ? "," : "");
  }
  out += buf;
}

/// One llpmst-bench document (single line, no trailing newline).
std::string render_record(const std::string& bench, const BenchRecord& r) {
  const Summary s = summarize(r.samples_ms);
  std::string out;
  out.reserve(512);
  out += "{\"schema\":\"llpmst-bench\",\"schema_version\":1,\"bench\":";
  out += obs::json_quote(bench);
  out += ",\"workload\":";
  out += obs::json_quote(r.workload);
  out += ",\"algo\":";
  out += obs::json_quote(r.algo);
  char buf[128];
  std::snprintf(buf, sizeof buf,
                ",\"threads\":%zu,\"warmup\":%d,\"repetitions\":%zu,"
                "\"verified\":%s,\"ms\":{",
                r.threads, r.warmup, r.samples_ms.size(),
                r.verified ? "true" : "false");
  out += buf;
  append_json_f(out, "median", s.median);
  append_json_f(out, "p25", s.p25);
  append_json_f(out, "p75", s.p75);
  append_json_f(out, "iqr", s.p75 - s.p25);
  append_json_f(out, "min", s.min);
  append_json_f(out, "max", s.max);
  append_json_f(out, "mean", s.mean);
  append_json_f(out, "stddev", s.stddev, false);
  out += "},\"samples_ms\":[";
  for (std::size_t i = 0; i < r.samples_ms.size(); ++i) {
    if (i != 0) out.push_back(',');
    std::snprintf(buf, sizeof buf, "%.6g", r.samples_ms[i]);
    out += buf;
  }
  out += "],\"hw\":";
  if (r.has_hw && r.hw.available) {
    out += "{\"available\":true,";
    append_hw_or_null(out, "cycles", r.hw.cycles);
    append_hw_or_null(out, "instructions", r.hw.instructions);
    append_hw_or_null(out, "cache_references", r.hw.cache_references);
    append_hw_or_null(out, "cache_misses", r.hw.cache_misses);
    append_hw_or_null(out, "branch_misses", r.hw.branch_misses);
    if (r.hw.task_clock_ms < 0) {
      out += "\"task_clock_ms\":null}";
    } else {
      append_json_f(out, "task_clock_ms", r.hw.task_clock_ms, false);
      out += "}";
    }
  } else {
    out += "null";
  }
  const obs::MemSample mem = obs::mem_sample();
  out += ",\"mem\":{";
  std::snprintf(buf, sizeof buf, "\"peak_rss_bytes\":%" PRIu64 ",",
                mem.peak_rss_bytes);
  out += buf;
  if (mem.alloc_tracking) {
    std::snprintf(buf, sizeof buf,
                  "\"alloc\":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
                  ",\"frees\":%" PRIu64 "},",
                  mem.alloc_count, mem.alloc_bytes, mem.free_count);
    out += buf;
  } else {
    out += "\"alloc\":null,";
  }
  // Unlike "alloc" (process-cumulative at write time, useful only for a
  // leak-shaped sanity glance), "alloc_delta" brackets exactly this record's
  // timed repetitions — divide by "repetitions" for per-run counts.  This is
  // the allocation regression metric bench_compare.py gates on.
  if (r.has_mem) {
    std::snprintf(buf, sizeof buf,
                  "\"alloc_delta\":{\"count\":%" PRIu64 ",\"bytes\":%" PRIu64
                  ",\"frees\":%" PRIu64 "}}",
                  r.mem.alloc_count, r.mem.alloc_bytes, r.mem.free_count);
    out += buf;
  } else {
    out += "\"alloc_delta\":null}";
  }
  // Scheduler telemetry for this record's timed reps.  bench_compare.py
  // reports (never gates) drift in these — utilization collapse is a lead
  // worth surfacing, but too noisy to fail CI on.
  if (r.has_sched) {
    std::snprintf(buf, sizeof buf,
                  ",\"sched\":{\"utilization\":%.4f,\"steal_rate\":%.4f}",
                  r.sched_util, r.steal_rate);
    out += buf;
  } else {
    out += ",\"sched\":null";
  }
  // Profiler attribution for this record's timed reps (--profile).
  // bench_compare.py reports (never gates) drift in the top phase paths.
  if (r.has_prof) {
    std::snprintf(buf, sizeof buf,
                  ",\"profile\":{\"hz\":%u,\"samples\":%" PRIu64
                  ",\"top_phases\":[",
                  r.prof_hz, r.prof_samples);
    out += buf;
    for (std::size_t i = 0; i < r.prof_top.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += "{\"name\":";
      out += obs::json_quote(r.prof_top[i].name);
      std::snprintf(buf, sizeof buf, ",\"samples\":%" PRIu64 "}",
                    r.prof_top[i].samples);
      out += buf;
    }
    out += "],\"est_gbps\":";
    if (r.est_gbps < 0) {
      out += "null}";
    } else {
      std::snprintf(buf, sizeof buf, "%.4f}", r.est_gbps);
      out += buf;
    }
  } else {
    out += ",\"profile\":null";
  }
  out += "}";
  return out;
}

void push_record(BenchRecord&& r) {
  RecordStore& s = store();
  std::lock_guard lock(s.mu);
  if (!s.recording) return;
  r.workload = s.ctx_workload;
  r.threads = s.ctx_threads;
  s.records.push_back(std::move(r));
}

bool recording_active() {
  RecordStore& s = store();
  std::lock_guard lock(s.mu);
  return s.recording;
}

}  // namespace

void set_bench_context(const std::string& workload, std::size_t threads) {
  RecordStore& s = store();
  std::lock_guard lock(s.mu);
  s.ctx_workload = workload;
  s.ctx_threads = threads;
}

void record_bench_samples(const std::string& algo,
                          const std::vector<double>& samples_ms, int warmup,
                          bool verified) {
  if (!recording_active()) return;
  BenchRecord r;
  r.algo = algo;
  r.warmup = warmup;
  r.verified = verified;
  r.samples_ms = samples_ms;
  push_record(std::move(r));
}

BenchMeasurement measure_mst(const std::string& name, const CsrGraph& g,
                             const MstResult& reference,
                             const std::function<MstResult()>& run,
                             const BenchOptions& options) {
  (void)g;
  BenchMeasurement m;
  m.name = name;

  for (int i = 0; i < options.warmup; ++i) {
    MstResult r = run();
    if (options.verify && i == 0) {
      if (r.edges != reference.edges ||
          r.total_weight != reference.total_weight) {
        std::fprintf(stderr,
                     "FATAL: %s produced a different MSF than the reference "
                     "(weight %llu vs %llu, %zu vs %zu edges)\n",
                     name.c_str(),
                     static_cast<unsigned long long>(r.total_weight),
                     static_cast<unsigned long long>(reference.total_weight),
                     r.edges.size(), reference.edges.size());
        std::abort();
      }
      m.verified = true;
    }
  }

  // The hw-counter delta brackets exactly the timed repetitions; reads are
  // a handful of syscalls, well outside the per-rep Timer windows.
  const bool record = recording_active();
  const bool hw = obs::hw_active();
  const obs::HwSample hw_before = hw ? obs::hw_read() : obs::HwSample{};
  // The alloc delta brackets the same window: two counter reads (relaxed
  // atomics in the operator-new hooks), nothing inside the Timer spans.
  const obs::MemSample mem_before = record ? obs::mem_sample()
                                           : obs::MemSample{};
  // Scheduler rings bracket the same window.  The per-event cost is two
  // relaxed stores on a thread-owned line, so leaving them on for the
  // timed reps stays inside the perf-smoke noise floor.
  const bool sched = record && obs::kCompiledIn;
  if (sched) obs::sched_start();
  // The sampling profiler (--profile) brackets the timed reps too: arming
  // is a handful of syscalls outside the Timer windows, the samples land
  // inside them — which is the point: the perf-smoke overhead gate measures
  // exactly this configuration against the unprofiled baseline.
  bool prof = false;
  if (record && obs::kCompiledIn) {
    RecordStore& s = store();
    unsigned hz = 0;
    {
      std::lock_guard lock(s.mu);
      if (s.profile) hz = s.profile_hz;
    }
    if (hz != 0) prof = obs::prof_start(hz, nullptr);
  }

  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(options.repetitions));
  for (int i = 0; i < options.repetitions; ++i) {
    Timer t;
    m.last_result = run();
    samples.push_back(t.elapsed_ms());
  }
  m.time_ms = summarize(samples);
  if (sched) obs::sched_stop();
  if (prof) obs::prof_stop();

  if (record) {
    BenchRecord r;
    r.algo = name;
    r.warmup = options.warmup;
    r.verified = m.verified;
    r.samples_ms = std::move(samples);
    if (sched) {
      const obs::SchedulerSummary ss = obs::scheduler_summary();
      if (ss.has_events) {
        r.sched_util = ss.utilization;
        r.steal_rate = ss.steal_success_rate;
        r.has_sched = true;
      }
    }
    if (hw) {
      const obs::HwSample after = obs::hw_read();
      if (after.available && hw_before.available) {
        r.hw = after;
        const auto sub = [](std::uint64_t a, std::uint64_t b) {
          return (a == obs::kHwAbsent || b == obs::kHwAbsent || a < b)
                     ? obs::kHwAbsent
                     : a - b;
        };
        r.hw.cycles = sub(after.cycles, hw_before.cycles);
        r.hw.instructions = sub(after.instructions, hw_before.instructions);
        r.hw.cache_references =
            sub(after.cache_references, hw_before.cache_references);
        r.hw.cache_misses = sub(after.cache_misses, hw_before.cache_misses);
        r.hw.branch_misses =
            sub(after.branch_misses, hw_before.branch_misses);
        r.hw.task_clock_ms =
            (after.task_clock_ms < 0 || hw_before.task_clock_ms < 0)
                ? -1.0
                : after.task_clock_ms - hw_before.task_clock_ms;
        r.has_hw = true;
      }
    }
    if (mem_before.alloc_tracking) {
      const obs::MemSample after = obs::mem_sample();
      if (after.alloc_tracking) {
        r.mem = after;
        r.mem.alloc_count = after.alloc_count - mem_before.alloc_count;
        r.mem.alloc_bytes = after.alloc_bytes - mem_before.alloc_bytes;
        r.mem.free_count = after.free_count - mem_before.free_count;
        r.has_mem = true;
      }
    }
    if (prof) {
      const obs::ProfSnapshot snap = obs::prof_snapshot();
      if (snap.available) {
        r.has_prof = true;
        r.prof_hz = snap.hz;
        r.prof_samples = snap.samples;
        r.prof_top = snap.phases;
        std::sort(r.prof_top.begin(), r.prof_top.end(),
                  [](const obs::ProfPhaseCount& a,
                     const obs::ProfPhaseCount& b) {
                    if (a.samples != b.samples) return a.samples > b.samples;
                    return a.name < b.name;
                  });
        if (r.prof_top.size() > 3) r.prof_top.resize(3);
      }
      // Estimated DRAM bandwidth over the timed reps: hw cache-miss delta
      // x line size / timed wall.  A lower bound (prefetch and
      // write-allocate traffic are not counted) — see obs/bandwidth.hpp.
      if (r.has_hw && r.hw.cache_misses != obs::kHwAbsent) {
        double wall_ms = 0;
        for (const double ms : r.samples_ms) wall_ms += ms;
        if (wall_ms > 0) {
          r.est_gbps = static_cast<double>(r.hw.cache_misses *
                                           obs::kCacheLineBytes) /
                       (wall_ms * 1e6);
        }
      }
    }
    push_record(std::move(r));
  }
  return m;
}

ObsCli::ObsCli(CliParser& cli)
    : metrics_json_(&cli.add_string(
          "metrics-json", "",
          "write the JSON run report (counters, phases) to this file")),
      trace_(&cli.add_string(
          "trace", "",
          "collect and write a Chrome trace-event JSON to this file")),
      bench_json_(&cli.add_string(
          "bench-json", "",
          "write one llpmst-bench JSON record per measured datapoint "
          "(JSON Lines) to this file")),
      csv_out_(&cli.add_string(
          "csv-out", "",
          "also write the result table(s) as CSV to this file (independent "
          "of --csv, which picks the stdout format)")),
      hw_counters_(&cli.add_bool(
          "hw-counters", false,
          "collect hardware counters (cycles, cache misses, ...) via "
          "perf_event_open; degrades to 'unavailable' when denied")),
      profile_(&cli.add_bool(
          "profile", false,
          "bracket every measured datapoint's timed repetitions with the "
          "per-thread CPU-time sampling profiler and record the top-3 "
          "hottest phase paths (plus est. DRAM bandwidth with "
          "--hw-counters) into the bench records")),
      profile_hz_(&cli.add_int(
          "profile-hz", static_cast<std::int64_t>(obs::kDefaultProfileHz),
          "profiler sampling rate in samples/second of per-thread CPU "
          "time (--profile)")) {}

void ObsCli::begin() const {
  if (!metrics_json_->empty() || !trace_->empty()) obs::set_enabled(true);
  // --profile needs the phase *stack* for sample attribution but not the
  // timing aggregates; the stack-only gate keeps hot-loop PhaseTimer
  // scopes at a few relaxed stores each, so the perf_smoke.sh overhead
  // gate (<=3% wall vs the unprofiled baseline) measures sampling with
  // attribution, not the full metrics machinery.
  if (*profile_) obs::set_phase_stack_enabled(true);
  if (!trace_->empty()) {
    ThreadPool::set_trace_regions(true);
    obs::trace_start();
  }
  if (!bench_json_->empty() || *profile_) {
    RecordStore& s = store();
    std::lock_guard lock(s.mu);
    s.recording = !bench_json_->empty();
    if (*profile_ && !obs::prof_supported()) {
      std::fprintf(stderr,
                   "note: --profile ignored (profiler unavailable on this "
                   "platform or build)\n");
    } else {
      s.profile = *profile_;
      // Validate before the unsigned cast: a negative value would wrap to a
      // huge rate and a too-high one rounds the timer interval to 0.
      std::int64_t hz = *profile_hz_;
      if (hz < 1 || hz > static_cast<std::int64_t>(obs::kMaxProfileHz)) {
        std::fprintf(stderr,
                     "note: --profile-hz %lld out of range [1, %u]; using "
                     "default %u\n",
                     static_cast<long long>(hz), obs::kMaxProfileHz,
                     obs::kDefaultProfileHz);
        hz = obs::kDefaultProfileHz;
      }
      s.profile_hz = static_cast<unsigned>(hz);
    }
  }
  if (*hw_counters_) {
    std::string why;
    if (!obs::hw_begin(&why)) {
      std::fprintf(stderr, "note: hardware counters unavailable: %s\n",
                   why.c_str());
    }
  }
}

bool ObsCli::write_table(const Table& t) const {
  if (csv_out_->empty()) return true;
  std::FILE* f = std::fopen(csv_out_->c_str(), csv_written_ ? "a" : "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open %s for writing\n",
                 csv_out_->c_str());
    return false;
  }
  if (csv_written_) std::fputc('\n', f);
  const std::string csv = t.to_csv();
  const bool ok = std::fwrite(csv.data(), 1, csv.size(), f) == csv.size();
  std::fclose(f);
  if (!ok) {
    std::fprintf(stderr, "error: short write to %s\n", csv_out_->c_str());
    return false;
  }
  if (!csv_written_) std::printf("csv: %s\n", csv_out_->c_str());
  csv_written_ = true;
  return true;
}

bool ObsCli::finish(const std::string& tool, std::size_t threads) const {
  if (!trace_->empty()) {
    // Fold the last measured datapoint's scheduler timelines into the
    // trace (pid-1 tracks) before it closes.
    obs::export_sched_to_trace();
    obs::trace_stop();
  }
  bool ok = true;
  if (!metrics_json_->empty()) {
    obs::RunInfo info;
    info.tool = tool;
    info.threads = threads;
    const obs::HwSample hw_sample = *hw_counters_ ? obs::hw_read()
                                                  : obs::HwSample{};
    std::string err;
    if (obs::write_run_report(
            *metrics_json_,
            obs::build_run_report(info, nullptr,
                                  *hw_counters_ ? &hw_sample : nullptr),
            &err)) {
      std::printf("metrics: %s\n", metrics_json_->c_str());
    } else {
      std::fprintf(stderr, "error writing %s: %s\n", metrics_json_->c_str(),
                   err.c_str());
      ok = false;
    }
  }
  if (!bench_json_->empty()) {
    RecordStore& s = store();
    std::lock_guard lock(s.mu);
    std::FILE* f = std::fopen(bench_json_->c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot open %s for writing\n",
                   bench_json_->c_str());
      ok = false;
    } else {
      bool wrote = true;
      for (const BenchRecord& r : s.records) {
        const std::string line = render_record(tool, r);
        wrote = std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
                std::fputc('\n', f) != EOF && wrote;
      }
      std::fclose(f);
      if (wrote) {
        std::printf("bench records: %s (%zu datapoints)\n",
                    bench_json_->c_str(), s.records.size());
      } else {
        std::fprintf(stderr, "error: short write to %s\n",
                     bench_json_->c_str());
        ok = false;
      }
    }
  }
  if (!trace_->empty()) {
    std::string err;
    if (obs::write_trace_json(*trace_, &err)) {
      std::printf("trace: %s (%zu events)\n", trace_->c_str(),
                  obs::trace_event_count());
    } else {
      std::fprintf(stderr, "error writing %s: %s\n", trace_->c_str(),
                   err.c_str());
      ok = false;
    }
  }
  if (*hw_counters_) obs::hw_end();
  return ok;
}

}  // namespace llpmst
