// Unified graph-loading entry point: picks the reader from the file
// extension and returns Expected<EdgeList>, so every tool and service gets
// the same dispatch rules (and the same structured errors) instead of each
// reimplementing them.
//
//   .gr                -> DIMACS        (read_dimacs)
//   .metis / .graph    -> METIS         (read_metis)
//   .bin               -> llpmst binary (read_edge_list_binary)
//   anything else      -> "u v w" text  (read_edge_list_text)
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "support/status.hpp"

namespace llpmst {

enum class GraphFormat { kAuto, kDimacs, kMetis, kBinary, kText };

/// Maps a path to the format read_graph would use (kAuto resolves by
/// extension; never returns kAuto).
[[nodiscard]] GraphFormat detect_graph_format(const std::string& path);

/// Loads a graph file.  On failure the Status carries the reader's verdict:
/// kIoError (open/size failures), kCorruptInput (bad bytes), or the
/// injected-fault codes when a chaos failpoint is armed.
[[nodiscard]] Expected<EdgeList> read_graph(
    const std::string& path, GraphFormat format = GraphFormat::kAuto);

}  // namespace llpmst
