#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON produced by --trace.

Aggregates the complete ("ph":"X") spans by name and prints per-phase
totals, counts, and percentages of the traced wall span; counter tracks
("ph":"C") are always listed, and --counters prints per-track statistics
(samples, min, max, last value):

    tools/trace2summary.py trace.json
    tools/trace2summary.py --top 10 trace.json
    tools/trace2summary.py --counters trace.json
    tools/trace2summary.py --utilization trace.json

Works on any trace-event file (the format is a de-facto standard), but the
phase names it prints are the nested paths emitted by the llpmst
observability layer ("llp_boruvka/round/hook", "pool/region", ...).
Counter values are read from args.value (the llpmst shape) with a fallback
to the first numeric entry in args.  Entries that are not JSON objects are
skipped (some writers emit metadata strings), and the wall span covers
counter samples as well as complete spans — a trace whose first record is
a counter event from a worker thread summarizes correctly.

--utilization reads the per-worker scheduler tracks an obs-enabled build
exports under pid 1 ("sched/task" / "sched/idle" spans, "sched/steal"
instants) and prints a busy/idle/steal breakdown per worker plus the
top-k longest solver rounds.  A trace without those tracks (e.g. from an
LLPMST_OBS=0 build) reports that and exits 0.
"""
import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    # Both container shapes of the spec: {"traceEvents": [...]} or a bare
    # JSON array.
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError("no traceEvents array found")
    return events


def counter_value(event):
    """Extracts the sampled value from a 'C' event: args.value (the llpmst
    shape), else the first numeric args entry, else None."""
    args = event.get("args")
    if not isinstance(args, dict):
        return None
    v = args.get("value")
    if isinstance(v, (int, float)):
        return v
    for v in args.values():
        if isinstance(v, (int, float)):
            return v
    return None


def summarize(events):
    """Returns (per-name stats, wall span in us, per-track counter stats)."""
    spans = defaultdict(lambda: {"count": 0, "total_us": 0, "max_us": 0})
    counters = defaultdict(lambda: {"count": 0, "min": None, "max": None,
                                    "last": None, "last_ts": None})
    t_min, t_max = None, None
    for e in events:
        if not isinstance(e, dict):
            continue  # tolerate metadata strings some writers emit
        ph = e.get("ph")
        if ph == "C":
            c = counters[e.get("name", "?")]
            c["count"] += 1
            v = counter_value(e)
            ts = e.get("ts", 0)
            # Counter samples extend the wall span too: a trace that opens
            # with a worker-thread counter event must not shrink the span.
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = ts if t_max is None else max(t_max, ts)
            if v is not None:
                c["min"] = v if c["min"] is None else min(c["min"], v)
                c["max"] = v if c["max"] is None else max(c["max"], v)
                if c["last_ts"] is None or ts >= c["last_ts"]:
                    c["last"], c["last_ts"] = v, ts
            continue
        if ph != "X":
            continue
        name = e.get("name", "?")
        ts = e.get("ts", 0)
        dur = e.get("dur", 0)
        s = spans[name]
        s["count"] += 1
        s["total_us"] += dur
        s["max_us"] = max(s["max_us"], dur)
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts + dur if t_max is None else max(t_max, ts + dur)
    wall_us = (t_max - t_min) if t_min is not None else 0
    return spans, wall_us, counters


def utilization_report(events, top):
    """Per-worker busy/idle/steal breakdown from the pid-1 scheduler tracks
    plus the longest solver rounds; returns the process exit code."""
    workers = {}
    t_min, t_max = None, None
    rounds = []  # (dur_us, ts, name) for pid-0 per-round spans
    for e in events:
        if not isinstance(e, dict):
            continue
        name = e.get("name", "")
        ph = e.get("ph")
        ts = e.get("ts", 0)
        dur = e.get("dur", 0)
        if e.get("pid") == 1 and name.startswith("sched/"):
            w = workers.setdefault(e.get("tid", 0),
                                   {"busy_us": 0, "idle_us": 0,
                                    "tasks": 0, "steals": 0})
            if name == "sched/task" and ph == "X":
                w["busy_us"] += dur
                w["tasks"] += 1
            elif name == "sched/idle" and ph == "X":
                w["idle_us"] += dur
            elif name == "sched/steal":
                w["steals"] += 1
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = ts + dur if t_max is None else max(t_max, ts + dur)
        elif ph == "X" and (name == "round" or name.endswith("/round")):
            rounds.append((dur, ts, name))

    if not workers:
        print("no scheduler tracks (pid 1, 'sched/*') in this trace — "
              "collect it with an LLPMST_OBS=1 build and --trace")
        return 0

    span_us = (t_max - t_min) if t_min is not None else 0
    print(f"{'worker':>6}  {'busy ms':>10}  {'idle ms':>10}  {'tasks':>7}  "
          f"{'steals':>7}  {'% busy':>6}")
    total_busy = 0
    for tid in sorted(workers):
        w = workers[tid]
        total_busy += w["busy_us"]
        pct = 100.0 * w["busy_us"] / span_us if span_us else 0.0
        print(f"{tid:>6}  {w['busy_us'] / 1000.0:>10.3f}  "
              f"{w['idle_us'] / 1000.0:>10.3f}  {w['tasks']:>7}  "
              f"{w['steals']:>7}  {pct:>5.1f}%")
    util = total_busy / (span_us * len(workers)) if span_us else 1.0
    print(f"\nscheduler span: {span_us / 1000.0:.3f} ms over "
          f"{len(workers)} workers, utilization {min(util, 1.0):.1%}")

    if rounds:
        k = top if top > 0 else 5
        rounds.sort(reverse=True)
        print(f"\ntop {min(k, len(rounds))} longest rounds:")
        for dur, ts, name in rounds[:k]:
            print(f"  {name}  start {ts / 1000.0:.3f} ms  "
                  f"dur {dur / 1000.0:.3f} ms")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace-event JSON file (from --trace)")
    ap.add_argument("--top", type=int, default=0,
                    help="only print the N phases with the largest totals")
    ap.add_argument("--counters", action="store_true",
                    help="print per-track counter statistics "
                         "(samples, min, max, last)")
    ap.add_argument("--utilization", action="store_true",
                    help="per-worker busy/idle/steal breakdown from the "
                         "pid-1 scheduler tracks + top-k longest rounds")
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error reading {args.trace}: {e}", file=sys.stderr)
        return 1

    if args.utilization:
        return utilization_report(events, args.top)

    spans, wall_us, counters = summarize(events)
    if not spans and not counters:
        print("no complete ('ph':'X') spans or counter tracks in the trace")
        return 0

    if spans:
        # Sort by total time, largest first.  Percentages are of the traced
        # wall span; nested phases overlap their parents, so columns do not
        # sum to 100%.
        rows = sorted(spans.items(), key=lambda kv: -kv[1]["total_us"])
        if args.top > 0:
            rows = rows[: args.top]

        name_w = max(len("phase"), max(len(n) for n, _ in rows))
        print(f"{'phase':<{name_w}}  {'count':>8}  {'total ms':>10}  "
              f"{'mean us':>9}  {'max us':>8}  {'% wall':>6}")
        for name, s in rows:
            pct = 100.0 * s["total_us"] / wall_us if wall_us else 0.0
            mean = s["total_us"] / s["count"]
            print(f"{name:<{name_w}}  {s['count']:>8}  "
                  f"{s['total_us'] / 1000.0:>10.3f}  {mean:>9.1f}  "
                  f"{s['max_us']:>8}  {pct:>5.1f}%")
    else:
        print("no complete ('ph':'X') spans in the trace "
              "(counter tracks only)")

    if args.counters and counters:
        def fmt(v):
            if v is None:
                return "-"
            return f"{v:g}" if isinstance(v, float) else str(v)

        name_w = max(len("counter"), max(len(n) for n in counters))
        print(f"\n{'counter':<{name_w}}  {'samples':>8}  {'min':>12}  "
              f"{'max':>12}  {'last':>12}")
        for name in sorted(counters):
            c = counters[name]
            print(f"{name:<{name_w}}  {c['count']:>8}  {fmt(c['min']):>12}  "
                  f"{fmt(c['max']):>12}  {fmt(c['last']):>12}")

    print(f"\ntraced wall span: {wall_us / 1000.0:.3f} ms, "
          f"{sum(s['count'] for s in spans.values())} spans, "
          f"{len(spans)} distinct phases"
          + (f", counter tracks: {', '.join(sorted(counters))}"
             if counters else ", no counter tracks"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
