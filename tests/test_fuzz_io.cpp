// Failure-injection / fuzz tests for the file readers: random truncation and
// byte corruption of valid files must always yield a clean error or a valid
// graph — never a crash, hang, or out-of-range edge list.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/metis.hpp"
#include "support/failpoint.hpp"
#include "support/random.hpp"
#include "support/status.hpp"

namespace llpmst {
namespace {

class FuzzIo : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_fuzz_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) { return (dir_ / n).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void spit(const std::string& p, const std::string& content) {
    std::ofstream out(p, std::ios::binary);
    out << content;
  }

  /// Checks an accepted graph is internally consistent.
  static void check_sane(const EdgeList& g) {
    for (const WeightedEdge& e : g.edges()) {
      ASSERT_LT(e.u, g.num_vertices());
      ASSERT_LT(e.v, g.num_vertices());
      ASSERT_NE(e.u, e.v);
    }
    ASSERT_TRUE(g.is_normalized());
  }

  std::filesystem::path dir_;
};

EdgeList sample_graph() {
  ErdosRenyiParams p;
  p.num_vertices = 60;
  p.num_edges = 200;
  p.seed = 3;
  return generate_erdos_renyi(p);
}

TEST_F(FuzzIo, DimacsSurvivesTruncationAtEveryPrefix) {
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());
  const std::string full = slurp(path("g.gr"));
  // Every 37th prefix keeps runtime sane while covering all code paths.
  for (std::size_t len = 0; len < full.size(); len += 37) {
    spit(path("t.gr"), full.substr(0, len));
    const DimacsResult r = read_dimacs(path("t.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, DimacsSurvivesRandomByteCorruption) {
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());
  const std::string full = slurp(path("g.gr"));
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    spit(path("m.gr"), mutated);
    const DimacsResult r = read_dimacs(path("m.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesTruncationAtEveryPrefix) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  const std::string full = slurp(path("g.bin"));
  for (std::size_t len = 0; len <= full.size(); len += 5) {
    spit(path("t.bin"), full.substr(0, len));
    const EdgeListResult r = read_edge_list_binary(path("t.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesRandomByteCorruption) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  const std::string full = slurp(path("g.bin"));
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.bin"), mutated);
    const EdgeListResult r = read_edge_list_binary(path("m.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinaryRejectsHugeDeclaredCounts) {
  // Header declaring 2^40 edges over 4 vertices must fail on truncation,
  // not allocate terabytes.
  std::string blob = "LLPM";
  const std::uint32_t version = 1;
  const std::uint64_t n = 4, m = 1ull << 40;
  blob.append(reinterpret_cast<const char*>(&version), 4);
  blob.append(reinterpret_cast<const char*>(&n), 8);
  blob.append(reinterpret_cast<const char*>(&m), 8);
  spit(path("huge.bin"), blob);
  const EdgeListResult r = read_edge_list_binary(path("huge.bin"));
  EXPECT_FALSE(r.ok());
}

TEST_F(FuzzIo, MetisSurvivesTruncationAndCorruption) {
  ASSERT_TRUE(write_metis(path("g.metis"), sample_graph()).ok());
  const std::string full = slurp(path("g.metis"));
  for (std::size_t len = 0; len < full.size(); len += 41) {
    spit(path("t.metis"), full.substr(0, len));
    const EdgeListResult r = read_metis(path("t.metis"));
    if (r.ok()) check_sane(r.graph);
  }
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.metis"), mutated);
    const EdgeListResult r = read_metis(path("m.metis"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, TextSurvivesGarbage) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string noise;
    const std::size_t len = rng.next_below(400);
    for (std::size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.next_below(256)));
    }
    spit(path("noise.txt"), noise);
    const EdgeListResult r = read_edge_list_text(path("noise.txt"));
    if (r.ok()) check_sane(r.graph);
  }
}

// ------------------------------------------------- adversarial inputs

TEST_F(FuzzIo, DimacsLongCommentLineIsNotParsedAsData) {
  // A comment line longer than any internal read buffer: with chunked
  // fgets parsing, the continuation "a 1 9999 1" used to be (mis)read as a
  // fresh arc line.  The reader must treat the whole physical line as one
  // comment.
  std::string file = "p sp 2 1\nc ";
  file.append(2000, 'x');
  file += " a 1 2 7\na 1 2 7\n";
  spit(path("long.gr"), file);
  const DimacsResult r = read_dimacs(path("long.gr"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  ASSERT_EQ(r.graph.num_edges(), 1u);
  EXPECT_EQ(r.graph[0], (WeightedEdge{0, 1, 7}));
}

TEST_F(FuzzIo, TextLongCommentLineIsNotParsedAsData) {
  std::string file = "# ";
  file.append(2000, 'y');
  file += " 0 1 5\n0 1 5\n";
  spit(path("long.txt"), file);
  const EdgeListResult r = read_edge_list_text(path("long.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_edges(), 1u);
}

TEST_F(FuzzIo, TextLongDataLineParsesWhole) {
  // A valid data line padded past the old 512-byte buffer must parse as one
  // line (trailing spaces), not split into a spurious second record.
  std::string file = "0 1 5";
  file.append(1500, ' ');
  file += "\n";
  spit(path("wide.txt"), file);
  const EdgeListResult r = read_edge_list_text(path("wide.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_edges(), 1u);
}

TEST_F(FuzzIo, NonFiniteAndNegativeWeightsRejected) {
  for (const char* bad : {"0 1 nan\n", "0 1 inf\n", "0 1 -3\n", "0 1 1.5\n",
                          "0 1 0x10\n"}) {
    spit(path("bad.txt"), bad);
    const EdgeListResult r = read_edge_list_text(path("bad.txt"));
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status.code(), StatusCode::kCorruptInput) << bad;
  }
}

TEST_F(FuzzIo, TextOutOfRangeVertexIdRejected) {
  spit(path("big.txt"), "0 4294967295 1\n");  // kInvalidVertex
  const EdgeListResult r = read_edge_list_text(path("big.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("out of range"), std::string::npos);
}

TEST_F(FuzzIo, MetisTrailingGarbageRejected) {
  // "2 1 1" header, then vertex lines with a stray non-numeric token that
  // the old reader silently ignored.
  spit(path("g.metis"), "2 1 1\n2 7 garbage\n1 7\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("trailing garbage"), std::string::npos);
}

TEST_F(FuzzIo, BinaryTrailingBytesRejected) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  std::string blob = slurp(path("g.bin"));
  blob += "EXTRA";
  spit(path("g.bin"), blob);
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("trailing bytes"), std::string::npos);
}

// ------------------------------------------------- llpmstb CSR snapshots
//
// Every rejection path of the mmap reader: the header is untrusted input,
// so truncation, out-of-bounds section tables, corrupt checksums, and
// overflow-bait counts must all come back as a Status — never a crash,
// never a read past the mapping.  Each failure message carries the one-line
// repro command for the mst_tool-level equivalent.

/// "repro: mst_tool --input FILE --graph-format binary" — the CLI spelling
/// of the same read, for pasting into a shell when a case regresses.
std::string snapshot_repro(const std::string& file) {
  return "repro: mst_tool --input " + file + " --graph-format binary";
}

/// FNV-1a mirror of the on-disk checksum, for re-sealing crafted headers.
std::uint64_t test_fnv1a(const unsigned char* p, std::size_t len) {
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// llpmstb v1 header field offsets (see src/graph/io/binary_csr.cpp).
constexpr std::size_t kHdrSize = 152;
constexpr std::size_t kHdrN = 16;
constexpr std::size_t kHdrSections = 32;  // 6 x {offset u64, length u64}
constexpr std::size_t kHdrChecksum = 144;

/// Re-seals a crafted header so the reader's checks past the header
/// checksum are reachable.
void reseal_header(std::string& blob) {
  ASSERT_GE(blob.size(), kHdrSize);
  std::memset(blob.data() + kHdrChecksum, 0, 8);
  const std::uint64_t sum = test_fnv1a(
      reinterpret_cast<const unsigned char*>(blob.data()), kHdrSize);
  std::memcpy(blob.data() + kHdrChecksum, &sum, 8);
}

class FuzzSnapshot : public FuzzIo {
 protected:
  std::string write_sample(const std::string& name) {
    EdgeList list = sample_graph();
    list.normalize();
    const CsrGraph g = CsrGraph::build(list);
    const std::string p = path(name);
    EXPECT_TRUE(write_binary_csr(p, g).ok());
    return p;
  }
  static BinaryCsrOptions verified() {
    BinaryCsrOptions o;
    o.verify_payload = true;
    return o;
  }
};

TEST_F(FuzzSnapshot, SurvivesTruncationAtEveryPrefix) {
  const std::string full = slurp(write_sample("g.llpmstb"));
  for (std::size_t len = 0; len < full.size(); len += 7) {
    spit(path("t.llpmstb"), full.substr(0, len));
    const Expected<CsrGraph> r = read_binary_csr(path("t.llpmstb"));
    EXPECT_FALSE(r.ok()) << "accepted a " << len << "-byte prefix; "
                         << snapshot_repro(path("t.llpmstb"));
  }
}

TEST_F(FuzzSnapshot, ZeroLengthFileRejected) {
  spit(path("empty.llpmstb"), "");
  const Expected<CsrGraph> r = read_binary_csr(path("empty.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("empty.llpmstb"));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptInput);
  EXPECT_NE(r.status().message().find("empty file"), std::string::npos);
}

TEST_F(FuzzSnapshot, TruncatedHeaderRejected) {
  const std::string full = slurp(write_sample("g.llpmstb"));
  spit(path("hdr.llpmstb"), full.substr(0, kHdrSize / 2));
  const Expected<CsrGraph> r = read_binary_csr(path("hdr.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("hdr.llpmstb"));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptInput);
  EXPECT_NE(r.status().message().find("truncated header"), std::string::npos);
}

TEST_F(FuzzSnapshot, SectionOffsetOutOfBoundsRejected) {
  std::string blob = slurp(write_sample("g.llpmstb"));
  // Point the targets section (entry 1) far past EOF and re-seal, so the
  // reader's bounds check — not the checksum — must catch it.
  const std::uint64_t huge = 1ull << 40;
  std::memcpy(blob.data() + kHdrSections + 16, &huge, 8);
  reseal_header(blob);
  spit(path("oob.llpmstb"), blob);
  const Expected<CsrGraph> r = read_binary_csr(path("oob.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("oob.llpmstb"));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptInput);
  EXPECT_NE(r.status().message().find("past the end"), std::string::npos);
}

TEST_F(FuzzSnapshot, CountsOverflowRejected) {
  std::string blob = slurp(write_sample("g.llpmstb"));
  // n = 2^40: the expected-length arithmetic would overflow if the count
  // guard were missing.  Re-sealed so the guard itself is what fires.
  const std::uint64_t n = 1ull << 40;
  std::memcpy(blob.data() + kHdrN, &n, 8);
  reseal_header(blob);
  spit(path("count.llpmstb"), blob);
  const Expected<CsrGraph> r = read_binary_csr(path("count.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("count.llpmstb"));
  EXPECT_EQ(r.status().code(), StatusCode::kCorruptInput);
  EXPECT_NE(r.status().message().find("32-bit id space"), std::string::npos);
}

TEST_F(FuzzSnapshot, HeaderChecksumMismatchRejected) {
  std::string blob = slurp(write_sample("g.llpmstb"));
  blob[kHdrN] ^= 0x5a;  // corrupt n without re-sealing
  spit(path("hsum.llpmstb"), blob);
  const Expected<CsrGraph> r = read_binary_csr(path("hsum.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("hsum.llpmstb"));
  EXPECT_NE(r.status().message().find("header checksum"), std::string::npos);
}

TEST_F(FuzzSnapshot, PayloadChecksumMismatchRejected) {
  std::string blob = slurp(write_sample("g.llpmstb"));
  blob.back() ^= 0x5a;  // last byte of the edges section
  spit(path("psum.llpmstb"), blob);
  // The default (header-only) mount accepts it — payload verification is
  // opt-in by design; verify_payload must reject it.
  EXPECT_TRUE(read_binary_csr(path("psum.llpmstb")).ok());
  const Expected<CsrGraph> r =
      read_binary_csr(path("psum.llpmstb"), verified());
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("psum.llpmstb"));
  EXPECT_NE(r.status().message().find("payload checksum"), std::string::npos);
}

TEST_F(FuzzSnapshot, TrailingBytesRejected) {
  std::string blob = slurp(write_sample("g.llpmstb"));
  blob += "EXTRA";
  spit(path("tail.llpmstb"), blob);
  const Expected<CsrGraph> r = read_binary_csr(path("tail.llpmstb"));
  ASSERT_FALSE(r.ok()) << snapshot_repro(path("tail.llpmstb"));
  EXPECT_NE(r.status().message().find("trailing bytes"), std::string::npos);
}

TEST_F(FuzzSnapshot, RandomByteCorruptionNeverCrashesWhenVerified) {
  const std::string sample = write_sample("g.llpmstb");
  const std::string full = slurp(sample);
  const Expected<CsrGraph> baseline = read_binary_csr(sample, verified());
  ASSERT_TRUE(baseline.ok()) << baseline.status().to_string();
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.llpmstb"), mutated);
    const Expected<CsrGraph> r =
        read_binary_csr(path("m.llpmstb"), verified());
    // A flip landing in alignment padding (checksummed as neither header
    // nor payload) can legitimately be accepted; the graph must then be
    // identical to the original in every section the spans see.
    if (r.ok()) {
      EXPECT_EQ(r->num_edges(), baseline->num_edges())
          << snapshot_repro(path("m.llpmstb"));
      EXPECT_EQ(r->total_weight(), baseline->total_weight())
          << snapshot_repro(path("m.llpmstb"));
    }
  }
}

TEST_F(FuzzSnapshot, MissingFileIsIoErrorNotCorrupt) {
  const Expected<CsrGraph> r = read_binary_csr(path("nope.llpmstb"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(FuzzSnapshot, InjectedMountFaultYieldsStatus) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  const std::string p = write_sample("g.llpmstb");
  fail::disarm_all();
  ASSERT_TRUE(fail::arm("io/binary_csr", "return"));
  const Expected<CsrGraph> r = read_binary_csr(p);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInjectedFault);
  fail::disarm_all();
  EXPECT_TRUE(read_binary_csr(p).ok());
}

// ------------------------------------------------- injected reader faults

TEST_F(FuzzIo, InjectedReaderFaultYieldsStatusNotAbort) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());

  fail::disarm_all();
  ASSERT_TRUE(fail::arm("io/dimacs", "return"));
  const DimacsResult r1 = read_dimacs(path("g.gr"));
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status.code(), StatusCode::kInjectedFault);

  ASSERT_TRUE(fail::arm("io/dimacs", "alloc"));
  const DimacsResult r2 = read_dimacs(path("g.gr"));
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status.code(), StatusCode::kResourceExhausted);

  fail::disarm_all();
  const DimacsResult r3 = read_dimacs(path("g.gr"));
  EXPECT_TRUE(r3.ok()) << r3.status.to_string();
}

TEST_F(FuzzIo, InjectedFaultBudgetExpires) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  fail::disarm_all();
  ASSERT_TRUE(fail::arm("io/edge_list_binary", "2*return"));
  EXPECT_FALSE(read_edge_list_binary(path("g.bin")).ok());
  EXPECT_FALSE(read_edge_list_binary(path("g.bin")).ok());
  // Budget exhausted: the third read goes through.
  EXPECT_TRUE(read_edge_list_binary(path("g.bin")).ok());
  EXPECT_EQ(fail::fire_count("io/edge_list_binary"), 2u);
  fail::disarm_all();
}

}  // namespace
}  // namespace llpmst
