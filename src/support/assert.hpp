// Assertion macros used across the library.
//
// LLPMST_ASSERT  — debug-only invariant check, compiled out in NDEBUG builds.
// LLPMST_CHECK   — always-on check for conditions that guard against corrupt
//                  input or API misuse; aborts with a message on failure.
//
// Hot loops use LLPMST_ASSERT so Release builds pay nothing; anything that
// validates untrusted input (file readers, public API preconditions) uses
// LLPMST_CHECK.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace llpmst {

[[noreturn]] inline void assertion_failure(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const char* msg) {
  std::fprintf(stderr, "%s failed: %s\n  at %s:%d\n  %s\n", kind, expr, file,
               line, msg ? msg : "");
  std::abort();
}

}  // namespace llpmst

#define LLPMST_CHECK(expr)                                                   \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      ::llpmst::assertion_failure("LLPMST_CHECK", #expr, __FILE__, __LINE__, \
                                  nullptr);                                  \
  } while (0)

#define LLPMST_CHECK_MSG(expr, msg)                                          \
  do {                                                                       \
    if (!(expr)) [[unlikely]]                                                \
      ::llpmst::assertion_failure("LLPMST_CHECK", #expr, __FILE__, __LINE__, \
                                  (msg));                                    \
  } while (0)

#ifdef NDEBUG
#define LLPMST_ASSERT(expr) ((void)0)
#else
#define LLPMST_ASSERT(expr)                                                   \
  do {                                                                        \
    if (!(expr)) [[unlikely]]                                                 \
      ::llpmst::assertion_failure("LLPMST_ASSERT", #expr, __FILE__, __LINE__, \
                                  nullptr);                                   \
  } while (0)
#endif
