// Sequential union-find (disjoint set union) with union-by-rank and path
// halving: the substrate of Kruskal and of the MSF verifier.
// Near-inverse-Ackermann amortized cost per operation.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace llpmst {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0), count_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  [[nodiscard]] std::size_t size() const { return parent_.size(); }

  /// Number of disjoint sets currently.
  [[nodiscard]] std::size_t num_sets() const { return count_; }

  /// Representative of x's set, with path halving.
  std::uint32_t find(std::uint32_t x) {
    LLPMST_ASSERT(x < parent_.size());
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  [[nodiscard]] bool same_set(std::uint32_t a, std::uint32_t b) {
    return find(a) == find(b);
  }

  /// Merges the sets of a and b.  Returns true iff they were distinct.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --count_;
    return true;
  }

  void reset() {
    std::iota(parent_.begin(), parent_.end(), 0u);
    std::fill(rank_.begin(), rank_.end(), std::uint8_t{0});
    count_ = parent_.size();
  }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t count_;
};

}  // namespace llpmst
