// Sampling CPU profiler: per-thread POSIX CPU-time timers deliver SIGPROF
// at a configurable rate; an async-signal-safe handler captures the live
// PhaseTimer path, the worker id, and a bounded frame-pointer stack walk
// into a per-thread lock-free sample ring (modeled on sched_events.hpp).
// Snapshotting symbolizes the unique PCs (dladdr + demangle) and folds the
// samples into flamegraph-ready stacks ("phase;subphase;func 123") plus a
// per-phase sample histogram for the run report's schema-v4 "profile"
// section.
//
// Design contract:
//   * Signal safety.  The SIGPROF handler touches only: the owning thread's
//     pre-registered ProfThread (found via a thread_local pointer whose
//     first — allocating — access happens at registration, never in the
//     handler), the thread's PhaseStack (written with release ordering by
//     PhaseTimer, see obs/metrics.hpp), the ucontext program counter, and a
//     frame-pointer walk whose every dereference is bounds-checked against
//     the thread's stack extent (recorded once via pthread_getattr_np), so
//     it cannot fault even in a build without frame pointers — it just
//     terminates early.  No allocation, no locks, no formatting; errno is
//     saved and restored.
//   * SPSC rings.  The handler is the only writer of its thread's ring (it
//     runs *on* that thread); slots are relaxed atomics with a release
//     head store, exactly the sched_events protocol, so a snapshot racing a
//     straggler sample reads at worst a stale sample, never tears memory.
//     Full rings drop-oldest and the snapshot reports how many.
//   * Degradation.  prof_start() NEVER fails the run: on an unsupported
//     platform (non-Linux, non-x86-64/AArch64) or a timer_create failure it
//     returns false with a human-readable reason, and prof_snapshot()
//     returns {available:false, reason} — the same contract hw_counters
//     uses.  Under LLPMST_OBS=0 everything here is an inline no-op.
//   * Threads arm lazily.  prof_start() arms the calling thread;
//     ThreadPool workers arm themselves on their next region via
//     prof_ensure_thread_timer() (one relaxed load when profiling is off).
//     Each thread's timer counts *that thread's* CPU time
//     (CLOCK_THREAD_CPUTIME_ID), so idle threads produce no samples and
//     the aggregate sample count is proportional to total CPU burn.
//
// Lifecycle: prof_start(hz) ... parallel work ... prof_stop();
// prof_snapshot() after stop (coordinator call, same rule as
// snapshot_sched_events).  prof_start resets previously buffered samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace llpmst::obs {

/// Default sampling rate.  Prime, so the sampler cannot phase-lock with
/// millisecond-periodic work; ~100 Hz keeps the measured overhead well
/// under the 3% acceptance bound (each sample is ~1-2 us of handler work).
inline constexpr unsigned kDefaultProfileHz = 97;

/// Highest accepted sampling rate (10 us period).  Beyond this the timer
/// interval rounds toward 0 ns, which timer_settime treats as "disarm" —
/// prof_start rejects anything above instead of silently collecting
/// nothing.  CLI layers validate against the same bound so a negative
/// --profile-hz can't wrap through the unsigned cast.
inline constexpr unsigned kMaxProfileHz = 100000;

/// One folded stack: phase path components and code frames joined by ';'
/// (outermost first, leaf last), with the number of samples attributed.
struct ProfStack {
  std::string stack;
  std::uint64_t samples = 0;
};

/// Per-phase-path sample counts ('/'-joined paths, matching
/// snapshot_phases() naming so the report's phases/profile sections join).
struct ProfPhaseCount {
  std::string name;
  std::uint64_t samples = 0;
};

struct ProfSnapshot {
  bool available = false;
  std::string unavailable_reason;  // non-empty iff !available

  unsigned hz = 0;
  std::uint64_t samples = 0;  // total captured (sum over stacks)
  std::uint64_t dropped = 0;  // overwritten by drop-oldest across rings
  std::vector<ProfPhaseCount> phases;  // sorted by name
  std::vector<ProfStack> stacks;       // sorted by samples desc, then name
};

#if LLPMST_OBS

/// Samples retained per thread.  At the default 97 Hz one ring holds ~21 s
/// of one thread's CPU time; beyond that drop-oldest keeps the newest.
inline constexpr std::size_t kProfRingCapacity = 2048;

/// True when this build/platform can profile at all (Linux on x86-64 or
/// AArch64 with POSIX per-thread timers).
[[nodiscard]] bool prof_supported();

/// Arms the profiler at `hz` samples/second of per-thread CPU time and
/// arms the calling thread's timer.  Returns true when sampling; on
/// failure returns false with a reason in *why (may be null) and leaves
/// the subsystem in the explicit-unavailable state.  Restarting resets
/// buffered samples.  Never fails the run.
bool prof_start(unsigned hz, std::string* why);

/// Disarms every registered thread's timer and stops collection.  Buffered
/// samples stay readable until the next prof_start().
void prof_stop();

/// One relaxed load; true between a successful prof_start() and prof_stop().
[[nodiscard]] bool prof_collecting();

/// Arms a per-thread timer for the calling thread if profiling is on and
/// it has none yet.  One relaxed load when profiling is off — cheap enough
/// for ThreadPool::run_region to call unconditionally.
void prof_ensure_thread_timer();

/// Symbolizes and folds all buffered samples (call after prof_stop()).
/// When the profiler never started (or could not), returns the
/// unavailable shape with the failure reason.
[[nodiscard]] ProfSnapshot prof_snapshot();

/// Renders a snapshot as folded-stack text, one "stack count" line each —
/// the input format of tools/prof2flame.py and Brendan Gregg's
/// flamegraph.pl.  Empty string for an unavailable snapshot.
[[nodiscard]] std::string prof_render_folded(const ProfSnapshot& snap);

#else  // !LLPMST_OBS — the whole subsystem folds away.

inline constexpr std::size_t kProfRingCapacity = 0;
[[nodiscard]] inline bool prof_supported() { return false; }
inline bool prof_start(unsigned, std::string* why) {
  if (why != nullptr) *why = "observability compiled out (LLPMST_OBS=0)";
  return false;
}
inline void prof_stop() {}
[[nodiscard]] inline bool prof_collecting() { return false; }
inline void prof_ensure_thread_timer() {}
[[nodiscard]] inline ProfSnapshot prof_snapshot() {
  ProfSnapshot s;
  s.unavailable_reason = "observability compiled out (LLPMST_OBS=0)";
  return s;
}
[[nodiscard]] inline std::string prof_render_folded(const ProfSnapshot&) {
  return {};
}

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
