// Synthetic road-network generator.
//
// Stand-in for the paper's USA-road-d.USA graph (Table I): what matters to
// the MST algorithms is the road morphology — very low average degree
// (USA-road has m/n ~ 2.4), huge diameter, spatially correlated weights —
// not the actual geography.  The generator builds a width x height grid of
// intersections, keeps each axis street with high probability (dropping some
// creates irregular blocks), adds sparse diagonal "shortcut" roads, and
// weights every edge by its rounded Euclidean length on a jittered embedding
// (distance-category weights, like the -d USA files).  A spanning-tree
// backbone keeps the network connected regardless of the drop rate.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace llpmst {

struct RoadParams {
  std::uint32_t width = 512;
  std::uint32_t height = 512;
  double keep_street = 0.92;   // probability an axis street survives
  double diagonal_p = 0.03;    // probability of a diagonal shortcut per cell
  double jitter = 0.35;        // positional jitter in cell units, [0, 0.5)
  std::uint32_t unit = 1000;   // weight units per cell of distance
  std::uint64_t seed = 1;
};

/// Generates a normalized, connected road-network edge list with
/// width*height vertices.
[[nodiscard]] EdgeList generate_road_network(const RoadParams& params);

}  // namespace llpmst
