// Memory telemetry: peak RSS and (optionally) global allocation counts.
//
// Peak RSS comes from getrusage(RUSAGE_SELF) and is available in every
// build flavour — it is read only when a report is built, so it costs
// nothing on any hot path.
//
// Allocation count/bytes come from replacement global operator new/delete
// hooks compiled into mem_stats.cpp when LLPMST_OBS=1 (same switch and
// zero-cost-when-off policy as the rest of src/obs/, see
// docs/observability.md).  The hooks are two relaxed atomic adds on top of
// the underlying malloc/free — the same always-live policy as counters.
// Bytes freed are tracked via the sized delete overloads; unsized deletes
// count frees but not bytes, so `alloc_bytes` is a high-water total of
// bytes requested, not a live-heap figure.
//
// With LLPMST_OBS=0 the hooks are not compiled at all (the process keeps
// the default operator new) and MemSample reports `alloc_tracking=false`
// with zero alloc fields; the report serializes that as "alloc": null.
#pragma once

#include <cstdint>

namespace llpmst::obs {

struct MemSample {
  std::uint64_t peak_rss_bytes = 0;  // ru_maxrss; 0 if getrusage failed
  bool alloc_tracking = false;       // operator new/delete hooks compiled in
  std::uint64_t alloc_count = 0;     // operator new calls since process start
  std::uint64_t alloc_bytes = 0;     // bytes requested from operator new
  std::uint64_t free_count = 0;      // operator delete calls
};

/// Snapshot of process memory stats (cheap: one getrusage + atomic loads).
[[nodiscard]] MemSample mem_sample();

}  // namespace llpmst::obs
