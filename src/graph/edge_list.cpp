#include "graph/edge_list.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace llpmst {

void EdgeList::add_edge(VertexId u, VertexId v, Weight w) {
  LLPMST_ASSERT(u < num_vertices_ && v < num_vertices_);
  edges_.push_back({u, v, w});
}

void EdgeList::normalize() {
  // Drop self loops and canonicalize endpoint order.
  std::size_t out = 0;
  for (const WeightedEdge& e : edges_) {
    if (e.u == e.v) continue;
    WeightedEdge c = e;
    if (c.u > c.v) std::swap(c.u, c.v);
    edges_[out++] = c;
  }
  edges_.resize(out);

  // Sort by (u, v, w) and keep the lightest copy of each parallel bundle.
  std::sort(edges_.begin(), edges_.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              if (a.v != b.v) return a.v < b.v;
              return a.w < b.w;
            });
  out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u &&
        edges_[out - 1].v == edges_[i].v) {
      continue;  // heavier duplicate
    }
    edges_[out++] = edges_[i];
  }
  edges_.resize(out);
}

bool EdgeList::is_normalized() const {
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const WeightedEdge& e = edges_[i];
    if (e.u >= e.v) return false;
    if (e.v >= num_vertices_) return false;
    if (i > 0) {
      const WeightedEdge& p = edges_[i - 1];
      if (p.u > e.u || (p.u == e.u && p.v >= e.v)) return false;
    }
  }
  return true;
}

}  // namespace llpmst
