// JSON run report: one stable document combining run metadata, the
// algorithm's MstAlgoStats/HeapStats/LLP instrumentation, every registered
// observability counter/gauge, aggregated phase timings, and warnings.
// This is what `mst_tool --metrics-json` and the bench `--metrics-json`
// flags write; tools/ and CI validate it against the schema described in
// docs/observability.md:
//
//   {
//     "schema": "llpmst-run-report", "schema_version": 4,
//     "run": {"tool":..., "algorithm":..., "threads":N,
//             "graph": {"vertices":N, "edges":M}, "wall_ms":X},
//     "algo": { heap/fix/sweep stats ... } | null,
//     "hw":   null                                    (not requested)
//           | {"available": false, "reason": "..."}   (degraded)
//           | {"available": true, "cycles":N|null, ..., "phases":[...]},
//     "mem":  {"peak_rss_bytes":N, "alloc": {...} | null},
//     "counters": {"llp_prim/heap_inserts": N, ...},
//     "gauges":   {"boruvka/rounds": N, ...},
//     "phases":   [{"name":..., "count":N, "total_ms":X}, ...],
//     "rounds":   [{"label":..., "round":N, "components":N, "edges":N,
//                   "advances":N, "wall_ms":X, "imbalance":X}, ...],
//     "scheduler": null | {"utilization":X, "steal_success_rate":X,
//                          "span_us":N, ..., "workers":[...],
//                          "grain_hist":[...]},
//     "profile": null                                  (not requested)
//              | {"available": false, "reason": "..."} (degraded)
//              | {"available": true, "hz":N, "samples":N, "dropped":N,
//                 "phases":[{"name":..., "samples":N}, ...],
//                 "top_stacks":[{"stack":"a;b;c", "samples":N}, ...]},
//     "bandwidth": null | {"available": false, "reason": "..."}
//                | {"available": true, "line_bytes":64,
//                   "phases":[{"name":..., "cache_misses":N,
//                              "est_bytes":N, "wall_ms":X, "est_gbps":X,
//                              "instr_per_byte":X, "verdict":"..."}]},
//     "warnings": ["..."]
//   }
//
// The report itself is always available — an LLPMST_OBS=0 build emits the
// same document with empty counters/gauges/phases (and the "unavailable"
// hw shape when counters were requested), so downstream parsers never
// branch on the build flavour.
#pragma once

#include <cstddef>
#include <string>

#include "mst/mst_result.hpp"
#include "obs/hw_counters.hpp"
#include "obs/profiler.hpp"

namespace llpmst::obs {

/// Metadata describing the measured run.
struct RunInfo {
  std::string tool;       // emitting binary, e.g. "mst_tool"
  std::string algorithm;  // algorithm label; empty when not applicable
  std::size_t threads = 0;
  std::size_t vertices = 0;
  std::size_t edges = 0;
  double wall_ms = 0.0;
  /// Per-run verdict ("ok", "deadline_exceeded", "injected_fault", ...);
  /// emitted as run.outcome.  Matches run_outcome_name().
  std::string outcome = "ok";
  /// Non-empty when the portfolio fell back to sequential Kruskal; emitted
  /// as run.fallback_reason ("" when no fallback happened).
  std::string fallback_reason;
};

/// Builds the report document.  `algo` may be null (no per-algorithm
/// stats); `hw` may be null (hardware counters not requested — the "hw"
/// section serializes as JSON null); `profile` may be null (profiling not
/// requested — the "profile" section serializes as JSON null).  The "mem"
/// section is always gathered internally via mem_sample(); "bandwidth" is
/// derived from `hw` plus the phase aggregates (null when hw is null, the
/// degraded shape when hw is degraded — schema v4).
[[nodiscard]] std::string build_run_report(const RunInfo& info,
                                           const MstAlgoStats* algo,
                                           const HwSample* hw = nullptr,
                                           const ProfSnapshot* profile =
                                               nullptr);

/// Writes `json` to `path`.  Returns false and sets *error on I/O failure.
bool write_run_report(const std::string& path, const std::string& json,
                      std::string* error);

}  // namespace llpmst::obs
