#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

#include "obs/trace.hpp"

namespace llpmst::obs {

namespace {

// Warnings live outside the #if: non-convergence and overflow conditions
// must surface in reports even in an LLPMST_OBS=0 build.
struct WarningStore {
  std::mutex mu;
  std::vector<std::string> messages;
};

WarningStore& warnings() {
  static WarningStore* w = new WarningStore;  // leaked: outlives all threads
  return *w;
}

}  // namespace

void add_warning(std::string message) {
  WarningStore& w = warnings();
  std::lock_guard lock(w.mu);
  w.messages.push_back(std::move(message));
}

std::vector<std::string> snapshot_warnings() {
  WarningStore& w = warnings();
  std::lock_guard lock(w.mu);
  return w.messages;
}

void clear_warnings() {
  WarningStore& w = warnings();
  std::lock_guard lock(w.mu);
  w.messages.clear();
}

std::uint64_t now_us() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            epoch)
          .count());
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

#if LLPMST_OBS

namespace {

struct PhaseAgg {
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
};

// Registry of every named metric and phase aggregate.  Intentionally leaked
// (metrics are process-lifetime; cached Counter& references in algorithm
// code must never dangle, including during static destruction).
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;

  std::mutex phase_mu;
  std::unordered_map<std::string, PhaseAgg> phases;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::atomic<bool> g_enabled{false};

// Per-thread stack of live PhaseTimer frames; phase_pop joins it into the
// recorded path.  Fixed-capacity with an atomic depth so the profiler's
// SIGPROF handler can snapshot it mid-update (see detail::PhaseStack).
thread_local detail::PhaseStack tls_phase_stack;

}  // namespace

std::size_t shard_id() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

std::atomic<bool> g_phase_stack{false};
bool phase_stack_enabled() {
  return g_phase_stack.load(std::memory_order_relaxed);
}
void set_phase_stack_enabled(bool on) {
  g_phase_stack.store(on, std::memory_order_relaxed);
}

Counter::Counter(std::string name)
    : name_(std::move(name)), slots_(new Slot[kNumShards]) {}

std::uint64_t Counter::value() const {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kNumShards; ++i) {
    sum += slots_[i].v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::reset() {
  for (std::size_t i = 0; i < kNumShards; ++i) {
    slots_[i].v.store(0, std::memory_order_relaxed);
  }
}

void Gauge::set_max(std::uint64_t v) {
  std::uint64_t cur = value_.load(std::memory_order_relaxed);
  while (cur < v && !value_.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

Counter& counter(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  auto it = r.counters.find(std::string(name));
  if (it == r.counters.end()) {
    it = r.counters
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& gauge(std::string_view name) {
  Registry& r = registry();
  std::lock_guard lock(r.mu);
  auto it = r.gauges.find(std::string(name));
  if (it == r.gauges.end()) {
    it = r.gauges
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

std::vector<MetricSample> snapshot_metrics() {
  Registry& r = registry();
  std::vector<MetricSample> out;
  {
    std::lock_guard lock(r.mu);
    out.reserve(r.counters.size() + r.gauges.size());
    for (const auto& [name, c] : r.counters) {
      out.push_back({name, c->value(), false});
    }
    for (const auto& [name, g] : r.gauges) {
      out.push_back({name, g->value(), true});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::vector<PhaseSample> snapshot_phases() {
  Registry& r = registry();
  std::vector<PhaseSample> out;
  {
    std::lock_guard lock(r.phase_mu);
    out.reserve(r.phases.size());
    for (const auto& [name, agg] : r.phases) {
      out.push_back({name, agg.count, agg.total_us});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseSample& a, const PhaseSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  {
    std::lock_guard lock(r.mu);
    for (auto& [name, c] : r.counters) c->reset();
    for (auto& [name, g] : r.gauges) g->reset();
  }
  {
    std::lock_guard lock(r.phase_mu);
    r.phases.clear();
  }
}

namespace detail {

PhaseStack& phase_stack() { return tls_phase_stack; }

void phase_push(const char* name) {
  PhaseStack& st = tls_phase_stack;
  const std::uint32_t d = st.depth.load(std::memory_order_relaxed);
  if (d < kMaxPhaseDepth) st.frames[d] = name;
  // Release: the frame write above must be visible before the new depth —
  // a SIGPROF handler that observes d+1 must see frames[d] populated.
  st.depth.store(d + 1, std::memory_order_release);
}

std::string phase_path() {
  const PhaseStack& st = tls_phase_stack;
  const std::uint32_t d = std::min<std::uint32_t>(
      st.depth.load(std::memory_order_relaxed),
      static_cast<std::uint32_t>(kMaxPhaseDepth));
  std::string path;
  for (std::uint32_t i = 0; i < d; ++i) {
    if (!path.empty()) path.push_back('/');
    path += st.frames[i];
  }
  return path;
}

void phase_pop(std::uint64_t start_us) {
  const std::uint64_t end_us = now_us();
  const std::uint64_t dur_us = end_us - start_us;

  const std::string path = phase_path();
  {
    PhaseStack& st = tls_phase_stack;
    st.depth.store(st.depth.load(std::memory_order_relaxed) - 1,
                   std::memory_order_relaxed);
  }

  Registry& r = registry();
  {
    std::lock_guard lock(r.phase_mu);
    PhaseAgg& agg = r.phases[path];
    ++agg.count;
    agg.total_us += dur_us;
  }
  if (trace_collecting()) trace_emit(path, start_us, dur_us);
}

void phase_pop_fast() {
  PhaseStack& st = tls_phase_stack;
  st.depth.store(st.depth.load(std::memory_order_relaxed) - 1,
                 std::memory_order_relaxed);
}

}  // namespace detail

#else  // !LLPMST_OBS

namespace {
// Shared dummies so counter()/gauge() can hand out references.
Counter g_dummy_counter;
Gauge g_dummy_gauge;
}  // namespace

Counter& counter(std::string_view) { return g_dummy_counter; }
Gauge& gauge(std::string_view) { return g_dummy_gauge; }
std::vector<MetricSample> snapshot_metrics() { return {}; }
std::vector<PhaseSample> snapshot_phases() { return {}; }
void reset_metrics() {}

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
