#include "llp/llp_prim_parallel.hpp"

#include <atomic>
#include <utility>
#include <vector>

#include "core/run_context.hpp"
#include "ds/binary_heap.hpp"
#include "obs/hw_counters.hpp"
#include "obs/phase_timer.hpp"
#include "obs/round_stats.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/concurrent_bag.hpp"
#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

MstResult llp_prim_parallel(const CsrGraph& g, RunContext& ctx,
                            VertexId root) {
  Executor& pool = ctx.executor();
  const CancelToken* cancel = ctx.cancel_token();
  const std::size_t n = g.num_vertices();
  LLPMST_CHECK_MSG(n >= 1, "LLP-Prim requires a non-empty graph");
  LLPMST_CHECK(root < n);

  obs::PhaseTimer algo_span("llp_prim_parallel");
  obs::ScopedHwCounters hw_scope("llp_prim_parallel");
  MstResult r;
  // dist[k] packs the tentative priority; its low 32 bits are the edge id,
  // so the parent edge rides along with every fetch-min for free.
  std::vector<std::atomic<EdgePriority>> dist(n);
  std::vector<std::atomic<std::uint8_t>> fixed(n);
  // chosen_edge[k] is written once, by the thread whose claim CAS on
  // fixed[k] succeeded; it is read only after that claim is visible (same
  // round for bag members, after the team join otherwise).
  std::vector<EdgeId> chosen_edge(n, kInvalidEdge);
  parallel_for(pool, 0, n, [&](std::size_t v) {
    dist[v].store(kInfinitePriority, std::memory_order_relaxed);
    fixed[v].store(0, std::memory_order_relaxed);
  });

  const std::size_t workers = pool.num_threads();
  ConcurrentBag<VertexId> bag_r(workers);  // newly fixed, to explore next
  ConcurrentBag<VertexId> bag_q(workers);  // staged heap candidates
  std::vector<VertexId> frontier;
  BinaryHeap<EdgePriority> heap(n);

  std::atomic<std::uint64_t> fixed_via_mwe{0};
  std::atomic<std::uint64_t> edges_relaxed{0};
  std::size_t num_fixed = 1;

  fixed[root].store(1, std::memory_order_relaxed);
  ++r.stats.fixed_via_heap;
  frontier.push_back(root);

  // Small frontiers get small chunks so the team actually shares the work.
  const auto frontier_chunk = [&](std::size_t size) {
    const std::size_t per = size / (4 * workers);
    return per < 1 ? std::size_t{1} : (per > 256 ? std::size_t{256} : per);
  };

  for (;;) {
    // Section V-A early termination: all vertices fixed -> done.
    if (num_fixed == n) break;

    // Cancellation checkpoint, once per super-step: a partial forest is
    // still a forest (every recorded edge was individually claimed), so
    // stopping between super-steps is always safe — just incomplete.
    if (cancel != nullptr && cancel->cancelled()) {
      r.stats.outcome = cancel->reason();
      break;
    }

    // --- Parallel drain of R.  Every frontier vertex is already fixed; the
    // team explores their arcs, early-fixing across MWEs (claim CAS) and
    // lowering tentative distances (fetch-min).  Each batch is one worklist
    // sweep in the Algorithm 1 sense (counted in stats.llp_sweeps).
    while (!frontier.empty() && num_fixed < n) {
      if (cancel != nullptr && cancel->cancelled()) break;  // rechecked above
      obs::PhaseTimer relax_span("relax");
      ++r.stats.llp_sweeps;
      const bool rounds_on = obs::kCompiledIn && obs::enabled();
      const std::uint64_t step_t0 = rounds_on ? obs::now_us() : 0;
      const std::size_t frontier_in = frontier.size();
      parallel_for_worker(
          pool, 0, frontier.size(),
          [&](std::size_t idx, std::size_t w) {
            const VertexId j = frontier[idx];
            const auto nbrs = g.neighbors(j);
            const auto prios = g.arc_priorities(j);
            const auto mwe_flags = g.arc_mwe_flags(j);
            std::uint64_t relaxed = 0;
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              const VertexId k = nbrs[i];
              if (fixed[k].load(std::memory_order_relaxed)) continue;
              ++relaxed;
              const EdgePriority p = prios[i];

              if (mwe_flags[i]) {
                // Early fix: (j, k) is an MST edge and j is fixed.  The CAS
                // claim arbitrates racing fixers; the winner records the
                // tree edge and schedules k.
                if (atomic_claim(fixed[k])) {
                  chosen_edge[k] = priority_edge(p);
                  fixed_via_mwe.fetch_add(1, std::memory_order_relaxed);
                  bag_r.push(w, k);
                }
                continue;
              }

              // fetch-min on the packed word updates distance AND parent
              // atomically; stage k for the deferred heap flush.  Staging
              // may push k from several workers — the flush deduplicates
              // via insert_or_adjust, which is idempotent.
              if (atomic_fetch_min(dist[k], p)) {
                bag_q.push(w, k);
              }
            }
            if (relaxed != 0) {
              edges_relaxed.fetch_add(relaxed, std::memory_order_relaxed);
            }
          },
          frontier_chunk(frontier.size()));

      frontier.clear();
      bag_r.drain_into(frontier);
      num_fixed += frontier.size();
      for (const VertexId k : frontier) r.edges.push_back(chosen_edge[k]);
      if (rounds_on) {
        obs::RoundRecord round;
        round.label = "llp_prim_parallel";
        round.round = r.stats.llp_sweeps;
        round.components = n - num_fixed;  // unfixed vertices remaining
        round.edges = frontier_in;         // frontier entering the super-step
        round.advances = frontier.size();  // vertices newly fixed via MWE
        round.wall_ms = static_cast<double>(obs::now_us() - step_t0) * 1e-3;
        obs::record_round(std::move(round));
      }
    }

    // --- R drained: flush staged vertices into the heap (sequential — the
    // paper's acknowledged bottleneck), then pop the next nearest vertex.
    // Chaos hook at the bag→heap handoff: the single-threaded window where
    // a sleep/yield maximally skews the parallel/sequential interleaving,
    // and where an injected failure models the handoff going wrong.
    if (LLPMST_FAILPOINT("llp_prim/handoff") != fail::Action::kNone) {
      r.stats.outcome = RunOutcome::kInjectedFault;
      break;
    }
    {
      obs::PhaseTimer flush_span("heap_flush");
      std::vector<VertexId> staged;
      bag_q.drain_into(staged);
      for (const VertexId k : staged) {
        if (fixed[k].load(std::memory_order_relaxed)) continue;
        heap.insert_or_adjust(k, dist[k].load(std::memory_order_relaxed));
        ++r.stats.staged_in_q;
      }
    }

    bool advanced = false;
    obs::PhaseTimer pop_span("heap_pop");
    while (!heap.empty()) {
      const auto [j, key] = heap.pop();
      (void)key;
      if (fixed[j].load(std::memory_order_relaxed)) continue;  // stale
      fixed[j].store(1, std::memory_order_relaxed);
      ++num_fixed;
      ++r.stats.fixed_via_heap;
      chosen_edge[j] =
          priority_edge(dist[j].load(std::memory_order_relaxed));
      r.edges.push_back(chosen_edge[j]);
      frontier.push_back(j);
      advanced = true;
      break;
    }
    if (!advanced) break;
  }

  // On a clean run all vertices must have been fixed; an aborted run
  // (cancellation / injected fault) legitimately leaves some unfixed.
  LLPMST_CHECK_MSG(r.stats.outcome != RunOutcome::kOk || num_fixed == n,
                   "LLP-Prim requires a connected graph; use LLP-Boruvka "
                   "for forests");
  r.stats.fixed_via_mwe = fixed_via_mwe.load(std::memory_order_relaxed);
  r.stats.edges_relaxed = edges_relaxed.load(std::memory_order_relaxed);
  r.stats.heap = heap.stats();
  record_algo_metrics("llp_prim_parallel", r.stats);
  finalize_result(g, r);
  return r;
}

MstAlgorithm llp_prim_parallel_algorithm() {
  return {"llp-prim-parallel", "LLP-Prim",
          "early-fixing Prim, R drained by the team per super-step",
          {.parallel = true, .msf_capable = false, .deterministic = true,
           .cancellable = true},
          [](const CsrGraph& g, RunContext& ctx) {
            return llp_prim_parallel(g, ctx);
          }};
}

}  // namespace llpmst
