// METIS graph format reader/writer (the second common exchange format for
// benchmark graphs, used by Galois' tooling among others).
//
//   <n> <m> [fmt]            header; fmt "1" / "001" means edge weights
//   <v1> <w1> <v2> <w2> ...  line i: neighbors of vertex i (1-based) and,
//                            when weighted, the edge weight after each
//
// Each undirected edge appears in both endpoint lines; the reader collapses
// them and normalizes.  Only the edge-weighted variants (fmt 0/1/001) are
// supported; vertex weights (fmt 10/11) are rejected with a clear error.
#pragma once

#include <string>

#include "graph/io/edge_list_io.hpp"  // EdgeListResult

namespace llpmst {

[[nodiscard]] EdgeListResult read_metis(const std::string& path);

[[nodiscard]] Status write_metis(const std::string& path,
                                 const EdgeList& list);

}  // namespace llpmst
