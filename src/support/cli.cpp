#include "support/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "support/assert.hpp"

namespace llpmst {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

std::int64_t& CliParser::add_int(const std::string& name, std::int64_t def,
                                 const std::string& help) {
  LLPMST_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->kind = Kind::Int;
  flag->help = help;
  flag->default_repr = std::to_string(def);
  flag->int_val = std::make_unique<std::int64_t>(def);
  auto& ref = *flag->int_val;
  flags_.push_back(std::move(flag));
  return ref;
}

double& CliParser::add_double(const std::string& name, double def,
                              const std::string& help) {
  LLPMST_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->kind = Kind::Double;
  flag->help = help;
  flag->default_repr = std::to_string(def);
  flag->double_val = std::make_unique<double>(def);
  auto& ref = *flag->double_val;
  flags_.push_back(std::move(flag));
  return ref;
}

std::string& CliParser::add_string(const std::string& name,
                                   const std::string& def,
                                   const std::string& help) {
  LLPMST_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->kind = Kind::String;
  flag->help = help;
  flag->default_repr = "\"" + def + "\"";
  flag->string_val = std::make_unique<std::string>(def);
  auto& ref = *flag->string_val;
  flags_.push_back(std::move(flag));
  return ref;
}

bool& CliParser::add_bool(const std::string& name, bool def,
                          const std::string& help) {
  LLPMST_CHECK_MSG(find(name) == nullptr, "duplicate flag");
  auto flag = std::make_unique<Flag>();
  flag->name = name;
  flag->kind = Kind::Bool;
  flag->help = help;
  flag->default_repr = def ? "true" : "false";
  flag->bool_val = std::make_unique<bool>(def);
  auto& ref = *flag->bool_val;
  flags_.push_back(std::move(flag));
  return ref;
}

CliParser::Flag* CliParser::find(const std::string& name) {
  for (auto& f : flags_) {
    if (f->name == name) return f.get();
  }
  return nullptr;
}

void CliParser::fail(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), message.c_str(),
               usage().c_str());
  std::exit(2);
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << "usage: " << program_ << " [flags]\n" << description_ << "\n\nflags:\n";
  out << "  --help\n      show this message\n";
  for (const auto& f : flags_) {
    out << "  --" << f->name;
    switch (f->kind) {
      case Kind::Int: out << " <int>"; break;
      case Kind::Double: out << " <float>"; break;
      case Kind::String: out << " <string>"; break;
      case Kind::Bool: out << " | --no-" << f->name; break;
    }
    out << "\n      " << f->help << " (default: " << f->default_repr << ")\n";
  }
  return out.str();
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (auto eq = body.find('='); eq != std::string::npos) {
      value = body.substr(eq + 1);
      body = body.substr(0, eq);
      has_value = true;
    }

    // Boolean negation: --no-foo.
    if (!has_value && body.rfind("no-", 0) == 0) {
      if (Flag* f = find(body.substr(3)); f && f->kind == Kind::Bool) {
        *f->bool_val = false;
        continue;
      }
    }

    Flag* f = find(body);
    if (f == nullptr) fail("unknown flag --" + body);

    if (f->kind == Kind::Bool) {
      if (has_value) {
        *f->bool_val = (value == "1" || value == "true" || value == "yes");
      } else {
        *f->bool_val = true;
      }
      continue;
    }

    if (!has_value) {
      if (i + 1 >= argc) fail("flag --" + body + " requires a value");
      value = argv[++i];
    }

    switch (f->kind) {
      case Kind::Int: {
        std::int64_t parsed = 0;
        auto [ptr, ec] =
            std::from_chars(value.data(), value.data() + value.size(), parsed);
        if (ec != std::errc() || ptr != value.data() + value.size()) {
          fail("flag --" + body + " expects an integer, got '" + value + "'");
        }
        *f->int_val = parsed;
        break;
      }
      case Kind::Double: {
        char* end = nullptr;
        double parsed = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || end == value.c_str()) {
          fail("flag --" + body + " expects a float, got '" + value + "'");
        }
        *f->double_val = parsed;
        break;
      }
      case Kind::String:
        *f->string_val = value;
        break;
      case Kind::Bool:
        break;  // handled above
    }
  }
}

std::vector<std::string> CliParser::suggest_similar(
    const std::string& input, const std::vector<std::string>& candidates,
    std::size_t max) {
  // Levenshtein with two rolling rows; inputs are short flag values, so the
  // quadratic cost is irrelevant.
  const auto edit_distance = [](const std::string& a, const std::string& b) {
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
      cur[0] = i;
      for (std::size_t j = 1; j <= b.size(); ++j) {
        const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
        cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
      }
      std::swap(prev, cur);
    }
    return prev[b.size()];
  };

  // Score: substring hits rank ahead of every edit-distance hit; among
  // edit-distance hits, closer is better.  Anything further than ~half the
  // input away is noise, not a typo.
  struct Scored {
    std::size_t score;
    const std::string* name;
  };
  std::vector<Scored> scored;
  const std::size_t cutoff = std::max<std::size_t>(2, input.size() / 2);
  for (const std::string& c : candidates) {
    if (c == input) continue;
    if (c.find(input) != std::string::npos ||
        input.find(c) != std::string::npos) {
      scored.push_back({0, &c});
      continue;
    }
    const std::size_t d = edit_distance(input, c);
    if (d <= cutoff) scored.push_back({d, &c});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& x, const Scored& y) {
                     return x.score < y.score;
                   });
  std::vector<std::string> out;
  for (const Scored& s : scored) {
    if (out.size() >= max) break;
    out.push_back(*s.name);
  }
  return out;
}

std::vector<int> CliParser::parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string tok = s.substr(pos, comma - pos);
    if (!tok.empty()) {
      int v = 0;
      auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      LLPMST_CHECK_MSG(ec == std::errc() && ptr == tok.data() + tok.size(),
                       "malformed integer list");
      out.push_back(v);
    }
    pos = comma + 1;
  }
  return out;
}

}  // namespace llpmst
