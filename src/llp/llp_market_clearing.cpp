#include "llp/llp_market_clearing.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "parallel/parallel_for.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {

/// Demand graph: per buyer, the items maximizing value - price.
std::vector<std::vector<std::uint32_t>> demand_sets(
    const MarketInstance& inst, const std::vector<std::uint32_t>& price) {
  const std::size_t n = inst.n;
  std::vector<std::vector<std::uint32_t>> demand(n);
  for (std::size_t b = 0; b < n; ++b) {
    std::int64_t best = INT64_MIN;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int64_t u = static_cast<std::int64_t>(inst.value[b][i]) -
                             static_cast<std::int64_t>(price[i]);
      if (u > best) {
        best = u;
        demand[b].clear();
      }
      if (u == best) demand[b].push_back(static_cast<std::uint32_t>(i));
    }
  }
  return demand;
}

/// Kuhn's augmenting-path maximum matching on the demand graph.
/// match_item[i] = buyer matched to item i, or ~0u.
struct Matching {
  std::vector<std::uint32_t> match_item;
  std::vector<std::uint32_t> match_buyer;
  std::size_t size = 0;
};

bool try_augment(std::size_t b,
                 const std::vector<std::vector<std::uint32_t>>& demand,
                 std::vector<std::uint8_t>& visited, Matching& m) {
  for (const std::uint32_t i : demand[b]) {
    if (visited[i]) continue;
    visited[i] = 1;
    if (m.match_item[i] == ~0u ||
        try_augment(m.match_item[i], demand, visited, m)) {
      m.match_item[i] = static_cast<std::uint32_t>(b);
      m.match_buyer[b] = i;
      return true;
    }
  }
  return false;
}

Matching max_matching(const std::vector<std::vector<std::uint32_t>>& demand,
                      std::size_t n) {
  Matching m;
  m.match_item.assign(n, ~0u);
  m.match_buyer.assign(n, ~0u);
  std::vector<std::uint8_t> visited(n);
  for (std::size_t b = 0; b < n; ++b) {
    std::fill(visited.begin(), visited.end(), std::uint8_t{0});
    if (try_augment(b, demand, visited, m)) ++m.size;
  }
  return m;
}

}  // namespace

MarketInstance random_market_instance(std::size_t n, std::uint32_t max_value,
                                      std::uint64_t seed) {
  LLPMST_CHECK(n >= 1);
  MarketInstance inst;
  inst.n = n;
  inst.value.assign(n, std::vector<std::uint32_t>(n, 0));
  Xoshiro256 rng(seed);
  for (auto& row : inst.value) {
    for (auto& v : row) {
      v = static_cast<std::uint32_t>(rng.next_below(max_value + 1));
    }
  }
  return inst;
}

MarketResult llp_market_clearing(const MarketInstance& inst,
                                 Executor& pool) {
  const std::size_t n = inst.n;
  MarketResult out;
  out.price.assign(n, 0);  // the lattice bottom

  for (;;) {
    ++out.rounds;
    const auto demand = demand_sets(inst, out.price);
    const Matching m = max_matching(demand, n);
    if (m.size == n) {
      out.assignment = m.match_buyer;
      return out;
    }

    // forbidden(): items reachable from unmatched buyers by alternating
    // paths — the neighborhood of a constricted set (Hall violation).
    std::vector<std::uint8_t> buyer_seen(n, 0), item_forbidden(n, 0);
    std::vector<std::uint32_t> stack;
    for (std::size_t b = 0; b < n; ++b) {
      if (m.match_buyer[b] == ~0u) {
        buyer_seen[b] = 1;
        stack.push_back(static_cast<std::uint32_t>(b));
      }
    }
    LLPMST_ASSERT(!stack.empty());
    while (!stack.empty()) {
      const std::uint32_t b = stack.back();
      stack.pop_back();
      for (const std::uint32_t i : demand[b]) {
        if (item_forbidden[i]) continue;
        item_forbidden[i] = 1;
        const std::uint32_t owner = m.match_item[i];
        if (owner != ~0u && !buyer_seen[owner]) {
          buyer_seen[owner] = 1;
          stack.push_back(owner);
        }
      }
    }

    // advance() on every forbidden item, in parallel (Algorithm 1's step).
    std::atomic<std::uint64_t> raised{0};
    parallel_for(pool, 0, n, [&](std::size_t i) {
      if (item_forbidden[i]) {
        ++out.price[i];
        raised.fetch_add(1, std::memory_order_relaxed);
      }
    });
    out.advances += raised.load(std::memory_order_relaxed);
    // Progress is guaranteed: the constricted neighborhood is non-empty
    // (an unmatched buyer demands at least one item).
  }
}

bool is_clearing(const MarketInstance& inst,
                 const std::vector<std::uint32_t>& price) {
  if (price.size() != inst.n) return false;
  return max_matching(demand_sets(inst, price), inst.n).size == inst.n;
}

}  // namespace llpmst
