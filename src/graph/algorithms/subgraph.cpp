#include "graph/algorithms/subgraph.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/algorithms/connected_components.hpp"
#include "support/assert.hpp"

namespace llpmst {

SubgraphResult induced_subgraph(const EdgeList& list,
                                const std::vector<VertexId>& keep) {
  SubgraphResult out;
  out.old_id = keep;
  std::sort(out.old_id.begin(), out.old_id.end());
  out.old_id.erase(std::unique(out.old_id.begin(), out.old_id.end()),
                   out.old_id.end());
  for (const VertexId v : out.old_id) {
    LLPMST_CHECK_MSG(v < list.num_vertices(), "keep vertex out of range");
  }

  // Dense relabeling: old -> new.
  std::vector<VertexId> new_id(list.num_vertices(), kInvalidVertex);
  for (std::size_t i = 0; i < out.old_id.size(); ++i) {
    new_id[out.old_id[i]] = static_cast<VertexId>(i);
  }

  out.graph = EdgeList(out.old_id.size());
  for (const WeightedEdge& e : list.edges()) {
    const VertexId nu = new_id[e.u], nv = new_id[e.v];
    if (nu != kInvalidVertex && nv != kInvalidVertex) {
      out.graph.add_edge(nu, nv, e.w);
    }
  }
  out.graph.normalize();
  return out;
}

SubgraphResult extract_largest_component(const EdgeList& list) {
  const ComponentsResult cc = connected_components(list);
  // Count component sizes; pick the largest (ties: smallest label).
  std::unordered_map<VertexId, std::size_t> size;
  for (const VertexId l : cc.label) ++size[l];
  VertexId best_label = kInvalidVertex;
  std::size_t best_size = 0;
  for (const auto& [label, count] : size) {
    if (count > best_size || (count == best_size && label < best_label)) {
      best_label = label;
      best_size = count;
    }
  }

  std::vector<VertexId> keep;
  keep.reserve(best_size);
  for (VertexId v = 0; v < list.num_vertices(); ++v) {
    if (cc.label[v] == best_label) keep.push_back(v);
  }
  return induced_subgraph(list, keep);
}

}  // namespace llpmst
