// Minimal command-line flag parser shared by examples and benchmarks.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` /
// `--no-flag`.  Unknown flags are an error (catches typos in benchmark
// sweeps); positional arguments are collected in order.
//
//   CliParser cli("bench_fig3", "Reproduces Fig. 3 (thread scaling)");
//   auto& scale   = cli.add_int("scale", 16, "log2 of vertex count");
//   auto& threads = cli.add_string("threads", "1,2,4,8", "thread counts");
//   auto& csv     = cli.add_bool("csv", false, "emit CSV instead of a table");
//   cli.parse(argc, argv);   // exits with usage on error or --help
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace llpmst {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers flags.  The returned reference holds the default now and the
  /// parsed value after parse(); it stays valid for the parser's lifetime.
  std::int64_t& add_int(const std::string& name, std::int64_t def,
                        const std::string& help);
  double& add_double(const std::string& name, double def,
                     const std::string& help);
  std::string& add_string(const std::string& name, const std::string& def,
                          const std::string& help);
  bool& add_bool(const std::string& name, bool def, const std::string& help);

  /// Parses argv.  On `--help` prints usage and exits 0; on a malformed or
  /// unknown flag prints usage and exits 2.
  void parse(int argc, const char* const* argv);

  /// Positional (non-flag) arguments in the order given.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Renders the usage/help text.
  [[nodiscard]] std::string usage() const;

  /// Parses a comma-separated integer list, e.g. "1,2,4,8" -> {1,2,4,8}.
  static std::vector<int> parse_int_list(const std::string& s);

  /// Candidates from `candidates` most similar to `input`, best first — for
  /// "unknown name" diagnostics ("did you mean ...?").  Matches on substring
  /// containment first, then small edit distance; returns at most `max`
  /// names, possibly none when nothing is plausibly close.
  static std::vector<std::string> suggest_similar(
      const std::string& input, const std::vector<std::string>& candidates,
      std::size_t max = 3);

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Flag {
    std::string name;
    Kind kind;
    std::string help;
    std::string default_repr;
    // Owned storage; deque-like stability is guaranteed by indirection.
    std::unique_ptr<std::int64_t> int_val;
    std::unique_ptr<double> double_val;
    std::unique_ptr<std::string> string_val;
    std::unique_ptr<bool> bool_val;
  };

  Flag* find(const std::string& name);
  [[noreturn]] void fail(const std::string& message) const;

  std::string program_;
  std::string description_;
  std::vector<std::unique_ptr<Flag>> flags_;
  std::vector<std::string> positional_;
};

}  // namespace llpmst
