// Tests for the serving layer (src/serve/): the JSON wire parser, the
// snapshot catalog's refcount lifetime, and the query service's admission,
// queueing, batching, deadline, cancellation, and fault-degradation
// contracts.  Everything here drives QueryService directly (no sockets) —
// the socket framing is exercised end to end by the CI service job through
// tools/llpmstd_client.py.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/run_context.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/storage.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/catalog.hpp"
#include "serve/json.hpp"
#include "serve/service.hpp"
#include "support/cancel.hpp"
#include "support/failpoint.hpp"

namespace llpmst::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJson, ParsesScalarsObjectsAndArrays) {
  Json doc;
  std::string error;
  ASSERT_TRUE(parse_json(
      R"({"op":"query","budget_ms":1.5,"verify":true,"tags":[1,-2,3e2],)"
      R"("note":null,"nested":{"k":"v"}})",
      &doc, &error))
      << error;
  EXPECT_EQ(doc.get_string("op", ""), "query");
  EXPECT_DOUBLE_EQ(doc.get_number("budget_ms", 0), 1.5);
  EXPECT_TRUE(doc.get_bool("verify", false));
  ASSERT_NE(doc.find("tags"), nullptr);
  ASSERT_EQ(doc.find("tags")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("tags")->as_array()[2].as_number(), 300.0);
  EXPECT_TRUE(doc.find("note")->is_null());
  EXPECT_EQ(doc.find("nested")->get_string("k", ""), "v");
}

TEST(ServeJson, DecodesEscapesAndSurrogatePairs) {
  Json doc;
  std::string error;
  ASSERT_TRUE(parse_json(R"({"s":"a\"b\\c\n\u0041\ud83d\ude00"})", &doc,
                         &error))
      << error;
  EXPECT_EQ(doc.get_string("s", ""), "a\"b\\c\nA\xF0\x9F\x98\x80");
}

TEST(ServeJson, RejectsMalformedInput) {
  Json doc;
  std::string error;
  for (const char* bad :
       {"", "{", "{\"a\":}", "[1,]", "{\"a\":1}trailing", "nul",
        "\"unterminated", "{\"a\" 1}", "01", "1.", "--1", "\"\\u12\"",
        "\"\\ud800\"", "\"raw\ncontrol\""}) {
    error.clear();
    EXPECT_FALSE(parse_json(bad, &doc, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ServeJson, RejectsOverDeepNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  Json doc;
  std::string error;
  EXPECT_FALSE(parse_json(deep, &doc, &error));
  EXPECT_NE(error.find("deep"), std::string::npos);
}

TEST(ServeJson, WrongTypeDetectionDrivesAdmission) {
  Json doc;
  std::string error;
  ASSERT_TRUE(parse_json(R"({"graph":7,"algo":"auto","absent":null})", &doc,
                         &error));
  EXPECT_TRUE(doc.has_wrong_type("graph", Json::Type::kString));
  EXPECT_FALSE(doc.has_wrong_type("algo", Json::Type::kString));
  EXPECT_FALSE(doc.has_wrong_type("absent", Json::Type::kString));  // null ok
  EXPECT_FALSE(doc.has_wrong_type("missing", Json::Type::kString));
}

// ----------------------------------------------------------- CancelToken --

TEST(CancelToken, ObserveForwardsParentCancellationWithReason) {
  CancelToken parent;
  CancelToken child;
  child.set_deadline_after_ms(60'000);  // far future: not the trigger
  child.observe(&parent);
  EXPECT_FALSE(child.cancelled());
  parent.cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_EQ(child.reason(), RunOutcome::kCancelled);
  // Latched: detaching the parent afterwards does not un-cancel.
  child.observe(nullptr);
  EXPECT_TRUE(child.cancelled());
}

TEST(CancelToken, RunContextComposesDeadlineAndExternalCancel) {
  RunContext ctx;
  CancelToken external;
  ctx.set_cancel(&external);
  ctx.set_deadline_ms(60'000);
  const CancelToken* polled = ctx.cancel_token();
  ASSERT_NE(polled, nullptr);
  EXPECT_FALSE(polled->cancelled());
  // A mid-run external cancel must surface through the polled (deadline)
  // token — this is what lets a served query stop when its client leaves.
  external.cancel();
  EXPECT_TRUE(polled->cancelled());
  EXPECT_EQ(polled->reason(), RunOutcome::kCancelled);
  EXPECT_TRUE(ctx.user_cancelled());
}

// ---------------------------------------------------------------- Catalog --

TEST(GraphCatalog, LoadsListsAndRejectsDuplicatesAndJunk) {
  GraphCatalog catalog;
  Expected<SnapshotPtr> road = catalog.load("road", "road:16", 1);
  ASSERT_TRUE(road.ok()) << road.status().to_string();
  EXPECT_EQ((*road)->graph.num_vertices(), 256u);
  EXPECT_EQ((*road)->components, 1u);

  EXPECT_FALSE(catalog.load("road", "road:16", 1).ok());  // duplicate
  EXPECT_FALSE(catalog.load("bad name!", "road:16", 1).ok());
  EXPECT_FALSE(catalog.load("x", "scenario:no-such-scenario", 1).ok());
  EXPECT_FALSE(catalog.load("x", "rmat:16x", 1).ok());  // trailing junk
  EXPECT_FALSE(catalog.load("x", "/no/such/file.gr", 1).ok());

  ASSERT_TRUE(catalog.load("forest", "scenario:forest-many-components", 7).ok());
  const auto entries = catalog.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "road");
  EXPECT_EQ(entries[1].name, "forest");
  EXPECT_GT(entries[1].components, 1u);
}

TEST(GraphCatalog, BinfileSourceMountsSnapshotWithLoadStats) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("llpmst_serve_binfile_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string file = (dir / "road.llpmstb").string();

  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("built", "road:16", 1).ok());
  ASSERT_TRUE(write_binary_csr(file, catalog.get("built")->graph).ok());

  Expected<SnapshotPtr> mounted = catalog.load("mounted", "binfile:" + file, 1);
  ASSERT_TRUE(mounted.ok()) << mounted.status().to_string();
  EXPECT_STREQ((*mounted)->backend, "mmap");
  EXPECT_GT((*mounted)->bytes_mapped, 0u);
  // Same graph either way: the mount is the built snapshot, bit for bit.
  EXPECT_EQ((*mounted)->graph.num_edges(),
            catalog.get("built")->graph.num_edges());
  EXPECT_EQ((*mounted)->components, catalog.get("built")->components);

  const auto entries = catalog.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_STREQ(entries[0].backend, "heap");
  EXPECT_EQ(entries[0].bytes_mapped, 0u);
  EXPECT_STREQ(entries[1].backend, "mmap");
  EXPECT_GT(entries[1].bytes_mapped, 0u);
  EXPECT_LE(entries[1].resident_bytes, entries[1].bytes_mapped);
  EXPECT_GE(entries[1].load_ms, 0.0);

  // A bad snapshot path is an admission error, not an abort.
  EXPECT_FALSE(catalog.load("x", "binfile:/no/such.llpmstb", 1).ok());
  std::filesystem::remove_all(dir);
}

TEST(GraphCatalog, UnloadKeepsSnapshotAliveForHolders) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "er:256", 3).ok());
  SnapshotPtr held = catalog.get("g");
  ASSERT_NE(held, nullptr);
  const std::size_t vertices = held->graph.num_vertices();

  Expected<std::size_t> pinned = catalog.unload("g");
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(*pinned, 1u);  // our `held` reference
  EXPECT_EQ(catalog.get("g"), nullptr);
  EXPECT_EQ(catalog.size(), 0u);

  // The held snapshot is still fully usable after the unload — queries in
  // flight when an operator unloads a graph finish against the old data.
  EXPECT_EQ(held->graph.num_vertices(), vertices);
  EXPECT_FALSE(catalog.unload("g").ok());  // double unload: unknown name

  // The name is reusable immediately, even while the ghost lives on.
  ASSERT_TRUE(catalog.load("g", "er:128", 3).ok());
  EXPECT_NE(catalog.get("g")->graph.num_vertices(), vertices);
}

// ---------------------------------------------------------------- Service --

/// Collects responses from QueryService (thread-safe; handle() may respond
/// from a worker).
struct Sink {
  std::mutex mutex;
  std::vector<std::string> lines;
  ResponseFn fn() {
    return [this](const std::string& line) {
      std::lock_guard lock(mutex);
      lines.push_back(line);
    };
  }
  std::size_t count() {
    std::lock_guard lock(mutex);
    return lines.size();
  }
  /// Waits until `n` responses arrived (worker-delivered ones are async).
  bool wait_for(std::size_t n, int timeout_ms = 10'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (count() < n) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }
  Json parsed(std::size_t i) {
    std::lock_guard lock(mutex);
    Json doc;
    std::string error;
    EXPECT_TRUE(parse_json(lines.at(i), &doc, &error)) << error;
    return doc;
  }
};

std::string request_status(const Json& report) {
  const Json* req = report.find("request");
  return req == nullptr ? "<no-request>" : req->get_string("status", "");
}

std::string error_code(const Json& doc) {
  const Json* err = doc.find("error");
  if (err == nullptr && doc.find("request") != nullptr) {
    err = doc.find("request")->find("error");
  }
  return err == nullptr || err->is_null() ? "<none>"
                                          : err->get_string("code", "");
}

TEST(QueryService, AdmissionRejectsStructuredErrors) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("road", "road:16", 1).ok());
  ASSERT_TRUE(
      catalog.load("forest", "scenario:forest-many-components", 1).ok());
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(catalog, options);
  Sink sink;

  service.handle("this is not json", 0, sink.fn());
  service.handle(R"({"op":"frobnicate"})", 0, sink.fn());
  service.handle(R"({"op":"query","graph":"nope"})", 0, sink.fn());
  service.handle(R"({"op":"query","graph":"road","algo":"nope"})", 0,
                 sink.fn());
  service.handle(R"({"op":"query","graph":"road","budget_ms":0})", 0,
                 sink.fn());
  service.handle(R"({"op":"query","graph":"road","budget_ms":-3})", 0,
                 sink.fn());
  service.handle(R"({"op":"query","graph":7})", 0, sink.fn());
  // Capability filter: "prim" is tree-only (!msf_capable), the forest has
  // many components — admission must reject, or the algorithm would abort
  // the process.
  service.handle(R"({"op":"query","graph":"forest","algo":"prim"})", 0,
                 sink.fn());

  ASSERT_EQ(sink.count(), 8u);  // all rejected synchronously
  for (std::size_t i = 0; i < 8; ++i) {
    const Json doc = sink.parsed(i);
    EXPECT_EQ(doc.get_string("status", ""), "error") << i;
    EXPECT_EQ(error_code(doc), "INVALID_ARGUMENT") << i;
  }
  EXPECT_EQ(service.stats().rejected, 8u);
  EXPECT_EQ(service.stats().admitted, 0u);

  // An msf-capable algorithm on the same forest is admitted and runs.
  service.handle(R"({"op":"query","graph":"forest","algo":"llp-boruvka"})", 0,
                 sink.fn());
  EXPECT_EQ(service.drain_one(), 1u);
  ASSERT_EQ(sink.count(), 9u);
  EXPECT_EQ(request_status(sink.parsed(8)), "ok");
}

TEST(QueryService, QueueFullRejectsOverloaded) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:8", 1).ok());
  ServiceOptions options;
  options.start_workers = false;  // nothing drains: fill deterministically
  options.queue_depth = 2;
  QueryService service(catalog, options);
  Sink sink;

  service.handle(R"({"op":"query","graph":"g","id":"a"})", 0, sink.fn());
  service.handle(R"({"op":"query","graph":"g","id":"b"})", 0, sink.fn());
  EXPECT_EQ(sink.count(), 0u);  // both queued, no responses yet
  service.handle(R"({"op":"query","graph":"g","id":"c"})", 0, sink.fn());
  ASSERT_EQ(sink.count(), 1u);
  const Json doc = sink.parsed(0);
  EXPECT_EQ(doc.get_string("status", ""), "error");
  EXPECT_EQ(error_code(doc), "RESOURCE_EXHAUSTED");
  EXPECT_NE(doc.find("error")->get_string("message", "").find("overloaded"),
            std::string::npos);
  EXPECT_EQ(service.stats().overloaded, 1u);
  EXPECT_EQ(service.stats().queued, 2u);

  // Draining frees capacity; the same query is admitted afterwards.
  EXPECT_EQ(service.drain_one(), 2u);  // same-snapshot pair batches
  service.handle(R"({"op":"query","graph":"g","id":"c"})", 0, sink.fn());
  EXPECT_EQ(service.stats().queued, 1u);
  service.shutdown();
}

TEST(QueryService, SameSnapshotQueriesBatchUpToCap) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("a", "road:8", 1).ok());
  ASSERT_TRUE(catalog.load("b", "er:64", 1).ok());
  ServiceOptions options;
  options.start_workers = false;
  options.batch_max = 3;
  QueryService service(catalog, options);
  Sink sink;

  // Interleaved arrivals: a a b a a.  First dispatch must claim three a's
  // (cap), skipping the b parked between them.
  for (const char* line :
       {R"({"op":"query","graph":"a","id":"a1"})",
        R"({"op":"query","graph":"a","id":"a2"})",
        R"({"op":"query","graph":"b","id":"b1"})",
        R"({"op":"query","graph":"a","id":"a3"})",
        R"({"op":"query","graph":"a","id":"a4"})"}) {
    service.handle(line, 0, sink.fn());
  }
  EXPECT_EQ(service.drain_one(), 3u);
  ASSERT_EQ(sink.count(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    const Json doc = sink.parsed(i);
    EXPECT_EQ(doc.find("request")->get_string("id", "").front(), 'a');
    EXPECT_DOUBLE_EQ(doc.find("request")->get_number("batch", 0), 3);
  }
  EXPECT_EQ(service.stats().batched, 3u);
  // Next dispatch: b1 leads, a4 does not share its snapshot.
  EXPECT_EQ(service.drain_one(), 1u);
  EXPECT_EQ(sink.parsed(3).find("request")->get_string("id", ""), "b1");
  EXPECT_EQ(service.drain_one(), 1u);
  EXPECT_EQ(service.drain_one(), 0u);  // drained dry
  service.shutdown();
}

TEST(QueryService, BudgetExpiryFallsBackToKruskalInReport) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:48", 1).ok());
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(catalog, options);
  Sink sink;

  // A microscopic budget: the portfolio's parallel attempt expires and the
  // sequential Kruskal fallback produces the result — the report must say
  // both (fallback_reason) and still be an "ok" response.  A 2-thread pool
  // steers auto to the cancellable parallel attempt (1 thread would pick
  // the sequential, non-cancellable llp-prim, which cannot trip a budget).
  ThreadPool pool(2);
  service.handle(
      R"({"op":"query","graph":"g","algo":"auto","budget_ms":0.01})", 0,
      sink.fn());
  ASSERT_EQ(service.drain_one(&pool), 1u);
  const Json doc = sink.parsed(0);
  EXPECT_EQ(request_status(doc), "ok");
  const Json* run = doc.find("run");
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(run->get_string("algorithm", ""), "kruskal");
  EXPECT_EQ(run->get_string("fallback_reason", ""), "deadline_exceeded");
  service.shutdown();
}

TEST(QueryService, MidFlightCancelStopsAPausedQuery) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:8", 1).ok());
  ServiceOptions options;
  options.workers = 1;
  QueryService service(catalog, options);
  Sink sink;

  service.handle(R"({"op":"query","graph":"g","id":"slow","pause_ms":8000})",
                 0, sink.fn());
  // Let the worker pick it up, then cancel mid-pause.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Sink control;
  service.handle(R"({"op":"cancel","target":"slow"})", 0, control.fn());
  ASSERT_TRUE(control.wait_for(1));
  EXPECT_EQ(control.parsed(0).get_string("status", ""), "ok");

  ASSERT_TRUE(sink.wait_for(1));  // long before the 8 s pause would end
  const Json doc = sink.parsed(0);
  EXPECT_EQ(request_status(doc), "error");
  EXPECT_EQ(error_code(doc), "CANCELLED");
  EXPECT_GE(service.stats().cancelled, 1u);
  service.shutdown();
}

TEST(QueryService, DisconnectCancelsThatClientsQueriesOnly) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:8", 1).ok());
  ServiceOptions options;
  options.workers = 2;
  QueryService service(catalog, options);
  Sink gone, stays;

  service.handle(R"({"op":"query","graph":"g","id":"x","pause_ms":8000})",
                 /*client=*/7, gone.fn());
  service.handle(R"({"op":"query","graph":"g","id":"y","pause_ms":300})",
                 /*client=*/8, stays.fn());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.disconnect_client(7);

  ASSERT_TRUE(gone.wait_for(1));
  EXPECT_EQ(error_code(gone.parsed(0)), "CANCELLED");
  ASSERT_TRUE(stays.wait_for(1));
  EXPECT_EQ(request_status(stays.parsed(0)), "ok");
  service.shutdown();
}

TEST(QueryService, ShutdownRespondsToQueuedQueries) {
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:8", 1).ok());
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(catalog, options);
  Sink sink;
  service.handle(R"({"op":"query","graph":"g","id":"q"})", 0, sink.fn());
  service.shutdown();
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(error_code(sink.parsed(0)), "CANCELLED");
  // Post-shutdown queries are turned away, never silently dropped.
  service.handle(R"({"op":"query","graph":"g","id":"late"})", 0, sink.fn());
  ASSERT_EQ(sink.count(), 2u);
  EXPECT_EQ(error_code(sink.parsed(1)), "CANCELLED");
}

TEST(QueryService, InjectedFaultDegradesOneRequestNotTheService) {
  if (!fail::kCompiledIn) {
    GTEST_SKIP() << "failpoints compiled out (LLPMST_FAILPOINTS=0)";
  }
  GraphCatalog catalog;
  ASSERT_TRUE(catalog.load("g", "road:8", 1).ok());
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(catalog, options);
  Sink sink;

  std::string fp_error;
  ASSERT_EQ(fail::configure("serve/execute=1*return", &fp_error), 1u)
      << fp_error;
  service.handle(R"({"op":"query","graph":"g","id":"f1"})", 0, sink.fn());
  service.handle(R"({"op":"query","graph":"g","id":"f2"})", 0, sink.fn());
  EXPECT_EQ(service.drain_one(), 2u);
  fail::disarm_all();

  ASSERT_EQ(sink.count(), 2u);
  const Json faulted = sink.parsed(0);
  EXPECT_EQ(request_status(faulted), "error");
  EXPECT_EQ(error_code(faulted), "INJECTED_FAULT");
  EXPECT_EQ(faulted.find("run")->get_string("outcome", ""), "injected_fault");
  // The very next query on the same snapshot succeeds: the fault degraded
  // one request, not the snapshot, the worker, or the process.
  EXPECT_EQ(request_status(sink.parsed(1)), "ok");
  service.shutdown();
}

TEST(QueryService, ControlOpsRoundTrip) {
  GraphCatalog catalog;
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(catalog, options);
  Sink sink;

  service.handle(R"({"op":"load","name":"g","source":"er:128","seed":5})", 0,
                 sink.fn());
  service.handle(R"({"op":"list"})", 0, sink.fn());
  service.handle(R"({"op":"healthz"})", 0, sink.fn());
  service.handle(R"({"op":"unload","name":"g"})", 0, sink.fn());
  service.handle(R"({"op":"unload","name":"g"})", 0, sink.fn());
  ASSERT_EQ(sink.count(), 5u);
  EXPECT_EQ(sink.parsed(0).get_string("status", ""), "ok");
  const Json list = sink.parsed(1);
  ASSERT_NE(list.find("data"), nullptr);
  EXPECT_EQ(list.find("data")->find("graphs")->as_array().size(), 1u);
  EXPECT_TRUE(sink.parsed(2).find("data")->get_bool("ok", false));
  EXPECT_EQ(sink.parsed(3).get_string("status", ""), "ok");
  EXPECT_EQ(sink.parsed(4).get_string("status", ""), "error");  // gone
}

}  // namespace
}  // namespace llpmst::serve
