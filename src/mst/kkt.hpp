// KKT randomized minimum spanning forest (Karger, Klein, Tarjan 1995 — the
// paper's reference [4], whose parallel descendant [6] the paper names as
// future-work comparison).  Expected linear time:
//
//   1. two Boruvka contraction steps (every chosen edge is an MSF edge);
//   2. sample each remaining edge with probability 1/2;
//   3. F := MSF(sample), recursively;
//   4. discard every F-heavy edge (heavier than the max edge on its F-path
//      — such edges can never be MSF edges, by the cycle property);
//   5. recurse on the surviving edges.
//
// This implementation is the sequential algorithm with the simple
// ancestor-walk F-light filter (ForestPathIndex) instead of a Komlós-style
// O(1)-query verifier; DESIGN.md records that tradeoff.  Randomness is
// seeded, so results are reproducible — and, of course, the output is the
// same unique priority-ordered MSF every other algorithm returns.
#pragma once

#include <cstdint>

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

[[nodiscard]] MstResult kkt_msf(const CsrGraph& g, std::uint64_t seed = 1);
/// Uniform registry entry point (sequential, default seed; the context is
/// unused).  The fixed seed keeps registry runs reproducible.
[[nodiscard]] MstResult kkt_msf(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm kkt_algorithm();

}  // namespace llpmst
