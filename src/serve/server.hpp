// The wire surface of llpmstd: a unix-domain or TCP listener speaking
// newline-delimited JSON, with a minimal HTTP sideband for scrapers.
//
// Connection protocol (docs/serving.md):
//   * each inbound line is one JSON request handed to QueryService::handle;
//     each response is one line (serve-response envelope or run report) —
//     responses for concurrent queries on one connection stream back in
//     COMPLETION order, correlated by "id", not request order;
//   * a connection whose first bytes are "GET " is HTTP instead: /stats
//     returns the OpenMetrics exposition (correct content-type), /healthz
//     returns "ok", anything else 404; one response, then close.  This is
//     what lets a stock Prometheus scraper and `curl` talk to the same
//     socket the JSON clients use;
//   * client disconnect (EOF or error) cancels that connection's in-flight
//     queries via QueryService::disconnect_client — the daemon never burns
//     worker time computing a forest nobody is waiting for.
//
// Threading: one accept loop (run() on the caller's thread, poll()-based so
// a SIGTERM flag is noticed within ~100 ms) plus one thread per connection.
// Writes to a connection serialize on a per-connection mutex; the mutex
// also orders writes against close, so a worker responding to a query that
// outlived its connection sees `closed` and drops the line instead of
// writing to a recycled fd.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"
#include "support/status.hpp"

namespace llpmst::serve {

struct ServerOptions {
  /// Unix-domain socket path; takes precedence over TCP when non-empty.
  /// An existing socket file at the path is unlinked first.
  std::string unix_path;
  /// TCP listen address, used when unix_path is empty.
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; bound_port() reports the real one
  /// Requests longer than this are rejected and the connection closed —
  /// a framing-error bound, not a working limit.
  std::size_t max_line_bytes = 1 << 20;
  /// Optional external stop flag (a signal handler's sig_atomic_t): run()
  /// returns soon after it becomes non-zero.  May be null.
  const volatile std::sig_atomic_t* stop_flag = nullptr;
};

class SocketServer {
 public:
  SocketServer(QueryService& service, ServerOptions options);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds and listens.  kIoError with errno text on failure.
  [[nodiscard]] Status listen();

  /// Accept loop; returns when stop() is called or the stop flag fires.
  /// Call listen() first.
  void run();

  /// Requests run() to return (thread-safe, idempotent).  Open connections
  /// are shut down and joined by run() on the way out.
  void stop();

  /// The TCP port actually bound (after listen(); 0 for unix sockets).
  [[nodiscard]] int bound_port() const { return bound_port_; }

 private:
  struct Connection;

  void serve_connection(const std::shared_ptr<Connection>& conn);
  void serve_http(const std::shared_ptr<Connection>& conn,
                  const std::string& head);

  QueryService& service_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> next_client_{1};

  std::mutex conns_mutex_;
  std::vector<std::weak_ptr<Connection>> conns_;
  std::vector<std::thread> threads_;
};

}  // namespace llpmst::serve
