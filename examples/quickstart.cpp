// Quickstart: build a small weighted graph, compute its MST with every
// algorithm in the library, and verify the result.
//
//   $ ./examples/quickstart
//
// This walks the exact graph from Fig. 1 of the paper, so the output can be
// followed against Section IV/V by hand.
#include <cstdio>

#include "graph/csr_graph.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/boruvka.hpp"
#include "mst/kruskal.hpp"
#include "mst/parallel_boruvka.hpp"
#include "mst/prim.hpp"
#include "mst/verifier.hpp"
#include "parallel/thread_pool.hpp"

int main() {
  using namespace llpmst;

  // The paper's Fig. 1: vertices a..e, seven weighted edges, unique MST
  // {2, 3, 4, 7} of weight 16.
  const EdgeList list = make_paper_figure1();
  const CsrGraph g = CsrGraph::build(list);

  std::printf("Graph: %zu vertices, %zu edges\n", g.num_vertices(),
              g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    std::printf("  edge %u: %c -- %c  (weight %u)\n", e, 'a' + we.u,
                'a' + we.v, we.w);
  }

  ThreadPool pool(4);
  struct Entry {
    const char* name;
    MstResult result;
  };
  const Entry runs[] = {
      {"Kruskal", kruskal(g)},
      {"Prim", prim(g)},
      {"Boruvka", boruvka(g)},
      {"LLP-Prim (1T)", llp_prim(g)},
      {"LLP-Prim (parallel)", llp_prim_parallel(g, pool)},
      {"Parallel Boruvka", parallel_boruvka(g, pool)},
      {"LLP-Boruvka", llp_boruvka(g, pool)},
  };

  std::printf("\nMinimum spanning tree (weight should be 16):\n");
  for (const Entry& entry : runs) {
    std::printf("  %-20s total weight %llu, edges {", entry.name,
                static_cast<unsigned long long>(entry.result.total_weight));
    for (std::size_t i = 0; i < entry.result.edges.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", g.edge(entry.result.edges[i]).w);
    }
    std::printf("}\n");
    const VerifyResult v = verify_msf(g, entry.result);
    if (!v.ok) {
      std::printf("  VERIFICATION FAILED: %s\n", v.error.c_str());
      return 1;
    }
  }
  std::printf("\nAll algorithms agree and the tree verified as minimal.\n");
  return 0;
}
