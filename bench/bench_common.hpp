// Shared plumbing for the figure benchmarks: standard workload graphs at
// benchmark scale (overridable via flags), and row-emission helpers.
//
// Scale note: the paper ran 23.9M-vertex USA-road and 33M-vertex graph500
// s25 on a 48-vCPU GCE C2 machine.  The default sizes here reproduce the
// same morphologies at laptop scale (hundreds of thousands of vertices) so
// every figure regenerates in about a minute; pass --road-side / --scale to
// grow them toward the paper's sizes on bigger hardware.
#pragma once

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "mst/kruskal.hpp"
#include "scenario/scenario.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace llpmst::bench {

struct Workload {
  std::string name;   // e.g. "USA-road (synthetic 262k)"
  std::string type;   // "road" / "scalefree"
  CsrGraph graph;
};

/// Synthetic stand-in for USA-road-d.USA: side x side grid road network.
inline Workload make_road_workload(std::uint32_t side,
                                   std::uint64_t seed = 1) {
  RoadParams p;
  p.width = side;
  p.height = side;
  p.seed = seed;
  EdgeList list = generate_road_network(p);
  Workload w;
  w.name = "Road " + format_count(list.num_vertices());
  w.type = "road";
  w.graph = CsrGraph::build(list);
  return w;
}

/// Synthetic stand-in for graph500-sNN-ef16, connected for Prim-family use.
inline Workload make_graph500_workload(int scale, std::uint64_t seed = 1,
                                       bool connect = true) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = seed;
  EdgeList list = generate_rmat(p);
  if (connect) connect_components(list);
  Workload w;
  w.name = "Graph500 s" + std::to_string(scale);
  w.type = "scalefree";
  w.graph = CsrGraph::build(list);
  return w;
}

/// A workload from the adversarial scenario registry (src/scenario/), so
/// benches stress the same named regimes the conformance/chaos tests run
/// instead of re-inventing ad-hoc generator parameters.  The record
/// workload name is "scenario:<name>" — stable across seeds, so baselines
/// key on the regime, not the instance.
inline Workload make_scenario_workload(const Scenario& s,
                                       std::uint64_t seed = 1) {
  Workload w;
  w.name = std::string("scenario:") + s.name;
  w.type = s.family;
  w.graph = CsrGraph::build(s.make(seed));
  return w;
}

/// Resolves a `--workload` spec:
///   "scenario:NAME"  — a registry scenario's generator at bench seed;
///   "road:SIDE"      — the side x side grid road network;
///   "rmat:SCALE"     — the connected Graph500-style R-MAT.
/// Returns false with a message in *error (including the known scenario
/// names on a typo) instead of exiting, so benches can report through
/// their own CLI error path.
inline bool make_workload_spec(const std::string& spec, std::uint64_t seed,
                               Workload* out, std::string* error) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : spec.substr(colon + 1);
  if (kind == "scenario") {
    const Scenario* s = find_scenario(arg);
    if (s == nullptr) {
      if (error != nullptr) {
        *error = "unknown scenario '" + arg + "' (known: " +
                 scenario_names(", ") + ")";
      }
      return false;
    }
    *out = make_scenario_workload(*s, seed);
    return true;
  }
  if (kind == "road") {
    const long side = std::strtol(arg.c_str(), nullptr, 10);
    if (side <= 0) {
      if (error != nullptr) *error = "bad road side '" + arg + "'";
      return false;
    }
    *out = make_road_workload(static_cast<std::uint32_t>(side), seed);
    return true;
  }
  if (kind == "rmat") {
    const long scale = std::strtol(arg.c_str(), nullptr, 10);
    if (scale <= 0) {
      if (error != nullptr) *error = "bad rmat scale '" + arg + "'";
      return false;
    }
    *out = make_graph500_workload(static_cast<int>(scale), seed);
    return true;
  }
  if (error != nullptr) {
    *error = "unknown workload spec '" + spec +
             "' (expected scenario:NAME, road:SIDE, or rmat:SCALE)";
  }
  return false;
}

/// Formats a measurement cell: median with spread.
inline std::string time_cell(const Summary& s) {
  return format_duration_ms(s.median);
}

/// Speedup of `base` over `t` (how many times faster t is than base).
inline std::string speedup_cell(double base_ms, double ms) {
  return strf("%.2fx", base_ms / ms);
}

}  // namespace llpmst::bench
