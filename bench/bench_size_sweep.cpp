// Reproduces the Section VII-C remark: "We also tested the algorithms in
// graphs of different sizes and the same morphology ... the results were
// analogous" — a sweep over RMAT scales at a fixed thread count, checking
// the algorithm ranking stays stable as the graph grows.
#include <cstdio>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "mst/registry.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_size_sweep",
                "Section VII-C size sweep: same morphology (RMAT ef16), "
                "growing scale");
  auto& scales = cli.add_string("scales", "12,14,16", "RMAT scales to sweep");
  auto& threads = cli.add_int("threads", 4, "threads for parallel algos");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));
  RunContext ctx(pool);

  std::printf("Size sweep: RMAT ef16, threads=%lld\n\n",
              static_cast<long long>(threads));
  Table t({"Scale", "Vertices", "Edges", "Prim", "LLP-Prim(1T)", "LLP-Prim",
           "Boruvka", "LLP-Boruvka"});

  for (const int scale : CliParser::parse_int_list(scales)) {
    const Workload w = make_graph500_workload(scale);
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));

    const auto run = [&](const char* name) {
      const MstAlgorithm& algo = mst_algorithm(name);
      return measure_mst(
          algo.name, w.graph, reference,
          [&] { return algo.run(w.graph, ctx); }, opts);
    };
    const auto p = run("prim");
    const auto l1 = run("llp-prim");
    const auto lp = run("llp-prim-parallel");
    const auto pb = run("parallel-boruvka");
    const auto lb = run("llp-boruvka");

    t.add_row({strf("%d", scale), format_count(w.graph.num_vertices()),
               format_count(w.graph.num_edges()), time_cell(p.time_ms),
               time_cell(l1.time_ms), time_cell(lp.time_ms),
               time_cell(pb.time_ms), time_cell(lb.time_ms)});
  }

  t.print(csv);
  obs_cli.write_table(t);
  std::printf("\nThe ranking between algorithms should be stable across "
              "scales (the paper's 'results were analogous').\n");
  obs_cli.finish("bench_size_sweep");
  return 0;
}
