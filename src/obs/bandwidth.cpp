#include "obs/bandwidth.hpp"

#include <algorithm>
#include <map>

namespace llpmst::obs {

const char* bound_verdict_name(BoundVerdict v) {
  switch (v) {
    case BoundVerdict::kComputeBound:
      return "compute-bound";
    case BoundVerdict::kMemoryBound:
      return "memory-bound";
    case BoundVerdict::kUnknown:
      break;
  }
  return "unknown";
}

#if LLPMST_OBS

BandwidthSnapshot bandwidth_snapshot(const HwSample* hw) {
  BandwidthSnapshot snap;
  if (hw == nullptr) {
    snap.unavailable_reason = "hardware counters not requested";
    return snap;
  }
  if (!hw->available) {
    snap.unavailable_reason = hw->unavailable_reason;
    return snap;
  }
  snap.available = true;

  // Wall time per phase path, for the bytes/s denominator.
  std::map<std::string, std::uint64_t> wall_us;
  for (const PhaseSample& p : snapshot_phases()) wall_us[p.name] = p.total_us;

  for (const HwPhaseSample& p : snapshot_hw_phases()) {
    PhaseBandwidth b;
    b.name = p.name;
    if (p.totals.cache_misses == kHwAbsent) {
      // No miss counter: the phase appears with verdict "unknown" so the
      // section still enumerates every measured phase.
      snap.phases.push_back(std::move(b));
      continue;
    }
    b.cache_misses = p.totals.cache_misses;
    b.est_bytes = b.cache_misses * kCacheLineBytes;
    const auto it = wall_us.find(p.name);
    if (it != wall_us.end()) b.wall_ms = static_cast<double>(it->second) / 1e3;
    if (b.wall_ms > 0.0) {
      b.est_gbps = static_cast<double>(b.est_bytes) / (b.wall_ms * 1e6);
    }
    if (p.totals.instructions != kHwAbsent && b.est_bytes > 0) {
      b.instr_per_byte = static_cast<double>(p.totals.instructions) /
                         static_cast<double>(b.est_bytes);
      if (b.est_bytes >= kMinBytesForVerdict) {
        b.verdict = b.instr_per_byte < kMemoryBoundInstrPerByte
                        ? BoundVerdict::kMemoryBound
                        : BoundVerdict::kComputeBound;
      }
    }
    snap.phases.push_back(std::move(b));
  }

  std::sort(snap.phases.begin(), snap.phases.end(),
            [](const PhaseBandwidth& a, const PhaseBandwidth& b) {
              if (a.est_bytes != b.est_bytes) return a.est_bytes > b.est_bytes;
              return a.name < b.name;
            });
  return snap;
}

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
