#include "mst/boruvka.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace llpmst {

MstResult boruvka(const CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  MstResult r;
  std::vector<bool> in_tree(m, false);
  std::vector<VertexId> cid(n);
  std::vector<EdgePriority> best(n);
  std::vector<VertexId> stack;

  for (;;) {
    ++r.stats.rounds;

    // Component identification by BFS/DFS over tree edges (Algorithm 3's
    // BFS(i) loop).  Iterating sources ascending labels each component with
    // its minimum vertex id.
    std::fill(cid.begin(), cid.end(), kInvalidVertex);
    for (VertexId i = 0; i < n; ++i) {
      if (cid[i] != kInvalidVertex) continue;
      cid[i] = i;
      stack.assign(1, i);
      while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        const auto nbrs = g.neighbors(u);
        const auto prios = g.arc_priorities(u);
        for (std::size_t a = 0; a < nbrs.size(); ++a) {
          if (!in_tree[priority_edge(prios[a])]) continue;
          const VertexId v = nbrs[a];
          if (cid[v] != kInvalidVertex) continue;
          cid[v] = i;
          stack.push_back(v);
        }
      }
    }

    // Minimum outgoing edge per component (the dist/mwe sweep).
    std::fill(best.begin(), best.end(), kInfinitePriority);
    for (EdgeId e = 0; e < m; ++e) {
      const WeightedEdge& we = g.edge(e);
      const VertexId cu = cid[we.u], cv = cid[we.v];
      if (cu == cv) continue;
      const EdgePriority p = make_priority(we.w, e);
      if (p < best[cu]) best[cu] = p;
      if (p < best[cv]) best[cv] = p;
    }

    // Add every component's mwe (both sides may pick the same edge; the
    // in_tree flag makes the second add a no-op).
    std::size_t added = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (cid[v] != v || best[v] == kInfinitePriority) continue;
      const EdgeId e = priority_edge(best[v]);
      if (!in_tree[e]) {
        in_tree[e] = true;
        r.edges.push_back(e);
        ++added;
      }
    }
    if (added == 0) break;  // every component is maximal: MSF complete
  }

  finalize_result(g, r);
  return r;
}

MstResult boruvka(const CsrGraph& g, RunContext& /*ctx*/) { return boruvka(g); }

MstAlgorithm boruvka_algorithm() {
  return {"boruvka", "Boruvka (1T)",
          "sequential Boruvka, faithful per-round BFS (Algorithm 3)",
          {.parallel = false, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) { return boruvka(g, ctx); }};
}

}  // namespace llpmst
