// Named counters and gauges for the observability layer.
//
// Design contract (see docs/observability.md):
//   * Counters are monotonic and sharded: each OS thread owns a cache-line
//     padded slot, so a hot-path `add` is one relaxed atomic on an
//     exclusively-owned line — no contention, no fences.  Aggregation
//     happens on read.
//   * Gauges are last-write-wins scalars set from coordinator code
//     (per-round sizes, configuration echoes).
//   * The whole subsystem has a compile-time switch: building with
//     `-DLLPMST_OBS=0` turns Counter/Gauge/PhaseTimer into empty classes and
//     every recording function into an inline no-op, so instrumented call
//     sites cost nothing (tests static-assert the classes are empty).
//   * With obs compiled in, counters are always live (one relaxed add — the
//     same policy as HeapStats); phase timers and trace spans additionally
//     check the *runtime* flag `obs::enabled()` so un-instrumented runs pay
//     one relaxed load per phase, not per element.
//
// Naming convention: `<subsystem>/<event>` with '/' separators, e.g.
// "llp_prim_parallel/mwe_early_fix", "boruvka/rounds".  Phase paths nest the
// same way ("llp_prim_parallel/heap_flush").
#pragma once

#ifndef LLPMST_OBS
#define LLPMST_OBS 1
#endif

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#if LLPMST_OBS
#include <atomic>
#include <memory>
#endif

namespace llpmst::obs {

/// True when the library was compiled with observability support.
inline constexpr bool kCompiledIn = LLPMST_OBS != 0;

/// One aggregated metric value, as returned by snapshot_metrics().
struct MetricSample {
  std::string name;
  std::uint64_t value = 0;
  bool is_gauge = false;
};

/// One aggregated phase, as returned by snapshot_phases().  `name` is the
/// full nested path ("llp_prim_parallel/heap_flush").
struct PhaseSample {
  std::string name;
  std::uint64_t count = 0;     // completed PhaseTimer scopes
  std::uint64_t total_us = 0;  // summed wall time
};

#if LLPMST_OBS

/// Number of counter shards.  Threads beyond this share slots (the add
/// degrades to a contended fetch_add but stays correct).
inline constexpr std::size_t kNumShards = 64;

/// Small dense id for the calling thread: ThreadPool workers and any other
/// thread get one on first use.  Doubles as the trace `tid`.
[[nodiscard]] std::size_t shard_id();

/// Runtime switch for phase timers and trace spans (counters stay live).
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Runtime switch for maintaining the per-thread phase *stack* alone —
/// what the sampling profiler (obs/profiler.hpp) reads for attribution —
/// without the timing aggregates, trace events, or the per-scope path
/// string that full `enabled()` mode folds on every PhaseTimer exit.
/// Cost per scope in this mode: two relaxed/release stores, no clock
/// reads, no allocation, no mutex — cheap enough for the benches'
/// profiler-overhead gate (<=3% wall).  Independent of set_enabled();
/// PhaseTimer maintains the stack when either gate is on.
[[nodiscard]] bool phase_stack_enabled();
void set_phase_stack_enabled(bool on);

class Counter {
 public:
  explicit Counter(std::string name);

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  /// Hot path: one relaxed RMW on the calling thread's own cache line
  /// (uncontended below kNumShards threads, still correct above).
  void add(std::uint64_t delta) {
    slots_[shard_id() & (kNumShards - 1)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }

  /// Aggregates all shards.  Concurrent adds may or may not be included.
  [[nodiscard]] std::uint64_t value() const;
  void reset();

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::unique_ptr<Slot[]> slots_;
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise-only update, for high-water marks.
  void set_max(std::uint64_t v);
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { set(0); }

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> value_{0};
};

#else  // !LLPMST_OBS — every recorder is an empty no-op.

inline constexpr std::size_t kNumShards = 0;
[[nodiscard]] inline std::size_t shard_id() { return 0; }
[[nodiscard]] inline bool enabled() { return false; }
inline void set_enabled(bool) {}
[[nodiscard]] inline bool phase_stack_enabled() { return false; }
inline void set_phase_stack_enabled(bool) {}

class Counter {
 public:
  void add(std::uint64_t) {}
  void increment() {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

class Gauge {
 public:
  void set(std::uint64_t) {}
  void set_max(std::uint64_t) {}
  [[nodiscard]] std::uint64_t value() const { return 0; }
  void reset() {}
};

#endif  // LLPMST_OBS

/// Get-or-create a named metric in the process-wide registry.  Cold path
/// (mutex + hash lookup): call once and keep the reference when the metric
/// is hot.  The returned reference lives for the process lifetime.  When
/// observability is compiled out both return a shared dummy.
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);

/// All registered metrics, sorted by name.  Empty when compiled out.
[[nodiscard]] std::vector<MetricSample> snapshot_metrics();
/// All recorded phases, sorted by path.  Empty when compiled out.
[[nodiscard]] std::vector<PhaseSample> snapshot_phases();

/// Zeroes all counters/gauges and clears phase aggregates (the registry
/// entries themselves persist so cached references stay valid).
void reset_metrics();

/// Warnings are always compiled in — they surface correctness-adjacent
/// conditions (e.g. an LLP sweep cap hit) into reports regardless of the
/// obs build flavour.
void add_warning(std::string message);
[[nodiscard]] std::vector<std::string> snapshot_warnings();
void clear_warnings();

/// Microseconds since the process-wide observability epoch (first use);
/// the time base for phase spans and trace events.
[[nodiscard]] std::uint64_t now_us();

/// Escapes and double-quotes a string for JSON output ("ab\"c" -> "\"ab\\\"c\"").
[[nodiscard]] std::string json_quote(std::string_view s);

namespace detail {
#if LLPMST_OBS
/// Nested-phase support for PhaseTimer: push a frame, then pop it and fold
/// the elapsed time into the aggregate for the '/'-joined path (and into the
/// active trace, if any).
void phase_push(const char* name);
void phase_pop(std::uint64_t start_us);
/// Pops without folding into the timing aggregate or the trace — the
/// stack-only mode (phase_stack_enabled() without enabled()): one relaxed
/// store, so hot-loop scopes stay cheap while the profiler samples them.
void phase_pop_fast();
/// The '/'-joined path of the PhaseTimers live on the calling thread
/// ("" outside any phase).  Used by ScopedHwCounters for attribution.
[[nodiscard]] std::string phase_path();

/// Frames deeper than this are counted but not recorded (phase_path()
/// renders the stored prefix; real nesting depth is ~4).
inline constexpr std::size_t kMaxPhaseDepth = 16;

/// The per-thread stack of live PhaseTimer frames, laid out so the sampling
/// profiler's signal handler can read it asynchronously on the owning
/// thread: `frames[i]` is written *before* `depth` publishes it (release
/// store), and pop only moves `depth` down — so a handler that loads
/// `depth` and then reads `frames[0..min(depth, kMaxPhaseDepth))` always
/// sees string literals that were live at some instant.  The literals
/// themselves have static storage, so a momentarily stale frame is a stale
/// *attribution*, never a dangling read.
struct PhaseStack {
  const char* frames[kMaxPhaseDepth] = {};
  std::atomic<std::uint32_t> depth{0};
};

/// The calling thread's phase stack.  The address is stable for the
/// thread's lifetime; the profiler captures it once at thread registration.
[[nodiscard]] PhaseStack& phase_stack();
#endif
}  // namespace detail

}  // namespace llpmst::obs
