// RAII nested phase timing.
//
//   {
//     obs::PhaseTimer t("llp_prim_parallel");
//     ...
//     { obs::PhaseTimer f("heap_flush"); flush(); }   // -> "llp_prim_parallel/heap_flush"
//   }
//
// Phases nest per thread: the recorded name is the '/'-joined path of all
// live PhaseTimers on the current thread, which is how coarse algorithm
// spans ("llp_prim_parallel") and their inner stages ("heap_flush") line up
// in reports and traces without threading a prefix through every call.
//
// Cost: when obs::enabled() is false (the default), construction is one
// relaxed load and a branch — safe inside per-round loops.  When enabled,
// each scope is two clock reads plus one mutex-guarded aggregate update at
// scope exit, so place timers at round/phase granularity, not per element.
// Completed scopes also become trace "X" events while a trace is collecting.
#pragma once

#include "obs/metrics.hpp"

namespace llpmst::obs {

#if LLPMST_OBS

class PhaseTimer {
 public:
  /// `name` must outlive the scope (string literals in practice).
  explicit PhaseTimer(const char* name) {
    if (!enabled()) return;
    active_ = true;
    detail::phase_push(name);
    start_us_ = now_us();
  }
  ~PhaseTimer() {
    if (active_) detail::phase_pop(start_us_);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
};

#else

class PhaseTimer {
 public:
  explicit PhaseTimer(const char*) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
};

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
