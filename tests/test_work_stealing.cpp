#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"

namespace llpmst {
namespace {

class WorkStealing : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, WorkStealing, testing::Values(1, 2, 4, 8));

TEST_P(WorkStealing, ConsumesEveryInitialItemOnce) {
  const std::size_t n = 50000;
  std::vector<std::uint32_t> initial(n);
  for (std::size_t i = 0; i < n; ++i) initial[i] = static_cast<std::uint32_t>(i);
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  work_stealing_run<std::uint32_t>(
      pool_, initial, [&](std::uint32_t item, WorkStealingContext<std::uint32_t>&) {
        hits[item].fetch_add(1, std::memory_order_relaxed);
      });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(WorkStealing, PushedItemsAreProcessed) {
  // Each item pushes children 2i and 2i+1 while 2i < kLimit: exactly the
  // heap-numbered nodes 1..kLimit-1 get processed.
  constexpr std::uint32_t kLimit = 1 << 12;
  std::atomic<std::uint64_t> processed{0};
  work_stealing_run<std::uint32_t>(
      pool_, {1u}, [&](std::uint32_t item, WorkStealingContext<std::uint32_t>& ctx) {
        processed.fetch_add(1, std::memory_order_relaxed);
        if (2 * item < kLimit) {
          ctx.push(2 * item);
          ctx.push(2 * item + 1);
        }
      });
  EXPECT_EQ(processed.load(), kLimit - 1);
}

TEST_P(WorkStealing, EmptyInitialReturnsImmediately) {
  bool called = false;
  work_stealing_run<std::uint32_t>(
      pool_, {}, [&](std::uint32_t, WorkStealingContext<std::uint32_t>&) {
        called = true;
      });
  EXPECT_FALSE(called);
}

TEST_P(WorkStealing, SkewedWorkGetsStolen) {
  // All work seeds into one initial item that fans out; with >1 workers the
  // fan-out must be spread (at least: everything completes and worker ids
  // observed are valid).
  std::atomic<std::uint64_t> total{0};
  std::atomic<std::size_t> bad_worker{0};
  work_stealing_run<std::uint32_t>(
      pool_, {0u}, [&](std::uint32_t item, WorkStealingContext<std::uint32_t>& ctx) {
        if (ctx.worker() >= pool_.num_threads()) bad_worker.fetch_add(1);
        total.fetch_add(1, std::memory_order_relaxed);
        if (item < 2000) {
          ctx.push(item + 1000000);  // leaf
          if (item + 1 < 2000) ctx.push(item + 1);
        }
      });
  EXPECT_EQ(bad_worker.load(), 0u);
  EXPECT_EQ(total.load(), 2000u + 2000u);  // chain + one leaf per link
}

TEST_P(WorkStealing, StressManySmallRegions) {
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    std::vector<int> initial(10, round);
    work_stealing_run<int>(pool_, initial,
                           [&](int, WorkStealingContext<int>&) {
                             count.fetch_add(1, std::memory_order_relaxed);
                           });
    ASSERT_EQ(count.load(), 10);
  }
}

}  // namespace
}  // namespace llpmst
