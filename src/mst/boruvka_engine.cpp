#include "mst/boruvka_engine.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/hw_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/trace.hpp"
#include "parallel/atomic_utils.hpp"
#include "parallel/concurrent_bag.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

/// Active edge between two current component roots; prio carries the
/// original (weight, edge id) packing, so the chosen MSF edge is always
/// recoverable regardless of how many contractions happened.
struct ActiveEdge {
  VertexId u;
  VertexId v;
  EdgePriority prio;
};

}  // namespace

MstResult boruvka_engine(const CsrGraph& g, ThreadPool& pool,
                         const BoruvkaConfig& config) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();
  obs::PhaseTimer algo_span(config.obs_label);
  obs::ScopedHwCounters hw_scope(config.obs_label);
  MstResult r;

  std::vector<ActiveEdge> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    const WeightedEdge& we = g.edge(e);
    edges.push_back({we.u, we.v, make_priority(we.w, e)});
  }

  // parent[x] = current component root of original vertex x; re-established
  // for every x at the end of each round by pointer jumping.
  std::vector<std::atomic<VertexId>> parent(n);
  std::vector<std::atomic<EdgePriority>> best(n);
  parallel_for(pool, 0, n, [&](std::size_t v) {
    parent[v].store(static_cast<VertexId>(v), std::memory_order_relaxed);
    best[v].store(kInfinitePriority, std::memory_order_relaxed);
  });

  ConcurrentBag<EdgeId> chosen(pool.num_threads());
  std::vector<ActiveEdge> next_edges;
  std::vector<VertexId> jump_buf(
      config.jumping == PointerJumping::kSynchronized ? n : 0);
  std::atomic<std::uint64_t> jump_count{0};
  std::uint64_t jump_rounds = 0;  // pointer-jumping iterations across rounds

  while (!edges.empty()) {
    // Cancellation checkpoint, once per round: every edge already drained
    // into `chosen` was a genuine MSF edge, so stopping between rounds
    // yields a valid partial forest.
    if (config.cancel != nullptr && config.cancel->cancelled()) {
      r.stats.outcome = config.cancel->reason();
      break;
    }
    // Chaos hook, once per round.  Sleep/yield here widens the window
    // between a round's barriers; a failure spec aborts mid-contraction.
    if (LLPMST_FAILPOINT("boruvka/contract") != fail::Action::kNone) {
      r.stats.outcome = RunOutcome::kInjectedFault;
      break;
    }
    ++r.stats.rounds;
    const std::size_t me = edges.size();
    // Per-round visibility: the geometric shrink of the active edge list is
    // the paper's Section VII story for Boruvka — one span per round plus a
    // counter track ("<label>/active_edges") the trace viewer plots.
    obs::PhaseTimer round_span("round");
    if (obs::trace_collecting()) {
      obs::trace_emit_counter(std::string(config.obs_label) + "/active_edges",
                              obs::now_us(), me);
    }

    // --- 1. MWE selection.  Round 0 works on the original graph, whose
    // per-vertex minima the CSR precomputed — a plain store per vertex, no
    // atomics.  Later rounds work on contracted multigraph edge lists and
    // use the atomic min over edges.
    {
      obs::PhaseTimer mwe_span("mwe_select");
      if (r.stats.rounds == 1) {
        parallel_for(pool, 0, n, [&](std::size_t v) {
          best[v].store(g.min_incident_priority(static_cast<VertexId>(v)),
                        std::memory_order_relaxed);
        });
      } else {
        parallel_for(pool, 0, me, [&](std::size_t i) {
          const ActiveEdge& e = edges[i];
          atomic_fetch_min(best[e.u], e.prio);
          atomic_fetch_min(best[e.v], e.prio);
        });
      }
    }

    // --- 2. Hook: every root with an outgoing MWE picks its parent across
    // it; mutual choices are broken by id (smaller id stays root).  The
    // hooking side emits the edge, so each MSF edge is emitted exactly once.
    {
      obs::PhaseTimer hook_span("hook");
      parallel_blocks(pool, 0, n, [&](std::size_t lo, std::size_t hi,
                                      std::size_t worker) {
        for (std::size_t v = lo; v < hi; ++v) {
          const EdgePriority p = best[v].load(std::memory_order_relaxed);
          if (p == kInfinitePriority) continue;
          const EdgeId e = priority_edge(p);
          const WeightedEdge& we = g.edge(e);
          // The edge's endpoints in the current component space.
          const VertexId ru = parent[we.u].load(std::memory_order_relaxed);
          const VertexId rv = parent[we.v].load(std::memory_order_relaxed);
          LLPMST_ASSERT(ru == v || rv == v);
          const VertexId w = (ru == static_cast<VertexId>(v)) ? rv : ru;
          if (w == static_cast<VertexId>(v)) {
            // The partner root already hooked itself under v across this very
            // edge (mutual MWE, partner has the larger id) — the partner
            // emitted the edge; v stays root.  Reading the partner's fresher
            // parent pointer is the only way w can resolve to v: any other
            // hook target would contradict p being the minimum edge priority
            // incident to v's component.
            continue;
          }
          const bool mutual =
              best[w].load(std::memory_order_relaxed) == p;
          if (mutual && static_cast<VertexId>(v) < w) {
            continue;  // v stays the root of the merged component
          }
          parent[v].store(w, std::memory_order_relaxed);
          chosen.push(worker, e);
        }
      });
    }

    // --- 3. Pointer jumping: collapse every component to a rooted star.
    {
      obs::PhaseTimer jump_span("pointer_jump");
      if (config.jumping == PointerJumping::kAsynchronous) {
        // One chaotic pass.  parent chains always lead to a root (roots are
        // stable during this phase), and concurrent shortcuts only replace a
        // pointer with a later node on the same path, so chasing terminates.
        ++jump_rounds;
        parallel_for(pool, 0, n, [&](std::size_t v) {
          VertexId l = parent[v].load(std::memory_order_relaxed);
          std::uint64_t steps = 0;
          for (;;) {
            const VertexId pl = parent[l].load(std::memory_order_relaxed);
            if (pl == l) break;
            l = pl;
            ++steps;
          }
          parent[v].store(l, std::memory_order_relaxed);
          if (steps != 0) {
            jump_count.fetch_add(steps, std::memory_order_relaxed);
          }
        });
      } else {
        // Bulk-synchronous double-buffered jumping; each iteration is a full
        // team barrier (this is the synchronization LLP-Boruvka removes).
        for (;;) {
          ++jump_rounds;
          std::atomic<bool> changed{false};
          parallel_for(pool, 0, n, [&](std::size_t v) {
            const VertexId p = parent[v].load(std::memory_order_relaxed);
            const VertexId pp = parent[p].load(std::memory_order_relaxed);
            jump_buf[v] = pp;
            if (pp != p) changed.store(true, std::memory_order_relaxed);
          });
          parallel_for(pool, 0, n, [&](std::size_t v) {
            if (parent[v].load(std::memory_order_relaxed) != jump_buf[v]) {
              parent[v].store(jump_buf[v], std::memory_order_relaxed);
              jump_count.fetch_add(1, std::memory_order_relaxed);
            }
          });
          if (!changed.load(std::memory_order_relaxed)) break;
        }
      }
    }

    // --- 4. Contraction: remap endpoints to star roots, drop self-loops.
    obs::PhaseTimer contract_span("contract");
    parallel_filter(
        pool, me, next_edges,
        [&](std::size_t i) {
          return parent[edges[i].u].load(std::memory_order_relaxed) !=
                 parent[edges[i].v].load(std::memory_order_relaxed);
        },
        [&](std::size_t i) {
          VertexId nu = parent[edges[i].u].load(std::memory_order_relaxed);
          VertexId nv = parent[edges[i].v].load(std::memory_order_relaxed);
          if (nu > nv) std::swap(nu, nv);
          return ActiveEdge{nu, nv, edges[i].prio};
        });

    if (config.dedup_contracted_edges && !next_edges.empty()) {
      std::sort(next_edges.begin(), next_edges.end(),
                [](const ActiveEdge& a, const ActiveEdge& b) {
                  if (a.u != b.u) return a.u < b.u;
                  if (a.v != b.v) return a.v < b.v;
                  return a.prio < b.prio;
                });
      std::size_t out = 0;
      for (std::size_t i = 0; i < next_edges.size(); ++i) {
        if (out > 0 && next_edges[out - 1].u == next_edges[i].u &&
            next_edges[out - 1].v == next_edges[i].v) {
          continue;  // heavier parallel edge between the same components
        }
        next_edges[out++] = next_edges[i];
      }
      next_edges.resize(out);
    }

    edges.swap(next_edges);

    // --- 5. Reset MWE slots for the next round.
    parallel_for(pool, 0, n, [&](std::size_t v) {
      best[v].store(kInfinitePriority, std::memory_order_relaxed);
    });
  }

  chosen.drain_into(r.edges);
  r.stats.pointer_jumps = jump_count.load(std::memory_order_relaxed);
  if (obs::kCompiledIn) {
    obs::counter(std::string(config.obs_label) + "/jump_rounds")
        .add(jump_rounds);
    obs::gauge(std::string(config.obs_label) + "/last_run_rounds")
        .set(r.stats.rounds);
  }
  record_algo_metrics(config.obs_label, r.stats);
  finalize_result(g, r);
  return r;
}

}  // namespace llpmst
