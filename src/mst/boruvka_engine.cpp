#include "mst/boruvka_engine.hpp"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "core/run_context.hpp"
#include "obs/hw_counters.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/round_stats.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/scan.hpp"
#include "parallel/work_stealing.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

// Relaxed atomic accessors over plain scratch arrays.  The engine's arrays
// are plain vectors so the scratch can be resized and reused; the few
// genuinely concurrent accesses (pointer jumping, live marks, fused MWE
// minima) go through std::atomic_ref, everything else relies on the team
// join's happens-before and uses plain loads/stores.
inline VertexId rel_load(VertexId& slot) {
  return std::atomic_ref<VertexId>(slot).load(std::memory_order_relaxed);
}

inline void rel_store(VertexId& slot, VertexId v) {
  std::atomic_ref<VertexId>(slot).store(v, std::memory_order_relaxed);
}

/// Lowers `slot` to min(slot, p); relaxed CAS loop (see atomic_utils.hpp for
/// the std::atomic flavour — this one targets reusable plain arrays).
inline void prio_fetch_min(EdgePriority& slot, EdgePriority p) {
  std::atomic_ref<EdgePriority> ref(slot);
  EdgePriority cur = ref.load(std::memory_order_relaxed);
  while (p < cur &&
         !ref.compare_exchange_weak(cur, p, std::memory_order_relaxed,
                                    std::memory_order_relaxed)) {
  }
}

/// Round-1 edge source: the CSR's original edge list, viewed in place — the
/// engine never materializes a copy of the input edges.
struct CsrEdgeView {
  const CsrGraph* g;
  [[nodiscard]] std::size_t size() const { return g->num_edges(); }
  [[nodiscard]] VertexId u(std::size_t i) const {
    return g->edge(static_cast<EdgeId>(i)).u;
  }
  [[nodiscard]] VertexId v(std::size_t i) const {
    return g->edge(static_cast<EdgeId>(i)).v;
  }
  [[nodiscard]] EdgePriority prio(std::size_t i) const {
    return g->edge_priority(static_cast<EdgeId>(i));
  }
};

/// Later rounds: the contracted multigraph's compact edge list.
struct ActiveEdgeView {
  const BoruvkaActiveEdge* e;
  std::size_t n;
  [[nodiscard]] std::size_t size() const { return n; }
  [[nodiscard]] VertexId u(std::size_t i) const { return e[i].u; }
  [[nodiscard]] VertexId v(std::size_t i) const { return e[i].v; }
  [[nodiscard]] EdgePriority prio(std::size_t i) const { return e[i].prio; }
};

[[nodiscard]] std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

/// splitmix64 finalizer — mixes the packed (u, v) key into a table index.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// One engine run.  Holds the per-run state so the round phases read as
/// small member functions instead of one page-long loop body.
struct Engine {
  const CsrGraph& g;
  Executor& pool;
  const BoruvkaConfig& cfg;
  BoruvkaScratch& s;
  MstResult r;

  std::size_t threads;
  std::size_t k = 0;  // live components in the current (dense) id space
  bool steal_fallback = false;  // extract sweep rerouted after measured skew
  /// max/mean per-worker busy time of the last extract() sweep; 0.0 on
  /// paths that do not time per-worker shares (serial, steal, fixed-chunk).
  double last_extract_imbalance = 0.0;
  std::atomic<std::uint32_t> emit_pos{0};  // cursor into s.msf_edges
  std::atomic<std::uint64_t> jump_count{0};
  std::uint64_t jump_rounds = 0;

  // Outputs of the most recent contract() call.
  std::size_t kept = 0;
  std::size_t self_loops = 0;
  std::size_t bundle_dropped = 0;
  std::size_t k_new = 0;

  static constexpr std::size_t kMaxProbes = 16;

  Engine(const CsrGraph& graph, Executor& p, const BoruvkaConfig& c,
         BoruvkaScratch& scratch)
      : g(graph), pool(p), cfg(c), s(scratch), threads(p.num_threads()) {}

  /// Round 1 setup: identity parents and the CSR's precomputed per-vertex
  /// minima ("the MWE set can be computed when the graph is input").
  void init_round1() {
    const std::size_t n = g.num_vertices();
    k = n;
    s.parent.resize(n);
    s.best.resize(n);
    s.partner.resize(n);
    s.msf_edges.resize(n == 0 ? 0 : n - 1);  // an MSF has at most n-1 edges
    parallel_for_static(pool, 0, n, [this](std::size_t v) {
      s.parent[v] = static_cast<VertexId>(v);
      s.best[v] = g.min_incident_priority(static_cast<VertexId>(v));
    });
  }

  /// MWE extract: recover, for every component whose minimum is known in
  /// best[], the partner component across that winning edge.  Exactly one
  /// edge matches best[c] (priorities are unique), so each partner slot has
  /// a single writer and the sweep is read-mostly and race-free.
  template <typename View>
  void extract(const View& ev) {
    obs::PhaseTimer span("mwe_select");
    last_extract_imbalance = 0.0;
    const std::size_t me = ev.size();
    auto body = [this, &ev](std::size_t i) {
      const EdgePriority p = ev.prio(i);
      const VertexId a = ev.u(i);
      const VertexId b = ev.v(i);
      if (p == s.best[a]) s.partner[a] = b;
      if (p == s.best[b]) s.partner[b] = a;
    };
    const bool steal = cfg.load_balance == BoruvkaLoadBalance::kWorkStealing ||
                       steal_fallback;
    if (steal) {
      parallel_for_stealing(pool, 0, me, s.extract_grain.grain(me, threads),
                            body);
      return;
    }
    if (cfg.load_balance == BoruvkaLoadBalance::kFixedChunk) {
      parallel_for(pool, 0, me, body);
      return;
    }
    // Adaptive: chunked with a utilization probe.  A sweep that ends with
    // most workers idle (stragglers holding hot, contended components)
    // reroutes the remaining rounds to the work-stealing path, whose lazy
    // splitting peels a straggler's tail in halves.
    if (threads == 1 || s.extract_grain.prefers_serial(me)) {
      const std::uint64_t t0 = detail::grain_clock_ns();
      for (std::size_t i = 0; i < me; ++i) body(i);
      s.extract_grain.update(me,
                             static_cast<double>(detail::grain_clock_ns() - t0));
      return;
    }
    s.worker_ns.assign(threads, 0);
    const std::size_t grain = s.extract_grain.grain(me, threads);
    const std::uint64_t t0 = detail::grain_clock_ns();
    parallel_chunks(pool, 0, me, grain,
                    [this, &body](std::size_t lo, std::size_t hi,
                                  std::size_t w) {
                      const std::uint64_t c0 = detail::grain_clock_ns();
                      for (std::size_t i = lo; i < hi; ++i) body(i);
                      s.worker_ns[w] += detail::grain_clock_ns() - c0;
                    });
    const std::uint64_t wall = detail::grain_clock_ns() - t0;
    s.extract_grain.update(me, static_cast<double>(wall));
    std::uint64_t busy = 0;
    std::uint64_t busy_max = 0;
    for (std::size_t w = 0; w < threads; ++w) {
      busy += s.worker_ns[w];
      if (s.worker_ns[w] > busy_max) busy_max = s.worker_ns[w];
    }
    if (busy > 0) {
      // max/mean: 1.0 = perfectly balanced; feeds the round telemetry.
      last_extract_imbalance = static_cast<double>(busy_max) *
                               static_cast<double>(threads) /
                               static_cast<double>(busy);
    }
    // utilization = busy / (wall * threads); below ~55% on a sweep that is
    // long enough to matter (>100us) means stragglers, not noise.
    if (wall > 100'000 && busy * 100 < wall * threads * 55) {
      steal_fallback = true;
      if (obs::kCompiledIn) {
        obs::counter(std::string(cfg.obs_label) + "/mwe_steal_fallbacks")
            .add(1);
      }
    }
  }

  /// Hook: every component with an outgoing MWE picks its parent across it;
  /// mutual choices are broken by id (smaller id stays root).  The hooking
  /// side emits the edge (into a unique cursor slot), so each MSF edge is
  /// emitted exactly once; finalize_result sorts, so order is free.
  void hook() {
    obs::PhaseTimer span("hook");
    parallel_for_adaptive(pool, 0, k, s.vertex_grain, [this](std::size_t c) {
      const EdgePriority p = s.best[c];
      if (p == kInfinitePriority) return;  // no incident edges (round 1 only)
      const VertexId pw = s.partner[c];
      LLPMST_ASSERT(pw < k && pw != static_cast<VertexId>(c));
      if (s.best[pw] == p && static_cast<VertexId>(c) < pw) {
        return;  // mutual MWE: c stays the root of the merged component
      }
      s.parent[c] = pw;
      s.msf_edges[emit_pos.fetch_add(1, std::memory_order_relaxed)] =
          priority_edge(p);
    });
  }

  /// Pointer jumping: collapse every component to a rooted star.
  void jump() {
    obs::PhaseTimer span("pointer_jump");
    if (cfg.jumping == PointerJumping::kAsynchronous) {
      // One chaotic pass.  parent chains always lead to a root (roots are
      // stable during this phase), and concurrent shortcuts only replace a
      // pointer with a later node on the same path, so chasing terminates.
      // Full path compression: the discovered root is written back into
      // EVERY node on the chase path, not just the starting vertex — the
      // next vertex sharing a suffix of the path finds its root in O(1).
      ++jump_rounds;
      parallel_for_adaptive(pool, 0, k, s.vertex_grain, [this](std::size_t v) {
        VertexId root = rel_load(s.parent[v]);
        if (root == static_cast<VertexId>(v)) return;
        std::uint64_t steps = 0;
        for (;;) {
          const VertexId up = rel_load(s.parent[root]);
          if (up == root) break;
          root = up;
          ++steps;
        }
        VertexId cur = static_cast<VertexId>(v);
        while (cur != root) {
          const VertexId nxt = rel_load(s.parent[cur]);
          rel_store(s.parent[cur], root);
          cur = nxt;
        }
        if (steps != 0) {
          jump_count.fetch_add(steps, std::memory_order_relaxed);
        }
      });
    } else {
      // Bulk-synchronous double-buffered jumping; each iteration is a full
      // team barrier (this is the synchronization LLP-Boruvka removes).
      s.jump_buf.resize(k);
      for (;;) {
        ++jump_rounds;
        std::atomic<bool> changed{false};
        parallel_for(pool, 0, k, [this, &changed](std::size_t v) {
          const VertexId p = s.parent[v];
          const VertexId pp = s.parent[p];
          s.jump_buf[v] = pp;
          if (pp != p) changed.store(true, std::memory_order_relaxed);
        });
        parallel_for(pool, 0, k, [this](std::size_t v) {
          if (s.parent[v] != s.jump_buf[v]) {
            s.parent[v] = s.jump_buf[v];
            jump_count.fetch_add(1, std::memory_order_relaxed);
          }
        });
        if (!changed.load(std::memory_order_relaxed)) break;
      }
    }
  }

  /// Bundle-min filter: claim-or-merge a (u, v) pair slot.  Linear probing,
  /// capped; giving up keeps the edge (safe: extra parallel edges only cost
  /// list length, never correctness).
  void filter_install(VertexId a, VertexId b, EdgePriority p,
                      std::size_t mask) {
    if (a > b) std::swap(a, b);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(a) << 32) | b;  // a < b, so key != 0
    std::size_t idx = static_cast<std::size_t>(mix64(key)) & mask;
    for (std::size_t probe = 0; probe < kMaxProbes;
         ++probe, idx = (idx + 1) & mask) {
      std::atomic_ref<std::uint64_t> kref(s.filter_key[idx]);
      std::uint64_t cur = kref.load(std::memory_order_relaxed);
      if (cur == 0 &&
          kref.compare_exchange_strong(cur, key, std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
        cur = key;  // claimed the slot
      }
      if (cur == key) {
        prio_fetch_min(s.filter_min[idx], p);
        return;
      }
    }
  }

  /// True iff the edge survives the bundle-min filter: dropped only when its
  /// pair's slot is found AND holds a strictly lighter priority.
  [[nodiscard]] bool filter_keeps(VertexId a, VertexId b, EdgePriority p,
                                  std::size_t mask) const {
    if (a > b) std::swap(a, b);
    const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
    std::size_t idx = static_cast<std::size_t>(mix64(key)) & mask;
    for (std::size_t probe = 0; probe < kMaxProbes;
         ++probe, idx = (idx + 1) & mask) {
      const std::uint64_t cur = s.filter_key[idx];
      if (cur == 0) return true;  // never installed
      if (cur == key) return s.filter_min[idx] >= p;
      // >= : priorities are unique, so == means "this edge IS the minimum".
    }
    return true;  // probe cap: filter gave up on this pair
  }

  /// Contraction: relabel surviving edges to the next round's dense root
  /// space, dropping self-loops (and bundle-heavy edges when filtering) in
  /// the same chunked sweeps, and fold the next round's per-component MWE
  /// minima into the emit pass while the edge is in cache.  Chunk-indexed
  /// stream compaction keeps the output in deterministic (input) order.
  template <typename View>
  void contract(const View& ev) {
    obs::PhaseTimer span("contract");
    const std::size_t me = ev.size();
    const bool filter = cfg.dedup_contracted_edges;
    const std::size_t grain = s.contract_grain.grain(me, threads);
    const std::size_t nc = (me + grain - 1) / grain;
    const std::uint64_t t0 = detail::grain_clock_ns();
    s.chunk_count.assign(nc, 0);
    s.dense.assign(k, 0);  // live-root marks, scanned into dense ids below

    std::size_t mask = 0;
    if (filter) {
      const std::size_t slots = next_pow2(std::max<std::size_t>(64, 2 * me));
      mask = slots - 1;
      if (s.filter_key.size() < slots) {
        s.filter_key.resize(slots);
        s.filter_min.resize(slots);
      }
      parallel_for_static(pool, 0, slots, [this](std::size_t i) {
        s.filter_key[i] = 0;
        s.filter_min[i] = kInfinitePriority;
      });
    }

    // Pass A: mark live roots, count survivors (exact without the filter;
    // with it, install bundle minima first and recount in pass B once the
    // table is frozen).
    parallel_chunks(
        pool, 0, me, grain,
        [this, &ev, grain, filter, mask](std::size_t lo, std::size_t hi,
                                         std::size_t) {
          const std::size_t ci = lo / grain;
          std::size_t alive = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const VertexId cu = s.parent[ev.u(i)];
            const VertexId cv = s.parent[ev.v(i)];
            if (cu == cv) continue;
            ++alive;
            rel_store(s.dense[cu], 1);
            rel_store(s.dense[cv], 1);
            if (filter) filter_install(cu, cv, ev.prio(i), mask);
          }
          s.chunk_count[ci] = alive;
        });
    std::size_t alive_total = 0;
    for (std::size_t ci = 0; ci < nc; ++ci) alive_total += s.chunk_count[ci];
    self_loops = me - alive_total;

    if (filter) {
      parallel_chunks(pool, 0, me, grain,
                      [this, &ev, grain, mask](std::size_t lo, std::size_t hi,
                                               std::size_t) {
                        const std::size_t ci = lo / grain;
                        std::size_t cnt = 0;
                        for (std::size_t i = lo; i < hi; ++i) {
                          const VertexId cu = s.parent[ev.u(i)];
                          const VertexId cv = s.parent[ev.v(i)];
                          if (cu != cv &&
                              filter_keeps(cu, cv, ev.prio(i), mask)) {
                            ++cnt;
                          }
                        }
                        s.chunk_count[ci] = cnt;
                      });
    }

    // Exclusive scan of the per-chunk counts -> output offsets (nc is tiny).
    kept = 0;
    for (std::size_t ci = 0; ci < nc; ++ci) {
      const std::size_t c = s.chunk_count[ci];
      s.chunk_count[ci] = kept;
      kept += c;
    }
    bundle_dropped = alive_total - kept;

    // Dense relabeling: scan the live marks into the next round's component
    // ids.  Every per-component array of the next round is k_new long — the
    // whole working set shrinks at least geometrically with the rounds.
    k_new = static_cast<std::size_t>(exclusive_scan_inplace(pool, s.dense));

    // Testing hook: gather the dropped original edge ids (sequential; the
    // observer path is cold by contract).
    if (cfg.collect_dropped_edges) {
      s.dropped.clear();
      for (std::size_t i = 0; i < me; ++i) {
        const VertexId cu = s.parent[ev.u(i)];
        const VertexId cv = s.parent[ev.v(i)];
        if (cu == cv || (filter && !filter_keeps(cu, cv, ev.prio(i), mask))) {
          s.dropped.push_back(priority_edge(ev.prio(i)));
        }
      }
    }

    // Pass C: emit survivors at their scanned offsets, relabeled to dense
    // ids, and fold the next round's MWE minima in the same touch.
    s.best.assign(k_new, kInfinitePriority);
    s.next_edges.resize(kept);
    parallel_chunks(
        pool, 0, me, grain,
        [this, &ev, grain, filter, mask](std::size_t lo, std::size_t hi,
                                         std::size_t) {
          const std::size_t ci = lo / grain;
          std::size_t pos = s.chunk_count[ci];
          for (std::size_t i = lo; i < hi; ++i) {
            const VertexId cu = s.parent[ev.u(i)];
            const VertexId cv = s.parent[ev.v(i)];
            if (cu == cv) continue;
            const EdgePriority p = ev.prio(i);
            if (filter && !filter_keeps(cu, cv, p, mask)) continue;
            const VertexId du = s.dense[cu];
            const VertexId dv = s.dense[cv];
            s.next_edges[pos++] = {du, dv, p};
            prio_fetch_min(s.best[du], p);
            prio_fetch_min(s.best[dv], p);
          }
        });

    // The old component space is dead: shrink the per-component arrays and
    // re-establish identity parents for the dense space.
    s.parent.resize(k_new);
    s.partner.resize(k_new);
    parallel_for_adaptive(pool, 0, k_new, s.vertex_grain, [this](std::size_t c) {
      s.parent[c] = static_cast<VertexId>(c);
    });
    s.contract_grain.update(me,
                            static_cast<double>(detail::grain_clock_ns() - t0));
  }

  MstResult run() {
    const std::size_t n = g.num_vertices();
    const std::size_t m = g.num_edges();
    std::string active_label;
    if (obs::kCompiledIn) {
      active_label = std::string(cfg.obs_label) + "/active_edges";
    }

    std::size_t active = m;
    bool first_round = true;
    const bool rounds_on = obs::kCompiledIn && obs::enabled();
    while (active > 0) {
      // Cancellation checkpoint, once per round: every edge already drained
      // into `chosen` was a genuine MSF edge, so stopping between rounds
      // yields a valid partial forest.
      if (cfg.cancel != nullptr && cfg.cancel->cancelled()) {
        r.stats.outcome = cfg.cancel->reason();
        break;
      }
      // Chaos hook, once per round.  Sleep/yield here widens the window
      // between a round's barriers; a failure spec aborts mid-contraction.
      if (LLPMST_FAILPOINT("boruvka/contract") != fail::Action::kNone) {
        r.stats.outcome = RunOutcome::kInjectedFault;
        break;
      }
      ++r.stats.rounds;
      // Per-round visibility: the geometric shrink of the active edge list
      // is the paper's Section VII story for Boruvka — one span per round
      // plus a counter track ("<label>/active_edges") the viewer plots.
      obs::PhaseTimer round_span("round");
      if (obs::trace_collecting()) {
        obs::trace_emit_counter(active_label, obs::now_us(), active);
      }
      const std::uint64_t round_t0 = rounds_on ? obs::now_us() : 0;

      BoruvkaRoundStats info;
      info.round = r.stats.rounds;
      info.active_edges = active;

      const std::size_t emitted_before =
          emit_pos.load(std::memory_order_relaxed);
      if (first_round) {
        info.components = n;
        init_round1();
        extract(CsrEdgeView{&g});
      } else {
        info.components = k;
        extract(ActiveEdgeView{s.edges.data(), s.edges.size()});
      }
      hook();
      info.msf_edges_emitted =
          emit_pos.load(std::memory_order_relaxed) - emitted_before;
      jump();
      if (first_round) {
        contract(CsrEdgeView{&g});
      } else {
        contract(ActiveEdgeView{s.edges.data(), s.edges.size()});
      }
      s.edges.swap(s.next_edges);
      active = kept;
      k = k_new;
      first_round = false;

      if (rounds_on) {
        obs::RoundRecord rr;
        rr.label = cfg.obs_label;
        rr.round = r.stats.rounds;
        rr.components = info.components;
        rr.edges = info.active_edges;
        rr.advances = info.msf_edges_emitted;
        rr.wall_ms = static_cast<double>(obs::now_us() - round_t0) * 1e-3;
        rr.imbalance = last_extract_imbalance;
        obs::record_round(std::move(rr));
      }

      if (cfg.round_observer) {
        info.self_loops_dropped = self_loops;
        info.bundle_edges_dropped = bundle_dropped;
        info.components_after = k_new;
        info.edges_after = kept;
        info.dropped_edge_ids = cfg.collect_dropped_edges ? &s.dropped : nullptr;
        cfg.round_observer(info);
      }
    }

    const std::size_t emitted = emit_pos.load(std::memory_order_relaxed);
    LLPMST_ASSERT(emitted <= s.msf_edges.size());
    r.edges.assign(s.msf_edges.begin(),
                   s.msf_edges.begin() + static_cast<std::ptrdiff_t>(emitted));
    r.stats.pointer_jumps = jump_count.load(std::memory_order_relaxed);
    if (obs::kCompiledIn) {
      obs::counter(std::string(cfg.obs_label) + "/jump_rounds")
          .add(jump_rounds);
      obs::gauge(std::string(cfg.obs_label) + "/last_run_rounds")
          .set(r.stats.rounds);
    }
    record_algo_metrics(cfg.obs_label, r.stats);
    finalize_result(g, r);
    return r;
  }
};

}  // namespace

MstResult boruvka_engine(const CsrGraph& g, RunContext& ctx,
                         const BoruvkaConfig& config) {
  obs::PhaseTimer algo_span(config.obs_label);
  obs::ScopedHwCounters hw_scope(config.obs_label);
  // Config fields override the context: an explicit cancel token wins over
  // ctx.cancel_token(), and scratch deliberately does NOT default to the
  // context's arena (the ablation bench measures fresh-vs-reused scratch;
  // the named entry points opt in explicitly).
  BoruvkaConfig cfg = config;
  if (cfg.cancel == nullptr) cfg.cancel = ctx.cancel_token();
  BoruvkaScratch local_scratch;
  BoruvkaScratch& s = cfg.scratch != nullptr ? *cfg.scratch : local_scratch;
  Engine engine(g, ctx.executor(), cfg, s);
  return engine.run();
}

}  // namespace llpmst
