// Failure-injection / fuzz tests for the file readers: random truncation and
// byte corruption of valid files must always yield a clean error or a valid
// graph — never a crash, hang, or out-of-range edge list.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators/random_graph.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/metis.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

class FuzzIo : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_fuzz_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) { return (dir_ / n).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void spit(const std::string& p, const std::string& content) {
    std::ofstream out(p, std::ios::binary);
    out << content;
  }

  /// Checks an accepted graph is internally consistent.
  static void check_sane(const EdgeList& g) {
    for (const WeightedEdge& e : g.edges()) {
      ASSERT_LT(e.u, g.num_vertices());
      ASSERT_LT(e.v, g.num_vertices());
      ASSERT_NE(e.u, e.v);
    }
    ASSERT_TRUE(g.is_normalized());
  }

  std::filesystem::path dir_;
};

EdgeList sample_graph() {
  ErdosRenyiParams p;
  p.num_vertices = 60;
  p.num_edges = 200;
  p.seed = 3;
  return generate_erdos_renyi(p);
}

TEST_F(FuzzIo, DimacsSurvivesTruncationAtEveryPrefix) {
  ASSERT_EQ(write_dimacs(path("g.gr"), sample_graph()), "");
  const std::string full = slurp(path("g.gr"));
  // Every 37th prefix keeps runtime sane while covering all code paths.
  for (std::size_t len = 0; len < full.size(); len += 37) {
    spit(path("t.gr"), full.substr(0, len));
    const DimacsResult r = read_dimacs(path("t.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, DimacsSurvivesRandomByteCorruption) {
  ASSERT_EQ(write_dimacs(path("g.gr"), sample_graph()), "");
  const std::string full = slurp(path("g.gr"));
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    spit(path("m.gr"), mutated);
    const DimacsResult r = read_dimacs(path("m.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesTruncationAtEveryPrefix) {
  ASSERT_EQ(write_edge_list_binary(path("g.bin"), sample_graph()), "");
  const std::string full = slurp(path("g.bin"));
  for (std::size_t len = 0; len <= full.size(); len += 5) {
    spit(path("t.bin"), full.substr(0, len));
    const EdgeListResult r = read_edge_list_binary(path("t.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesRandomByteCorruption) {
  ASSERT_EQ(write_edge_list_binary(path("g.bin"), sample_graph()), "");
  const std::string full = slurp(path("g.bin"));
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.bin"), mutated);
    const EdgeListResult r = read_edge_list_binary(path("m.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinaryRejectsHugeDeclaredCounts) {
  // Header declaring 2^40 edges over 4 vertices must fail on truncation,
  // not allocate terabytes.
  std::string blob = "LLPM";
  const std::uint32_t version = 1;
  const std::uint64_t n = 4, m = 1ull << 40;
  blob.append(reinterpret_cast<const char*>(&version), 4);
  blob.append(reinterpret_cast<const char*>(&n), 8);
  blob.append(reinterpret_cast<const char*>(&m), 8);
  spit(path("huge.bin"), blob);
  const EdgeListResult r = read_edge_list_binary(path("huge.bin"));
  EXPECT_FALSE(r.ok());
}

TEST_F(FuzzIo, MetisSurvivesTruncationAndCorruption) {
  ASSERT_EQ(write_metis(path("g.metis"), sample_graph()), "");
  const std::string full = slurp(path("g.metis"));
  for (std::size_t len = 0; len < full.size(); len += 41) {
    spit(path("t.metis"), full.substr(0, len));
    const EdgeListResult r = read_metis(path("t.metis"));
    if (r.ok()) check_sane(r.graph);
  }
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.metis"), mutated);
    const EdgeListResult r = read_metis(path("m.metis"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, TextSurvivesGarbage) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string noise;
    const std::size_t len = rng.next_below(400);
    for (std::size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.next_below(256)));
    }
    spit(path("noise.txt"), noise);
    const EdgeListResult r = read_edge_list_text(path("noise.txt"));
    if (r.ok()) check_sane(r.graph);
  }
}

}  // namespace
}  // namespace llpmst
