#include "serve/catalog.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "ds/union_find.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/io/read_graph.hpp"
#include "graph/storage.hpp"
#include "obs/metrics.hpp"
#include "scenario/scenario.hpp"
#include "support/timer.hpp"

namespace llpmst::serve {

namespace {

bool valid_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                    c == '.';
    if (!ok) return false;
  }
  return true;
}

/// Parses the "NNN" of "rmat:NNN"-style sources.  Rejects junk so that a
/// typo like "rmat:16x" is an admission error, not scale 16.
bool parse_u64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

Expected<EdgeList> make_edge_list(const std::string& source,
                                  std::uint64_t seed) {
  const auto split = source.find(':');
  const std::string kind =
      split == std::string::npos ? "" : source.substr(0, split);
  const std::string arg =
      split == std::string::npos ? source : source.substr(split + 1);

  if (kind == "scenario") {
    const Scenario* scen = find_scenario(arg);
    if (scen == nullptr) {
      return Status(StatusCode::kInvalidArgument,
                    "unknown scenario '" + arg + "' (see " +
                        scenario_names() + ")");
    }
    return scen->make(seed);
  }
  if (kind == "road") {
    std::uint64_t side = 0;
    if (!parse_u64(arg, &side) || side == 0 || side > 8192) {
      return Status(StatusCode::kInvalidArgument,
                    "road:SIDE needs SIDE in [1, 8192], got '" + arg + "'");
    }
    RoadParams params;
    params.width = static_cast<std::uint32_t>(side);
    params.height = static_cast<std::uint32_t>(side);
    params.seed = seed;
    return generate_road_network(params);
  }
  if (kind == "rmat") {
    std::uint64_t scale = 0;
    if (!parse_u64(arg, &scale) || scale == 0 || scale > 24) {
      return Status(StatusCode::kInvalidArgument,
                    "rmat:SCALE needs SCALE in [1, 24], got '" + arg + "'");
    }
    RmatParams params;
    params.scale = static_cast<int>(scale);
    params.seed = seed;
    return generate_rmat(params);
  }
  if (kind == "er") {
    std::uint64_t n = 0;
    if (!parse_u64(arg, &n) || n == 0 || n > (1u << 22)) {
      return Status(StatusCode::kInvalidArgument,
                    "er:VERTICES needs VERTICES in [1, 2^22], got '" + arg +
                        "'");
    }
    ErdosRenyiParams params;
    params.num_vertices = static_cast<std::uint32_t>(n);
    params.num_edges = 4 * n;
    params.seed = seed;
    return generate_erdos_renyi(params);
  }
  // "file:PATH" or a bare path.  A one-letter Windows-style drive prefix is
  // not a concern here; any other "kind:" we did not recognise is treated
  // as a path too, so the error message comes from the file reader.
  return read_graph(kind == "file" ? arg : source);
}

std::size_t count_components(const CsrGraph& g) {
  UnionFind uf(g.num_vertices());
  for (const WeightedEdge& e : g.edges()) uf.unite(e.u, e.v);
  return uf.num_sets();
}

}  // namespace

Expected<SnapshotPtr> GraphCatalog::load(const std::string& name,
                                         const std::string& source,
                                         std::uint64_t seed) {
  if (!valid_name(name)) {
    return Status(StatusCode::kInvalidArgument,
                  "graph name must be 1-64 chars of [A-Za-z0-9._-], got '" +
                      name + "'");
  }
  {
    std::lock_guard lock(mutex_);
    for (const SnapshotPtr& s : snapshots_) {
      if (s->name == name) {
        return Status(StatusCode::kInvalidArgument,
                      "graph '" + name + "' already loaded (unload first)");
      }
    }
  }

  // Build OUTSIDE the lock: loads can take seconds and must not stall
  // queries resolving other snapshots.  The duplicate-name race (two
  // concurrent loads of one name) is re-checked at insert.
  auto snapshot = std::make_shared<GraphSnapshot>();
  snapshot->name = name;
  snapshot->source = source;
  snapshot->seed = seed;
  Timer load_timer;
  if (source.rfind("binfile:", 0) == 0) {
    // Mount path: no edge-list parse, no CSR rebuild.  The component count
    // below still walks the edge section once — that is admission metadata
    // the format does not carry, and it reads m*12 bytes, not the arcs.
    Expected<CsrGraph> g = read_binary_csr(source.substr(8));
    if (!g.ok()) return g.status();
    snapshot->graph = std::move(*g);
    snapshot->backend = "mmap";
    snapshot->bytes_mapped = snapshot->graph.storage()->mapped_bytes();
  } else {
    Expected<EdgeList> edges = make_edge_list(source, seed);
    if (!edges.ok()) return edges.status();
    snapshot->graph = CsrGraph::build(*edges);
  }
  snapshot->components = count_components(snapshot->graph);
  snapshot->load_ms = load_timer.elapsed_ms();

  {
    std::lock_guard lock(mutex_);
    for (const SnapshotPtr& s : snapshots_) {
      if (s->name == name) {
        return Status(StatusCode::kInvalidArgument,
                      "graph '" + name + "' already loaded (unload first)");
      }
    }
    snapshots_.push_back(snapshot);
  }
  if (obs::kCompiledIn) {
    obs::counter("serve/graphs_loaded").increment();
    if (snapshot->bytes_mapped > 0) {
      obs::counter("serve/graphs_mmap_loaded").increment();
      obs::counter("serve/snapshot_bytes_mapped")
          .add(snapshot->bytes_mapped);
    }
  }
  return SnapshotPtr(snapshot);
}

SnapshotPtr GraphCatalog::get(const std::string& name) const {
  std::lock_guard lock(mutex_);
  for (const SnapshotPtr& s : snapshots_) {
    if (s->name == name) return s;
  }
  return nullptr;
}

Expected<std::size_t> GraphCatalog::unload(const std::string& name) {
  std::lock_guard lock(mutex_);
  const auto it =
      std::find_if(snapshots_.begin(), snapshots_.end(),
                   [&](const SnapshotPtr& s) { return s->name == name; });
  if (it == snapshots_.end()) {
    return Status(StatusCode::kInvalidArgument,
                  "graph '" + name + "' is not loaded");
  }
  // use_count includes the catalog's own reference, subtracted here.  The
  // count is advisory (concurrent queries may grab/drop snapshots), which
  // is fine: it feeds a response field, not a decision.
  const std::size_t pinned = static_cast<std::size_t>(it->use_count()) - 1;
  snapshots_.erase(it);
  if (obs::kCompiledIn) obs::counter("serve/graphs_unloaded").increment();
  return pinned;
}

std::vector<GraphCatalog::Entry> GraphCatalog::list() const {
  std::lock_guard lock(mutex_);
  std::vector<Entry> out;
  out.reserve(snapshots_.size());
  for (const SnapshotPtr& s : snapshots_) {
    const GraphStorage* storage = s->graph.storage();
    out.push_back(Entry{s->name, s->source, s->seed, s->graph.num_vertices(),
                        s->graph.num_edges(), s->components,
                        static_cast<std::size_t>(s.use_count()) - 1,
                        s->backend, s->bytes_mapped, s->load_ms,
                        storage != nullptr ? storage->resident_bytes_estimate()
                                           : 0});
  }
  return out;
}

std::size_t GraphCatalog::size() const {
  std::lock_guard lock(mutex_);
  return snapshots_.size();
}

}  // namespace llpmst::serve
