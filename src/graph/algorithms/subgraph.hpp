// Subgraph extraction utilities.
//
// The headline use is extract_largest_component(): RMAT/graph500 samples are
// disconnected, and the Prim family needs connected input.  The paper's
// frameworks handle this by benchmarking on the giant component (GBBS) or
// patching connectivity; both options exist here (see also
// connect_components() in generators/rmat.hpp) so benchmarks can choose.
#pragma once

#include <vector>

#include "graph/edge_list.hpp"

namespace llpmst {

struct SubgraphResult {
  EdgeList graph;
  /// old_id[new_v] = vertex id in the original graph.
  std::vector<VertexId> old_id;
};

/// Induced subgraph on `keep` (need not be sorted; duplicates ignored).
/// Vertices are re-labeled densely in ascending old-id order.
[[nodiscard]] SubgraphResult induced_subgraph(const EdgeList& list,
                                              const std::vector<VertexId>& keep);

/// The subgraph induced by the largest connected component.
[[nodiscard]] SubgraphResult extract_largest_component(const EdgeList& list);

}  // namespace llpmst
