// LLP-Prim, sequential ("LLP-Prim (1T)" in the paper's Fig. 2): Prim's
// algorithm with *early fixing* (the paper's Algorithm 5, derived from the
// LLP formulation in Algorithm 4).
//
// Key differences from classic Prim:
//   * a vertex k is fixed immediately — without any heap traffic — whenever
//     a fixed vertex j relaxes edge (j, k) and that edge is the minimum-
//     weight edge (MWE) of either endpoint (the paper's two ways of becoming
//     fixed); such vertices go into the unordered bag R;
//   * R is drained before the heap is consulted; vertices in R may be
//     processed in any order;
//   * heap insertions for non-MWE discoveries are staged in Q and flushed
//     only when R drains, so a vertex that gets fixed for free while R is
//     processed never pays for a heap operation.
//
// The result is the same unique MST, with strictly fewer heap operations —
// the Fig. 2 single-thread advantage (~20-30%).
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Ablation switches (both on = the paper's algorithm; both off = classic
/// Prim with an extra indirection, used to isolate where the win comes from).
struct LlpPrimOptions {
  bool mwe_fixing = true;  // early fixing through minimum-weight edges
  bool q_staging = true;   // defer heap inserts until R drains
  /// Extension beyond the paper: when the heap drains with unfixed vertices
  /// remaining (disconnected input), restart from a fresh root instead of
  /// failing — producing the minimum spanning FOREST.  The paper's LLP-Prim
  /// assumes a connected graph; this is the natural multi-root completion.
  bool allow_forest = false;
};

[[nodiscard]] MstResult llp_prim(const CsrGraph& g, VertexId root = 0,
                                 const LlpPrimOptions& options = {});

/// Convenience wrapper: LLP-Prim with forest restarts enabled.
[[nodiscard]] MstResult llp_prim_msf(const CsrGraph& g);
/// Uniform registry entry point: forest-safe LLP-Prim (sequential; the
/// context is unused).  This is what "llp-prim" dispatches to.
[[nodiscard]] MstResult llp_prim_msf(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm llp_prim_algorithm();

}  // namespace llpmst
