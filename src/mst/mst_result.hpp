// Common result type for every MST/MSF algorithm in the library.
//
// Because all algorithms order edges by the packed priority (weight, id),
// the minimum spanning forest is unique; each algorithm reports its chosen
// undirected edge ids, canonicalized to ascending order, so results are
// directly comparable with operator== in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/binary_heap.hpp"  // HeapStats
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace llpmst {

/// Instrumentation every algorithm fills in as applicable; the ablation
/// benchmarks report these (Fig. 2's "why is LLP-Prim faster" analysis).
struct MstAlgoStats {
  HeapStats heap;                     // heap traffic (Prim family)
  std::uint64_t fixed_via_heap = 0;   // vertices fixed by a heap pop
  std::uint64_t fixed_via_mwe = 0;    // vertices fixed through the R set
  std::uint64_t staged_in_q = 0;      // deferred heap inserts (LLP-Prim Q)
  std::uint64_t edges_relaxed = 0;    // arc relaxations performed
  std::uint64_t rounds = 0;           // Boruvka rounds / LLP iterations
  std::uint64_t pointer_jumps = 0;    // advance() steps in pointer jumping
  std::uint64_t llp_sweeps = 0;       // worklist/frontier sweeps (LLP family)
  std::uint64_t llp_advances = 0;     // advance() calls, when llp_solve ran
  bool llp_converged = true;          // false iff an LLP sweep cap was hit
};

/// Folds an algorithm's per-run stats into the process-wide observability
/// counters under "<algo>/..." (e.g. "llp_prim/heap_inserts").  One bulk add
/// per counter per run — hot loops keep using their local stats.  No-op
/// cost when observability is compiled out.
void record_algo_metrics(const char* algo, const MstAlgoStats& s);

struct MstResult {
  /// Chosen undirected edge ids, sorted ascending.
  std::vector<EdgeId> edges;
  /// Sum of weights of the chosen edges.
  TotalWeight total_weight = 0;
  /// Number of trees in the forest (n - |edges| for a valid MSF).
  std::size_t num_trees = 0;
  MstAlgoStats stats;
};

/// Sorts edge ids, sums weights, and derives num_trees.  Every algorithm
/// calls this once at the end.
void finalize_result(const CsrGraph& g, MstResult& r);

}  // namespace llpmst
