#include "mst/prim.hpp"

#include "ds/binary_heap.hpp"
#include "mst/prim_heaps.hpp"

namespace llpmst {

MstResult prim(const CsrGraph& g, VertexId root) {
  return prim_with_heap<BinaryHeap<EdgePriority>>(g, root);
}

MstResult prim(const CsrGraph& g, RunContext& /*ctx*/) { return prim(g); }

MstAlgorithm prim_algorithm() {
  return {"prim", "Prim",
          "classic Prim with an indexed binary heap (Fig. 2 baseline)",
          {.parallel = false, .msf_capable = false, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) { return prim(g, ctx); }};
}

}  // namespace llpmst
