#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/special.hpp"
#include "mst/kruskal.hpp"
#include "mst/verifier.hpp"
#include "support/random.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

MstResult reference_msf(const CsrGraph& g) { return kruskal(g); }

TEST(Verifier, AcceptsCorrectMst) {
  const CsrGraph g = csr(make_paper_figure1());
  const MstResult r = reference_msf(g);
  EXPECT_TRUE(verify_spanning_forest(g, r).ok);
  EXPECT_TRUE(verify_msf(g, r).ok);
}

TEST(Verifier, AcceptsForest) {
  const CsrGraph g = csr(make_forest(4, 15, 3));
  const MstResult r = reference_msf(g);
  const VerifyResult v = verify_msf(g, r);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(Verifier, AcceptsEmptyAndTrivial) {
  const CsrGraph empty = csr(EdgeList(0));
  MstResult r;
  r.num_trees = 0;
  EXPECT_TRUE(verify_msf(empty, r).ok);

  const CsrGraph single = csr(EdgeList(1));
  MstResult r1;
  r1.num_trees = 1;
  EXPECT_TRUE(verify_msf(single, r1).ok);
}

TEST(Verifier, RejectsOutOfRangeEdge) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  r.edges.back() = 99;
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("out of range"), std::string::npos);
}

TEST(Verifier, RejectsDuplicateEdge) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  r.edges[1] = r.edges[0];
  EXPECT_FALSE(verify_spanning_forest(g, r).ok);
}

TEST(Verifier, RejectsDroppedEdge) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  r.total_weight -= g.edge(r.edges.back()).w;
  r.edges.pop_back();
  // Still acyclic but no longer spanning.
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("span"), std::string::npos);
}

TEST(Verifier, RejectsCycle) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  // Replace an edge with one closing a cycle among already-connected
  // vertices: with 4 tree edges over 5 vertices, adding any 5th distinct
  // edge must close a cycle.
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (std::find(r.edges.begin(), r.edges.end(), e) == r.edges.end()) {
      r.edges.push_back(e);
      break;
    }
  }
  std::sort(r.edges.begin(), r.edges.end());
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("cycle"), std::string::npos);
}

TEST(Verifier, RejectsWrongTotalWeight) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  r.total_weight += 1;
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("total_weight"), std::string::npos);
}

TEST(Verifier, RejectsWrongTreeCount) {
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  r.num_trees = 2;
  EXPECT_FALSE(verify_spanning_forest(g, r).ok);
}

TEST(Verifier, RejectsNonMinimalSpanningTree) {
  // Build a spanning tree that is valid but not minimal: swap a tree edge
  // for a heavier non-tree edge that keeps the graph spanning.
  const CsrGraph g = csr(make_paper_figure1());
  MstResult r = reference_msf(g);
  // Fig.1: MST uses b-c (3); swapping it for c-d (9) still spans
  // ({a-c, b-d, d-e, c-d}) but is heavier.
  EdgeId bc = kInvalidEdge, cd = kInvalidEdge;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    if (we.w == 3) bc = e;
    if (we.w == 9) cd = e;
  }
  ASSERT_NE(bc, kInvalidEdge);
  ASSERT_NE(cd, kInvalidEdge);
  std::replace(r.edges.begin(), r.edges.end(), bc, cd);
  std::sort(r.edges.begin(), r.edges.end());
  r.total_weight = r.total_weight - 3 + 9;

  EXPECT_TRUE(verify_spanning_forest(g, r).ok);  // shape is fine...
  const VerifyResult v = verify_msf(g, r);       // ...minimality is not
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("cycle property"), std::string::npos);
}

TEST(Verifier, RejectsEveryRandomSingleEdgeSwap) {
  // The MSF is unique (packed priorities), so replacing any chosen edge by
  // any non-chosen edge yields a different set that verify_msf must reject
  // — either as non-spanning, cyclic, or non-minimal.
  Xoshiro256 rng(77);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 60;
    p.num_edges = 240;
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    const MstResult good = reference_msf(g);
    if (good.edges.empty() || good.edges.size() == g.num_edges()) continue;

    std::vector<bool> chosen(g.num_edges(), false);
    for (const EdgeId e : good.edges) chosen[e] = true;

    for (int trial = 0; trial < 10; ++trial) {
      MstResult mutated = good;
      const std::size_t out_idx = rng.next_below(mutated.edges.size());
      EdgeId in_edge;
      do {
        in_edge = static_cast<EdgeId>(rng.next_below(g.num_edges()));
      } while (chosen[in_edge]);
      const EdgeId out_edge = mutated.edges[out_idx];
      mutated.edges[out_idx] = in_edge;
      std::sort(mutated.edges.begin(), mutated.edges.end());
      mutated.total_weight =
          mutated.total_weight - g.edge(out_edge).w + g.edge(in_edge).w;
      ASSERT_FALSE(verify_msf(g, mutated).ok)
          << "seed " << seed << " swap " << out_edge << "->" << in_edge;
    }
  }
}

TEST(Verifier, MinimalityCheckOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 120;
    p.num_edges = 500;
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    const MstResult r = reference_msf(g);
    const VerifyResult v = verify_msf(g, r);
    EXPECT_TRUE(v.ok) << "seed " << seed << ": " << v.error;
  }
}

}  // namespace
}  // namespace llpmst
