#!/usr/bin/env python3
"""Compare two sets of llpmst-bench records and flag perf regressions.

Usage:
    bench_compare.py BASELINE CANDIDATE [--threshold 0.25] [--iqr-mult 1.0]
                     [--fail-on-missing]

BASELINE and CANDIDATE are each a file or directory.  Files may be JSON
Lines (one llpmst-bench document per line, the format the benches emit via
--bench-json) or a JSON array of such documents (the committed-baseline
format, e.g. bench/baselines/ci-smoke.json).  Directories are scanned
recursively for *.json / *.jsonl files.

Records are keyed by (bench, workload, algo, threads).  For every key in
the baseline that also appears in the candidate the medians are compared
with an IQR-aware noise guard: a key counts as a REGRESSION only when

    median_cand - median_base > iqr_mult * max(iqr_base, iqr_cand)
AND median_cand > (1 + threshold) * median_base

i.e. the slowdown must clear both the noise floor of the two samples and
the relative threshold.  Improvements (same rule with the sign flipped)
are reported but never fail the run.

When both records carry a mem.alloc_delta section (allocation counts
bracketing the timed repetitions — the benches emit it whenever the
allocator hooks are compiled in), the per-repetition allocation count is
gated too: a key is an ALLOC REGRESSION when the candidate allocates more
than (1 + --alloc-threshold) times the baseline per repetition (with a
small absolute floor so near-zero counts don't flag on +1 alloc).

When both records carry a "sched" section ({utilization, steal_rate},
emitted since schema PR 6), utilization drift beyond --util-drift is
REPORTED — never gated: utilization collapse is a scaling lead worth
surfacing in the log, but it is far too machine/noise-dependent to fail
CI on.  Records without the section (older baselines) are simply not
compared.

The same report-only treatment applies to mem.peak_rss_bytes: when both
records carry a positive peak RSS, a relative change beyond --rss-drift
(with a 1 MiB absolute floor, since ru_maxrss is page-granular and small
processes jitter) is REPORTED, never gated.  Peak RSS is the signal that
distinguishes a heap-built graph from an mmapped snapshot, so drift here
usually means a storage-backend or working-set change worth a look.

Likewise for the "profile" section (--profile; top-3 hottest phase
paths by profiler samples): when both records carry one, a change in
the hottest phase path — or the hottest path's sample share moving by
more than --hotpath-drift — is REPORTED, never gated.  Where the time
goes is a triage lead for a human reading the log; sampling noise at
ci-smoke durations makes it useless as a pass/fail signal.

A duplicate key inside either record set is an error: two records for the
same (bench, workload, algo, threads) means a stale file or a double run,
and silently comparing whichever came last would gate on the wrong data.

Exit status: 1 if any regression was flagged (or, with --fail-on-missing,
any baseline key is absent from the candidate); 0 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "llpmst-bench"


def iter_docs(path):
    """Yields (source, doc) for every JSON document reachable from path."""
    p = Path(path)
    if p.is_dir():
        for child in sorted(p.rglob("*")):
            if child.is_file() and child.suffix in (".json", ".jsonl"):
                yield from iter_docs(child)
        return
    if not p.is_file():
        raise SystemExit(f"error: no such file or directory: {path}")
    text = p.read_text()
    stripped = text.lstrip()
    if not stripped:
        return
    if stripped.startswith("["):  # committed-baseline array form
        try:
            arr = json.loads(text)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {p}: invalid JSON: {e}")
        if not isinstance(arr, list):
            raise SystemExit(f"error: {p}: expected a JSON array")
        for doc in arr:
            yield str(p), doc
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            yield f"{p}:{lineno}", json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {p}:{lineno}: invalid JSON: {e}")


def load_records(path):
    """Returns {key: doc}; a duplicate key is a hard error."""
    records = {}
    first_source = {}
    skipped = 0
    for source, doc in iter_docs(path):
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            skipped += 1
            continue
        try:
            key = (doc["bench"], doc["workload"], doc["algo"],
                   int(doc["threads"]))
            ms = doc["ms"]
            float(ms["median"])
            float(ms["iqr"])
        except (KeyError, TypeError, ValueError) as e:
            raise SystemExit(f"error: {source}: malformed bench record: {e}")
        if key in records:
            raise SystemExit(
                f"error: duplicate bench record for {fmt_key(key)}:\n"
                f"  first seen at {first_source[key]}\n"
                f"  again at      {source}\n"
                f"(two records for one key means a stale file or a double "
                f"run — delete the out-of-date one)")
        records[key] = doc
        first_source[key] = source
    return records, skipped


def alloc_per_rep(doc):
    """Per-repetition allocation count, or None when not recorded."""
    delta = (doc.get("mem") or {}).get("alloc_delta")
    reps = doc.get("repetitions")
    if not isinstance(delta, dict) or not isinstance(reps, int) or reps <= 0:
        return None
    count = delta.get("count")
    if not isinstance(count, int) or count < 0:
        return None
    return count / reps


def sched_util(doc):
    """The record's scheduler utilization, or None when not recorded."""
    sched = doc.get("sched")
    if not isinstance(sched, dict):
        return None
    u = sched.get("utilization")
    if not isinstance(u, (int, float)) or not 0 <= u <= 1:
        return None
    return float(u)


def peak_rss(doc):
    """The record's peak RSS in bytes, or None when absent/unusable."""
    rss = (doc.get("mem") or {}).get("peak_rss_bytes")
    if not isinstance(rss, int) or rss <= 0:
        return None
    return rss


def hot_path(doc):
    """The record's hottest profiled phase path as (name, share-of-samples),
    or None when the record carries no usable profile section."""
    prof = doc.get("profile")
    if not isinstance(prof, dict):
        return None
    total = prof.get("samples")
    top = prof.get("top_phases")
    if not isinstance(total, int) or total <= 0 or not isinstance(top, list):
        return None
    if not top or not isinstance(top[0], dict):
        return None
    name = top[0].get("name")
    samples = top[0].get("samples")
    if not isinstance(name, str) or not isinstance(samples, int):
        return None
    return name, samples / total


def fmt_key(key):
    bench, workload, algo, threads = key
    return f"{bench} / {workload} / {algo} / {threads}T"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline records (file or directory)")
    ap.add_argument("candidate", help="candidate records (file or directory)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative median change required to flag "
                         "(default: 0.25 = 25%%)")
    ap.add_argument("--iqr-mult", type=float, default=1.0,
                    help="noise guard: |delta| must exceed this multiple of "
                         "max(IQR_base, IQR_cand) (default: 1.0)")
    ap.add_argument("--fail-on-missing", action="store_true",
                    help="exit non-zero when a baseline key is absent from "
                         "the candidate")
    ap.add_argument("--alloc-threshold", type=float, default=0.5,
                    help="relative per-repetition allocation-count increase "
                         "required to flag (default: 0.5 = 50%%); compared "
                         "only when both records carry mem.alloc_delta")
    ap.add_argument("--alloc-floor", type=float, default=64.0,
                    help="absolute allocations-per-repetition increase below "
                         "which the alloc gate never flags (default: 64)")
    ap.add_argument("--util-drift", type=float, default=0.05,
                    help="absolute scheduler-utilization change worth "
                         "reporting (default: 0.05); informational only, "
                         "never fails the run")
    ap.add_argument("--rss-drift", type=float, default=0.25,
                    help="relative peak-RSS change worth reporting "
                         "(default: 0.25 = 25%%); informational only, "
                         "never fails the run")
    ap.add_argument("--hotpath-drift", type=float, default=0.15,
                    help="absolute change in the hottest phase path's "
                         "sample share worth reporting (default: 0.15); "
                         "informational only, never fails the run")
    args = ap.parse_args()

    base, base_skipped = load_records(args.baseline)
    cand, cand_skipped = load_records(args.candidate)
    if not base:
        raise SystemExit(f"error: no {SCHEMA} records found in "
                         f"{args.baseline}")
    if not cand:
        raise SystemExit(f"error: no {SCHEMA} records found in "
                         f"{args.candidate}")
    for n, where in ((base_skipped, args.baseline),
                     (cand_skipped, args.candidate)):
        if n:
            print(f"note: skipped {n} non-{SCHEMA} document(s) in {where}")

    regressions, improvements, stable, missing = [], [], [], []
    alloc_regressions, alloc_compared = [], 0
    util_drifts, util_compared = [], 0
    rss_drifts, rss_compared = [], 0
    hot_drifts, hot_compared = [], 0
    rss_floor = 1 << 20  # ru_maxrss is page-granular; ignore sub-MiB jitter
    for key in sorted(base):
        if key not in cand:
            missing.append(key)
            continue
        mb = base[key]["ms"]
        mc = cand[key]["ms"]
        med_b, med_c = float(mb["median"]), float(mc["median"])
        noise = args.iqr_mult * max(float(mb["iqr"]), float(mc["iqr"]))
        delta = med_c - med_b
        rel = delta / med_b if med_b > 0 else 0.0
        row = (key, med_b, med_c, rel, noise)
        if delta > noise and rel > args.threshold:
            regressions.append(row)
        elif -delta > noise and -rel > args.threshold:
            improvements.append(row)
        else:
            stable.append(row)

        ab, ac = alloc_per_rep(base[key]), alloc_per_rep(cand[key])
        if ab is not None and ac is not None:
            alloc_compared += 1
            if (ac - ab > args.alloc_floor and
                    ac > (1 + args.alloc_threshold) * ab):
                alloc_regressions.append((key, ab, ac))

        ub, uc = sched_util(base[key]), sched_util(cand[key])
        if ub is not None and uc is not None:
            util_compared += 1
            if abs(uc - ub) > args.util_drift:
                util_drifts.append((key, ub, uc))

        rb, rc = peak_rss(base[key]), peak_rss(cand[key])
        if rb is not None and rc is not None:
            rss_compared += 1
            if (abs(rc - rb) > rss_floor and
                    abs(rc - rb) / rb > args.rss_drift):
                rss_drifts.append((key, rb, rc))

        hb, hc = hot_path(base[key]), hot_path(cand[key])
        if hb is not None and hc is not None:
            hot_compared += 1
            if hb[0] != hc[0] or abs(hc[1] - hb[1]) > args.hotpath_drift:
                hot_drifts.append((key, hb, hc))

    new_keys = sorted(set(cand) - set(base))

    print(f"compared {len(base) - len(missing)} key(s) "
          f"(threshold {args.threshold:.0%}, IQR mult {args.iqr_mult:g})")
    for label, rows in (("REGRESSION", regressions),
                        ("improvement", improvements)):
        for key, med_b, med_c, rel, noise in rows:
            print(f"  {label:<11} {fmt_key(key)}: "
                  f"{med_b:.3f} ms -> {med_c:.3f} ms ({rel:+.1%}, "
                  f"noise floor {noise:.3f} ms)")
    print(f"  stable: {len(stable)}, improved: {len(improvements)}, "
          f"regressed: {len(regressions)}")
    if alloc_compared:
        for key, ab, ac in alloc_regressions:
            rel = f" ({(ac - ab) / ab:+.1%})" if ab > 0 else ""
            print(f"  ALLOC REGRESSION {fmt_key(key)}: "
                  f"{ab:.0f} -> {ac:.0f} allocs/rep{rel}")
        print(f"  alloc gate: compared {alloc_compared} key(s), "
              f"regressed: {len(alloc_regressions)}")
    if util_compared:
        # Informational only: utilization is machine- and load-dependent,
        # so drift is surfaced for humans but never fails the run.
        for key, ub, uc in util_drifts:
            print(f"  util drift {fmt_key(key)}: "
                  f"{ub:.1%} -> {uc:.1%} ({uc - ub:+.1%})")
        print(f"  utilization: compared {util_compared} key(s), "
              f"drifted >{args.util_drift:.0%}: {len(util_drifts)} "
              f"(report-only, never gated)")
    if rss_compared:
        # Informational only: peak RSS moves with the storage backend and
        # the machine's page cache, so drift is a lead, not a gate.
        for key, rb, rc in rss_drifts:
            print(f"  peak-RSS drift {fmt_key(key)}: "
                  f"{rb / (1 << 20):.1f} MiB -> {rc / (1 << 20):.1f} MiB "
                  f"({(rc - rb) / rb:+.1%})")
        print(f"  peak RSS: compared {rss_compared} key(s), "
              f"drifted >{args.rss_drift:.0%}: {len(rss_drifts)} "
              f"(report-only, never gated)")
    if hot_compared:
        # Informational only, like utilization: where the samples land is a
        # triage lead, not a correctness or performance contract.
        for key, (nb, sb), (nc, sc) in hot_drifts:
            if nb != nc:
                print(f"  hot-path drift {fmt_key(key)}: "
                      f"{nb} ({sb:.0%}) -> {nc} ({sc:.0%})")
            else:
                print(f"  hot-path drift {fmt_key(key)}: "
                      f"{nb} {sb:.0%} -> {sc:.0%} ({sc - sb:+.0%})")
        print(f"  hot paths: compared {hot_compared} key(s), "
              f"drifted: {len(hot_drifts)} (report-only, never gated)")
    for key in missing:
        print(f"  warning: baseline key missing from candidate: "
              f"{fmt_key(key)}")
    for key in new_keys:
        print(f"  note: new key not in baseline: {fmt_key(key)}")

    if regressions:
        print("FAIL: performance regression detected")
        return 1
    if alloc_regressions:
        print("FAIL: allocation regression detected")
        return 1
    if missing and args.fail_on_missing:
        print("FAIL: baseline key(s) missing from candidate")
        return 1
    print("OK: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
