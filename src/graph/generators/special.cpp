#include "graph/generators/special.hpp"

#include <vector>

#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {
Weight varied_weight(std::uint32_t i, Weight fixed) {
  return fixed != 0 ? fixed : static_cast<Weight>(1 + (i * 37u) % 1000u);
}
}  // namespace

EdgeList make_path(std::uint32_t n, Weight fixed_weight) {
  LLPMST_CHECK(n >= 1);
  EdgeList list(n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    list.add_edge(i, i + 1, varied_weight(i, fixed_weight));
  }
  list.normalize();
  return list;
}

EdgeList make_cycle(std::uint32_t n, Weight fixed_weight) {
  LLPMST_CHECK(n >= 3);
  EdgeList list = make_path(n, fixed_weight);
  list.add_edge(n - 1, 0, varied_weight(n - 1, fixed_weight));
  list.normalize();
  return list;
}

EdgeList make_star(std::uint32_t n, Weight fixed_weight) {
  LLPMST_CHECK(n >= 1);
  EdgeList list(n);
  for (std::uint32_t i = 1; i < n; ++i) {
    list.add_edge(0, i, varied_weight(i, fixed_weight));
  }
  list.normalize();
  return list;
}

EdgeList make_complete(std::uint32_t n, std::uint64_t seed) {
  LLPMST_CHECK(n >= 1);
  EdgeList list(n);
  Xoshiro256 rng(seed);
  for (std::uint32_t u = 0; u < n; ++u) {
    for (std::uint32_t v = u + 1; v < n; ++v) {
      list.add_edge(u, v, static_cast<Weight>(rng.next_in(1, 1u << 24)));
    }
  }
  list.normalize();
  return list;
}

EdgeList make_random_tree(std::uint32_t n, std::uint64_t seed,
                          Weight max_weight) {
  LLPMST_CHECK(n >= 1);
  EdgeList list(n);
  Xoshiro256 rng(seed);
  for (std::uint32_t i = 1; i < n; ++i) {
    const auto parent = static_cast<VertexId>(rng.next_below(i));
    list.add_edge(parent, i, static_cast<Weight>(rng.next_in(1, max_weight)));
  }
  list.normalize();
  return list;
}

EdgeList make_forest(std::uint32_t parts, std::uint32_t part_size,
                     std::uint64_t seed) {
  LLPMST_CHECK(parts >= 1 && part_size >= 1);
  const std::uint64_t n64 = static_cast<std::uint64_t>(parts) * part_size;
  LLPMST_CHECK(n64 < kInvalidVertex);
  EdgeList list(static_cast<std::size_t>(n64));
  Xoshiro256 rng(seed);
  for (std::uint32_t p = 0; p < parts; ++p) {
    const std::uint32_t base = p * part_size;
    for (std::uint32_t i = 1; i < part_size; ++i) {
      const auto parent = base + static_cast<VertexId>(rng.next_below(i));
      list.add_edge(parent, base + i,
                    static_cast<Weight>(rng.next_in(1, 1u << 20)));
    }
  }
  list.normalize();
  return list;
}

EdgeList make_paper_figure1() {
  // a=0, b=1, c=2, d=3, e=4.
  EdgeList list(5);
  list.add_edge(0, 1, 5);   // a-b
  list.add_edge(0, 2, 4);   // a-c
  list.add_edge(1, 2, 3);   // b-c
  list.add_edge(1, 3, 7);   // b-d
  list.add_edge(2, 3, 9);   // c-d
  list.add_edge(2, 4, 11);  // c-e
  list.add_edge(3, 4, 2);   // d-e
  list.normalize();
  return list;
}

}  // namespace llpmst
