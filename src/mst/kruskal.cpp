#include "mst/kruskal.hpp"

#include <algorithm>
#include <numeric>

#include "core/run_context.hpp"
#include "ds/union_find.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {
/// Cancellation / failpoint polling stride for the union-find scan: cheap
/// relative to the unite work, fine-grained enough that a deadline or a
/// user cancel lands mid-scan rather than only at the end.
constexpr std::size_t kScanStride = 1024;
}  // namespace

MstResult kruskal(const CsrGraph& g) { return kruskal_cancellable(g, nullptr); }

MstResult kruskal_cancellable(const CsrGraph& g, const CancelToken* cancel) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  // Sort edge ids by packed priority == (weight, id) lexicographic.
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge_priority(a) < g.edge_priority(b);
  });

  MstResult r;
  r.edges.reserve(n > 0 ? n - 1 : 0);
  UnionFind uf(n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i % kScanStride == 0) {
      // Chaos hook: the fallback oracle's scan.  This is the window where
      // "user cancel arrives while mst::auto is already falling back" is
      // exercised deterministically — a scripted timeline cancels on a hit
      // of this point, and the poll right after observes it.
      if (LLPMST_FAILPOINT("kruskal/scan") != fail::Action::kNone) {
        r.stats.outcome = RunOutcome::kInjectedFault;
        break;
      }
      if (cancel != nullptr && cancel->cancelled()) {
        r.stats.outcome = cancel->reason();
        break;
      }
    }
    const WeightedEdge& we = g.edge(order[i]);
    if (uf.unite(we.u, we.v)) {
      r.edges.push_back(order[i]);
      if (r.edges.size() + 1 == n) break;  // spanning tree complete
    }
  }
  finalize_result(g, r);
  return r;
}

MstResult kruskal(const CsrGraph& g, RunContext& ctx) {
  return kruskal_cancellable(g, ctx.cancel_token());
}

MstAlgorithm kruskal_algorithm() {
  return {"kruskal", "Kruskal",
          "sort all edges, grow the forest through union-find (the oracle)",
          {.parallel = false, .msf_capable = true, .deterministic = true,
           .cancellable = true},
          [](const CsrGraph& g, RunContext& ctx) { return kruskal(g, ctx); }};
}

}  // namespace llpmst
