// Plain edge-list I/O in two forms:
//   * text: one "u v w" triple per line, '#' comments — the common exchange
//     format for SNAP-style datasets;
//   * binary: a fixed little-endian header + packed (u, v, w) records — fast
//     reload of generated benchmark graphs between runs.
// Readers validate and report errors via the result's Status: kIoError for
// OS failures, kCorruptInput for bad bytes (malformed lines, out-of-range
// ids, truncated or oversized record sections).
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "support/status.hpp"

namespace llpmst {

struct EdgeListResult {
  EdgeList graph;
  Status status;  // OK on success

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Reads "u v w" lines; vertex space is max id + 1.  Normalizes.
[[nodiscard]] EdgeListResult read_edge_list_text(const std::string& path);

/// Writes one "u v w" line per edge.
[[nodiscard]] Status write_edge_list_text(const std::string& path,
                                          const EdgeList& list);

/// Binary format: magic "LLPM", u32 version, u64 n, u64 m, then m packed
/// {u32 u, u32 v, u32 w} records.  Validates magic/version/truncation and
/// rejects trailing bytes after the declared records.
[[nodiscard]] EdgeListResult read_edge_list_binary(const std::string& path);

[[nodiscard]] Status write_edge_list_binary(const std::string& path,
                                            const EdgeList& list);

}  // namespace llpmst
