// The algorithm portfolio (mst/auto.hpp): picks per the paper's conclusions
// and always returns the unique MSF.  Reported algorithm names are the
// canonical registry names.
#include <gtest/gtest.h>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "mst/auto.hpp"
#include "mst/kruskal.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

CsrGraph road_graph() {
  RoadParams p;
  p.width = 40;
  p.height = 40;
  return csr(generate_road_network(p));
}

TEST(AutoMst, SingleThreadPicksSequentialLlpPrim) {
  ThreadPool pool(1);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_EQ(r.algorithm, "llp-prim");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, FewThreadsPickParallelLlpPrim) {
  ThreadPool pool(4);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_EQ(r.algorithm, "llp-prim-parallel");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, ManyThreadsPickLlpBoruvka) {
  ThreadPool pool(8);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_EQ(r.algorithm, "llp-boruvka");
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, DisconnectedAlwaysPicksLlpBoruvka) {
  ThreadPool pool(2);
  RunContext ctx(pool);
  const CsrGraph g = csr(make_forest(3, 50, 7));
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_EQ(r.algorithm, "llp-boruvka");
  EXPECT_EQ(r.result.num_trees, 3u);
  EXPECT_EQ(r.result.edges, kruskal(g).edges);
}

TEST(AutoMst, ConnectivityHintSkipsTheCheck) {
  ThreadPool pool(2);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  AutoMstOptions opts;
  opts.connectivity = Connectivity::kConnected;
  const AutoMstResult hinted = minimum_spanning_forest(g, ctx, opts);
  EXPECT_EQ(hinted.algorithm, "llp-prim-parallel");
  opts.connectivity = Connectivity::kDisconnected;
  const AutoMstResult forced = minimum_spanning_forest(g, ctx, opts);
  EXPECT_EQ(forced.algorithm, "llp-boruvka");  // hint respected
  EXPECT_EQ(hinted.result.edges, forced.result.edges);
}

TEST(AutoMst, CrossoverTunable) {
  ThreadPool pool(4);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  AutoMstOptions opts;
  opts.connectivity = Connectivity::kConnected;
  opts.boruvka_crossover = 2;  // lower the crossover below the pool size
  const AutoMstResult r = minimum_spanning_forest(g, ctx, opts);
  EXPECT_EQ(r.algorithm, "llp-boruvka");
}

TEST(AutoMst, EmptyGraph) {
  ThreadPool pool(2);
  RunContext ctx(pool);
  const CsrGraph g = csr(EdgeList(0));
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  EXPECT_EQ(r.algorithm, "trivial");
  EXPECT_TRUE(r.result.edges.empty());
}

TEST(AutoMst, ConnectivityAnswerIsCachedOnTheContext) {
  ThreadPool pool(2);
  RunContext ctx(pool);
  const CsrGraph g = road_graph();
  EXPECT_FALSE(ctx.components_cached(g));
  const AutoMstResult r = minimum_spanning_forest(g, ctx);
  // The selection's connectivity check seeds the cache; downstream
  // verification reuses it instead of recomputing components.
  EXPECT_TRUE(ctx.components_cached(g));
  EXPECT_EQ(ctx.num_components(g), 1u);
  EXPECT_EQ(r.result.num_trees, 1u);
}

}  // namespace
}  // namespace llpmst
