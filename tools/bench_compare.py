#!/usr/bin/env python3
"""Compare two sets of llpmst-bench records and flag perf regressions.

Usage:
    bench_compare.py BASELINE CANDIDATE [--threshold 0.25] [--iqr-mult 1.0]
                     [--fail-on-missing]

BASELINE and CANDIDATE are each a file or directory.  Files may be JSON
Lines (one llpmst-bench document per line, the format the benches emit via
--bench-json) or a JSON array of such documents (the committed-baseline
format, e.g. bench/baselines/ci-smoke.json).  Directories are scanned
recursively for *.json / *.jsonl files.

Records are keyed by (bench, workload, algo, threads).  For every key in
the baseline that also appears in the candidate the medians are compared
with an IQR-aware noise guard: a key counts as a REGRESSION only when

    median_cand - median_base > iqr_mult * max(iqr_base, iqr_cand)
AND median_cand > (1 + threshold) * median_base

i.e. the slowdown must clear both the noise floor of the two samples and
the relative threshold.  Improvements (same rule with the sign flipped)
are reported but never fail the run.

Exit status: 1 if any regression was flagged (or, with --fail-on-missing,
any baseline key is absent from the candidate); 0 otherwise.
"""

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "llpmst-bench"


def iter_docs(path):
    """Yields (source, doc) for every JSON document reachable from path."""
    p = Path(path)
    if p.is_dir():
        for child in sorted(p.rglob("*")):
            if child.is_file() and child.suffix in (".json", ".jsonl"):
                yield from iter_docs(child)
        return
    if not p.is_file():
        raise SystemExit(f"error: no such file or directory: {path}")
    text = p.read_text()
    stripped = text.lstrip()
    if not stripped:
        return
    if stripped.startswith("["):  # committed-baseline array form
        try:
            arr = json.loads(text)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {p}: invalid JSON: {e}")
        if not isinstance(arr, list):
            raise SystemExit(f"error: {p}: expected a JSON array")
        for doc in arr:
            yield str(p), doc
        return
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            yield f"{p}:{lineno}", json.loads(line)
        except json.JSONDecodeError as e:
            raise SystemExit(f"error: {p}:{lineno}: invalid JSON: {e}")


def load_records(path):
    """Returns {key: doc}; later records for the same key win."""
    records = {}
    skipped = 0
    for source, doc in iter_docs(path):
        if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
            skipped += 1
            continue
        try:
            key = (doc["bench"], doc["workload"], doc["algo"],
                   int(doc["threads"]))
            ms = doc["ms"]
            float(ms["median"])
            float(ms["iqr"])
        except (KeyError, TypeError, ValueError) as e:
            raise SystemExit(f"error: {source}: malformed bench record: {e}")
        records[key] = doc
    return records, skipped


def fmt_key(key):
    bench, workload, algo, threads = key
    return f"{bench} / {workload} / {algo} / {threads}T"


def main():
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", help="baseline records (file or directory)")
    ap.add_argument("candidate", help="candidate records (file or directory)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="relative median change required to flag "
                         "(default: 0.25 = 25%%)")
    ap.add_argument("--iqr-mult", type=float, default=1.0,
                    help="noise guard: |delta| must exceed this multiple of "
                         "max(IQR_base, IQR_cand) (default: 1.0)")
    ap.add_argument("--fail-on-missing", action="store_true",
                    help="exit non-zero when a baseline key is absent from "
                         "the candidate")
    args = ap.parse_args()

    base, base_skipped = load_records(args.baseline)
    cand, cand_skipped = load_records(args.candidate)
    if not base:
        raise SystemExit(f"error: no {SCHEMA} records found in "
                         f"{args.baseline}")
    if not cand:
        raise SystemExit(f"error: no {SCHEMA} records found in "
                         f"{args.candidate}")
    for n, where in ((base_skipped, args.baseline),
                     (cand_skipped, args.candidate)):
        if n:
            print(f"note: skipped {n} non-{SCHEMA} document(s) in {where}")

    regressions, improvements, stable, missing = [], [], [], []
    for key in sorted(base):
        if key not in cand:
            missing.append(key)
            continue
        mb = base[key]["ms"]
        mc = cand[key]["ms"]
        med_b, med_c = float(mb["median"]), float(mc["median"])
        noise = args.iqr_mult * max(float(mb["iqr"]), float(mc["iqr"]))
        delta = med_c - med_b
        rel = delta / med_b if med_b > 0 else 0.0
        row = (key, med_b, med_c, rel, noise)
        if delta > noise and rel > args.threshold:
            regressions.append(row)
        elif -delta > noise and -rel > args.threshold:
            improvements.append(row)
        else:
            stable.append(row)

    new_keys = sorted(set(cand) - set(base))

    print(f"compared {len(base) - len(missing)} key(s) "
          f"(threshold {args.threshold:.0%}, IQR mult {args.iqr_mult:g})")
    for label, rows in (("REGRESSION", regressions),
                        ("improvement", improvements)):
        for key, med_b, med_c, rel, noise in rows:
            print(f"  {label:<11} {fmt_key(key)}: "
                  f"{med_b:.3f} ms -> {med_c:.3f} ms ({rel:+.1%}, "
                  f"noise floor {noise:.3f} ms)")
    print(f"  stable: {len(stable)}, improved: {len(improvements)}, "
          f"regressed: {len(regressions)}")
    for key in missing:
        print(f"  warning: baseline key missing from candidate: "
              f"{fmt_key(key)}")
    for key in new_keys:
        print(f"  note: new key not in baseline: {fmt_key(key)}")

    if regressions:
        print("FAIL: performance regression detected")
        return 1
    if missing and args.fail_on_missing:
        print("FAIL: baseline key(s) missing from candidate")
        return 1
    print("OK: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
