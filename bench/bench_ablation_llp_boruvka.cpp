// Ablation: what do LLP-Boruvka's design choices buy over the synchronized
// baseline?  Sweeps the two engine knobs independently:
//   * pointer jumping: asynchronous/chaotic (LLP) vs bulk-synchronous
//     rounds with barriers (baseline);
//   * contraction dedup: keep parallel bundles (LLP) vs sort-dedup
//     (baseline).
// Reports wall time, rounds, and pointer-jump counts per configuration.
#include <cstdio>

#include "bench_common.hpp"
#include "llp/llp_boruvka.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_ablation_llp_boruvka",
                "Ablation of LLP-Boruvka vs synchronized Boruvka engine "
                "knobs");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& threads = cli.add_int("threads", 8, "worker threads");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));

  Table t({"Graph", "Jumping", "Dedup", "Median", "Rounds", "PointerJumps"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale), 1, /*connect=*/false),
  };

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));
    for (const auto jumping :
         {PointerJumping::kAsynchronous, PointerJumping::kSynchronized}) {
      for (const bool dedup : {false, true}) {
        BoruvkaConfig config;
        config.jumping = jumping;
        config.dedup_contracted_edges = dedup;
        const BenchMeasurement m = measure_mst(
            "boruvka_engine", w.graph, reference,
            [&] { return llp_boruvka_configured(w.graph, pool, config); },
            opts);
        const MstAlgoStats& s = m.last_result.stats;
        t.add_row({w.name,
                   jumping == PointerJumping::kAsynchronous ? "async (LLP)"
                                                            : "synchronized",
                   dedup ? "yes" : "no", time_cell(m.time_ms),
                   format_count(s.rounds), format_count(s.pointer_jumps)});
      }
    }
  }

  std::printf("Ablation: LLP-Boruvka engine knobs (threads=%lld)\n",
              static_cast<long long>(threads));
  std::printf("(async+no-dedup = LLP-Boruvka; synchronized+dedup = the "
              "parallel Boruvka baseline)\n\n");
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_ablation_llp_boruvka");
  return 0;
}
