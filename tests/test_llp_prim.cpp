// LLP-Prim specifics: the early-fixing machinery, the Q staging, the heap
// traffic reduction the paper reports, and thread-count invariance of the
// parallel version.
#include <gtest/gtest.h>

#include "graph/algorithms/connected_components.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/kruskal.hpp"
#include "mst/prim.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

CsrGraph medium_connected_graph(std::uint64_t seed) {
  RoadParams p;
  p.width = 60;
  p.height = 60;
  p.seed = seed;
  return csr(generate_road_network(p));
}

TEST(LlpPrim, AblationVariantsAllProduceTheMst) {
  const CsrGraph g = medium_connected_graph(3);
  const MstResult reference = kruskal(g);
  for (const bool mwe : {false, true}) {
    for (const bool q : {false, true}) {
      LlpPrimOptions o;
      o.mwe_fixing = mwe;
      o.q_staging = q;
      const MstResult r = llp_prim(g, 0, o);
      EXPECT_EQ(r.edges, reference.edges)
          << "mwe=" << mwe << " q=" << q;
    }
  }
}

TEST(LlpPrim, EveryVertexFixedExactlyOnce) {
  const CsrGraph g = medium_connected_graph(4);
  const MstResult r = llp_prim(g);
  EXPECT_EQ(r.stats.fixed_via_heap + r.stats.fixed_via_mwe,
            g.num_vertices());
  EXPECT_GT(r.stats.fixed_via_mwe, 0u);
}

TEST(LlpPrim, FewerHeapOpsThanClassicPrim) {
  // The headline mechanism behind Fig. 2: early fixing removes heap pushes
  // and pops relative to Prim on the same graph.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const CsrGraph g = medium_connected_graph(seed);
    const MstResult p = prim(g);
    const MstResult lp = llp_prim(g);
    ASSERT_EQ(p.edges, lp.edges);
    EXPECT_LT(lp.stats.heap.pushes, p.stats.heap.pushes) << "seed " << seed;
    EXPECT_LT(lp.stats.heap.pops, p.stats.heap.pops) << "seed " << seed;
  }
}

TEST(LlpPrim, MweFixingDisabledMeansAllFixedViaHeap) {
  const CsrGraph g = medium_connected_graph(5);
  LlpPrimOptions o;
  o.mwe_fixing = false;
  const MstResult r = llp_prim(g, 0, o);
  EXPECT_EQ(r.stats.fixed_via_mwe, 0u);
  EXPECT_EQ(r.stats.fixed_via_heap, g.num_vertices());
}

TEST(LlpPrim, QStagingReducesOrEqualsHeapAdjusts) {
  const CsrGraph g = medium_connected_graph(6);
  LlpPrimOptions with_q;
  LlpPrimOptions without_q;
  without_q.q_staging = false;
  const MstResult a = llp_prim(g, 0, with_q);
  const MstResult b = llp_prim(g, 0, without_q);
  ASSERT_EQ(a.edges, b.edges);
  const auto traffic = [](const MstResult& r) {
    return r.stats.heap.pushes + r.stats.heap.adjusts;
  };
  EXPECT_LE(traffic(a), traffic(b));
}

TEST(LlpPrim, PaperWalkthroughOnFigure1) {
  // Section V-A runs Algorithm 5 on Fig. 1: c and b are fixed through MWEs
  // (edges 4 was c's path? — per the text: c fixed via (a,c) being a's MWE,
  // b fixed via (c,b) being b/c's MWE, e via (d,e)); only d goes through
  // the heap after a.
  const CsrGraph g = csr(make_paper_figure1());
  const MstResult r = llp_prim(g, 0);
  EXPECT_EQ(r.total_weight, 16u);
  // root a via "heap seed", d via heap pop = 2 heap fixes; b, c, e via MWE.
  EXPECT_EQ(r.stats.fixed_via_heap, 2u);
  EXPECT_EQ(r.stats.fixed_via_mwe, 3u);
}

TEST(LlpPrimForest, RestartsProduceTheMsf) {
  const CsrGraph g = csr(make_forest(4, 60, 11));
  const MstResult r = llp_prim_msf(g);
  EXPECT_EQ(r.edges, kruskal(g).edges);
  EXPECT_EQ(r.num_trees, 4u);
}

TEST(LlpPrimForest, IsolatedVerticesBecomeTrivialTrees) {
  EdgeList list(6);
  list.add_edge(0, 1, 5);
  list.add_edge(1, 2, 3);
  list.normalize();  // vertices 3, 4, 5 isolated
  const CsrGraph g = csr(list);
  const MstResult r = llp_prim_msf(g);
  EXPECT_EQ(r.edges.size(), 2u);
  EXPECT_EQ(r.num_trees, 4u);
}

TEST(LlpPrimForest, ConnectedGraphUnchangedByFlag) {
  const CsrGraph g = medium_connected_graph(7);
  EXPECT_EQ(llp_prim_msf(g).edges, llp_prim(g).edges);
}

TEST(LlpPrimForest, EdgelessGraph) {
  const CsrGraph g = csr(EdgeList(5));
  const MstResult r = llp_prim_msf(g);
  EXPECT_TRUE(r.edges.empty());
  EXPECT_EQ(r.num_trees, 5u);
}

class LlpPrimParallel : public testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Threads, LlpPrimParallel,
                         testing::Values(1, 2, 4, 8));

TEST_P(LlpPrimParallel, MatchesSequentialOnManyGraphs) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const CsrGraph g = medium_connected_graph(seed + 10);
    const MstResult seq = llp_prim(g);
    RunContext ctx(pool);
    const MstResult par = llp_prim_parallel(g, ctx);
    ASSERT_EQ(par.edges, seq.edges) << "seed " << seed;
    EXPECT_EQ(par.stats.fixed_via_heap + par.stats.fixed_via_mwe,
              g.num_vertices());
  }
}

TEST_P(LlpPrimParallel, DenseRmatGraph) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 16;
  p.seed = 3;
  EdgeList list = generate_rmat(p);
  connect_components(list);
  const CsrGraph g = csr(list);
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  RunContext ctx(pool);
  EXPECT_EQ(llp_prim_parallel(g, ctx).edges, kruskal(g).edges);
}

TEST(LlpPrimParallelStats, MweShareGrowsWithDensity) {
  // The paper credits graph500's higher edges/vertex for LLP-Prim's
  // parallelism: denser graphs fix a larger share of vertices through MWEs
  // than the sparse road graph... (the share is also what R-set parallelism
  // feeds on).  Sanity-check the instrumentation is populated.
  ThreadPool pool(4);
  RunContext ctx(pool);
  const CsrGraph road = medium_connected_graph(2);
  const MstResult r = llp_prim_parallel(road, ctx);
  EXPECT_GT(r.stats.fixed_via_mwe, road.num_vertices() / 10);
  EXPECT_GT(r.stats.edges_relaxed, 0u);
}

}  // namespace
}  // namespace llpmst
