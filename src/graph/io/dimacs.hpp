// DIMACS shortest-path challenge ".gr" format reader/writer.
//
// This is the format of the paper's USA-road-d.USA input, so a real road
// file drops straight into the benchmarks when available:
//
//   c comment
//   p sp <num_vertices> <num_arcs>
//   a <u> <v> <weight>     (1-based vertices; arcs usually listed both ways)
//
// read_dimacs maps vertices to 0-based ids and normalizes (the both-ways arc
// listing collapses to one undirected edge).  Malformed input is reported
// via the returned Status, never by crashing: kIoError for OS-level
// failures, kCorruptInput for anything wrong with the bytes themselves.
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "support/status.hpp"

namespace llpmst {

struct DimacsResult {
  EdgeList graph;
  Status status;  // OK on success

  [[nodiscard]] bool ok() const { return status.ok(); }
};

/// Reads a .gr file.  On failure, `status` describes the first problem.
[[nodiscard]] DimacsResult read_dimacs(const std::string& path);

/// Writes a normalized edge list as .gr (arcs emitted both directions, as
/// the road files do).
[[nodiscard]] Status write_dimacs(const std::string& path,
                                  const EdgeList& list);

}  // namespace llpmst
