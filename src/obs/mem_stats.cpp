#include "obs/mem_stats.hpp"

#include "obs/metrics.hpp"  // LLPMST_OBS default

#if defined(__unix__) || defined(__APPLE__)
#define LLPMST_HAVE_GETRUSAGE 1
#include <sys/resource.h>
#else
#define LLPMST_HAVE_GETRUSAGE 0
#endif

#if LLPMST_OBS

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

// Plain file-scope atomics, NOT obs::Counter: the registry allocates on
// first use, and an allocating path inside operator new would recurse.
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
std::atomic<std::uint64_t> g_free_count{0};

void* tracked_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  // malloc(0) may return null legitimately; operator new must not.
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  g_free_count.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

// Replacement global allocation functions (must live at global scope).
// The nothrow and aligned variants are deliberately not replaced: the
// default nothrow operator new forwards to this one, and aligned
// allocations keep the (untracked) default — safe, merely uncounted.
void* operator new(std::size_t size) { return tracked_alloc(size); }
void* operator new[](std::size_t size) { return tracked_alloc(size); }
void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }

#endif  // LLPMST_OBS

namespace llpmst::obs {

MemSample mem_sample() {
  MemSample s;
#if LLPMST_HAVE_GETRUSAGE
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0 && ru.ru_maxrss > 0) {
    // Linux reports ru_maxrss in kilobytes.
    s.peak_rss_bytes = static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
  }
#endif
#if LLPMST_OBS
  s.alloc_tracking = true;
  s.alloc_count = g_alloc_count.load(std::memory_order_relaxed);
  s.alloc_bytes = g_alloc_bytes.load(std::memory_order_relaxed);
  s.free_count = g_free_count.load(std::memory_order_relaxed);
#endif
  return s;
}

}  // namespace llpmst::obs
