#include "obs/exposition.hpp"

#include <cstdio>
#include <map>
#include <set>
#include <string_view>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"
#include "obs/round_stats.hpp"

namespace llpmst::obs {

namespace {

/// "llp_prim/heap_inserts" -> "llpmst_llp_prim_heap_inserts".
std::string sanitize(std::string_view name) {
  std::string out = "llpmst_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Escapes a label value per the exposition format (backslash, quote, LF).
std::string escape_label(std::string_view v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

void append_type(std::string& out, const std::string& family,
                 const char* type) {
  out += "# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

}  // namespace

std::string render_openmetrics() {
  std::string out;
  // Family names already emitted: a sanitized collision must not produce a
  // second family with the same name (spec violation), so later ones skip.
  std::set<std::string> seen;
  auto claim = [&seen, &out](const std::string& family) {
    if (seen.insert(family).second) return true;
    out += "# skipped: duplicate family after sanitization: " + family + "\n";
    return false;
  };

  for (const MetricSample& m : snapshot_metrics()) {
    const std::string family = sanitize(m.name);
    if (!claim(family)) continue;
    if (m.is_gauge) {
      append_type(out, family, "gauge");
      out += family;
    } else {
      append_type(out, family, "counter");
      out += family + "_total";
    }
    out.push_back(' ');
    append_u64(out, m.value);
    out.push_back('\n');
  }

  const std::vector<PhaseSample> phases = snapshot_phases();
  if (!phases.empty()) {
    append_type(out, "llpmst_phase_seconds", "counter");
    for (const PhaseSample& p : phases) {
      out += "llpmst_phase_seconds_total{phase=\"" + escape_label(p.name) +
             "\"} ";
      append_double(out, static_cast<double>(p.total_us) * 1e-6);
      out.push_back('\n');
    }
    append_type(out, "llpmst_phase_count", "counter");
    for (const PhaseSample& p : phases) {
      out += "llpmst_phase_count_total{phase=\"" + escape_label(p.name) +
             "\"} ";
      append_u64(out, p.count);
      out.push_back('\n');
    }
  }

  const SchedulerSummary sched = scheduler_summary();
  if (sched.has_events) {
    append_type(out, "llpmst_sched_utilization_ratio", "gauge");
    out += "llpmst_sched_utilization_ratio ";
    append_double(out, sched.utilization);
    out.push_back('\n');
    append_type(out, "llpmst_sched_steal_success_ratio", "gauge");
    out += "llpmst_sched_steal_success_ratio ";
    append_double(out, sched.steal_success_rate);
    out.push_back('\n');
    append_type(out, "llpmst_sched_critical_path_seconds", "gauge");
    out += "llpmst_sched_critical_path_seconds ";
    append_double(out, static_cast<double>(sched.critical_path_us) * 1e-6);
    out.push_back('\n');
    append_type(out, "llpmst_sched_worker_busy_seconds", "counter");
    for (const WorkerBreakdown& w : sched.workers) {
      out += "llpmst_sched_worker_busy_seconds_total{worker=\"";
      append_u64(out, w.worker);
      out += "\"} ";
      append_double(out, static_cast<double>(w.busy_us) * 1e-6);
      out.push_back('\n');
    }
    append_type(out, "llpmst_sched_worker_idle_seconds", "counter");
    for (const WorkerBreakdown& w : sched.workers) {
      out += "llpmst_sched_worker_idle_seconds_total{worker=\"";
      append_u64(out, w.worker);
      out += "\"} ";
      append_double(out, static_cast<double>(w.idle_us) * 1e-6);
      out.push_back('\n');
    }
    append_type(out, "llpmst_sched_dropped_events", "counter");
    out += "llpmst_sched_dropped_events_total ";
    append_u64(out, sched.dropped_events);
    out.push_back('\n');
  }

  // Rounds aggregate per site: how many rounds and how long they took.
  std::map<std::string, std::pair<std::uint64_t, double>> sites;
  for (const RoundRecord& r : snapshot_rounds()) {
    auto& [count, wall_ms] = sites[r.label];
    ++count;
    wall_ms += r.wall_ms;
  }
  if (!sites.empty()) {
    append_type(out, "llpmst_solver_rounds", "gauge");
    for (const auto& [site, agg] : sites) {
      out += "llpmst_solver_rounds{site=\"" + escape_label(site) + "\"} ";
      append_u64(out, agg.first);
      out.push_back('\n');
    }
    append_type(out, "llpmst_solver_round_seconds", "counter");
    for (const auto& [site, agg] : sites) {
      out += "llpmst_solver_round_seconds_total{site=\"" +
             escape_label(site) + "\"} ";
      append_double(out, agg.second * 1e-3);
      out.push_back('\n');
    }
  }

  append_type(out, "llpmst_warnings", "gauge");
  out += "llpmst_warnings ";
  append_u64(out, snapshot_warnings().size());
  out.push_back('\n');

  append_type(out, "llpmst_build_info", "gauge");
  out += "llpmst_build_info{obs=\"";
  out += kCompiledIn ? '1' : '0';
  out += "\"} 1\n";

  out += "# EOF\n";
  return out;
}

const char* openmetrics_content_type() {
  return "application/openmetrics-text; version=1.0.0; charset=utf-8";
}

bool write_openmetrics(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string doc = render_openmetrics();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace llpmst::obs
