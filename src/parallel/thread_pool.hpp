// A persistent fork-join thread pool.
//
// This is the runtime substrate the paper gets from Galois/GBBS: a fixed team
// of workers that repeatedly execute data-parallel regions.  The design is a
// *team* pool rather than a task-queue pool: `run_team(f)` wakes every worker
// and runs `f(worker_id)` on each (plus the caller as worker 0), then joins.
// Data-parallel primitives (parallel_for, reduce, scan) are built on top.
//
// Why a team pool: MST rounds are bulk-synchronous data-parallel loops; a
// team dispatch is two atomics per region instead of per-task queue traffic,
// and gives every primitive a stable worker id for per-thread buffers.
//
// Thread-safety: run_team is NOT reentrant (no nested parallel regions) and
// must be called from one thread at a time.  All library entry points take
// the pool by Executor reference, so the caller decides both the
// parallelism degree and the execution substrate (real threads here, the
// deterministic simulator in src/sim/).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/executor.hpp"

namespace llpmst {

class ThreadPool : public Executor {
 public:
  /// Creates a pool that executes team regions with `num_threads` workers in
  /// total (including the calling thread).  `num_threads == 1` spawns no
  /// threads at all: run_team simply invokes f(0) inline, so sequential runs
  /// have zero runtime overhead.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool() override;

  /// Number of workers, including the caller.
  [[nodiscard]] std::size_t num_threads() const override {
    return num_threads_;
  }

  /// A process-wide default pool sized to the hardware concurrency; created
  /// on first use.  Benchmarks construct their own pools per thread-count.
  static ThreadPool& default_pool();

  /// When on (and a trace is collecting), every team region emits one
  /// "pool/region" span per participating worker, which renders the
  /// parallel structure of a run in the trace viewer.  Off by default:
  /// regions are the hottest dispatch path in the library.
  static void set_trace_regions(bool on) {
    trace_regions_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool trace_regions() {
    return trace_regions_.load(std::memory_order_relaxed);
  }

 protected:
  /// Exceptions a worker throws are captured and rethrown on the submitting
  /// thread after the join — the caller's own exception wins, then the
  /// first captured worker exception; the rest are dropped.  Other workers
  /// are not interrupted, so side effects of the region may be partially
  /// applied — treat a throwing region as poisoned state, not a
  /// transaction.
  void run_region_impl(const TeamFn& fn) override;

 private:
  inline static std::atomic<bool> trace_regions_{false};

  void worker_loop(std::size_t worker_id);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  TeamFn job_;  // valid while a region is in flight (obj != nullptr)
  std::uint64_t epoch_ = 0;        // incremented per region; wakes workers
  std::size_t active_workers_ = 0; // workers still inside the current region
  bool shutdown_ = false;
  // First exception a worker threw in the current region (guarded by
  // mutex_); rethrown by run_team on the submitting thread after the join.
  std::exception_ptr worker_exception_;
};

}  // namespace llpmst
