// Reproduces the Section VII-C remark: "We also tested the algorithms in
// graphs of different sizes and the same morphology ... the results were
// analogous" — a sweep over RMAT scales at a fixed thread count, checking
// the algorithm ranking stays stable as the graph grows.
//
// With --pack-dir DIR each scale is packed once to an llpmstb snapshot and
// every run (including re-runs) mounts it via mmap instead of regenerating,
// so the sweep extends past the scales the in-memory path can iterate on.
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "graph/io/binary_csr.hpp"
#include "graph/storage.hpp"
#include "mst/registry.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_size_sweep",
                "Section VII-C size sweep: same morphology (RMAT ef16), "
                "growing scale");
  auto& scales = cli.add_string("scales", "12,14,16", "RMAT scales to sweep");
  auto& threads = cli.add_int("threads", 4, "threads for parallel algos");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  auto& pack_dir = cli.add_string(
      "pack-dir", "",
      "pack each scale to DIR/graph500_sN.llpmstb and run from the mmapped "
      "snapshot (files are reused across runs, so large scales pay the "
      "generate+build cost once)");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));
  RunContext ctx(pool);

  std::printf("Size sweep: RMAT ef16, threads=%lld\n\n",
              static_cast<long long>(threads));
  Table t({"Scale", "Vertices", "Edges", "Prim", "LLP-Prim(1T)", "LLP-Prim",
           "Boruvka", "LLP-Boruvka"});

  if (!pack_dir.empty()) {
    std::filesystem::create_directories(pack_dir);
  }

  for (const int scale : CliParser::parse_int_list(scales)) {
    // Default path: generate + build on the heap.  With --pack-dir the
    // graph lives in an llpmstb snapshot instead and the sweep runs over a
    // read-only mmap — the build cost is paid on first use only, which is
    // what makes scales past the in-memory sweep practical to iterate on.
    Workload w;
    if (pack_dir.empty()) {
      w = make_graph500_workload(scale);
    } else {
      const std::string file = pack_dir + "/graph500_s" +
                               std::to_string(scale) + ".llpmstb";
      if (!is_binary_csr_file(file)) {
        const Workload fresh = make_graph500_workload(scale);
        const Status packed = write_binary_csr(file, fresh.graph);
        if (!packed.ok()) {
          std::fprintf(stderr, "pack failed: %s\n",
                       packed.to_string().c_str());
          return 1;
        }
      }
      Expected<CsrGraph> mounted = read_binary_csr(file);
      if (!mounted.ok()) {
        std::fprintf(stderr, "mount failed: %s\n",
                     mounted.status().to_string().c_str());
        return 1;
      }
      w.name = "Graph500 s" + std::to_string(scale);
      w.type = "scalefree";
      w.graph = std::move(*mounted);
      std::printf("s%-2d mounted %s (%s bytes mapped)\n", scale, file.c_str(),
                  format_count(w.graph.storage()->mapped_bytes()).c_str());
    }
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));

    const auto run = [&](const char* name) {
      const MstAlgorithm& algo = mst_algorithm(name);
      return measure_mst(
          algo.name, w.graph, reference,
          [&] { return algo.run(w.graph, ctx); }, opts);
    };
    const auto p = run("prim");
    const auto l1 = run("llp-prim");
    const auto lp = run("llp-prim-parallel");
    const auto pb = run("parallel-boruvka");
    const auto lb = run("llp-boruvka");

    t.add_row({strf("%d", scale), format_count(w.graph.num_vertices()),
               format_count(w.graph.num_edges()), time_cell(p.time_ms),
               time_cell(l1.time_ms), time_cell(lp.time_ms),
               time_cell(pb.time_ms), time_cell(lb.time_ms)});
  }

  t.print(csv);
  obs_cli.write_table(t);
  std::printf("\nThe ranking between algorithms should be stable across "
              "scales (the paper's 'results were analogous').\n");
  obs_cli.finish("bench_size_sweep");
  return 0;
}
