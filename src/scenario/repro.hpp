// One-line repro commands for chaos/sim test failures.
//
// Every randomized or fault-injected test failure should hand the developer
// a command they can paste into a shell to re-run the exact same case.
// The formatter lives here (not in the tests) so the flag spelling has one
// home and cannot drift from mst_tool's CLI.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace llpmst {

struct ReproSpec {
  /// --scenario name; empty = ad-hoc graph, scenario flag omitted.
  std::string_view scenario;
  /// --algo name; empty = omitted ("mst::auto" dispatch).
  std::string_view algo;
  std::uint64_t seed = 0;
  /// --threads; 0 = omitted.
  std::size_t threads = 0;
  /// --failpoints spec; empty = omitted.  Quoted in the output.
  std::string_view failpoints;
  /// --sim-timeline spec; empty = omitted.  Quoted in the output.
  std::string_view timeline;
  /// --deadline-ms; <= 0 = omitted.
  double deadline_ms = 0;
  /// Run under the deterministic simulator (--sim).
  bool sim = false;
};

/// "repro: ./build/examples/mst_tool --scenario bundle-heavy --seed 17
///  --algo llp-boruvka --threads 4 --failpoints 'boruvka/round=1*return'"
/// — single line, shell-safe (specs are single-quoted).
[[nodiscard]] std::string format_repro_command(const ReproSpec& spec);

}  // namespace llpmst
