// METIS I/O, subgraph extraction, diameter estimation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "graph/algorithms/connected_components.hpp"
#include "graph/algorithms/diameter.hpp"
#include "graph/algorithms/subgraph.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/special.hpp"
#include "graph/io/metis.hpp"
#include "mst/kruskal.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

class MetisIo : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_metis_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) { return (dir_ / n).string(); }
  void write_file(const std::string& n, const std::string& content) {
    std::ofstream out(path(n), std::ios::binary);
    out << content;
  }
  std::filesystem::path dir_;
};

TEST_F(MetisIo, RoundTrip) {
  ErdosRenyiParams p;
  p.num_vertices = 150;
  p.num_edges = 600;
  p.seed = 13;
  const EdgeList original = generate_erdos_renyi(p);
  ASSERT_TRUE(write_metis(path("g.metis"), original).ok());
  const EdgeListResult r = read_metis(path("g.metis"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_vertices(), original.num_vertices());
  EXPECT_EQ(r.graph.edges(), original.edges());
}

TEST_F(MetisIo, HandWrittenWeighted) {
  write_file("g.metis",
             "% comment\n"
             "3 2 1\n"
             "2 10 3 20\n"
             "1 10\n"
             "1 20\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  ASSERT_EQ(r.graph.num_edges(), 2u);
  EXPECT_EQ(r.graph[0], (WeightedEdge{0, 1, 10}));
  EXPECT_EQ(r.graph[1], (WeightedEdge{0, 2, 20}));
}

TEST_F(MetisIo, UnweightedDefaultsToWeightOne) {
  write_file("g.metis", "3 2\n2 3\n1\n1\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  ASSERT_EQ(r.graph.num_edges(), 2u);
  EXPECT_EQ(r.graph[0].w, 1u);
}

TEST_F(MetisIo, RejectsVertexWeightedFmt) {
  write_file("g.metis", "2 1 11\n1 2 5\n2 1 5\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("unsupported fmt"), std::string::npos);
}

TEST_F(MetisIo, RejectsTruncatedFile) {
  write_file("g.metis", "5 4 1\n2 10\n");
  EXPECT_FALSE(read_metis(path("g.metis")).ok());
}

TEST_F(MetisIo, RejectsNeighborOutOfRange) {
  write_file("g.metis", "2 1\n9\n1\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("out of range"), std::string::npos);
}

TEST_F(MetisIo, MissingWeightReported) {
  write_file("g.metis", "2 1 1\n2\n1 5\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("missing edge weight"), std::string::npos);
}

// ---------------------------------------------------------------- subgraph

TEST(Subgraph, InducedKeepsInternalEdgesOnly) {
  const EdgeList g = make_cycle(6, 10);
  const SubgraphResult s = induced_subgraph(g, {0, 1, 2, 5});
  EXPECT_EQ(s.graph.num_vertices(), 4u);
  // Kept edges among {0,1,2,5}: 0-1, 1-2, 5-0 => 3 edges.
  EXPECT_EQ(s.graph.num_edges(), 3u);
  EXPECT_EQ(s.old_id, (std::vector<VertexId>{0, 1, 2, 5}));
}

TEST(Subgraph, DuplicatesAndOrderInKeepIgnored) {
  const EdgeList g = make_path(5);
  const SubgraphResult a = induced_subgraph(g, {3, 1, 1, 2});
  const SubgraphResult b = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(a.old_id, b.old_id);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
}

TEST(Subgraph, LargestComponentExtraction) {
  // Forest with parts of size 30, 20, 10 — plus isolated vertices.
  EdgeList list = make_forest(1, 30, 1);
  const std::size_t base = list.num_vertices();
  list.ensure_vertices(base + 20 + 10 + 3);
  Xoshiro256 rng(2);
  for (std::uint32_t i = 1; i < 20; ++i) {
    list.add_edge(base + rng.next_below(i), base + i, 5 + i);
  }
  for (std::uint32_t i = 1; i < 10; ++i) {
    list.add_edge(base + 20 + rng.next_below(i), base + 20 + i, 500 + i);
  }
  list.normalize();

  const SubgraphResult lcc = extract_largest_component(list);
  EXPECT_EQ(lcc.graph.num_vertices(), 30u);
  EXPECT_TRUE(is_connected(lcc.graph));
  // Largest-component extraction must preserve that component's tree.
  const CsrGraph after = CsrGraph::build(lcc.graph);
  EXPECT_EQ(kruskal(after).edges.size(), 29u);
}

TEST(Subgraph, WholeGraphKeepIsIdentityUpToRelabeling) {
  const EdgeList g = make_complete(7, 3);
  std::vector<VertexId> all(7);
  for (VertexId v = 0; v < 7; ++v) all[v] = v;
  const SubgraphResult s = induced_subgraph(g, all);
  EXPECT_EQ(s.graph.edges(), g.edges());
}

// ---------------------------------------------------------------- diameter

TEST(Diameter, PathGraphExact) {
  const CsrGraph g = CsrGraph::build(make_path(100));
  const DiameterEstimate d = estimate_diameter(g, 50);
  EXPECT_EQ(d.hops, 99u);  // double sweep is exact on trees
}

TEST(Diameter, StarGraph) {
  const CsrGraph g = CsrGraph::build(make_star(50));
  const DiameterEstimate d = estimate_diameter(g, 0);
  EXPECT_EQ(d.hops, 2u);
}

TEST(Diameter, CycleLowerBound) {
  const CsrGraph g = CsrGraph::build(make_cycle(40, 1));
  const DiameterEstimate d = estimate_diameter(g);
  EXPECT_EQ(d.hops, 20u);
}

TEST(Diameter, RoadVsRmatMorphology) {
  // The structural contrast behind the paper's discussion: road-like graphs
  // have far larger diameters than Kronecker graphs of similar size.
  RmatParams rp;
  rp.scale = 10;
  rp.edge_factor = 16;
  EdgeList rmat = generate_rmat(rp);
  const SubgraphResult lcc = extract_largest_component(rmat);
  const CsrGraph kron = CsrGraph::build(lcc.graph);
  const CsrGraph grid = CsrGraph::build(make_path(1024));
  EXPECT_GT(estimate_diameter(grid).hops,
            4 * estimate_diameter(kron).hops);
}

TEST(Diameter, EmptyAndSingleton) {
  EXPECT_EQ(estimate_diameter(CsrGraph::build(EdgeList(0))).hops, 0u);
  const DiameterEstimate d = estimate_diameter(CsrGraph::build(EdgeList(1)));
  EXPECT_EQ(d.hops, 0u);
}

}  // namespace
}  // namespace llpmst
