// The per-run execution context every MST/MSF entry point receives.
//
// Before this existed, each algorithm grew its own plumbing signature —
// `(g, pool)`, `(g, pool, root, cancel)`, thread_local scratch inside the
// Boruvka engine — and every consumer (mst::auto, mst_tool, the benches,
// the cross-check tests) re-encoded that plumbing per algorithm.  A
// RunContext bundles all of it behind one object:
//
//   * the ThreadPool (borrowed; a lazily created 1-thread pool when the
//     caller never attaches one, so sequential callers write no pool code);
//   * cancellation + deadline: an optional external CancelToken plus an
//     owned deadline token, composed exactly the way mst::auto always did
//     (deadline token preferred; a caller cancel is checked between
//     attempts via user_cancelled());
//   * a ScratchArena of reusable per-run buffers — the explicit, testable
//     replacement for the `thread_local BoruvkaScratch` pattern: repeated
//     runs through one context reuse capacity, two contexts never share;
//   * a connectivity cache so mst::auto's selection check and downstream
//     verification stop recomputing connected components of the same graph
//     within one run;
//   * a failpoint scope (armed specs are disarmed when the context dies)
//     and an obs scope bundling the top-level phase span + hw-counter fold.
//
// A RunContext is NOT thread-safe and not reentrant: one algorithm run at a
// time per context, matching the scratch-reuse contract.  It is cheap to
// construct; reuse across runs is an optimization (warm scratch, cached
// connectivity), not a requirement.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <typeindex>
#include <utility>
#include <vector>

#include "obs/hw_counters.hpp"
#include "obs/phase_timer.hpp"
#include "obs/profiler.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"

namespace llpmst {

class CsrGraph;

/// Type-indexed bag of reusable per-run buffers.  `get<BoruvkaScratch>()`
/// returns the same object every call on the same arena, default-constructed
/// on first use — so algorithm scratch state (grown vectors, grain feedback)
/// survives across runs through one RunContext without any thread_local.
class ScratchArena {
 public:
  template <typename T>
  [[nodiscard]] T& get() {
    const std::type_index key(typeid(T));
    for (const Slot& s : slots_) {
      if (s.key == key) return *static_cast<T*>(s.ptr.get());
    }
    slots_.push_back(Slot{key, std::shared_ptr<void>(new T())});
    return *static_cast<T*>(slots_.back().ptr.get());
  }

  /// Number of distinct scratch types materialized so far (tests).
  [[nodiscard]] std::size_t size() const { return slots_.size(); }

  /// Drops every buffer (capacity included).  Runs remain correct after a
  /// clear — scratch is a reuse optimization, not state.
  void clear() { slots_.clear(); }

 private:
  struct Slot {
    std::type_index key;
    std::shared_ptr<void> ptr;  // typed deleter captured at construction
  };
  std::vector<Slot> slots_;
};

/// RAII observability bundle for one algorithm run: a top-level phase span
/// plus the hw-counter fold for the same label, and — when a profiling
/// session is live — a per-thread sampler arm, so runs driven from threads
/// the pool never saw (the daemon-to-be's request threads) still produce
/// attributed samples.  Obtain through RunContext::obs_scope(); free when
/// observability is off or compiled out.
class ObsScope {
 public:
  explicit ObsScope(const char* label) : phase_(label), hw_(label) {
    obs::prof_ensure_thread_timer();
  }
  ObsScope(const ObsScope&) = delete;
  ObsScope& operator=(const ObsScope&) = delete;

 private:
  obs::PhaseTimer phase_;
  obs::ScopedHwCounters hw_;
};

class RunContext {
 public:
  /// A context with no pool: pool() lazily creates an owned 1-thread pool,
  /// so sequential use needs no pool plumbing at all.
  RunContext() = default;
  /// A context borrowing `pool` (must outlive the context or be replaced
  /// with attach_pool before the next run).
  explicit RunContext(ThreadPool& pool) : pool_(&pool) {}
  ~RunContext();

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // -- Threads ------------------------------------------------------------
  /// The pool algorithms run on.  Never null: creates an owned single-thread
  /// pool on first use when none was attached.
  [[nodiscard]] ThreadPool& pool();
  /// Rebinds the context to a different pool (benches sweep thread counts
  /// with one context so scratch stays warm across the sweep).
  void attach_pool(ThreadPool& pool) { pool_ = &pool; }
  [[nodiscard]] bool has_pool() const { return pool_ != nullptr; }

  /// The executor algorithms run their team regions on.  Defaults to the
  /// pool; attach_executor() overrides it — this is the seam the
  /// deterministic simulator (src/sim/SimExecutor) plugs into without the
  /// algorithms knowing.  The executor takes precedence over any attached
  /// pool until detached (attach_executor(nullptr)).
  [[nodiscard]] Executor& executor() {
    return executor_ != nullptr ? *executor_ : static_cast<Executor&>(pool());
  }
  void attach_executor(Executor* exec) { executor_ = exec; }
  [[nodiscard]] bool has_executor() const { return executor_ != nullptr; }

  /// Thread budget without forcing pool creation.
  [[nodiscard]] std::size_t threads() const {
    if (executor_ != nullptr) return executor_->num_threads();
    return pool_ != nullptr ? pool_->num_threads() : 1;
  }

  // -- Cancellation & deadline --------------------------------------------
  /// Observes caller-owned cancellation.  Pass nullptr to detach.
  void set_cancel(const CancelToken* cancel) {
    external_cancel_ = cancel;
    if (deadline_armed_) deadline_token_.observe(cancel);
  }
  /// Arms a wall-clock budget for subsequent runs (<= 0 disarms nothing but
  /// is ignored, matching AutoMstOptions' old `deadline_ms = 0` meaning).
  void set_deadline_ms(double ms);
  /// The token algorithms should poll: the deadline token when a deadline is
  /// armed, else the external token, else nullptr.  When both are set the
  /// deadline token observes the external one, so a mid-run caller cancel
  /// stops a budgeted run too (reason preserved) — this is what lets a
  /// served query honour both its budget and a client disconnect; mst::auto
  /// additionally distinguishes the two via user_cancelled() between
  /// attempts.
  [[nodiscard]] const CancelToken* cancel_token() const;
  [[nodiscard]] const CancelToken* external_cancel() const {
    return external_cancel_;
  }
  /// True when the CALLER requested cancellation (not a deadline expiry) —
  /// an instruction to stop, not a failure to route around.
  [[nodiscard]] bool user_cancelled() const;

  // -- Scratch ------------------------------------------------------------
  [[nodiscard]] ScratchArena& scratch() { return scratch_; }

  // -- Connectivity cache -------------------------------------------------
  /// Connected components of `g`, computed once per (context, graph) with a
  /// union-find sweep over the CSR edge list and cached by graph identity.
  /// Isolated vertices count as components; an empty graph has 0.
  ///
  /// Identity is the graph's STORAGE address, not the CsrGraph handle:
  /// handles are cheap copies since the storage refactor, so two copies of
  /// one snapshot (e.g. the catalog's and a query's) share the cache entry.
  [[nodiscard]] std::size_t num_components(const CsrGraph& g);
  [[nodiscard]] bool connected(const CsrGraph& g) {
    return num_components(g) == 1;
  }
  /// True when num_components(g) is already cached for this graph (tests,
  /// and consumers that only want to cross-check, never compute).
  [[nodiscard]] bool components_cached(const CsrGraph& g) const;
  /// Seeds the cache from a caller that computed (or was told) the count —
  /// e.g. the verifier's union-find already knows it as a byproduct.
  void seed_components(const CsrGraph& g, std::size_t count);

  // -- Failpoints ---------------------------------------------------------
  /// Arms a "name=spec;..." failpoint list through fail::configure().
  /// Returns the number of points armed (0 + *error set on a malformed
  /// spec).  Whatever this context armed is disarmed in the destructor.
  std::size_t arm_failpoints(std::string_view spec, std::string* error);

  // -- Observability ------------------------------------------------------
  /// Top-level phase span + hw-counter fold for one run.  Usage:
  ///   auto scope = ctx.obs_scope("mst_tool/solve");
  [[nodiscard]] ObsScope obs_scope(const char* label) const {
    return ObsScope(label);
  }

 private:
  ThreadPool* pool_ = nullptr;
  Executor* executor_ = nullptr;  // borrowed; overrides pool_ when set
  std::unique_ptr<ThreadPool> owned_pool_;
  CancelToken deadline_token_;
  bool deadline_armed_ = false;
  const CancelToken* external_cancel_ = nullptr;
  ScratchArena scratch_;
  const void* components_key_ = nullptr;  // GraphStorage address
  std::size_t components_ = 0;
  bool components_valid_ = false;  // distinguishes "empty graph cached"
  bool armed_failpoints_ = false;
};

}  // namespace llpmst
