#include "graph/generators/rmat.hpp"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "ds/union_find.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

EdgeList generate_rmat(const RmatParams& params) {
  LLPMST_CHECK(params.scale >= 1 && params.scale <= 30);
  LLPMST_CHECK(params.edge_factor >= 1);
  LLPMST_CHECK(params.a > 0 && params.b >= 0 && params.c >= 0 &&
               params.a + params.b + params.c < 1.0);
  LLPMST_CHECK(params.max_weight >= 1);

  const std::size_t n = std::size_t{1} << params.scale;
  const std::size_t m_target = n * static_cast<std::size_t>(params.edge_factor);

  Xoshiro256 rng(params.seed);

  // Random vertex relabeling (graph500 step 2).
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  if (params.permute_vertices) {
    for (std::size_t i = n - 1; i > 0; --i) {
      std::size_t j = rng.next_below(i + 1);
      std::swap(perm[i], perm[j]);
    }
  }

  EdgeList list(n);
  list.reserve(m_target);

  const double ab = params.a + params.b;
  const double a_norm = params.a / ab;                      // within top half
  const double c_norm = params.c / (1.0 - ab);              // within bottom

  for (std::size_t k = 0; k < m_target; ++k) {
    // Recursive quadrant descent.
    std::size_t u = 0, v = 0;
    for (int level = 0; level < params.scale; ++level) {
      const bool bottom = rng.next_double() >= ab;   // row half
      const double col_p = bottom ? c_norm : a_norm; // P(left | half)
      const bool right = rng.next_double() >= col_p;
      u = (u << 1) | (bottom ? 1u : 0u);
      v = (v << 1) | (right ? 1u : 0u);
    }
    const Weight w = static_cast<Weight>(rng.next_in(1, params.max_weight));
    list.add_edge(perm[u], perm[v], w);
  }

  list.normalize();
  return list;
}

std::size_t connect_components(EdgeList& list, std::uint64_t seed) {
  const std::size_t n = list.num_vertices();
  if (n <= 1) return 0;

  UnionFind uf(n);
  Weight max_w = 0;
  for (const WeightedEdge& e : list.edges()) {
    uf.unite(e.u, e.v);
    max_w = std::max(max_w, e.w);
  }
  if (uf.num_sets() == 1) return 0;

  // Collect one representative per component, then chain them together with
  // heavy edges.  Heavy weights guarantee every pre-existing MSF edge stays
  // in the MST of the connected graph (cut/cycle property), so benchmarks on
  // the patched graph exercise the same structure plus a few bridge picks.
  std::vector<VertexId> reps;
  for (VertexId v = 0; v < n; ++v) {
    if (uf.find(v) == v) reps.push_back(v);
  }

  Xoshiro256 rng(seed);
  std::size_t added = 0;
  for (std::size_t i = 1; i < reps.size(); ++i) {
    // Spread the bridge weights so they stay distinct-ish; ties are still
    // fine thanks to priority tie-breaking.
    const Weight bridge_w = static_cast<Weight>(
        std::min<std::uint64_t>(static_cast<std::uint64_t>(max_w) + 1 +
                                    rng.next_below(1u << 8),
                                0xffffffffull));
    list.add_edge(reps[i - 1], reps[i], bridge_w);
    ++added;
  }
  list.normalize();
  return added;
}

}  // namespace llpmst
