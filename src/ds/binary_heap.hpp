// Indexed binary min-heap with decrease-key ("insertOrAdjust").
//
// This is the heap of Prim's Algorithm 2: items are identified by a dense
// integer id in [0, capacity); each id is in the heap at most once; and
// `insert_or_adjust(id, key)` inserts the id or lowers its key in O(log n).
// A position index (id -> heap slot) makes decrease-key possible.
//
// Keys are a template parameter; MST code instantiates Key = EdgePriority
// (packed weight|edge_id, see graph/types.hpp), so ties are impossible and
// pop order is deterministic.
//
// Operation counters (pushes/pops/adjusts/sift steps) are kept unconditionally
// — they cost one increment on paths that do O(log n) work anyway and they
// are what the Fig. 2 ablation reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace llpmst {

/// Statistics describing how much work a heap instance performed.
struct HeapStats {
  std::uint64_t pushes = 0;        // new ids inserted
  std::uint64_t pops = 0;          // remove-min calls
  std::uint64_t adjusts = 0;       // decrease-key on a resident id
  std::uint64_t sift_steps = 0;    // total levels moved by sift up/down

  HeapStats& operator+=(const HeapStats& o) {
    pushes += o.pushes;
    pops += o.pops;
    adjusts += o.adjusts;
    sift_steps += o.sift_steps;
    return *this;
  }
};

template <typename Key, typename Id = std::uint32_t>
class BinaryHeap {
 public:
  /// Creates a heap able to hold ids in [0, capacity).
  explicit BinaryHeap(std::size_t capacity)
      : pos_(capacity, kAbsent) {
    heap_.reserve(capacity);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(Id id) const {
    LLPMST_ASSERT(id < pos_.size());
    return pos_[id] != kAbsent;
  }

  /// Current key of a resident id.
  [[nodiscard]] Key key_of(Id id) const {
    LLPMST_ASSERT(contains(id));
    return heap_[pos_[id]].key;
  }

  /// The minimum entry without removing it.
  [[nodiscard]] std::pair<Id, Key> peek() const {
    LLPMST_ASSERT(!empty());
    return {heap_[0].id, heap_[0].key};
  }

  /// Inserts id (must not be resident).
  void push(Id id, Key key) {
    LLPMST_ASSERT(!contains(id));
    pos_[id] = heap_.size();
    heap_.push_back({key, id});
    ++stats_.pushes;
    sift_up(heap_.size() - 1);
  }

  /// Prim's H.insertOrAdjust: insert if absent, decrease-key if the new key
  /// is lower, no-op otherwise.  Returns true if the heap changed.
  bool insert_or_adjust(Id id, Key key) {
    LLPMST_ASSERT(id < pos_.size());
    if (pos_[id] == kAbsent) {
      push(id, key);
      return true;
    }
    std::size_t i = pos_[id];
    if (key < heap_[i].key) {
      heap_[i].key = key;
      ++stats_.adjusts;
      sift_up(i);
      return true;
    }
    return false;
  }

  /// Removes and returns the minimum entry.
  std::pair<Id, Key> pop() {
    LLPMST_ASSERT(!empty());
    Entry top = heap_[0];
    ++stats_.pops;
    remove_at(0);
    return {top.id, top.key};
  }

  /// Removes an arbitrary resident id (used when a vertex becomes fixed
  /// through the R set and its heap entry is dead).
  void erase(Id id) {
    LLPMST_ASSERT(contains(id));
    remove_at(pos_[id]);
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HeapStats{}; }

 private:
  struct Entry {
    Key key;
    Id id;
  };
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void remove_at(std::size_t i) {
    pos_[heap_[i].id] = kAbsent;
    Entry last = heap_.back();
    heap_.pop_back();
    if (i == heap_.size()) return;
    heap_[i] = last;
    pos_[last.id] = i;
    // The moved element may need to go either way.
    if (i > 0 && heap_[i].key < heap_[parent(i)].key) {
      sift_up(i);
    } else {
      sift_down(i);
    }
  }

  static std::size_t parent(std::size_t i) { return (i - 1) / 2; }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      std::size_t p = parent(i);
      if (!(e.key < heap_[p].key)) break;
      heap_[i] = heap_[p];
      pos_[heap_[i].id] = i;
      i = p;
      ++stats_.sift_steps;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
      if (!(heap_[child].key < e.key)) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].id] = i;
      i = child;
      ++stats_.sift_steps;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;  // id -> slot in heap_, or kAbsent
  HeapStats stats_;
};

}  // namespace llpmst
