// Indexed pairing heap with decrease-key.
//
// O(1) amortized insert and decrease-key, O(log n) amortized pop — the
// theoretically attractive heap for Prim/Dijkstra.  Node storage is a dense
// array indexed by id (ids in [0, capacity)), so no per-operation allocation
// happens after construction.  Used by the heap-choice ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ds/binary_heap.hpp"  // for HeapStats
#include "support/assert.hpp"

namespace llpmst {

template <typename Key, typename Id = std::uint32_t>
class PairingHeap {
 public:
  explicit PairingHeap(std::size_t capacity)
      : nodes_(capacity) {}

  [[nodiscard]] bool empty() const { return root_ == kNull; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool contains(Id id) const {
    LLPMST_ASSERT(id < nodes_.size());
    return nodes_[id].in_heap;
  }
  [[nodiscard]] Key key_of(Id id) const {
    LLPMST_ASSERT(contains(id));
    return nodes_[id].key;
  }
  [[nodiscard]] std::pair<Id, Key> peek() const {
    LLPMST_ASSERT(!empty());
    return {static_cast<Id>(root_), nodes_[root_].key};
  }

  void push(Id id, Key key) {
    LLPMST_ASSERT(!contains(id));
    Node& n = nodes_[id];
    n.key = key;
    n.child = n.sibling = n.prev = kNull;
    n.in_heap = true;
    ++size_;
    ++stats_.pushes;
    root_ = (root_ == kNull) ? id : meld(root_, id);
  }

  bool insert_or_adjust(Id id, Key key) {
    LLPMST_ASSERT(id < nodes_.size());
    if (!nodes_[id].in_heap) {
      push(id, key);
      return true;
    }
    if (key < nodes_[id].key) {
      decrease_key(id, key);
      return true;
    }
    return false;
  }

  /// Lowers the key of a resident id (new key must be <= current).
  void decrease_key(Id id, Key key) {
    LLPMST_ASSERT(contains(id));
    LLPMST_ASSERT(!(nodes_[id].key < key));
    nodes_[id].key = key;
    ++stats_.adjusts;
    if (id == root_) return;
    detach(id);
    root_ = meld(root_, id);
  }

  std::pair<Id, Key> pop() {
    LLPMST_ASSERT(!empty());
    const Id top = static_cast<Id>(root_);
    const Key key = nodes_[top].key;
    ++stats_.pops;
    nodes_[top].in_heap = false;
    --size_;
    root_ = two_pass_merge(nodes_[top].child);
    if (root_ != kNull) nodes_[root_].prev = kNull;
    nodes_[top].child = kNull;
    return {top, key};
  }

  void clear() {
    // Lazily reset only reachable nodes via pops would be O(n log n); a
    // linear sweep is simpler and clear() is not on any hot path.
    for (auto& n : nodes_) {
      n.in_heap = false;
      n.child = n.sibling = n.prev = kNull;
    }
    root_ = kNull;
    size_ = 0;
  }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HeapStats{}; }

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  struct Node {
    Key key{};
    std::uint32_t child = kNull;
    std::uint32_t sibling = kNull;
    std::uint32_t prev = kNull;  // parent if first child, else left sibling
    bool in_heap = false;
  };

  /// Unlinks a non-root node from its parent/sibling list.
  void detach(Id id) {
    Node& n = nodes_[id];
    const std::uint32_t prev = n.prev;
    LLPMST_ASSERT(prev != kNull);
    if (prev == kNull) return;
    // GCC's -Warray-bounds cannot see that the guard above makes
    // nodes_[prev] in range (only non-root in-heap nodes reach here) and
    // flags the kNull sentinel as an index under heavy inlining; this is a
    // known false-positive pattern, suppressed locally.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
    Node& p = nodes_[prev];
    if (p.child == id) {
      p.child = n.sibling;
    } else {
      p.sibling = n.sibling;
    }
    if (n.sibling != kNull) nodes_[n.sibling].prev = prev;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    n.sibling = kNull;
    n.prev = kNull;
  }

  /// Melds two roots, returning the new root.  Callers guarantee a, b are
  /// valid node indices; GCC's -Warray-bounds cannot see that through the
  /// kNull sentinel comparisons in inlined callers (same false positive as
  /// in detach), hence the local suppression.
  std::uint32_t meld(std::uint32_t a, std::uint32_t b) {
    LLPMST_ASSERT(a != kNull && b != kNull);
    ++stats_.sift_steps;  // count link operations as "work"
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#endif
    if (nodes_[b].key < nodes_[a].key) std::swap(a, b);
    // b becomes the first child of a.
    nodes_[b].sibling = nodes_[a].child;
    if (nodes_[a].child != kNull) nodes_[nodes_[a].child].prev = b;
    nodes_[a].child = b;
    nodes_[b].prev = a;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
    return a;
  }

  /// Standard two-pass pairing of a child list; returns new root or kNull.
  std::uint32_t two_pass_merge(std::uint32_t first) {
    if (first == kNull) return kNull;
    // Pass 1: pair up siblings left to right.
    std::vector<std::uint32_t>& pairs = scratch_;
    pairs.clear();
    std::uint32_t cur = first;
    while (cur != kNull) {
      std::uint32_t a = cur;
      std::uint32_t b = nodes_[a].sibling;
      if (b == kNull) {
        nodes_[a].prev = kNull;
        nodes_[a].sibling = kNull;
        pairs.push_back(a);
        break;
      }
      cur = nodes_[b].sibling;
      nodes_[a].sibling = nodes_[a].prev = kNull;
      nodes_[b].sibling = nodes_[b].prev = kNull;
      pairs.push_back(meld(a, b));
    }
    // Pass 2: meld right to left.
    std::uint32_t root = pairs.back();
    for (std::size_t i = pairs.size() - 1; i-- > 0;) {
      root = meld(root, pairs[i]);
    }
    return root;
  }

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> scratch_;
  std::uint32_t root_ = kNull;
  std::size_t size_ = 0;
  HeapStats stats_;
};

}  // namespace llpmst
