// Typed tests over every indexed heap (binary, d-ary, pairing): identical
// contract, randomized oracle cross-check against a reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "ds/binary_heap.hpp"
#include "ds/dary_heap.hpp"
#include "ds/lazy_heap.hpp"
#include "ds/pairing_heap.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

using Key = std::uint64_t;

template <typename Heap>
class IndexedHeapTest : public testing::Test {};

using HeapTypes =
    testing::Types<BinaryHeap<Key>, DaryHeap<Key, 2>, DaryHeap<Key, 4>,
                   DaryHeap<Key, 8>, PairingHeap<Key>>;
TYPED_TEST_SUITE(IndexedHeapTest, HeapTypes);

TYPED_TEST(IndexedHeapTest, StartsEmpty) {
  TypeParam h(16);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.contains(3));
}

TYPED_TEST(IndexedHeapTest, PushPopSingle) {
  TypeParam h(4);
  h.push(2, 77);
  EXPECT_FALSE(h.empty());
  EXPECT_TRUE(h.contains(2));
  EXPECT_EQ(h.key_of(2), 77u);
  const auto [id, key] = h.pop();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(key, 77u);
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(2));
}

TYPED_TEST(IndexedHeapTest, PopsInKeyOrder) {
  TypeParam h(10);
  const Key keys[] = {50, 10, 40, 30, 20, 60, 5, 55, 35, 25};
  for (std::uint32_t i = 0; i < 10; ++i) h.push(i, keys[i]);
  Key prev = 0;
  while (!h.empty()) {
    const auto [id, key] = h.pop();
    EXPECT_EQ(key, keys[id]);
    EXPECT_GE(key, prev);
    prev = key;
  }
}

TYPED_TEST(IndexedHeapTest, PeekDoesNotRemove) {
  TypeParam h(4);
  h.push(1, 9);
  h.push(3, 4);
  EXPECT_EQ(h.peek().first, 3u);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.pop().first, 3u);
}

TYPED_TEST(IndexedHeapTest, InsertOrAdjustInsertsWhenAbsent) {
  TypeParam h(4);
  EXPECT_TRUE(h.insert_or_adjust(0, 10));
  EXPECT_TRUE(h.contains(0));
  EXPECT_EQ(h.key_of(0), 10u);
}

TYPED_TEST(IndexedHeapTest, InsertOrAdjustLowersButNeverRaises) {
  TypeParam h(4);
  h.push(0, 10);
  EXPECT_FALSE(h.insert_or_adjust(0, 15));  // raise rejected
  EXPECT_EQ(h.key_of(0), 10u);
  EXPECT_TRUE(h.insert_or_adjust(0, 5));
  EXPECT_EQ(h.key_of(0), 5u);
}

TYPED_TEST(IndexedHeapTest, DecreaseKeyReordersHeap) {
  TypeParam h(4);
  h.push(0, 100);
  h.push(1, 50);
  h.push(2, 75);
  h.insert_or_adjust(0, 1);  // 0 jumps to the front
  EXPECT_EQ(h.pop().first, 0u);
  EXPECT_EQ(h.pop().first, 1u);
  EXPECT_EQ(h.pop().first, 2u);
}

TYPED_TEST(IndexedHeapTest, ClearEmptiesAndAllowsReuse) {
  TypeParam h(8);
  for (std::uint32_t i = 0; i < 8; ++i) h.push(i, 100 - i);
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_FALSE(h.contains(0));
  h.push(0, 3);
  EXPECT_EQ(h.pop().first, 0u);
}

TYPED_TEST(IndexedHeapTest, StatsCountOperations) {
  TypeParam h(8);
  h.push(0, 10);
  h.push(1, 20);
  h.insert_or_adjust(1, 5);
  h.pop();
  EXPECT_EQ(h.stats().pushes, 2u);
  EXPECT_EQ(h.stats().adjusts, 1u);
  EXPECT_EQ(h.stats().pops, 1u);
  h.reset_stats();
  EXPECT_EQ(h.stats().pushes, 0u);
}

TEST(BinaryHeapErase, RemovesArbitraryResidents) {
  BinaryHeap<Key> h(8);
  for (std::uint32_t i = 0; i < 8; ++i) h.push(i, 10 * (i + 1));
  h.erase(0);  // the minimum
  h.erase(7);  // the maximum
  h.erase(3);  // a middle element
  EXPECT_EQ(h.size(), 5u);
  EXPECT_FALSE(h.contains(0));
  EXPECT_FALSE(h.contains(3));
  EXPECT_FALSE(h.contains(7));
  // Remaining pops stay ordered and complete.
  Key prev = 0;
  std::size_t popped = 0;
  while (!h.empty()) {
    const auto [id, key] = h.pop();
    EXPECT_NE(id, 0u);
    EXPECT_NE(id, 3u);
    EXPECT_NE(id, 7u);
    EXPECT_GE(key, prev);
    prev = key;
    ++popped;
  }
  EXPECT_EQ(popped, 5u);
}

TEST(BinaryHeapErase, EraseThenReinsert) {
  BinaryHeap<Key> h(4);
  h.push(2, 50);
  h.erase(2);
  EXPECT_TRUE(h.empty());
  h.push(2, 7);
  EXPECT_EQ(h.pop(), (std::pair<std::uint32_t, Key>{2, 7}));
}

// Randomized differential test against a std::map-based reference.
TYPED_TEST(IndexedHeapTest, RandomizedOracle) {
  constexpr std::size_t kIds = 200;
  TypeParam h(kIds);
  std::map<std::uint32_t, Key> model;  // id -> key
  Xoshiro256 rng(12345);

  for (int step = 0; step < 20000; ++step) {
    const auto op = rng.next_below(100);
    if (op < 55) {
      const auto id = static_cast<std::uint32_t>(rng.next_below(kIds));
      const Key key = rng.next_below(1u << 20);
      const auto it = model.find(id);
      const bool expect_change = (it == model.end()) || key < it->second;
      EXPECT_EQ(h.insert_or_adjust(id, key), expect_change);
      if (expect_change) model[id] = key;
    } else if (!model.empty()) {
      // Reference minimum: smallest (key, any id).  Heaps may break key
      // ties differently, so only assert the popped KEY matches the model
      // minimum and the id's model key equals it.
      Key best = ~Key{0};
      for (const auto& [id, key] : model) best = std::min(best, key);
      const auto [id, key] = h.pop();
      EXPECT_EQ(key, best);
      ASSERT_TRUE(model.count(id));
      EXPECT_EQ(model[id], key);
      model.erase(id);
    }
    ASSERT_EQ(h.size(), model.size());
  }
}

// ---------------------------------------------------------------- lazy

TEST(LazyHeap, AllowsDuplicateIds) {
  LazyHeap<Key> h;
  h.push(1, 30);
  h.push(1, 10);
  h.push(1, 20);
  EXPECT_EQ(h.size(), 3u);
  EXPECT_EQ(h.pop(), (std::pair<std::uint32_t, Key>{1, 10}));
  EXPECT_EQ(h.pop(), (std::pair<std::uint32_t, Key>{1, 20}));
  EXPECT_EQ(h.pop(), (std::pair<std::uint32_t, Key>{1, 30}));
}

TEST(LazyHeap, PopValidSkipsStale) {
  LazyHeap<Key> h;
  h.push(1, 10);
  h.push(2, 20);
  h.push(1, 15);
  std::vector<bool> alive{true, true, true};
  auto first = h.pop_valid([&](std::uint32_t id) { return alive[id]; });
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->first, 1u);
  alive[1] = false;  // 1's duplicate at key 15 is now stale
  auto second = h.pop_valid([&](std::uint32_t id) { return alive[id]; });
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->first, 2u);
  EXPECT_FALSE(
      h.pop_valid([&](std::uint32_t id) { return alive[id]; }).has_value());
}

TEST(LazyHeap, RandomizedPopOrder) {
  LazyHeap<Key> h;
  Xoshiro256 rng(7);
  std::vector<Key> keys;
  for (int i = 0; i < 5000; ++i) {
    const Key k = rng.next_below(1u << 30);
    keys.push_back(k);
    h.push(static_cast<std::uint32_t>(i % 100), k);
  }
  std::sort(keys.begin(), keys.end());
  for (const Key expected : keys) {
    EXPECT_EQ(h.pop().second, expected);
  }
  EXPECT_TRUE(h.empty());
}

}  // namespace
}  // namespace llpmst
