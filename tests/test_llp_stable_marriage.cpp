// LLP stable marriage vs the classic Gale-Shapley oracle.
#include <gtest/gtest.h>

#include "llp/llp_stable_marriage.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

class LlpMarriage : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, LlpMarriage, testing::Values(1, 2, 4));

TEST_P(LlpMarriage, MatchesGaleShapleyOnRandomInstances) {
  // The man-optimal stable matching is unique, so LLP and GS must agree
  // exactly (not just both be stable).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const MarriageInstance inst = random_marriage_instance(60, seed);
    const MarriageResult llp = llp_stable_marriage(inst, pool_);
    EXPECT_TRUE(llp.llp.converged);
    EXPECT_EQ(llp.wife, gale_shapley(inst)) << "seed " << seed;
    EXPECT_TRUE(is_stable_matching(inst, llp.wife)) << "seed " << seed;
  }
}

TEST_P(LlpMarriage, SingleCouple) {
  const MarriageInstance inst = random_marriage_instance(1, 3);
  const MarriageResult r = llp_stable_marriage(inst, pool_);
  EXPECT_EQ(r.wife, (std::vector<std::uint32_t>{0}));
}

TEST_P(LlpMarriage, AlignedPreferencesMatchImmediately) {
  // Everyone's first choice is distinct: man i loves woman i, woman i
  // ranks man i first.  Zero rejections — one sweep settles it.
  MarriageInstance inst;
  inst.n = 8;
  inst.men_pref.resize(8);
  inst.women_rank.resize(8);
  for (std::uint32_t m = 0; m < 8; ++m) {
    for (std::uint32_t k = 0; k < 8; ++k) {
      inst.men_pref[m].push_back((m + k) % 8);
    }
  }
  for (std::uint32_t w = 0; w < 8; ++w) {
    // Woman w ranks man w first; the others in rotated order after.
    inst.women_rank[w].resize(8);
    std::uint32_t rank = 1;
    inst.women_rank[w][w] = 0;
    for (std::uint32_t d = 1; d < 8; ++d) {
      inst.women_rank[w][(w + d) % 8] = rank++;
    }
  }
  const MarriageResult r = llp_stable_marriage(inst, pool_);
  for (std::uint32_t m = 0; m < 8; ++m) EXPECT_EQ(r.wife[m], m);
  EXPECT_EQ(r.llp.advances, 0u);
  EXPECT_TRUE(is_stable_matching(inst, r.wife));
}

TEST_P(LlpMarriage, AdversarialAllSamePreferences) {
  // All men share one preference order; all women share one ranking.
  // Forces the maximum chain of rejections (O(n^2) proposals).
  const std::uint32_t n = 24;
  MarriageInstance inst;
  inst.n = n;
  inst.men_pref.assign(n, {});
  inst.women_rank.assign(n, {});
  for (std::uint32_t m = 0; m < n; ++m) {
    for (std::uint32_t w = 0; w < n; ++w) inst.men_pref[m].push_back(w);
  }
  for (std::uint32_t w = 0; w < n; ++w) {
    inst.women_rank[w].resize(n);
    for (std::uint32_t m = 0; m < n; ++m) inst.women_rank[w][m] = m;
  }
  const MarriageResult r = llp_stable_marriage(inst, pool_);
  // Man-optimal here: man m gets woman m (best man takes the best woman...).
  for (std::uint32_t m = 0; m < n; ++m) EXPECT_EQ(r.wife[m], m);
  EXPECT_EQ(r.wife, gale_shapley(inst));
}

TEST(MarriageHelpers, StabilityCheckerDetectsBlockingPair) {
  const MarriageInstance inst = random_marriage_instance(20, 7);
  std::vector<std::uint32_t> wife = gale_shapley(inst);
  ASSERT_TRUE(is_stable_matching(inst, wife));
  // Swap two wives: almost surely unstable (and if it happens to remain a
  // matching it is at least still perfect — assert the checker notices the
  // GS result was man-optimal by checking the swap differs).
  std::swap(wife[0], wife[1]);
  EXPECT_FALSE(is_stable_matching(inst, wife) &&
               wife == gale_shapley(inst));
}

TEST(MarriageHelpers, RejectsImperfectMatching) {
  const MarriageInstance inst = random_marriage_instance(5, 1);
  std::vector<std::uint32_t> wife = gale_shapley(inst);
  wife[2] = wife[3];  // duplicate assignment
  EXPECT_FALSE(is_stable_matching(inst, wife));
  wife.pop_back();  // wrong size
  EXPECT_FALSE(is_stable_matching(inst, wife));
}

TEST(MarriageHelpers, RandomInstanceDeterministic) {
  const MarriageInstance a = random_marriage_instance(10, 42);
  const MarriageInstance b = random_marriage_instance(10, 42);
  EXPECT_EQ(a.men_pref, b.men_pref);
  EXPECT_EQ(a.women_rank, b.women_rank);
}

}  // namespace
}  // namespace llpmst
