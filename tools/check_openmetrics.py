#!/usr/bin/env python3
"""Lint the OpenMetrics text exposition written by `mst_tool --stats-out`.

    tools/check_openmetrics.py stats.prom [...]

Checks the subset of the OpenMetrics spec the emitter
(src/obs/exposition.cpp) promises:

  * the document ends with a single "# EOF" line (nothing after it);
  * every sample line parses as  name[{labels}] value  with a valid metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite number value;
  * every sample belongs to a family declared by a preceding "# TYPE"
    line, and no family is declared twice;
  * counter samples use the family name + "_total" suffix; gauge samples
    use the family name as-is;
  * label values are well-formed (balanced quotes, no raw newlines);
  * "llpmst_build_info" is present with an obs="0"|"1" label — the marker
    scrapers use to tell the build flavour apart.

Exits non-zero listing every violation.  Standard library only.
"""
import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name, optional {labels}, whitespace, value (the emitter writes no
# timestamps or exemplars).
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)$")
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\["\\n])*"$')


def check_file(path, errors):
    def err(lineno, msg):
        errors.append(f"{path}:{lineno}: {msg}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        errors.append(f"{path}: unreadable: {e}")
        return

    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        err(len(lines), 'document does not end with "# EOF"')
    if not text.endswith("\n"):
        err(len(lines), "missing trailing newline")

    families = {}  # family name -> type
    seen_build_info = False
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                err(lineno, '"# EOF" is not the last line')
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram", "summary",
                                                   "info", "unknown"):
                err(lineno, f"malformed TYPE line: {line!r}")
                continue
            family = parts[2]
            if not NAME_RE.fullmatch(family):
                err(lineno, f"invalid family name {family!r}")
            if family in families:
                err(lineno, f"family {family!r} declared twice")
            families[family] = parts[3]
            continue
        if line.startswith("#") or not line.strip():
            continue  # other comments are permitted

        m = SAMPLE_RE.match(line)
        if not m:
            err(lineno, f"unparseable sample line: {line!r}")
            continue
        name, labels, value = m.group("name"), m.group("labels"), \
            m.group("value")
        try:
            v = float(value)
        except ValueError:
            err(lineno, f"sample value {value!r} is not a number")
            continue
        if v != v or v in (float("inf"), float("-inf")):
            err(lineno, f"sample value {value!r} is not finite")
        if labels:
            for pair in split_labels(labels[1:-1]):
                if not LABEL_RE.fullmatch(pair):
                    err(lineno, f"malformed label {pair!r}")

        family = None
        if name in families:
            family = name
        elif name.endswith("_total") and name[:-len("_total")] in families:
            family = name[:-len("_total")]
        if family is None:
            err(lineno, f"sample {name!r} has no preceding TYPE declaration")
            continue
        ftype = families[family]
        if ftype == "counter" and not name.endswith("_total"):
            err(lineno, f"counter sample {name!r} lacks the _total suffix")
        if ftype == "gauge" and name.endswith("_total") and name != family:
            err(lineno, f"gauge sample {name!r} should not use _total")
        if family == "llpmst_build_info":
            if labels and re.search(r'obs="[01]"', labels):
                seen_build_info = True
            else:
                err(lineno, 'llpmst_build_info lacks an obs="0|1" label')

    if not seen_build_info:
        errors.append(f'{path}: no llpmst_build_info{{obs="0|1"}} sample')


def split_labels(body):
    """Splits 'a="x",b="y"' into pairs, honouring escaped quotes."""
    pairs, cur, in_quotes, escaped = [], "", False, False
    for ch in body:
        if escaped:
            cur += ch
            escaped = False
            continue
        if ch == "\\" and in_quotes:
            cur += ch
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            cur += ch
            continue
        if ch == "," and not in_quotes:
            pairs.append(cur)
            cur = ""
            continue
        cur += ch
    if cur:
        pairs.append(cur)
    return pairs


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in sys.argv[1:]:
        before = len(errors)
        check_file(path, errors)
        if len(errors) == before:
            print(f"{path}: ok")
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
