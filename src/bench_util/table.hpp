// Aligned-table and CSV rendering for the benchmark binaries.  Every bench
// prints the paper's rows as a human-readable table by default and as CSV
// with --csv (for re-plotting the figures).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace llpmst {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with padded columns, a header underline, and 2-space gutters.
  [[nodiscard]] std::string to_string() const;

  /// Renders as CSV (RFC-4180-style quoting for cells containing commas).
  [[nodiscard]] std::string to_csv() const;

  /// Prints to stdout in the chosen format.
  void print(bool csv) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
[[nodiscard]] std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace llpmst
