// Lazy-heap Prim: the variant the paper's Section IV complexity analysis
// describes ("instead of adjusting the key ... simply insert the vertex in
// the heap"; stale pops are skipped).  O(m) heap entries, O(m log m) time.
#pragma once

#include "mst/mst_result.hpp"

namespace llpmst {

[[nodiscard]] MstResult prim_lazy(const CsrGraph& g, VertexId root = 0);

}  // namespace llpmst
