// Data-parallel loop primitives over a ThreadPool.
//
//   parallel_for(pool, 0, n, [&](std::size_t i) { ... });          // dynamic
//   parallel_for_static(pool, 0, n, [&](std::size_t i) { ... });   // static
//   parallel_blocks(pool, 0, n, [&](size_t lo, size_t hi, size_t w) {...});
//   parallel_for_adaptive(pool, 0, n, grain_feedback, body);       // adaptive
//
// The dynamic variant hands out fixed-size chunks from a shared atomic
// counter — good for irregular per-element cost (graph loops whose cost is a
// vertex's degree).  The static variant pre-splits the range evenly — good
// for uniform cost, no atomic traffic.  parallel_blocks exposes the chunk
// bounds and worker id so callers can keep per-thread accumulators.
// The adaptive variant sizes its chunks from a GrainFeedback the caller owns:
// measured per-element cost feeds back into the next invocation's grain, and
// loops too cheap to amortize a team dispatch run inline (see GrainFeedback).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/sched_events.hpp"
#include "parallel/executor.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"
#include "support/sim_hooks.hpp"
#include "support/virtual_time.hpp"

namespace llpmst {

namespace detail {
/// Chunk size for dynamic scheduling: big enough to amortize the atomic,
/// small enough to balance skewed work.
inline constexpr std::size_t kDynamicChunk = 1024;

/// Clock behind GrainFeedback measurements.  Routed through vtime so the
/// deterministic simulator controls it — grain decisions feed back into
/// chunk sizes, which are schedule-affecting, so they must not read real
/// time under simulation.
inline std::uint64_t grain_clock_ns() { return vtime::steady_now_ns(); }
}  // namespace detail

/// Per-call-site grain controller for parallel_for_adaptive.
///
/// The caller keeps one instance per loop site (e.g. a member of a scratch
/// struct reused across Boruvka rounds).  Each invocation times the whole
/// loop and folds ns-per-element into an EWMA; the next invocation derives
/// its chunk size from that cost, the range size, and the thread count:
///
///   * chunk ~ kTargetChunkNs / ns_per_item  — each dequeue amortizes the
///     shared-counter atomic AND is small enough to rebalance skew;
///   * chunk <= n / (threads * kMinSlicesPerThread) — every worker gets
///     several slices even on small ranges;
///   * loops whose PREDICTED total cost is below kSerialCutoffNs run inline:
///     at that size a team wake/join costs more than the loop itself.
///
/// Not thread-safe: one loop site is driven by one submitting thread at a
/// time (run_team is not reentrant anyway).
class GrainFeedback {
 public:
  /// EWMA of per-element cost in ns (0 = no measurement yet).
  [[nodiscard]] double ns_per_item() const { return ns_per_item_; }

  /// Chunk size to use for a range of n elements on t workers.
  [[nodiscard]] std::size_t grain(std::size_t n, std::size_t t) const {
    std::size_t g;
    if (ns_per_item_ <= 0.0) {
      // No feedback yet: split by range shape alone.
      g = n / (t * kMinSlicesPerThread);
    } else {
      g = static_cast<std::size_t>(kTargetChunkNs / ns_per_item_);
      const std::size_t cap = n / (t * kMinSlicesPerThread);
      if (g > cap) g = cap;
    }
    if (g < kMinGrain) g = kMinGrain;
    if (g > kMaxGrain) g = kMaxGrain;
    return g;
  }

  /// True when the predicted total cost is too small to win from a team
  /// dispatch.  Unknown cost predicts optimistically (parallel) so the
  /// first invocation gathers a real measurement.
  [[nodiscard]] bool prefers_serial(std::size_t n) const {
    return ns_per_item_ > 0.0 &&
           ns_per_item_ * static_cast<double>(n) < kSerialCutoffNs;
  }

  void update(std::size_t n, double elapsed_ns) {
    if (n == 0) return;
    const double cost = elapsed_ns / static_cast<double>(n);
    // EWMA, alpha 0.5: reacts within a round or two but rides out one
    // noisy measurement (context switch, page faults on first touch).
    ns_per_item_ = ns_per_item_ <= 0.0 ? cost : 0.5 * ns_per_item_ + 0.5 * cost;
  }

 private:
  static constexpr double kTargetChunkNs = 20000.0;   // ~20us per dequeue
  static constexpr double kSerialCutoffNs = 30000.0;  // ~2 team dispatches
  static constexpr std::size_t kMinSlicesPerThread = 4;
  static constexpr std::size_t kMinGrain = 128;
  static constexpr std::size_t kMaxGrain = 1 << 16;

  double ns_per_item_ = 0.0;
};

/// Dynamic (chunk-stealing) parallel for over [begin, end).
template <typename Body>
void parallel_for(Executor& pool, std::size_t begin, std::size_t end,
                  Body&& body,
                  std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{begin};
  pool.run_team([&](std::size_t) {
    for (;;) {
      // Preemption point: each chunk grab is a spot where the OS scheduler
      // could interleave workers differently — under simulation the
      // deterministic scheduler decides here instead.
      simhook::preempt();
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
}

/// Adaptive-grain dynamic parallel for: chunk size (and the serial-inline
/// decision) come from `feedback`, which this call then updates with the
/// measured cost.  Use one GrainFeedback per loop site; loops that repeat
/// with similar per-element cost (Boruvka rounds) converge on a grain that
/// amortizes scheduling without starving load balance.
template <typename Body>
void parallel_for_adaptive(Executor& pool, std::size_t begin,
                           std::size_t end, GrainFeedback& feedback,
                           Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::uint64_t t0 = detail::grain_clock_ns();
  if (pool.num_threads() == 1 || feedback.prefers_serial(n)) {
    if (obs::sched_collecting()) {
      obs::sched_record(obs::SchedEventKind::kGrainSerial, obs::now_us(), n);
    }
    for (std::size_t i = begin; i < end; ++i) body(i);
  } else {
    const std::size_t g = feedback.grain(n, pool.num_threads());
    if (obs::sched_collecting()) {
      obs::sched_record(obs::SchedEventKind::kGrain, obs::now_us(), g);
    }
    parallel_for(pool, begin, end, body, g);
  }
  feedback.update(n, static_cast<double>(detail::grain_clock_ns() - t0));
}

/// Dynamic parallel for that polls a CancelToken between chunks: when the
/// token triggers, workers stop taking new chunks (in-flight chunks finish).
/// Returns true iff the whole range was processed.  The poll costs one
/// relaxed load (plus a clock read while a deadline is armed) per `chunk`
/// elements — this is the cancellation granularity a watchdog can rely on,
/// as long as individual loop bodies are short.
template <typename Body>
bool parallel_for_interruptible(Executor& pool, std::size_t begin,
                                std::size_t end, const CancelToken& cancel,
                                Body&& body,
                                std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return true;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      if (cancel.cancelled()) return false;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
    return true;
  }
  std::atomic<std::size_t> next{begin};
  std::atomic<bool> stopped{false};
  pool.run_team([&](std::size_t) {
    for (;;) {
      simhook::preempt();
      if (cancel.cancelled()) {
        stopped.store(true, std::memory_order_relaxed);
        break;
      }
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  });
  return !stopped.load(std::memory_order_relaxed);
}

/// Static (even pre-split) parallel for over [begin, end).
template <typename Body>
void parallel_for_static(Executor& pool, std::size_t begin, std::size_t end,
                         Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 2 * t) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  pool.run_team([&](std::size_t w) {
    // One preemption point per worker: static splits have no load-balance
    // races, but the order in which block effects become visible is still a
    // schedule degree of freedom worth exploring.
    simhook::preempt();
    const std::size_t lo = begin + n * w / t;
    const std::size_t hi = begin + n * (w + 1) / t;
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

/// Dynamic parallel for whose body also receives the worker id — for loops
/// that feed per-worker buffers (ConcurrentBag) while still load-balancing
/// skewed per-element work (e.g. high-degree frontier vertices).
template <typename Body>
void parallel_for_worker(Executor& pool, std::size_t begin, std::size_t end,
                         Body&& body,
                         std::size_t chunk = detail::kDynamicChunk) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t i = begin; i < end; ++i) body(i, std::size_t{0});
    return;
  }
  std::atomic<std::size_t> next{begin};
  pool.run_team([&](std::size_t w) {
    for (;;) {
      simhook::preempt();
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      for (std::size_t i = lo; i < hi; ++i) body(i, w);
    }
  });
}

/// Dynamic parallel for over fixed-size chunks, exposing the chunk bounds
/// and worker id: body(lo, hi, worker).  Chunk boundaries are deterministic
/// (lo is always a multiple of `chunk` from begin), so callers can index
/// per-chunk state as (lo - begin) / chunk — the basis of the engine's
/// chunked stream compaction — while per-worker timing enables utilization
/// probes.  Workers race only for WHICH chunks they take, never for bounds.
template <typename ChunkBody>
void parallel_chunks(Executor& pool, std::size_t begin, std::size_t end,
                     std::size_t chunk, ChunkBody&& body) {
  if (begin >= end) return;
  if (chunk == 0) chunk = detail::kDynamicChunk;
  const std::size_t n = end - begin;
  if (pool.num_threads() == 1 || n <= chunk) {
    for (std::size_t lo = begin; lo < end; lo += chunk) {
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      body(lo, hi, std::size_t{0});
    }
    return;
  }
  std::atomic<std::size_t> next{begin};
  pool.run_team([&](std::size_t w) {
    for (;;) {
      simhook::preempt();
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) break;
      const std::size_t hi = lo + chunk < end ? lo + chunk : end;
      body(lo, hi, w);
    }
  });
}

/// Runs body(lo, hi, worker_id) on per-worker contiguous blocks covering
/// [begin, end).  Workers with an empty block still get called with lo==hi so
/// per-worker state can be initialized unconditionally.
template <typename BlockBody>
void parallel_blocks(Executor& pool, std::size_t begin, std::size_t end,
                     BlockBody&& body) {
  const std::size_t n = end >= begin ? end - begin : 0;
  const std::size_t t = pool.num_threads();
  if (t == 1) {
    body(begin, end >= begin ? end : begin, std::size_t{0});
    return;
  }
  pool.run_team([&](std::size_t w) {
    simhook::preempt();
    const std::size_t lo = begin + n * w / t;
    const std::size_t hi = begin + n * (w + 1) / t;
    body(lo, hi, w);
  });
}

}  // namespace llpmst
