#include "graph/algorithms/degree_stats.hpp"

#include <algorithm>
#include <cstdio>

#include "graph/algorithms/connected_components.hpp"

namespace llpmst {

GraphStats compute_stats(const CsrGraph& g) {
  GraphStats s;
  s.num_vertices = g.num_vertices();
  s.num_edges = g.num_edges();
  if (s.num_vertices == 0) return s;

  s.min_degree = g.degree(0);
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    const std::size_t d = g.degree(static_cast<VertexId>(v));
    s.min_degree = std::min(s.min_degree, d);
    s.max_degree = std::max(s.max_degree, d);
  }
  s.avg_degree =
      2.0 * static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);
  s.edges_per_vertex =
      static_cast<double>(s.num_edges) / static_cast<double>(s.num_vertices);

  if (!g.edges().empty()) {
    s.min_weight = g.edges().front().w;
    s.max_weight = s.min_weight;
    for (const WeightedEdge& e : g.edges()) {
      s.min_weight = std::min(s.min_weight, e.w);
      s.max_weight = std::max(s.max_weight, e.w);
    }
  }

  EdgeList list(g.num_vertices(),
                {g.edges().begin(), g.edges().end()});
  s.num_components = connected_components(list).num_components;
  return s;
}

std::string describe(const GraphStats& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "n=%zu m=%zu m/n=%.2f deg[min=%zu avg=%.2f max=%zu] "
                "components=%zu w=[%u,%u]",
                s.num_vertices, s.num_edges, s.edges_per_vertex, s.min_degree,
                s.avg_degree, s.max_degree, s.num_components, s.min_weight,
                s.max_weight);
  return buf;
}

}  // namespace llpmst
