#include "sim/schedule_trace.hpp"

#include <charconv>
#include <cstdio>
#include <string_view>
#include <utility>

namespace llpmst::sim {

namespace {

constexpr const char* kMagic = "llpsim1";

bool parse_u64(std::string_view s, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

bool parse_hex(std::string_view s, std::uint64_t& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out, 16);
  return ec == std::errc() && ptr == s.data() + s.size();
}

}  // namespace

std::string ScheduleTrace::encode() const {
  std::string out(kMagic);
  out += ':';
  out += std::to_string(seed);
  out += ':';
  out += std::to_string(workers);
  out += ':';
  // RLE over pick runs: "<id-hex>x<count-hex>", '.'-joined.  Schedules are
  // long stretches of the same winner (a worker draining chunks), so runs
  // compress well; hex keeps multi-digit worker ids unambiguous around 'x'.
  for (std::size_t i = 0; i < picks.size();) {
    std::size_t j = i + 1;
    while (j < picks.size() && picks[j] == picks[i]) ++j;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%s%xx%zx", i == 0 ? "" : ".",
                  static_cast<unsigned>(picks[i]), j - i);
    out += buf;
    i = j;
  }
  return out;
}

bool ScheduleTrace::decode(const std::string& text) {
  std::string_view rest(text);
  const auto take = [&rest](char sep) -> std::string_view {
    const auto pos = rest.find(sep);
    std::string_view head = rest.substr(0, pos);
    rest = pos == std::string_view::npos ? std::string_view{}
                                         : rest.substr(pos + 1);
    return head;
  };
  if (take(':') != kMagic) return false;
  std::uint64_t s = 0;
  std::uint64_t w = 0;
  if (!parse_u64(take(':'), s) || !parse_u64(take(':'), w) || w == 0 ||
      w > 255) {
    return false;
  }
  std::vector<std::uint8_t> decoded;
  while (!rest.empty()) {
    std::string_view run = take('.');
    const auto x = run.find('x');
    if (x == std::string_view::npos) return false;
    std::uint64_t id = 0;
    std::uint64_t count = 0;
    if (!parse_hex(run.substr(0, x), id) ||
        !parse_hex(run.substr(x + 1), count) || id >= w || count == 0 ||
        count > (1u << 28)) {
      return false;
    }
    decoded.insert(decoded.end(), count, static_cast<std::uint8_t>(id));
  }
  seed = s;
  workers = static_cast<std::uint32_t>(w);
  picks = std::move(decoded);
  return true;
}

ScheduleTrace minimize_prefix(
    const ScheduleTrace& failing,
    const std::function<bool(const ScheduleTrace&)>& still_fails) {
  const auto prefix = [&failing](std::size_t len) {
    ScheduleTrace t;
    t.seed = failing.seed;
    t.workers = failing.workers;
    t.picks.assign(failing.picks.begin(),
                   failing.picks.begin() + static_cast<std::ptrdiff_t>(len));
    return t;
  };
  const std::size_t n = failing.picks.size();

  // Exponential probe: find the first power-of-two-ish length that fails.
  std::size_t hi = 0;  // shortest KNOWN-failing length
  std::size_t lo = 0;  // longest known-passing length (exclusive bound)
  bool found = false;
  for (std::size_t len = 0; !found; len = len == 0 ? 1 : len * 2) {
    if (len >= n) {
      hi = n;  // the full trace fails by precondition
      found = true;
      break;
    }
    if (still_fails(prefix(len))) {
      hi = len;
      found = true;
    } else {
      lo = len + 1;
    }
  }
  // Binary search in [lo, hi] for the shortest failing prefix.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (still_fails(prefix(mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return prefix(hi);
}

}  // namespace llpmst::sim
