// Deterministic, seedable pseudo-random number generation.
//
// Everything in this library that involves randomness (graph generators,
// property tests, workload shuffles) goes through these generators so that a
// (seed, parameters) pair always reproduces the same graph on every platform.
// std::mt19937 + std::uniform_int_distribution are *not* used because the
// distributions are implementation-defined; these generators are fully
// specified.
#pragma once

#include <cstdint>

#include "support/assert.hpp"

namespace llpmst {

/// SplitMix64: tiny, fast, passes BigCrush; used to seed Xoshiro and for
/// cheap per-index hashing (stateless `mix`).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless mix of a single value — usable as a hash.
  static std::uint64_t mix(std::uint64_t x) {
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the library's general-purpose PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased
  /// enough for graph generation; exact rejection is not needed here).
  std::uint64_t next_below(std::uint64_t bound) {
    LLPMST_ASSERT(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    LLPMST_ASSERT(lo <= hi);
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace llpmst
