// Parallel Kruskal: the edge sort (the dominant cost) runs on the thread
// pool; the union-find scan stays sequential (it is inherently ordered).
// A useful additional baseline: it shows how far "parallelize the easy
// 90%" gets compared to the restructured LLP algorithms.
#pragma once

#include "mst/mst_result.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {

[[nodiscard]] MstResult kruskal_parallel(const CsrGraph& g, ThreadPool& pool);

}  // namespace llpmst
