// Indexed d-ary min-heap with decrease-key.
//
// Same contract as BinaryHeap but with a compile-time arity D.  Wider nodes
// trade more comparisons per sift-down for a shallower tree and fewer cache
// misses on sift-up — the classical tuning knob for Prim/Dijkstra on graphs
// where decrease-keys dominate.  Used by the heap-choice ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "ds/binary_heap.hpp"  // for HeapStats
#include "support/assert.hpp"

namespace llpmst {

template <typename Key, std::size_t D = 4, typename Id = std::uint32_t>
class DaryHeap {
  static_assert(D >= 2, "arity must be at least 2");

 public:
  explicit DaryHeap(std::size_t capacity) : pos_(capacity, kAbsent) {
    heap_.reserve(capacity);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] bool contains(Id id) const {
    LLPMST_ASSERT(id < pos_.size());
    return pos_[id] != kAbsent;
  }
  [[nodiscard]] Key key_of(Id id) const {
    LLPMST_ASSERT(contains(id));
    return heap_[pos_[id]].key;
  }
  [[nodiscard]] std::pair<Id, Key> peek() const {
    LLPMST_ASSERT(!empty());
    return {heap_[0].id, heap_[0].key};
  }

  void push(Id id, Key key) {
    LLPMST_ASSERT(!contains(id));
    pos_[id] = heap_.size();
    heap_.push_back({key, id});
    ++stats_.pushes;
    sift_up(heap_.size() - 1);
  }

  bool insert_or_adjust(Id id, Key key) {
    LLPMST_ASSERT(id < pos_.size());
    if (pos_[id] == kAbsent) {
      push(id, key);
      return true;
    }
    std::size_t i = pos_[id];
    if (key < heap_[i].key) {
      heap_[i].key = key;
      ++stats_.adjusts;
      sift_up(i);
      return true;
    }
    return false;
  }

  std::pair<Id, Key> pop() {
    LLPMST_ASSERT(!empty());
    Entry top = heap_[0];
    ++stats_.pops;
    pos_[top.id] = kAbsent;
    Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last.id] = 0;
      sift_down(0);
    }
    return {top.id, top.key};
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HeapStats{}; }

 private:
  struct Entry {
    Key key;
    Id id;
  };
  static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      std::size_t p = (i - 1) / D;
      if (!(e.key < heap_[p].key)) break;
      heap_[i] = heap_[p];
      pos_[heap_[i].id] = i;
      i = p;
      ++stats_.sift_steps;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = D * i + 1;
      if (first >= n) break;
      const std::size_t last = first + D < n ? first + D : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (!(heap_[best].key < e.key)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = i;
      i = best;
      ++stats_.sift_steps;
    }
    heap_[i] = e;
    pos_[e.id] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::size_t> pos_;
  HeapStats stats_;
};

}  // namespace llpmst
