#!/usr/bin/env bash
# Regenerates every paper figure/table, writing both the human-readable log
# and per-figure CSVs (for re-plotting) under results/.
#
#   tools/run_benchmarks.sh [build-dir] [results-dir]
#
# Any failing benchmark aborts the whole run with a non-zero exit (set -e +
# pipefail, so a crash upstream of `tee` is not swallowed) and names the
# command that failed — partial results/ contents are left in place for
# inspection.
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-results}"

trap 'echo "error: benchmark run failed at: $BASH_COMMAND" >&2' ERR

if [[ ! -d "$BUILD/bench" ]]; then
  echo "error: $BUILD/bench not found — build with -DLLPMST_BUILD_BENCHMARKS=ON first" >&2
  exit 1
fi
mkdir -p "$OUT"

run() {
  local name="$1"; shift
  echo "=== $name ==="
  # One invocation per bench: the human-readable table goes to the log via
  # tee, --csv-out writes the re-plotting CSV, --metrics-json the run
  # report (counters, phase timings) and --bench-json the structured
  # llpmst-bench datapoints that tools/bench_compare.py consumes.
  "$BUILD/bench/$name" "$@" \
    --metrics-json "$OUT/$name.metrics.json" \
    --csv-out "$OUT/$name.csv" \
    --bench-json "$OUT/$name.bench.jsonl" \
    | tee "$OUT/$name.txt"
}

run bench_table1_datasets
run bench_fig2_single_thread
run bench_fig3_scaling
run bench_fig4_graph_types
run bench_size_sweep
run bench_ablation_llp_prim
run bench_ablation_llp_boruvka
run bench_heap_choice
run bench_sequential_baselines
run bench_llp_transfer

"$BUILD/bench/micro_ds"       | tee "$OUT/micro_ds.txt"
"$BUILD/bench/micro_parallel" | tee "$OUT/micro_parallel.txt"

# Every emitted run report and bench record must satisfy the documented
# schemas; a drift here should fail the nightly, not silently break
# downstream plotting or the perf-regression gate.
if command -v python3 > /dev/null; then
  python3 "$(dirname "$0")/check_report_schema.py" "$OUT"/*.metrics.json \
    "$OUT"/*.bench.jsonl
fi

echo "All outputs in $OUT/"
