#include "bench_util/table.hpp"

#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "support/assert.hpp"

namespace llpmst {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LLPMST_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  LLPMST_CHECK_MSG(cells.size() == headers_.size(),
                   "row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) {
        out << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    out << '\n';
  };

  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        out << '"';
        for (char ch : cell) {
          if (ch == '"') out << '"';
          out << ch;
        }
        out << '"';
      } else {
        out << cell;
      }
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(bool csv) const {
  const std::string s = csv ? to_csv() : to_string();
  std::fputs(s.c_str(), stdout);
}

std::string strf(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

}  // namespace llpmst
