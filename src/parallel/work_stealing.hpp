// Work-stealing worklist execution — the Galois-style runtime idiom the
// paper's LLP-Prim implementation sits on: workers process items from their
// own deque, *push new items discovered during processing*, and steal from
// victims when empty; the region ends when every produced item has been
// consumed.
//
//   work_stealing_run<VertexId>(pool, {root}, [&](VertexId v, Ctx& ctx) {
//     ...;
//     ctx.push(discovered);   // feeds the same region
//   });
//
// Design notes:
//   * per-worker deques guarded by small mutexes (owner pops back, thieves
//     pop front under try_lock).  A lock-free Chase-Lev deque would shave
//     constants but not change any benchmark's verdict at this scale, and
//     CP.100 ("don't use lock-free unless you must") argues for the simple
//     correct thing;
//   * termination: a relaxed atomic counter of unconsumed items.  It is
//     incremented before an item becomes visible and decremented after its
//     body returns, so counter==0 really means "nothing pending anywhere";
//   * items must be trivially copyable values (vertex ids, edge ids).
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/sched_events.hpp"
#include "parallel/executor.hpp"
#include "support/assert.hpp"
#include "support/sim_hooks.hpp"

namespace llpmst {

template <typename T>
class WorkStealingContext;

namespace detail {

template <typename T>
struct StealableDeque {
  std::mutex mutex;
  std::deque<T> items;
};

template <typename T>
struct WorkStealingState {
  explicit WorkStealingState(std::size_t workers) : deques(workers) {}
  std::vector<StealableDeque<T>> deques;
  std::atomic<std::size_t> pending{0};
};

}  // namespace detail

/// Handle passed to the body for pushing follow-on work.
template <typename T>
class WorkStealingContext {
 public:
  WorkStealingContext(detail::WorkStealingState<T>& state, std::size_t worker)
      : state_(state), worker_(worker) {}

  /// Schedules an item into the calling worker's deque.
  void push(const T& item) {
    state_.pending.fetch_add(1, std::memory_order_relaxed);
    auto& dq = state_.deques[worker_];
    std::lock_guard lock(dq.mutex);
    dq.items.push_back(item);
  }

  [[nodiscard]] std::size_t worker() const { return worker_; }

 private:
  detail::WorkStealingState<T>& state_;
  std::size_t worker_;
};

/// Processes `initial` and everything pushed during processing; returns when
/// all work is consumed.  `body(item, ctx)` runs concurrently on the team.
/// Exactly-once consumption of every pushed item; NO ordering guarantees
/// (the LLP property is what makes that acceptable for MST).
template <typename T, typename Body>
void work_stealing_run(Executor& pool, const std::vector<T>& initial,
                       Body&& body) {
  const std::size_t workers = pool.num_threads();
  detail::WorkStealingState<T> state(workers);

  // Seed round-robin so the team starts balanced.
  state.pending.store(initial.size(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < initial.size(); ++i) {
    state.deques[i % workers].items.push_back(initial[i]);
  }
  if (initial.empty()) return;

  pool.run_team([&](std::size_t w) {
    WorkStealingContext<T> ctx(state, w);
    std::size_t next_victim = (w + 1) % workers;
    // Scheduler events are batched per idle episode, not per probe: one
    // kIdle span plus one kStealAttempt (value = failed probes) when work
    // is found again, and one kStealSuccess per actual steal — bounded
    // event volume no matter how hot the steal loop spins.
    const bool sched = obs::sched_collecting();
    std::uint64_t idle_start = 0;  // 0 = not in an idle episode
    std::uint64_t failed_probes = 0;
    const auto flush_idle = [&] {
      if (idle_start == 0 && failed_probes == 0) return;
      const std::uint64_t now = obs::now_us();
      if (idle_start != 0) {
        obs::sched_record(obs::SchedEventKind::kIdle, idle_start,
                          now - idle_start);
      }
      if (failed_probes != 0) {
        obs::sched_record(obs::SchedEventKind::kStealAttempt, now,
                          failed_probes);
      }
      idle_start = 0;
      failed_probes = 0;
    };
    for (;;) {
      // Preemption point: between items is where a real scheduler would
      // reorder the race for work — and where the deterministic simulator
      // decides instead.  Must stay OUTSIDE the deque lock scopes below.
      simhook::preempt();
      bool have = false;
      bool stolen = false;
      T item{};

      // Own deque first (LIFO for locality).
      {
        auto& dq = state.deques[w];
        std::lock_guard lock(dq.mutex);
        if (!dq.items.empty()) {
          item = dq.items.back();
          dq.items.pop_back();
          have = true;
        }
      }
      // Steal (FIFO from the victim's front).
      if (!have) {
        for (std::size_t probe = 0; probe < workers && !have; ++probe) {
          auto& dq = state.deques[next_victim];
          next_victim = (next_victim + 1) % workers;
          if (&dq == &state.deques[w]) continue;
          std::unique_lock lock(dq.mutex, std::try_to_lock);
          if (lock.owns_lock() && !dq.items.empty()) {
            item = dq.items.front();
            dq.items.pop_front();
            have = true;
            stolen = true;
          } else if (sched) {
            ++failed_probes;
          }
        }
      }

      if (have) {
        if (sched) {
          flush_idle();
          if (stolen) {
            obs::sched_record(obs::SchedEventKind::kStealSuccess,
                              obs::now_us(), 1);
          }
        }
        body(item, ctx);
        state.pending.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      if (sched && idle_start == 0) idle_start = obs::now_us();
      // Nothing found anywhere: done only if no item is pending (being
      // processed items may still push).
      if (state.pending.load(std::memory_order_acquire) == 0) {
        if (sched) flush_idle();
        return;
      }
      // Someone is still working; back off briefly and retry.  Under
      // simulation the yield must hand the baton back to the scheduler —
      // a real yield would spin forever, since only one virtual worker
      // runs at a time.
      if (simhook::active()) {
        simhook::preempt();
      } else {
        std::this_thread::yield();
      }
    }
  });

  LLPMST_ASSERT(state.pending.load() == 0);
}

namespace detail {
/// A contiguous index range scheduled as one stealable work item.
struct IndexRange {
  std::size_t lo;
  std::size_t hi;
};
}  // namespace detail

/// Index-range parallel for on the work-stealing runtime — the fallback for
/// loops whose per-element cost is too skewed for chunked scheduling (e.g.
/// per-component MWE work where a few giant components dominate a round).
///
/// Lazy binary splitting: the range starts as one block per worker; a worker
/// holding a block larger than 2*grain pushes the far half back onto its own
/// deque (where idle workers steal it) and keeps halving the near half.
/// Busy workers therefore never pay more than the split bookkeeping, while a
/// straggler's remaining work is peeled off in halves by everyone else —
/// finer-grained than fixed chunks exactly when it matters, coarser when it
/// does not.
template <typename Body>
void parallel_for_stealing(Executor& pool, std::size_t begin,
                           std::size_t end, std::size_t grain, Body&& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  if (pool.num_threads() == 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t workers = pool.num_threads();
  std::vector<detail::IndexRange> seeds;
  seeds.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = begin + n * w / workers;
    const std::size_t hi = begin + n * (w + 1) / workers;
    if (lo < hi) seeds.push_back({lo, hi});
  }
  work_stealing_run<detail::IndexRange>(
      pool, seeds,
      [&body, grain](detail::IndexRange r,
                     WorkStealingContext<detail::IndexRange>& ctx) {
        while (r.hi - r.lo > 2 * grain) {
          const std::size_t mid = r.lo + (r.hi - r.lo) / 2;
          ctx.push({mid, r.hi});
          r.hi = mid;
        }
        for (std::size_t i = r.lo; i < r.hi; ++i) body(i);
      });
}

}  // namespace llpmst
