// LLP connected components: min-label propagation with pointer jumping
// expressed directly as predicate detection on the generic engine — the
// second framework-transfer demo (and exactly the machinery inside
// LLP-Boruvka's star contraction, stated standalone).
//
// Lattice: vectors of labels ordered by >= (labels only decrease; the
// "advance" direction of the lattice is downward relabeling, which is an
// order-isomorphic presentation of the ascending formulation).  Predicate:
//     B(G) = forall v:  G[v] == G[G[v]]  and  forall (u,v) in E:
//            G[u] == G[v]
// forbidden(v) holds when v's label exceeds its parent's label or any
// neighbor's label; advance(v) lowers G[v] to the minimum of both.  The
// least fixpoint labels every vertex with the minimum id in its component.
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "llp/llp_solver.hpp"
#include "parallel/executor.hpp"

namespace llpmst {

struct LlpComponentsResult {
  std::vector<VertexId> label;  // min vertex id in the component
  std::size_t num_components = 0;
  LlpStats llp;
};

[[nodiscard]] LlpComponentsResult llp_connected_components(const CsrGraph& g,
                                                           Executor& pool);

}  // namespace llpmst
