// Compact, replayable schedule traces.
//
// Every scheduling decision the SimExecutor takes — "grant the baton to
// worker w" — is appended to a ScheduleTrace.  The trace plus the original
// (seed, workers) pair is a complete recipe for the run: replaying it feeds
// the recorded picks back to the scheduler instead of the PRNG, reproducing
// the interleaving bit for bit.  Traces serialize to a single printable
// token (run-length encoded) so a failing test can embed the exact schedule
// in its failure message, and minimize_prefix() greedily shrinks a failing
// trace to the shortest prefix that still fails — after the prefix the
// scheduler continues with a deterministic round-robin policy, so shorter
// prefixes mean simpler repros.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace llpmst::sim {

struct ScheduleTrace {
  std::uint64_t seed = 0;
  std::uint32_t workers = 0;
  /// Chosen worker id per scheduling decision, in decision order.
  std::vector<std::uint8_t> picks;

  bool operator==(const ScheduleTrace&) const = default;

  /// One printable token: "llpsim1:<seed>:<workers>:<rle picks>", where the
  /// pick string run-length encodes each id as hex ("2x17" = id 2, 17
  /// times; runs joined with '.').
  [[nodiscard]] std::string encode() const;

  /// Inverse of encode(); returns false (leaving *this unchanged) on any
  /// malformed token.
  bool decode(const std::string& text);
};

/// Greedily minimizes a failing trace: finds the shortest prefix of
/// `failing.picks` for which still_fails(prefix-trace) holds, by exponential
/// probing from the front followed by a binary search.  `still_fails` must
/// be deterministic (it re-runs the scenario under replay).  Assumes the
/// full trace fails; returns it unchanged when even the empty prefix fails
/// (the failure is schedule-independent).
[[nodiscard]] ScheduleTrace minimize_prefix(
    const ScheduleTrace& failing,
    const std::function<bool(const ScheduleTrace&)>& still_fails);

}  // namespace llpmst::sim
