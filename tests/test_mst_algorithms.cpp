// Exact MST/MSF behaviour of every algorithm on known graphs, including the
// paper's Fig. 1 worked example.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators/special.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/kruskal.hpp"
#include "mst/parallel_boruvka.hpp"
#include "mst/prim.hpp"
#include "mst/prim_lazy.hpp"
#include "mst/verifier.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::all_msf_algorithms;
using test::csr;

/// Weights of the chosen edges (the paper discusses MSTs by edge weight).
std::multiset<Weight> edge_weights(const CsrGraph& g, const MstResult& r) {
  std::multiset<Weight> w;
  for (EdgeId e : r.edges) w.insert(g.edge(e).w);
  return w;
}

TEST(MstAlgorithms, PaperFigure1AllAlgorithms) {
  const CsrGraph g = csr(make_paper_figure1());
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.total_weight, 16u) << algo.name;
    EXPECT_EQ(edge_weights(g, r), (std::multiset<Weight>{2, 3, 4, 7}))
        << algo.name;  // the paper's MST {2, 3, 4, 7}
    EXPECT_EQ(r.num_trees, 1u) << algo.name;
    const VerifyResult v = verify_msf(g, r);
    EXPECT_TRUE(v.ok) << algo.name << ": " << v.error;
  }
}

TEST(MstAlgorithms, SingleVertexGraph) {
  const CsrGraph g = csr(EdgeList(1));
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_TRUE(r.edges.empty()) << algo.name;
    EXPECT_EQ(r.total_weight, 0u) << algo.name;
    EXPECT_EQ(r.num_trees, 1u) << algo.name;
  }
}

TEST(MstAlgorithms, TwoVerticesOneEdge) {
  EdgeList list(2);
  list.add_edge(0, 1, 42);
  list.normalize();
  const CsrGraph g = csr(list);
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges, (std::vector<EdgeId>{0})) << algo.name;
    EXPECT_EQ(r.total_weight, 42u) << algo.name;
  }
}

TEST(MstAlgorithms, TreeInputReturnsAllEdges) {
  const EdgeList list = make_random_tree(64, 11);
  const CsrGraph g = csr(list);
  ThreadPool pool(4);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges.size(), 63u) << algo.name;
    EXPECT_EQ(r.total_weight, g.total_weight()) << algo.name;
  }
}

TEST(MstAlgorithms, CycleDropsExactlyTheHeaviestEdge) {
  const EdgeList list = make_cycle(8);  // distinct wrapped weights
  const CsrGraph g = csr(list);
  Weight heaviest = 0;
  for (const WeightedEdge& e : g.edges()) heaviest = std::max(heaviest, e.w);
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges.size(), 7u) << algo.name;
    EXPECT_EQ(r.total_weight, g.total_weight() - heaviest) << algo.name;
  }
}

TEST(MstAlgorithms, EqualWeightsResolvedIdentically) {
  // All weights equal: priorities fall back to edge ids, and every
  // algorithm must still return the same forest.
  const EdgeList list = make_complete(8, /*seed=*/1);
  EdgeList tied(8);
  for (const WeightedEdge& e : list.edges()) tied.add_edge(e.u, e.v, 100);
  tied.normalize();
  const CsrGraph g = csr(tied);
  ThreadPool pool(4);
  const MstResult reference = kruskal(g);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges, reference.edges) << algo.name;
  }
  EXPECT_TRUE(verify_msf(g, reference).ok);
}

TEST(MstAlgorithms, ForestAlgorithmsHandleDisconnected) {
  const EdgeList list = make_forest(3, 20, 21);
  const CsrGraph g = csr(list);
  ThreadPool pool(4);
  const MstResult reference = kruskal(g);
  EXPECT_EQ(reference.num_trees, 3u);
  for (const auto& algo : all_msf_algorithms()) {
    if (algo.connected_only) continue;
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges, reference.edges) << algo.name;
    EXPECT_EQ(r.num_trees, 3u) << algo.name;
  }
}

TEST(MstAlgorithms, IsolatedVerticesCountAsTrees) {
  EdgeList list(5);
  list.add_edge(0, 1, 3);  // vertices 2, 3, 4 isolated
  list.normalize();
  const CsrGraph g = csr(list);
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    if (algo.connected_only) continue;
    const MstResult r = algo.run(g, pool);
    EXPECT_EQ(r.edges.size(), 1u) << algo.name;
    EXPECT_EQ(r.num_trees, 4u) << algo.name;
  }
}

TEST(MstAlgorithmsDeathTest, PrimFamilyRejectsDisconnected) {
  const EdgeList list = make_forest(2, 5, 3);
  const CsrGraph g = csr(list);
  ThreadPool pool(1);
  RunContext ctx(pool);
  EXPECT_DEATH((void)prim(g), "connected");
  EXPECT_DEATH((void)prim_lazy(g), "connected");
  EXPECT_DEATH((void)llp_prim(g, 0), "connected");
  EXPECT_DEATH((void)llp_prim_parallel(g, ctx), "connected");
}

TEST(MstAlgorithms, PrimRootChoiceDoesNotChangeTree) {
  const EdgeList list = make_complete(12, 5);
  const CsrGraph g = csr(list);
  const MstResult from0 = prim(g, 0);
  for (VertexId root = 1; root < 12; root += 3) {
    EXPECT_EQ(prim(g, root).edges, from0.edges) << "root " << root;
    EXPECT_EQ(llp_prim(g, root).edges, from0.edges) << "root " << root;
  }
}

TEST(MstAlgorithms, StarGraphTakesAllEdges) {
  const CsrGraph g = csr(make_star(16));
  ThreadPool pool(2);
  for (const auto& algo : all_msf_algorithms()) {
    EXPECT_EQ(algo.run(g, pool).edges.size(), 15u) << algo.name;
  }
}

TEST(MstAlgorithms, BoruvkaRoundCountLogarithmic) {
  const CsrGraph g = csr(make_complete(64, 9));
  ThreadPool pool(2);
  RunContext ctx(pool);
  const MstResult r = parallel_boruvka(g, ctx);
  // Components at least halve per round: <= ceil(log2(64)) + 1 slack.
  EXPECT_LE(r.stats.rounds, 7u);
  EXPECT_GE(r.stats.rounds, 1u);
  const MstResult llp = llp_boruvka(g, ctx);
  EXPECT_LE(llp.stats.rounds, 7u);
}

TEST(MstAlgorithms, LazyHeapPrimCountsMoreHeapTraffic) {
  const CsrGraph g = csr(make_complete(40, 13));
  const MstResult eager = prim(g);
  const MstResult lazy = prim_lazy(g);
  EXPECT_EQ(eager.edges, lazy.edges);
  // The lazy variant re-inserts instead of adjusting, so it must push at
  // least as many entries, and pop at least as many (stale pops).
  EXPECT_GE(lazy.stats.heap.pushes, eager.stats.heap.pushes);
  EXPECT_GE(lazy.stats.heap.pops, eager.stats.heap.pops);
  EXPECT_EQ(eager.stats.heap.pushes, 40u);  // indexed: one push per vertex
}

}  // namespace
}  // namespace llpmst
