#!/usr/bin/env python3
"""Validate an llpmst-run-report JSON document against schema_version 1.

    tools/check_report_schema.py out.json [more.json ...]

Exits non-zero (listing every violation) if any document deviates from the
contract in docs/observability.md.  Uses only the standard library so CI
needs no extra packages.
"""
import json
import sys


def check(doc, errors, where):
    def err(msg):
        errors.append(f"{where}: {msg}")

    def expect(cond, msg):
        if not cond:
            err(msg)
        return cond

    if not expect(isinstance(doc, dict), "top level is not an object"):
        return
    expect(doc.get("schema") == "llpmst-run-report",
           f"schema is {doc.get('schema')!r}")
    expect(doc.get("schema_version") == 1,
           f"schema_version is {doc.get('schema_version')!r}")

    outcomes = {"ok", "non_converged", "cancelled", "deadline_exceeded",
                "injected_fault", "fallback"}
    run = doc.get("run")
    if expect(isinstance(run, dict), "run is not an object"):
        for key, typ in (("tool", str), ("algorithm", str), ("threads", int),
                         ("wall_ms", (int, float)), ("outcome", str),
                         ("fallback_reason", str)):
            expect(isinstance(run.get(key), typ),
                   f"run.{key} is {run.get(key)!r}")
        expect(run.get("outcome") in outcomes,
               f"run.outcome {run.get('outcome')!r} not one of "
               f"{sorted(outcomes)}")
        if run.get("outcome") == "fallback":
            expect(bool(run.get("fallback_reason")),
                   "run.outcome is 'fallback' but run.fallback_reason is "
                   "empty")
        graph = run.get("graph")
        if expect(isinstance(graph, dict), "run.graph is not an object"):
            for key in ("vertices", "edges"):
                expect(isinstance(graph.get(key), int),
                       f"run.graph.{key} is {graph.get(key)!r}")

    algo = doc.get("algo")
    if expect(algo is None or isinstance(algo, dict),
              "algo is neither null nor an object") and algo is not None:
        for sub in ("heap", "llp"):
            expect(isinstance(algo.get(sub), dict),
                   f"algo.{sub} is not an object")
        if isinstance(algo.get("llp"), dict):
            expect(isinstance(algo["llp"].get("converged"), bool),
                   "algo.llp.converged is not a bool")
            expect(algo["llp"].get("outcome") in (outcomes - {"fallback"}),
                   f"algo.llp.outcome {algo['llp'].get('outcome')!r} not a "
                   "run outcome")

    for section in ("counters", "gauges"):
        values = doc.get(section)
        if expect(isinstance(values, dict), f"{section} is not an object"):
            for name, v in values.items():
                expect(isinstance(v, int) and v >= 0,
                       f"{section}[{name!r}] = {v!r} is not a non-negative "
                       "integer")

    phases = doc.get("phases")
    if expect(isinstance(phases, list), "phases is not an array"):
        for i, p in enumerate(phases):
            if not expect(isinstance(p, dict), f"phases[{i}] not an object"):
                continue
            expect(isinstance(p.get("name"), str),
                   f"phases[{i}].name is {p.get('name')!r}")
            expect(isinstance(p.get("count"), int),
                   f"phases[{i}].count is {p.get('count')!r}")
            expect(isinstance(p.get("total_ms"), (int, float)),
                   f"phases[{i}].total_ms is {p.get('total_ms')!r}")

    warnings = doc.get("warnings")
    if expect(isinstance(warnings, list), "warnings is not an array"):
        for i, w in enumerate(warnings):
            expect(isinstance(w, str), f"warnings[{i}] is {w!r}")


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in sys.argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: unreadable: {e}")
            continue
        check(doc, errors, path)
        if not errors:
            print(f"{path}: ok")
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
