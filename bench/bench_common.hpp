// Shared plumbing for the figure benchmarks: standard workload graphs at
// benchmark scale (overridable via flags), and row-emission helpers.
//
// Scale note: the paper ran 23.9M-vertex USA-road and 33M-vertex graph500
// s25 on a 48-vCPU GCE C2 machine.  The default sizes here reproduce the
// same morphologies at laptop scale (hundreds of thousands of vertices) so
// every figure regenerates in about a minute; pass --road-side / --scale to
// grow them toward the paper's sizes on bigger hardware.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/csr_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "mst/kruskal.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace llpmst::bench {

struct Workload {
  std::string name;   // e.g. "USA-road (synthetic 262k)"
  std::string type;   // "road" / "scalefree"
  CsrGraph graph;
};

/// Synthetic stand-in for USA-road-d.USA: side x side grid road network.
inline Workload make_road_workload(std::uint32_t side,
                                   std::uint64_t seed = 1) {
  RoadParams p;
  p.width = side;
  p.height = side;
  p.seed = seed;
  EdgeList list = generate_road_network(p);
  Workload w;
  w.name = "Road " + format_count(list.num_vertices());
  w.type = "road";
  w.graph = CsrGraph::build(list);
  return w;
}

/// Synthetic stand-in for graph500-sNN-ef16, connected for Prim-family use.
inline Workload make_graph500_workload(int scale, std::uint64_t seed = 1,
                                       bool connect = true) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 16;
  p.seed = seed;
  EdgeList list = generate_rmat(p);
  if (connect) connect_components(list);
  Workload w;
  w.name = "Graph500 s" + std::to_string(scale);
  w.type = "scalefree";
  w.graph = CsrGraph::build(list);
  return w;
}

/// Formats a measurement cell: median with spread.
inline std::string time_cell(const Summary& s) {
  return format_duration_ms(s.median);
}

/// Speedup of `base` over `t` (how many times faster t is than base).
inline std::string speedup_cell(double base_ms, double ms) {
  return strf("%.2fx", base_ms / ms);
}

}  // namespace llpmst::bench
