#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "ds/concurrent_union_find.hpp"
#include "ds/union_find.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/random.hpp"

namespace llpmst {
namespace {

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_FALSE(uf.same_set(0, 1));
}

TEST(UnionFind, UniteMergesAndReports) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already together
  EXPECT_TRUE(uf.same_set(0, 1));
  EXPECT_EQ(uf.num_sets(), 3u);
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_EQ(uf.num_sets(), 1u);
  EXPECT_TRUE(uf.same_set(1, 2));
}

TEST(UnionFind, ResetRestoresSingletons) {
  UnionFind uf(6);
  uf.unite(0, 5);
  uf.unite(1, 2);
  uf.reset();
  EXPECT_EQ(uf.num_sets(), 6u);
  EXPECT_FALSE(uf.same_set(0, 5));
}

TEST(UnionFind, RandomizedAgainstNaiveLabels) {
  const std::uint32_t n = 300;
  UnionFind uf(n);
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  Xoshiro256 rng(99);
  for (int step = 0; step < 2000; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    const bool merged = uf.unite(a, b);
    EXPECT_EQ(merged, label[a] != label[b]);
    if (label[a] != label[b]) {
      const auto from = label[b], to = label[a];
      for (auto& l : label) {
        if (l == from) l = to;
      }
    }
    if (step % 100 == 0) {
      for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j : {0u, n / 2, n - 1}) {
          ASSERT_EQ(uf.same_set(i, j), label[i] == label[j]);
        }
      }
    }
  }
}

// ------------------------------------------------------------ concurrent

TEST(ConcurrentUnionFind, SequentialSemanticsMatchUnionFind) {
  const std::uint32_t n = 200;
  ConcurrentUnionFind cuf(n);
  UnionFind uf(n);
  Xoshiro256 rng(5);
  for (int step = 0; step < 1000; ++step) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    EXPECT_EQ(cuf.unite(a, b), uf.unite(a, b));
    ASSERT_EQ(cuf.same_set(a, b), true);  // just united
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; j += 7) {
      ASSERT_EQ(cuf.same_set(i, j), uf.same_set(i, j));
    }
  }
}

TEST(ConcurrentUnionFind, ConcurrentUnionsProduceCorrectPartition) {
  const std::uint32_t n = 10000;
  // Union a pseudo-random edge set concurrently; then compare the partition
  // against a sequential union-find over the same edges.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  Xoshiro256 rng(17);
  for (int i = 0; i < 20000; ++i) {
    edges.emplace_back(static_cast<std::uint32_t>(rng.next_below(n)),
                       static_cast<std::uint32_t>(rng.next_below(n)));
  }

  ThreadPool pool(8);
  ConcurrentUnionFind cuf(n);
  parallel_for(pool, 0, edges.size(), [&](std::size_t i) {
    cuf.unite(edges[i].first, edges[i].second);
  });

  UnionFind uf(n);
  for (const auto& [a, b] : edges) uf.unite(a, b);

  // Same partition: roots may differ in naming, so compare via pairings.
  std::map<std::uint32_t, std::uint32_t> root_map;  // cuf root -> uf root
  for (std::uint32_t v = 0; v < n; ++v) {
    const auto cr = cuf.find(v);
    const auto sr = uf.find(v);
    const auto [it, inserted] = root_map.try_emplace(cr, sr);
    ASSERT_EQ(it->second, sr) << "partition mismatch at vertex " << v;
  }
  // Injectivity: two cuf-roots must not map to one uf-root.
  std::map<std::uint32_t, std::uint32_t> reverse;
  for (const auto& [cr, sr] : root_map) {
    const auto [it, inserted] = reverse.try_emplace(sr, cr);
    ASSERT_TRUE(inserted) << "two concurrent roots collapsed to one set";
  }
}

TEST(ConcurrentUnionFind, UniteExactlyOneLinkerPerMerge) {
  // total successful unites across threads == n - #final components.
  const std::uint32_t n = 4096;
  ThreadPool pool(8);
  ConcurrentUnionFind cuf(n);
  std::atomic<std::uint32_t> links{0};
  // Chain unions 0-1, 1-2, ... issued redundantly by all workers.
  pool.run_team([&](std::size_t) {
    for (std::uint32_t i = 0; i + 1 < n; ++i) {
      if (cuf.unite(i, i + 1)) links.fetch_add(1);
    }
  });
  EXPECT_EQ(links.load(), n - 1);
  for (std::uint32_t i = 1; i < n; ++i) ASSERT_TRUE(cuf.same_set(0, i));
}

}  // namespace
}  // namespace llpmst
