#include "mst/auto.hpp"

#include <exception>
#include <string>

#include "graph/algorithms/connected_components.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/kruskal.hpp"
#include "obs/metrics.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

/// Runs the chosen parallel algorithm, converting every failure mode —
/// structured outcome, injected FailpointError, bad_alloc, any other
/// exception — into a (ok, reason) verdict the portfolio can act on.
template <typename Run>
bool run_guarded(Run&& run, MstResult& result, std::string& reason) {
  try {
    result = run();
  } catch (const fail::FailpointError& e) {
    reason = std::string("exception: ") + e.what();
    return false;
  } catch (const std::bad_alloc&) {
    reason = "exception: out of memory";
    return false;
  } catch (const std::exception& e) {
    reason = std::string("exception: ") + e.what();
    return false;
  }
  if (result.stats.outcome != RunOutcome::kOk) {
    reason = run_outcome_name(result.stats.outcome);
    return false;
  }
  if (!result.stats.llp_converged) {
    reason = "non_converged";
    return false;
  }
  return true;
}

}  // namespace

AutoMstResult minimum_spanning_forest(const CsrGraph& g, ThreadPool& pool,
                                      Connectivity connectivity,
                                      const AutoMstOptions& options) {
  AutoMstResult out;
  if (g.num_vertices() == 0) {
    out.algorithm = "trivial";
    return out;
  }

  bool connected = false;
  switch (connectivity) {
    case Connectivity::kConnected:
      connected = true;
      break;
    case Connectivity::kDisconnected:
      connected = false;
      break;
    case Connectivity::kUnknown: {
      EdgeList list(g.num_vertices(), g.edges());
      connected = is_connected(list);
      break;
    }
  }

  // Deadline and external cancellation combine into one token the chosen
  // algorithm polls.  An external token is mirrored (checked here and passed
  // through) rather than copied so the caller keeps ownership semantics.
  CancelToken token;
  if (options.deadline_ms > 0) token.set_deadline_after_ms(options.deadline_ms);
  const CancelToken* cancel = nullptr;
  if (options.deadline_ms > 0) {
    cancel = &token;
  } else if (options.cancel != nullptr) {
    cancel = options.cancel;
  }
  // Both supplied: poll the caller's token from inside ours via the deadline
  // token — cheapest correct composition is to check the external token at
  // the same super-step cadence, which the algorithms already do when given
  // a single token.  We approximate by preferring the deadline token and
  // letting the caller's cancel() win only between algorithm attempts; the
  // common cases (deadline only, external only) are exact.

  const std::size_t threads = pool.num_threads();
  std::string reason;
  bool ok = true;
  if (!connected || threads >= options.boruvka_crossover) {
    out.algorithm = "llp_boruvka";
    ok = run_guarded([&] { return llp_boruvka(g, pool, cancel); }, out.result,
                     reason);
  } else if (threads == 1) {
    out.algorithm = "llp_prim";
    // Sequential LLP-Prim is the dependable path already; no cancel wiring.
    out.result = llp_prim(g);
  } else {
    out.algorithm = "llp_prim_parallel";
    ok = run_guarded([&] { return llp_prim_parallel(g, pool, 0, cancel); },
                     out.result, reason);
  }

  if (!ok) {
    // A cancel requested by the CALLER is an instruction to stop, not a
    // failure to route around — honour it and return the partial result.
    const bool user_cancelled =
        options.cancel != nullptr &&
        options.cancel->reason() == RunOutcome::kCancelled;
    if (options.fallback_to_sequential && !user_cancelled) {
      if (obs::kCompiledIn) {
        obs::counter("auto/fallbacks").increment();
        obs::add_warning("auto: " + out.algorithm + " failed (" + reason +
                         "); falling back to sequential kruskal");
      }
      out.fell_back = true;
      out.fallback_reason = reason;
      out.algorithm = "kruskal";
      out.result = kruskal(g);
    } else {
      // No fallback: surface the partial result; the caller inspects
      // result.stats.outcome / fallback_reason.
      out.fallback_reason = reason;
    }
  }
  return out;
}

}  // namespace llpmst
