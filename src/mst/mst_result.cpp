#include "mst/mst_result.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"
#include "support/assert.hpp"

namespace llpmst {

void finalize_result(const CsrGraph& g, MstResult& r) {
  std::sort(r.edges.begin(), r.edges.end());
  LLPMST_ASSERT(std::adjacent_find(r.edges.begin(), r.edges.end()) ==
                r.edges.end());
  r.total_weight = 0;
  r.weight_overflow = false;
  for (const EdgeId e : r.edges) {
    LLPMST_ASSERT(e < g.num_edges());
    if (!checked_weight_add(r.total_weight, g.edge(e).w)) {
      r.weight_overflow = true;
    }
  }
  if (r.weight_overflow && obs::kCompiledIn) {
    obs::add_warning("mst total_weight overflowed the 64-bit accumulator");
  }
  r.num_trees = g.num_vertices() - r.edges.size();
}

void record_algo_metrics(const char* algo, const MstAlgoStats& s) {
  if (!obs::kCompiledIn) return;
  const std::string p = std::string(algo) + "/";
  const auto add = [&](const char* name, std::uint64_t v) {
    if (v != 0) obs::counter(p + name).add(v);
  };
  add("heap_inserts", s.heap.pushes);
  add("heap_pops", s.heap.pops);
  add("heap_adjusts", s.heap.adjusts);
  add("heap_sift_steps", s.heap.sift_steps);
  add("fixed_via_heap", s.fixed_via_heap);
  add("mwe_early_fix", s.fixed_via_mwe);
  add("staged_in_q", s.staged_in_q);
  add("edges_relaxed", s.edges_relaxed);
  add("rounds", s.rounds);
  add("pointer_jumps", s.pointer_jumps);
  add("sweeps", s.llp_sweeps);
  add("advances", s.llp_advances);
  switch (s.outcome) {
    case RunOutcome::kOk:
      break;
    case RunOutcome::kNonConverged:
      obs::counter(p + "non_convergence").increment();
      obs::add_warning(p + "llp sweep cap hit without convergence");
      break;
    case RunOutcome::kCancelled:
    case RunOutcome::kDeadlineExceeded:
      obs::counter(p + "cancellations").increment();
      obs::add_warning(p + "run stopped: " +
                       run_outcome_name(s.outcome));
      break;
    case RunOutcome::kInjectedFault:
      obs::counter(p + "injected_faults").increment();
      obs::add_warning(p + "run stopped by an injected fault");
      break;
  }
  // Legacy flag path: cap hits recorded before outcome existed.
  if (!s.llp_converged && s.outcome == RunOutcome::kOk) {
    obs::counter(p + "non_convergence").increment();
    obs::add_warning(p + "llp sweep cap hit without convergence");
  }
}

}  // namespace llpmst
