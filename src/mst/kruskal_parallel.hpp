// Parallel Kruskal: the edge sort (the dominant cost) runs on the thread
// pool; the union-find scan stays sequential (it is inherently ordered).
// A useful additional baseline: it shows how far "parallelize the easy
// 90%" gets compared to the restructured LLP algorithms.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Sorts on ctx.executor(); the union-find scan stays sequential.
[[nodiscard]] MstResult kruskal_parallel(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm kruskal_parallel_algorithm();

}  // namespace llpmst
