// Registry conformance: every registered MST/MSF algorithm, discovered via
// mst_algorithms() rather than a hand-maintained list, is run through a
// fixed workload matrix (sparse, dense, forest, empty, single-vertex) and
// must (a) match the Kruskal oracle bit for bit and (b) pass the exact
// minimality verifier.  Capability flags gate the matrix: tree-only
// algorithms (caps.msf_capable == false) skip the disconnected workloads
// instead of being special-cased by name.  A new algorithm registered in
// src/mst/registry.cpp is covered here with zero test edits.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/run_context.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/special.hpp"
#include "mst/kruskal.hpp"
#include "mst/registry.hpp"
#include "mst/verifier.hpp"
#include "support/cancel.hpp"
#include "support/status.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

struct ConformanceCase {
  const char* name;
  bool connected;  // tree-only algorithms run only when true
  CsrGraph graph;
};

std::vector<ConformanceCase> conformance_cases() {
  std::vector<ConformanceCase> cases;

  ErdosRenyiParams sparse;
  sparse.num_vertices = 800;
  sparse.num_edges = 1800;
  sparse.seed = 21;
  EdgeList sparse_list = generate_erdos_renyi(sparse);
  connect_components(sparse_list);
  cases.push_back({"sparse", true, csr(sparse_list)});

  ErdosRenyiParams dense;
  dense.num_vertices = 300;
  dense.num_edges = 9000;
  dense.seed = 22;
  EdgeList dense_list = generate_erdos_renyi(dense);
  connect_components(dense_list);
  cases.push_back({"dense", true, csr(dense_list)});

  cases.push_back({"forest", false, csr(make_forest(4, 60, 23))});
  cases.push_back({"empty", false, csr(EdgeList(0))});
  cases.push_back({"single-vertex", true, csr(EdgeList(1))});
  return cases;
}

class RegistryConformance : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, RegistryConformance, testing::Values(1, 4));

TEST_P(RegistryConformance, EveryAlgorithmMatchesKruskalAndVerifies) {
  RunContext ctx(pool_);
  for (const ConformanceCase& c : conformance_cases()) {
    SCOPED_TRACE(c.name);
    const MstResult reference = kruskal(c.graph);
    for (const MstAlgorithm& algo : mst_algorithms()) {
      if (!c.connected && !algo.caps.msf_capable) continue;  // tree-only
      SCOPED_TRACE(algo.name);
      const MstResult r = algo.run(c.graph, ctx);
      EXPECT_EQ(r.edges, reference.edges);
      EXPECT_EQ(r.total_weight, reference.total_weight);
      EXPECT_EQ(r.num_trees, reference.num_trees);
      const VerifyResult v = verify_msf(c.graph, r, ctx);
      EXPECT_TRUE(v.ok) << v.error;
    }
  }
}

TEST_P(RegistryConformance, ScratchReuseAcrossAlgorithmsIsClean) {
  // The whole matrix above runs through ONE context; this test pins the
  // property directly: the same arena driven through graphs of very
  // different shapes, twice per algorithm, must stay bit-identical.
  RunContext ctx(pool_);
  const CsrGraph big = csr(make_complete(40, 31));
  const CsrGraph small = csr(make_forest(3, 10, 32));
  for (const MstAlgorithm& algo : mst_algorithms()) {
    if (!algo.caps.msf_capable) continue;
    SCOPED_TRACE(algo.name);
    const MstResult b1 = algo.run(big, ctx);
    const MstResult s1 = algo.run(small, ctx);
    const MstResult b2 = algo.run(big, ctx);
    const MstResult s2 = algo.run(small, ctx);
    EXPECT_EQ(b1.edges, b2.edges);
    EXPECT_EQ(s1.edges, s2.edges);
    EXPECT_EQ(b1.edges, kruskal(big).edges);
    EXPECT_EQ(s1.edges, kruskal(small).edges);
  }
}

TEST(RegistryInvariants, NamesAreUniqueNonEmptyAndLookupRoundTrips) {
  std::set<std::string> names;
  for (const MstAlgorithm& a : mst_algorithms()) {
    ASSERT_NE(a.name, nullptr);
    ASSERT_NE(a.label, nullptr);
    ASSERT_NE(a.summary, nullptr);
    ASSERT_NE(a.run, nullptr);
    EXPECT_FALSE(std::string(a.name).empty());
    EXPECT_TRUE(names.insert(a.name).second) << "duplicate: " << a.name;
    const MstAlgorithm* found = find_mst_algorithm(a.name);
    ASSERT_NE(found, nullptr) << a.name;
    EXPECT_EQ(found, &a) << a.name;  // lookup returns the entry itself
  }
  EXPECT_GE(names.size(), 12u);
  EXPECT_EQ(find_mst_algorithm("no-such-algorithm"), nullptr);
  // "auto" is a policy over the registry, not an entry in it.
  EXPECT_EQ(find_mst_algorithm("auto"), nullptr);
}

TEST(RegistryInvariants, CapabilityFlagsMatchKnownEntries) {
  // Spot-check the flags the selection policy and the tests key off.
  EXPECT_FALSE(mst_algorithm("kruskal").caps.parallel);
  EXPECT_TRUE(mst_algorithm("kruskal").caps.msf_capable);
  EXPECT_FALSE(mst_algorithm("prim").caps.msf_capable);
  EXPECT_TRUE(mst_algorithm("llp-boruvka").caps.parallel);
  EXPECT_TRUE(mst_algorithm("llp-boruvka").caps.cancellable);
  EXPECT_TRUE(mst_algorithm("parallel-boruvka").caps.cancellable);
  EXPECT_FALSE(mst_algorithm("llp-prim").caps.parallel);
  EXPECT_TRUE(mst_algorithm("llp-prim-parallel").caps.parallel);
  EXPECT_FALSE(mst_algorithm("llp-prim-parallel").caps.msf_capable);
}

TEST(RegistryInvariants, DescribeCapsFormat) {
  AlgoCaps caps;
  caps.parallel = true;
  caps.msf_capable = true;
  caps.deterministic = true;
  caps.cancellable = true;
  EXPECT_EQ(describe_caps(caps), "par msf det can");
  caps.parallel = false;
  caps.msf_capable = false;
  caps.cancellable = false;
  EXPECT_EQ(describe_caps(caps), "seq tree det -");
}

TEST(RegistryInvariants, CancellableEntriesHonourAPreCancelledToken) {
  // The cancellable flag is a promise: a pre-cancelled context must stop
  // the run early with a kCancelled outcome, not grind to completion.
  ThreadPool pool(2);
  const CsrGraph g = csr(make_complete(64, 33));
  for (const MstAlgorithm& a : mst_algorithms()) {
    if (!a.caps.cancellable) continue;
    SCOPED_TRACE(a.name);
    CancelToken token;
    token.cancel();
    RunContext ctx(pool);
    ctx.set_cancel(&token);
    const MstResult r = a.run(g, ctx);
    EXPECT_EQ(r.stats.outcome, RunOutcome::kCancelled);
  }
}

}  // namespace
}  // namespace llpmst
