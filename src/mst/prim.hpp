// Classic Prim's algorithm (the paper's Algorithm 2): grow one fragment from
// a root, always adding the minimum-weight outgoing edge, with an indexed
// binary heap supporting insertOrAdjust (decrease-key).
//
// This is the "Prim" baseline of Fig. 2.  Requires a connected graph (a
// spanning *tree* is produced); LLPMST_CHECKs otherwise — use the forest
// algorithms (Kruskal/Boruvka family) for disconnected inputs, as the paper
// does.
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Runs Prim from `root`.  Heap type is the indexed binary heap; see
/// prim_with_heap in prim_heaps.hpp for the heap-choice ablation.
[[nodiscard]] MstResult prim(const CsrGraph& g, VertexId root = 0);
/// Uniform registry entry point (sequential; the context is unused).
[[nodiscard]] MstResult prim(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm prim_algorithm();

}  // namespace llpmst
