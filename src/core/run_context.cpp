#include "core/run_context.hpp"

#include "ds/union_find.hpp"
#include "graph/csr_graph.hpp"
#include "obs/metrics.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

RunContext::~RunContext() {
  if (armed_failpoints_) fail::disarm_all();
}

ThreadPool& RunContext::pool() {
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(1);
    pool_ = owned_pool_.get();
  }
  return *pool_;
}

void RunContext::set_deadline_ms(double ms) {
  if (ms <= 0) return;
  deadline_token_.set_deadline_after_ms(ms);
  deadline_token_.observe(external_cancel_);
  deadline_armed_ = true;
}

const CancelToken* RunContext::cancel_token() const {
  if (deadline_armed_) return &deadline_token_;
  return external_cancel_;
}

bool RunContext::user_cancelled() const {
  return external_cancel_ != nullptr &&
         external_cancel_->reason() == RunOutcome::kCancelled;
}

std::size_t RunContext::num_components(const CsrGraph& g) {
  if (components_cached(g)) return components_;
  // Union-find straight over the CSR edge list: no EdgeList copy (which is
  // what mst::auto used to build just to ask this question).
  UnionFind uf(g.num_vertices());
  for (const WeightedEdge& e : g.edges()) uf.unite(e.u, e.v);
  components_key_ = g.storage();
  components_ = uf.num_sets();
  components_valid_ = true;
  if (obs::kCompiledIn) obs::counter("run_context/cc_computed").increment();
  return components_;
}

bool RunContext::components_cached(const CsrGraph& g) const {
  // Storage-address identity: any handle over the same snapshot hits.  A
  // default-constructed graph has null storage, so the extra valid bit keeps
  // "cached the empty graph" distinct from "never computed anything".
  return components_valid_ && components_key_ == g.storage();
}

void RunContext::seed_components(const CsrGraph& g, std::size_t count) {
  components_key_ = g.storage();
  components_ = count;
  components_valid_ = true;
}

std::size_t RunContext::arm_failpoints(std::string_view spec,
                                       std::string* error) {
  const std::size_t armed = fail::configure(spec, error);
  if (armed > 0) armed_failpoints_ = true;
  return armed;
}

}  // namespace llpmst
