// Structured error taxonomy for the library's fallible entry points.
//
// The rule of thumb (docs/robustness.md):
//   * LLPMST_CHECK stays for true invariants and API misuse — conditions a
//     correct program can never hit, where aborting is the right answer;
//   * everything driven by the outside world (file contents, deadlines,
//     cancellation, injected faults, resource exhaustion) reports a Status
//     so a long-running service can degrade instead of dying.
//
// Status is a code plus a human-readable message; Expected<T> carries either
// a value or a non-OK Status.  RunOutcome is the compact per-run verdict the
// algorithms record in their stats (and the portfolio uses to decide on a
// sequential fallback) — it converts to a Status via outcome_status().
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "support/assert.hpp"

namespace llpmst {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     // caller passed something structurally wrong
  kCorruptInput,        // untrusted input failed validation (parsers)
  kIoError,             // the OS said no (open/read/write failures)
  kResourceExhausted,   // allocation failure (real or injected)
  kCancelled,           // a CancelToken was cancelled explicitly
  kDeadlineExceeded,    // a CancelToken deadline passed
  kNonConvergence,      // an LLP sweep cap was hit before the fixpoint
  kInjectedFault,       // a failpoint forced an error (test/chaos builds)
  kInternal,            // a bug surfaced as an error instead of an abort
};

[[nodiscard]] constexpr const char* status_code_name(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kCorruptInput: return "CORRUPT_INPUT";
    case StatusCode::kIoError: return "IO_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNonConvergence: return "NON_CONVERGENCE";
    case StatusCode::kInjectedFault: return "INJECTED_FAULT";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class Status {
 public:
  /// Default-constructed Status is OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return {}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "CORRUPT_INPUT: malformed arc line at line 7" — for logs and stderr.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    std::string out = status_code_name(code_);
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status.  T must be default-constructible and
/// movable (all the graph containers are).  Accessing value() on an error is
/// an API-misuse abort, not UB.
template <typename T>
class Expected {
 public:
  /* implicit */ Expected(T value) : value_(std::move(value)) {}
  /* implicit */ Expected(Status status) : status_(std::move(status)) {
    LLPMST_CHECK_MSG(!status_.ok(),
                     "Expected constructed from an OK Status carries no value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    LLPMST_CHECK_MSG(ok(), "Expected::value() on an error");
    return value_;
  }
  [[nodiscard]] const T& value() const {
    LLPMST_CHECK_MSG(ok(), "Expected::value() on an error");
    return value_;
  }
  [[nodiscard]] T& operator*() { return value(); }
  [[nodiscard]] const T& operator*() const { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  T value_{};
  Status status_;
};

/// Compact per-run verdict recorded by the solvers (LlpStats::outcome,
/// MstAlgoStats::outcome).  kOk means the run completed and converged.
enum class RunOutcome : std::uint8_t {
  kOk = 0,
  kNonConverged,      // sweep cap hit before the fixpoint
  kCancelled,         // stopped by an explicit CancelToken::cancel()
  kDeadlineExceeded,  // stopped by a CancelToken deadline
  kInjectedFault,     // stopped by an armed failpoint
};

[[nodiscard]] constexpr const char* run_outcome_name(RunOutcome o) {
  switch (o) {
    case RunOutcome::kOk: return "ok";
    case RunOutcome::kNonConverged: return "non_converged";
    case RunOutcome::kCancelled: return "cancelled";
    case RunOutcome::kDeadlineExceeded: return "deadline_exceeded";
    case RunOutcome::kInjectedFault: return "injected_fault";
  }
  return "unknown";
}

/// Maps a non-OK outcome onto the Status taxonomy (kOk maps to OK).
[[nodiscard]] inline Status outcome_status(RunOutcome o) {
  switch (o) {
    case RunOutcome::kOk:
      return Status::Ok();
    case RunOutcome::kNonConverged:
      return {StatusCode::kNonConvergence,
              "sweep cap hit before convergence"};
    case RunOutcome::kCancelled:
      return {StatusCode::kCancelled, "run cancelled"};
    case RunOutcome::kDeadlineExceeded:
      return {StatusCode::kDeadlineExceeded, "run deadline exceeded"};
    case RunOutcome::kInjectedFault:
      return {StatusCode::kInjectedFault, "failpoint fired"};
  }
  return {StatusCode::kInternal, "unknown outcome"};
}

}  // namespace llpmst
