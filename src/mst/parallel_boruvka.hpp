// Parallel Boruvka baseline ("Boruvka" in Figs. 3-4): the conventional
// bulk-synchronous formulation in the style of GBBS — atomic MWE selection,
// id-symmetry-broken hooking, *synchronized* pointer-jumping rounds, and
// deduplicating contraction.  Handles forests (MSF).
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// Runs on ctx.executor(), polls ctx.cancel_token() between rounds, and reuses
/// the context's BoruvkaScratch across runs.
[[nodiscard]] MstResult parallel_boruvka(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm parallel_boruvka_algorithm();

}  // namespace llpmst
