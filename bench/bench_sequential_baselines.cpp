// Context for Fig. 2: every sequential (and sort-parallel) MSF baseline in
// the library on both workloads — Kruskal, parallel-sort Kruskal,
// Filter-Kruskal, Prim, lazy Prim, classic Boruvka, LLP-Prim (1T).  Places
// the paper's three Fig. 2 contestants inside the wider baseline landscape.
#include <cstdio>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "mst/registry.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_sequential_baselines",
                "All sequential MSF baselines on both workloads");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& threads = cli.add_int("threads", 4,
                              "threads for the sort-parallel variants");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));
  RunContext ctx(pool);

  Table t({"Graph", "Algorithm", "Median", "vs Kruskal"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale)),
  };

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));
    double kruskal_ms = 0;
    // Record keys are canonical registry names; table rows show the label.
    const auto add = [&](const char* name) {
      const MstAlgorithm& algo = mst_algorithm(name);
      const BenchMeasurement m = measure_mst(
          algo.name, w.graph, reference,
          [&] { return algo.run(w.graph, ctx); }, opts);
      if (kruskal_ms == 0) kruskal_ms = m.time_ms.median;
      t.add_row({w.name, algo.label, time_cell(m.time_ms),
                 strf("%.2fx", kruskal_ms / m.time_ms.median)});
    };

    add("kruskal");
    add("kruskal-parallel");
    add("filter-kruskal");
    add("prim");
    add("prim-lazy");
    add("boruvka");
    add("kkt");
    add("llp-prim");
  }

  std::printf("Sequential / sort-parallel MSF baselines (threads=%lld for "
              "sort)\n\n",
              static_cast<long long>(threads));
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_sequential_baselines");
  return 0;
}
