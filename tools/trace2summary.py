#!/usr/bin/env python3
"""Summarize a Chrome trace-event JSON produced by --trace.

Aggregates the complete ("ph":"X") spans by name and prints per-phase
totals, counts, and percentages of the traced wall span; counter tracks
("ph":"C") are always listed, and --counters prints per-track statistics
(samples, min, max, last value):

    tools/trace2summary.py trace.json
    tools/trace2summary.py --top 10 trace.json
    tools/trace2summary.py --counters trace.json

Works on any trace-event file (the format is a de-facto standard), but the
phase names it prints are the nested paths emitted by the llpmst
observability layer ("llp_boruvka/round/hook", "pool/region", ...).
Counter values are read from args.value (the llpmst shape) with a fallback
to the first numeric entry in args.
"""
import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    # Both container shapes of the spec: {"traceEvents": [...]} or a bare
    # JSON array.
    events = doc["traceEvents"] if isinstance(doc, dict) else doc
    if not isinstance(events, list):
        raise ValueError("no traceEvents array found")
    return events


def counter_value(event):
    """Extracts the sampled value from a 'C' event: args.value (the llpmst
    shape), else the first numeric args entry, else None."""
    args = event.get("args")
    if not isinstance(args, dict):
        return None
    v = args.get("value")
    if isinstance(v, (int, float)):
        return v
    for v in args.values():
        if isinstance(v, (int, float)):
            return v
    return None


def summarize(events):
    """Returns (per-name stats, wall span in us, per-track counter stats)."""
    spans = defaultdict(lambda: {"count": 0, "total_us": 0, "max_us": 0})
    counters = defaultdict(lambda: {"count": 0, "min": None, "max": None,
                                    "last": None, "last_ts": None})
    t_min, t_max = None, None
    for e in events:
        ph = e.get("ph")
        if ph == "C":
            c = counters[e.get("name", "?")]
            c["count"] += 1
            v = counter_value(e)
            if v is not None:
                c["min"] = v if c["min"] is None else min(c["min"], v)
                c["max"] = v if c["max"] is None else max(c["max"], v)
                ts = e.get("ts", 0)
                if c["last_ts"] is None or ts >= c["last_ts"]:
                    c["last"], c["last_ts"] = v, ts
            continue
        if ph != "X":
            continue
        name = e.get("name", "?")
        ts = e.get("ts", 0)
        dur = e.get("dur", 0)
        s = spans[name]
        s["count"] += 1
        s["total_us"] += dur
        s["max_us"] = max(s["max_us"], dur)
        t_min = ts if t_min is None else min(t_min, ts)
        t_max = ts + dur if t_max is None else max(t_max, ts + dur)
    wall_us = (t_max - t_min) if t_min is not None else 0
    return spans, wall_us, counters


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="trace-event JSON file (from --trace)")
    ap.add_argument("--top", type=int, default=0,
                    help="only print the N phases with the largest totals")
    ap.add_argument("--counters", action="store_true",
                    help="print per-track counter statistics "
                         "(samples, min, max, last)")
    args = ap.parse_args()

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error reading {args.trace}: {e}", file=sys.stderr)
        return 1

    spans, wall_us, counters = summarize(events)
    if not spans and not counters:
        print("no complete ('ph':'X') spans or counter tracks in the trace")
        return 0

    if spans:
        # Sort by total time, largest first.  Percentages are of the traced
        # wall span; nested phases overlap their parents, so columns do not
        # sum to 100%.
        rows = sorted(spans.items(), key=lambda kv: -kv[1]["total_us"])
        if args.top > 0:
            rows = rows[: args.top]

        name_w = max(len("phase"), max(len(n) for n, _ in rows))
        print(f"{'phase':<{name_w}}  {'count':>8}  {'total ms':>10}  "
              f"{'mean us':>9}  {'max us':>8}  {'% wall':>6}")
        for name, s in rows:
            pct = 100.0 * s["total_us"] / wall_us if wall_us else 0.0
            mean = s["total_us"] / s["count"]
            print(f"{name:<{name_w}}  {s['count']:>8}  "
                  f"{s['total_us'] / 1000.0:>10.3f}  {mean:>9.1f}  "
                  f"{s['max_us']:>8}  {pct:>5.1f}%")
    else:
        print("no complete ('ph':'X') spans in the trace "
              "(counter tracks only)")

    if args.counters and counters:
        def fmt(v):
            if v is None:
                return "-"
            return f"{v:g}" if isinstance(v, float) else str(v)

        name_w = max(len("counter"), max(len(n) for n in counters))
        print(f"\n{'counter':<{name_w}}  {'samples':>8}  {'min':>12}  "
              f"{'max':>12}  {'last':>12}")
        for name in sorted(counters):
            c = counters[name]
            print(f"{name:<{name_w}}  {c['count']:>8}  {fmt(c['min']):>12}  "
                  f"{fmt(c['max']):>12}  {fmt(c['last']):>12}")

    print(f"\ntraced wall span: {wall_us / 1000.0:.3f} ms, "
          f"{sum(s['count'] for s in spans.values())} spans, "
          f"{len(spans)} distinct phases"
          + (f", counter tracks: {', '.join(sorted(counters))}"
             if counters else ", no counter tracks"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
