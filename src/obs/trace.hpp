// Chrome trace-event export: collected spans serialize to the JSON format
// understood by chrome://tracing and https://ui.perfetto.dev.
//
// Usage (what mst_tool --trace does):
//   obs::set_enabled(true);       // phase timers feed the trace
//   obs::trace_start();
//   run_algorithm();
//   obs::trace_stop();
//   obs::write_trace_json("trace.json", &err);
//
// Collection is per-thread: each thread appends to its own buffer (guarded
// by a per-buffer mutex that is only ever contended by the final reader),
// so concurrent workers never serialize against each other.  `tid` is the
// obs shard id of the emitting thread.  Buffers are capped at
// kMaxTraceEventsPerThread; overflow drops events and records a warning.
//
// Emitted JSON: {"traceEvents":[{"name":...,"cat":"llpmst","ph":"X",
// "ts":<us>,"dur":<us>,"pid":0,"tid":<n>}, ...],"displayTimeUnit":"ms"}
// plus "C" (counter-track) events for per-round series.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace llpmst::obs {

#if LLPMST_OBS
inline constexpr std::size_t kMaxTraceEventsPerThread = 1u << 20;

/// Clears previous events and begins collecting.
void trace_start();
/// Stops collecting.  Call (after joining parallel work) before reading.
void trace_stop();
[[nodiscard]] bool trace_collecting();

/// Appends a complete ("ph":"X") span to the calling thread's buffer.
/// No-op unless collecting.  Timestamps come from obs::now_us().
void trace_emit(std::string_view name, std::uint64_t ts_us,
                std::uint64_t dur_us);
/// Appends a counter-track ("ph":"C") sample — a stepped series in the
/// trace viewer, e.g. active edges per Boruvka round.
void trace_emit_counter(std::string_view name, std::uint64_t ts_us,
                        std::uint64_t value);

/// Appends an event with an explicit pid/tid instead of the calling
/// thread's shard id — how the scheduler timelines render as their own
/// per-worker tracks (pid 1) next to the phase spans (pid 0).  `ph` is 'X'
/// (complete span, dur_us used) or 'i' (instant, dur_us ignored).
void trace_emit_for(std::uint32_t pid, std::uint32_t tid,
                    std::string_view name, char ph, std::uint64_t ts_us,
                    std::uint64_t dur_us);

/// Number of events currently buffered across all threads.
[[nodiscard]] std::size_t trace_event_count();
#else
inline void trace_start() {}
inline void trace_stop() {}
[[nodiscard]] inline bool trace_collecting() { return false; }
inline void trace_emit(std::string_view, std::uint64_t, std::uint64_t) {}
inline void trace_emit_counter(std::string_view, std::uint64_t,
                               std::uint64_t) {}
inline void trace_emit_for(std::uint32_t, std::uint32_t, std::string_view,
                           char, std::uint64_t, std::uint64_t) {}
[[nodiscard]] inline std::size_t trace_event_count() { return 0; }
#endif  // LLPMST_OBS

/// Serializes everything collected so far (a valid, possibly empty, trace
/// document even when obs is compiled out).
[[nodiscard]] std::string trace_json();

/// Writes trace_json() to `path`.  Returns false and sets *error on I/O
/// failure.
bool write_trace_json(const std::string& path, std::string* error);

}  // namespace llpmst::obs
