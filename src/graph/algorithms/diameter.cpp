#include "graph/algorithms/diameter.hpp"

#include "graph/algorithms/bfs.hpp"
#include "support/assert.hpp"

namespace llpmst {

DiameterEstimate estimate_diameter(const CsrGraph& g, VertexId start,
                                   int sweeps) {
  DiameterEstimate est;
  if (g.num_vertices() == 0) return est;
  LLPMST_CHECK(start < g.num_vertices());

  VertexId from = start;
  for (int s = 0; s < sweeps; ++s) {
    const BfsResult r = bfs(g, from);
    VertexId far = from;
    std::uint32_t far_depth = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (r.depth[v] != kInvalidVertex && r.depth[v] > far_depth) {
        far_depth = r.depth[v];
        far = v;
      }
    }
    if (far_depth >= est.hops) {
      est.hops = far_depth;
      est.from = from;
      est.to = far;
    }
    if (far == from) break;  // singleton component
    from = far;
  }
  return est;
}

}  // namespace llpmst
