#include "obs/trace.hpp"

#include <cstdio>
#include <mutex>
#include <vector>

namespace llpmst::obs {

#if LLPMST_OBS

namespace {

struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  // for "C" events: the counter value
  std::uint32_t pid = 0;     // 0 = phase spans; 1 = scheduler timelines
  std::uint32_t tid = 0;
  char ph = 'X';
};

// One buffer per emitting thread.  The owning thread appends; the reader
// (trace_json, after trace_stop) walks all buffers.  The per-buffer mutex is
// uncontended in steady state — it exists so a read overlapping a straggler
// emit is defined behaviour rather than a race.
struct TraceBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
};

struct TraceState {
  std::atomic<bool> collecting{false};
  std::mutex buffers_mu;
  std::vector<std::unique_ptr<TraceBuffer>> buffers;  // stable addresses
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: outlives all threads
  return *s;
}

TraceBuffer& local_buffer() {
  thread_local TraceBuffer* buf = [] {
    TraceState& s = state();
    std::lock_guard lock(s.buffers_mu);
    s.buffers.push_back(std::make_unique<TraceBuffer>());
    return s.buffers.back().get();
  }();
  return *buf;
}

void emit_full(std::string_view name, std::uint64_t ts_us,
               std::uint64_t dur_us, std::uint32_t pid, std::uint32_t tid,
               char ph) {
  TraceBuffer& buf = local_buffer();
  std::lock_guard lock(buf.mu);
  if (buf.events.size() >= kMaxTraceEventsPerThread) {
    if (buf.dropped++ == 0) {
      add_warning("trace buffer full on one thread; dropping further events");
    }
    return;
  }
  buf.events.push_back(TraceEvent{std::string(name), ts_us, dur_us, pid, tid,
                                  ph});
}

void emit(std::string_view name, std::uint64_t ts_us, std::uint64_t dur_us,
          char ph) {
  emit_full(name, ts_us, dur_us, 0, static_cast<std::uint32_t>(shard_id()),
            ph);
}

}  // namespace

void trace_start() {
  TraceState& s = state();
  {
    std::lock_guard lock(s.buffers_mu);
    for (auto& buf : s.buffers) {
      std::lock_guard bl(buf->mu);
      buf->events.clear();
      buf->dropped = 0;
    }
  }
  s.collecting.store(true, std::memory_order_release);
}

void trace_stop() {
  state().collecting.store(false, std::memory_order_release);
}

bool trace_collecting() {
  return state().collecting.load(std::memory_order_relaxed);
}

void trace_emit(std::string_view name, std::uint64_t ts_us,
                std::uint64_t dur_us) {
  if (!trace_collecting()) return;
  emit(name, ts_us, dur_us, 'X');
}

void trace_emit_counter(std::string_view name, std::uint64_t ts_us,
                        std::uint64_t value) {
  if (!trace_collecting()) return;
  emit(name, ts_us, value, 'C');
}

void trace_emit_for(std::uint32_t pid, std::uint32_t tid,
                    std::string_view name, char ph, std::uint64_t ts_us,
                    std::uint64_t dur_us) {
  if (!trace_collecting()) return;
  emit_full(name, ts_us, dur_us, pid, tid, ph);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::size_t n = 0;
  std::lock_guard lock(s.buffers_mu);
  for (auto& buf : s.buffers) {
    std::lock_guard bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::string trace_json() {
  TraceState& s = state();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char line[160];
  std::lock_guard lock(s.buffers_mu);
  for (auto& buf : s.buffers) {
    std::lock_guard bl(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      out += json_quote(e.name);
      if (e.ph == 'C') {
        std::snprintf(line, sizeof(line),
                      ",\"cat\":\"llpmst\",\"ph\":\"C\",\"ts\":%llu,"
                      "\"pid\":%u,\"tid\":%u,\"args\":{\"value\":%llu}}",
                      static_cast<unsigned long long>(e.ts_us), e.pid, e.tid,
                      static_cast<unsigned long long>(e.dur_us));
      } else if (e.ph == 'i') {
        // Instant event, thread-scoped ("s":"t").
        std::snprintf(line, sizeof(line),
                      ",\"cat\":\"llpmst\",\"ph\":\"i\",\"ts\":%llu,"
                      "\"s\":\"t\",\"pid\":%u,\"tid\":%u}",
                      static_cast<unsigned long long>(e.ts_us), e.pid, e.tid);
      } else {
        std::snprintf(line, sizeof(line),
                      ",\"cat\":\"llpmst\",\"ph\":\"X\",\"ts\":%llu,"
                      "\"dur\":%llu,\"pid\":%u,\"tid\":%u}",
                      static_cast<unsigned long long>(e.ts_us),
                      static_cast<unsigned long long>(e.dur_us), e.pid,
                      e.tid);
      }
      out += line;
    }
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

#else  // !LLPMST_OBS

std::string trace_json() {
  return "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}";
}

#endif  // LLPMST_OBS

bool write_trace_json(const std::string& path, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  const std::string json = trace_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok && error != nullptr) *error = "short write to " + path;
  return ok;
}

}  // namespace llpmst::obs
