#include "mst/mst_result.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace llpmst {

void finalize_result(const CsrGraph& g, MstResult& r) {
  std::sort(r.edges.begin(), r.edges.end());
  LLPMST_ASSERT(std::adjacent_find(r.edges.begin(), r.edges.end()) ==
                r.edges.end());
  r.total_weight = 0;
  for (const EdgeId e : r.edges) {
    LLPMST_ASSERT(e < g.num_edges());
    r.total_weight += g.edge(e).w;
  }
  r.num_trees = g.num_vertices() - r.edges.size();
}

}  // namespace llpmst
