// BFS, connected components (sequential / parallel / LLP), degree stats.
#include <gtest/gtest.h>

#include <vector>

#include "graph/algorithms/bfs.hpp"
#include "graph/algorithms/connected_components.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_components.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

// ---------------------------------------------------------------- bfs

TEST(Bfs, PathGraphDepths) {
  const CsrGraph g = CsrGraph::build(make_path(6));
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(r.depth[v], v);
    EXPECT_EQ(r.parent[v], v == 0 ? 0u : v - 1);
  }
  EXPECT_EQ(r.order.size(), 6u);
  EXPECT_EQ(r.order.front(), 0u);
}

TEST(Bfs, FromMiddleVertex) {
  const CsrGraph g = CsrGraph::build(make_path(7));
  const BfsResult r = bfs(g, 3);
  EXPECT_EQ(r.depth[3], 0u);
  EXPECT_EQ(r.depth[0], 3u);
  EXPECT_EQ(r.depth[6], 3u);
}

TEST(Bfs, UnreachedVerticesMarked) {
  EdgeList list(5);
  list.add_edge(0, 1, 1);
  list.add_edge(3, 4, 1);
  list.normalize();
  const CsrGraph g = CsrGraph::build(list);
  const BfsResult r = bfs(g, 0);
  EXPECT_EQ(r.depth[1], 1u);
  EXPECT_EQ(r.depth[2], kInvalidVertex);
  EXPECT_EQ(r.parent[3], kInvalidVertex);
  EXPECT_EQ(r.order.size(), 2u);
}

TEST(Bfs, SubgraphFilterRestrictsTraversal) {
  // Cycle 0-1-2-3-0; allow only the path edges 0-1, 1-2.
  const EdgeList list = make_cycle(4, 10);
  const CsrGraph g = CsrGraph::build(list);
  std::vector<bool> allowed(g.num_edges(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const WeightedEdge& we = g.edge(e);
    if ((we.u == 0 && we.v == 1) || (we.u == 1 && we.v == 2)) {
      allowed[e] = true;
    }
  }
  const BfsResult r = bfs_subgraph(g, 0, allowed);
  EXPECT_EQ(r.depth[1], 1u);
  EXPECT_EQ(r.depth[2], 2u);
  EXPECT_EQ(r.depth[3], kInvalidVertex);
}

TEST(Bfs, StarDepthsAllOne) {
  const CsrGraph g = CsrGraph::build(make_star(9));
  const BfsResult r = bfs(g, 0);
  for (VertexId v = 1; v < 9; ++v) EXPECT_EQ(r.depth[v], 1u);
}

// ---------------------------------------------------------------- cc

TEST(ConnectedComponents, ForestLabels) {
  const EdgeList g = make_forest(3, 10, 5);
  const ComponentsResult r = connected_components(g);
  EXPECT_EQ(r.num_components, 3u);
  for (VertexId v = 0; v < 30; ++v) {
    EXPECT_EQ(r.label[v], (v / 10) * 10);  // min id of each block
  }
}

TEST(ConnectedComponents, SingletonsAndEmpty) {
  const ComponentsResult r = connected_components(EdgeList(4));
  EXPECT_EQ(r.num_components, 4u);
  const ComponentsResult e = connected_components(EdgeList(0));
  EXPECT_EQ(e.num_components, 0u);
  EXPECT_FALSE(is_connected(EdgeList(0)));
}

class CcThreads : public testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Threads, CcThreads, testing::Values(1, 2, 4, 8));

TEST_P(CcThreads, ParallelMatchesSequentialOnRandomGraphs) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 800;
    p.num_edges = 900;  // below the connectivity threshold: many components
    p.seed = seed;
    const EdgeList list = generate_erdos_renyi(p);
    const ComponentsResult seq = connected_components(list);
    const ComponentsResult par = connected_components_parallel(list, pool);
    EXPECT_EQ(par.num_components, seq.num_components) << "seed " << seed;
    EXPECT_EQ(par.label, seq.label) << "seed " << seed;
  }
}

TEST_P(CcThreads, LlpComponentsMatchesSequential) {
  ThreadPool pool(static_cast<std::size_t>(GetParam()));
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 600;
    p.num_edges = 700;
    p.seed = seed + 100;
    const EdgeList list = generate_erdos_renyi(p);
    const CsrGraph g = CsrGraph::build(list);
    const ComponentsResult seq = connected_components(list);
    const LlpComponentsResult llp = llp_connected_components(g, pool);
    EXPECT_TRUE(llp.llp.converged);
    EXPECT_EQ(llp.num_components, seq.num_components) << "seed " << seed;
    EXPECT_EQ(llp.label, seq.label) << "seed " << seed;
  }
}

// ---------------------------------------------------------------- stats

TEST(DegreeStats, KnownValuesOnFigure1) {
  const CsrGraph g = CsrGraph::build(make_paper_figure1());
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 5u);
  EXPECT_EQ(s.num_edges, 7u);
  EXPECT_EQ(s.min_degree, 2u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 14.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.edges_per_vertex, 7.0 / 5.0);
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_EQ(s.min_weight, 2u);
  EXPECT_EQ(s.max_weight, 11u);
  EXPECT_FALSE(describe(s).empty());
}

TEST(DegreeStats, EmptyGraph) {
  const CsrGraph g = CsrGraph::build(EdgeList(0));
  const GraphStats s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 0u);
  EXPECT_EQ(s.num_edges, 0u);
}

}  // namespace
}  // namespace llpmst
