// LLP Bellman-Ford (framework-transfer demo) against Dijkstra.
#include <gtest/gtest.h>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_shortest_path.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

class LlpSssp : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};
INSTANTIATE_TEST_SUITE_P(Threads, LlpSssp, testing::Values(1, 2, 4));

TEST_P(LlpSssp, PathGraphDistances) {
  const CsrGraph g = csr(make_path(20, 3));  // uniform weight 3
  const ShortestPathResult r = llp_shortest_paths(g, pool_, 0);
  EXPECT_TRUE(r.llp.converged);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(r.dist[v], static_cast<Dist>(v) * 3) << "v=" << v;
  }
}

TEST_P(LlpSssp, MatchesDijkstraOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ErdosRenyiParams p;
    p.num_vertices = 300;
    p.num_edges = 1200;
    p.max_weight = 50;  // small weights keep chaotic sweeps quick
    p.seed = seed;
    const CsrGraph g = csr(generate_erdos_renyi(p));
    const ShortestPathResult llp = llp_shortest_paths(g, pool_, 0);
    const std::vector<Dist> ref = dijkstra(g, 0);
    ASSERT_EQ(llp.dist, ref) << "seed " << seed;
  }
}

TEST_P(LlpSssp, RoadGraph) {
  RoadParams p;
  p.width = 24;
  p.height = 24;
  p.unit = 20;  // keep distances small for the chaotic iteration
  const CsrGraph g = csr(generate_road_network(p));
  const ShortestPathResult llp = llp_shortest_paths(g, pool_, 0);
  EXPECT_EQ(llp.dist, dijkstra(g, 0));
}

TEST_P(LlpSssp, UnreachableVerticesEndAtInfinity) {
  EdgeList list(5);
  list.add_edge(0, 1, 2);
  list.add_edge(3, 4, 2);
  list.normalize();
  const CsrGraph g = csr(list);
  const ShortestPathResult r = llp_shortest_paths(g, pool_, 0);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], 2u);
  EXPECT_EQ(r.dist[2], kUnreachableDist);  // isolated
  EXPECT_EQ(r.dist[3], kUnreachableDist);
  EXPECT_EQ(r.dist[4], kUnreachableDist);
  // Dijkstra agrees on unreachability.
  const auto ref = dijkstra(g, 0);
  EXPECT_EQ(ref[3], kUnreachableDist);
}

TEST_P(LlpSssp, SourceChoiceRespected) {
  const CsrGraph g = csr(make_cycle(9, 4));
  const ShortestPathResult r = llp_shortest_paths(g, pool_, 4);
  EXPECT_EQ(r.dist[4], 0u);
  EXPECT_EQ(r.dist[3], 4u);
  EXPECT_EQ(r.dist[5], 4u);
  // Around the cycle both ways: min(hops_cw, hops_ccw) * 4.
  EXPECT_EQ(r.dist[0], 16u);
  EXPECT_EQ(r.dist[8], 16u);
}

TEST(LlpSsspStats, ReportsSweeps) {
  ThreadPool pool(2);
  const CsrGraph g = csr(make_path(50, 1));
  const ShortestPathResult r = llp_shortest_paths(g, pool, 0);
  EXPECT_GE(r.llp.sweeps, 2u);  // propagation + quiescence detection
  EXPECT_GT(r.llp.advances, 0u);
}

}  // namespace
}  // namespace llpmst
