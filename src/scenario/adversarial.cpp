#include "scenario/adversarial.hpp"

#include <algorithm>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "support/random.hpp"

namespace llpmst {

EdgeList make_bundle_heavy(const BundleHeavyParams& p) {
  const std::uint32_t k = std::max(p.clusters, 2u);
  const std::uint32_t s = std::max(p.cluster_size, 2u);
  const std::uint32_t width = std::max(p.bundle_width, 1u);
  const std::size_t n = static_cast<std::size_t>(k) * s;
  EdgeList list(n);
  Xoshiro256 rng(SplitMix64::mix(p.seed ^ 0xb0adull));

  // Light intra-cluster paths with globally distinct small weights: round 1
  // of any Boruvka-style contraction collapses each cluster (every path
  // edge is some vertex's lightest incident edge).
  Weight w = 1;
  for (std::uint32_t c = 0; c < k; ++c) {
    const VertexId base = c * s;
    for (std::uint32_t i = 0; i + 1 < s; ++i) {
      list.add_edge(base + i, base + i + 1, w++);
    }
  }

  // Heavy inter-cluster bundles between DISTINCT vertex pairs, so
  // normalize() keeps every one: after round 1 they all become parallel
  // edges of one super-vertex pair.  Consecutive clusters get a full
  // bundle (keeps the graph connected); a few random extra cluster pairs
  // get one too.
  const Weight heavy_base = w + 1000;
  const auto add_bundle = [&](std::uint32_t ca, std::uint32_t cb) {
    for (std::uint32_t i = 0; i < width; ++i) {
      // Spread endpoints across the clusters; distinctness comes from i.
      const VertexId u = ca * s + (i % s);
      const VertexId v = cb * s + ((i / s + i) % s);
      const Weight hw =
          heavy_base + static_cast<Weight>(rng.next() % 64) + i % 7;
      list.add_edge(u, v, hw);
    }
  };
  for (std::uint32_t c = 0; c + 1 < k; ++c) add_bundle(c, c + 1);
  for (std::uint32_t extra = 0; extra < k / 2; ++extra) {
    const auto ca = static_cast<std::uint32_t>(rng.next() % k);
    const auto cb = static_cast<std::uint32_t>(rng.next() % k);
    if (ca != cb) add_bundle(std::min(ca, cb), std::max(ca, cb));
  }

  list.normalize();
  return list;
}

EdgeList make_near_duplicate_weights(const NearDuplicateParams& p) {
  ErdosRenyiParams er;
  er.num_vertices = p.num_vertices;
  er.num_edges = p.num_edges;
  er.max_weight = 1;  // reassigned below; keeps the topology draw cheap
  er.seed = p.seed;
  EdgeList list = generate_erdos_renyi(er);

  // Re-weight into the [base, base + spread] collision band.  Weights come
  // from the generator's own seed stream so (params, seed) stays the whole
  // story.
  Xoshiro256 rng(SplitMix64::mix(p.seed ^ 0xd0bbe1ull));
  const Weight spread = p.spread;
  for (WeightedEdge& e : list.edges()) {
    e.w = p.base + (spread == 0
                        ? 0
                        : static_cast<Weight>(rng.next() % (spread + 1)));
  }
  return list;
}

EdgeList make_geo_road_hybrid(const GeoRoadHybridParams& p) {
  RoadParams road;
  road.width = p.road_width;
  road.height = p.road_height;
  road.seed = p.seed;
  EdgeList grid = generate_road_network(road);

  GeometricParams geo;
  geo.num_vertices = p.geo_vertices;
  geo.neighbors = p.geo_neighbors;
  geo.seed = p.seed + 1;
  EdgeList cloud = generate_geometric(geo);

  // Disjoint union: cloud vertices are appended after the grid's.
  const std::size_t offset = grid.num_vertices();
  EdgeList list(offset + cloud.num_vertices());
  list.reserve(grid.num_edges() + cloud.num_edges() + p.bridges);
  for (const WeightedEdge& e : grid.edges()) list.add_edge(e.u, e.v, e.w);
  for (const WeightedEdge& e : cloud.edges()) {
    list.add_edge(e.u + offset, e.v + offset, e.w);
  }

  // Random bridges stitch the morphologies (at least one, so the result is
  // connected given both halves are).
  Xoshiro256 rng(SplitMix64::mix(p.seed ^ 0xb41d6eull));
  const std::uint32_t bridges = std::max(p.bridges, 1u);
  for (std::uint32_t i = 0; i < bridges; ++i) {
    const auto u = static_cast<VertexId>(rng.next() % offset);
    const auto v = static_cast<VertexId>(
        offset + rng.next() % (list.num_vertices() - offset));
    list.add_edge(u, v, static_cast<Weight>(1 + rng.next() % (1u << 16)));
  }

  list.normalize();
  return list;
}

}  // namespace llpmst
