// DRAM-bandwidth phase accounting, derived from the hardware counters the
// obs layer already collects: each phase's last-level cache-miss delta
// (ScopedHwCounters, see obs/hw_counters.hpp) times the cache-line size
// estimates the bytes that phase moved through DRAM; dividing by the
// phase's wall time (snapshot_phases()) gives an estimated sustained
// bandwidth, and instructions-per-byte gives a roofline-style arithmetic
// intensity from which each phase gets a compute-vs-memory-bound verdict.
//
// These are *estimates*: PERF_COUNT_HW_CACHE_MISSES counts LLC misses, so
// prefetched lines and write-allocate traffic are undercounted (treat
// est_bytes as a lower bound), and the verdict is a coarse triage signal —
// "which phases should the next perf PR attack with a cache-blocking or
// layout change" — not a calibrated roofline.  The verdict thresholds are
// deliberately conservative: phases with too few samples to judge say
// "unknown" instead of guessing.
//
// Degradation contract (same as hw_counters): bandwidth_snapshot() never
// fails.  When the counter group was unavailable (or the build is
// LLPMST_OBS=0) it returns {available:false, reason}; the report
// serializes that as the explicit shape instead of dropping the section.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/hw_counters.hpp"
#include "obs/metrics.hpp"

namespace llpmst::obs {

/// Bytes per DRAM transfer (one cache line) used for the estimate; 64 on
/// every x86-64 and most AArch64 parts we target.
inline constexpr std::uint64_t kCacheLineBytes = 64;

/// Roofline-style triage verdict for one phase.
enum class BoundVerdict : std::uint8_t {
  kUnknown = 0,       // missing counters or too little signal to judge
  kComputeBound = 1,  // high arithmetic intensity: attack the instructions
  kMemoryBound = 2,   // low arithmetic intensity: attack the data movement
};

[[nodiscard]] const char* bound_verdict_name(BoundVerdict v);

/// One phase's estimated memory traffic.
struct PhaseBandwidth {
  std::string name;  // the PhaseTimer path (joins hw.phases / phases)
  std::uint64_t cache_misses = 0;
  std::uint64_t est_bytes = 0;     // cache_misses * kCacheLineBytes
  double wall_ms = 0.0;            // from the phase-timer aggregate
  double est_gbps = 0.0;           // est_bytes / wall_s / 1e9 (0 if no wall)
  double instr_per_byte = 0.0;     // arithmetic intensity (0 if unknown)
  BoundVerdict verdict = BoundVerdict::kUnknown;
};

struct BandwidthSnapshot {
  bool available = false;
  std::string unavailable_reason;  // non-empty iff !available
  std::uint64_t line_bytes = kCacheLineBytes;
  std::vector<PhaseBandwidth> phases;  // sorted by est_bytes desc
};

#if LLPMST_OBS

/// Arithmetic-intensity threshold for the verdict: below ~8 retired
/// instructions per DRAM byte a modern core is waiting on memory, well
/// above it on execution.  Chosen from machine balance (a few IPC at a few
/// GHz against tens of GB/s) — see docs/observability.md.
inline constexpr double kMemoryBoundInstrPerByte = 8.0;
/// Phases that moved less than this much estimated traffic stay "unknown":
/// a handful of misses is noise, not a roofline position.
inline constexpr std::uint64_t kMinBytesForVerdict = 1u << 20;

/// Joins the per-phase hw-counter aggregates with the phase-timer wall
/// times into bandwidth estimates.  `hw` is the run-level sample (for the
/// availability gate); pass the same pointer the report serializer got.
[[nodiscard]] BandwidthSnapshot bandwidth_snapshot(const HwSample* hw);

#else  // !LLPMST_OBS

inline BandwidthSnapshot bandwidth_snapshot(const HwSample*) {
  BandwidthSnapshot s;
  s.unavailable_reason = "observability compiled out (LLPMST_OBS=0)";
  return s;
}

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
