#include "obs/critical_path.hpp"

#include <algorithm>
#include <map>

#include "obs/trace.hpp"

namespace llpmst::obs {

namespace {

/// Largest power of two <= v (v >= 1): the grain histogram bucket key.
std::uint64_t pow2_floor(std::uint64_t v) {
  std::uint64_t p = 1;
  while ((p << 1) != 0 && (p << 1) <= v) p <<= 1;
  return p;
}

}  // namespace

SchedulerSummary analyze_sched(const SchedSnapshot& snap) {
  SchedulerSummary sum;
  sum.dropped_events = snap.dropped;
  if (snap.events.empty()) return sum;
  sum.has_events = true;

  std::map<std::uint32_t, WorkerBreakdown> workers;
  std::map<std::uint64_t, std::uint64_t> grains;
  // Busy-interval boundaries for the critical-path sweep: (+1 at a task
  // span's start, -1 at its end).
  std::vector<std::pair<std::uint64_t, int>> edges;
  std::uint64_t t_min = UINT64_MAX, t_max = 0;

  for (const SchedEvent& e : snap.events) {
    WorkerBreakdown& w = workers[e.worker];
    w.worker = e.worker;
    t_min = std::min(t_min, e.ts_us);
    t_max = std::max(t_max, e.ts_us);
    switch (e.kind) {
      case SchedEventKind::kTask:
        w.busy_us += e.value;
        ++w.tasks;
        t_max = std::max(t_max, e.ts_us + e.value);
        edges.emplace_back(e.ts_us, +1);
        edges.emplace_back(e.ts_us + e.value, -1);
        break;
      case SchedEventKind::kIdle:
        w.idle_us += e.value;
        t_max = std::max(t_max, e.ts_us + e.value);
        break;
      case SchedEventKind::kStealAttempt:
        w.steal_attempts += e.value;
        break;
      case SchedEventKind::kStealSuccess:
        w.steal_attempts += e.value;
        w.steal_successes += e.value;
        break;
      case SchedEventKind::kGrain:
        ++grains[pow2_floor(std::max<std::uint64_t>(e.value, 1))];
        break;
      case SchedEventKind::kGrainSerial:
        ++grains[0];  // bucket 0 = "ran inline"
        break;
    }
  }

  sum.span_us = t_max - t_min;
  for (auto& [id, w] : workers) {
    sum.busy_us += w.busy_us;
    sum.idle_us += w.idle_us;
    sum.steal_attempts += w.steal_attempts;
    sum.steal_successes += w.steal_successes;
    sum.workers.push_back(w);
  }
  for (const auto& [bucket, count] : grains) {
    sum.grain_hist.emplace_back(bucket, count);
  }

  const double denom = static_cast<double>(sum.span_us) *
                       static_cast<double>(sum.workers.size());
  // Point events only (span 0): call the moment fully utilized rather than
  // divide by zero — it still satisfies the (0, 1] contract.
  sum.utilization =
      denom > 0.0
          ? std::min(1.0, static_cast<double>(sum.busy_us) / denom)
          : 1.0;
  if (sum.steal_attempts > 0) {
    sum.steal_success_rate = static_cast<double>(sum.steal_successes) /
                             static_cast<double>(sum.steal_attempts);
  }

  // Critical-path sweep: walk the merged busy-interval boundaries and sum
  // the stretches where fewer than two workers were busy.  Per-worker task
  // spans never overlap themselves (regions are not reentrant), so the
  // running count is exactly "workers busy now".
  std::sort(edges.begin(), edges.end());
  int busy_now = 0;
  std::uint64_t prev = t_min;
  std::size_t i = 0;
  while (i < edges.size()) {
    const std::uint64_t t = edges[i].first;
    if (t > prev && busy_now <= 1) sum.critical_path_us += t - prev;
    // Apply every boundary at time t before measuring the next stretch.
    for (; i < edges.size() && edges[i].first == t; ++i) {
      busy_now += edges[i].second;
    }
    prev = t;
  }
  if (t_max > prev && busy_now <= 1) sum.critical_path_us += t_max - prev;

  return sum;
}

SchedulerSummary scheduler_summary() {
  return analyze_sched(snapshot_sched_events());
}

void export_sched_to_trace() {
  if (!trace_collecting()) return;
  const SchedSnapshot snap = snapshot_sched_events();
  for (const SchedEvent& e : snap.events) {
    switch (e.kind) {
      case SchedEventKind::kTask:
        trace_emit_for(1, e.worker, "sched/task", 'X', e.ts_us, e.value);
        break;
      case SchedEventKind::kIdle:
        trace_emit_for(1, e.worker, "sched/idle", 'X', e.ts_us, e.value);
        break;
      case SchedEventKind::kStealSuccess:
        trace_emit_for(1, e.worker, "sched/steal", 'i', e.ts_us, 0);
        break;
      case SchedEventKind::kStealAttempt:
      case SchedEventKind::kGrain:
      case SchedEventKind::kGrainSerial:
        break;  // aggregate-only; they would clutter the timeline
    }
  }
}

}  // namespace llpmst::obs
