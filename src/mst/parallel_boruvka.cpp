#include "mst/parallel_boruvka.hpp"

#include "mst/boruvka_engine.hpp"

namespace llpmst {

MstResult parallel_boruvka(const CsrGraph& g, ThreadPool& pool) {
  // Per-thread persistent scratch: repeated runs (benchmark repetitions, a
  // service loop) reuse the grown capacity and the learned grain feedback
  // instead of re-allocating and re-measuring from scratch every call.
  thread_local BoruvkaScratch scratch;
  BoruvkaConfig config;
  config.jumping = PointerJumping::kSynchronized;
  config.dedup_contracted_edges = true;
  config.obs_label = "parallel_boruvka";
  config.scratch = &scratch;
  return boruvka_engine(g, pool, config);
}

}  // namespace llpmst
