// The framework-transfer claim, measured: the generic LLP engine against the
// classical algorithm for each transfer problem —
//   * connected components: LLP (pointer jumping) vs union-find vs parallel
//     label propagation,
//   * shortest paths: LLP Bellman-Ford vs Dijkstra,
//   * stable marriage: LLP proposals vs Gale-Shapley.
// The point is not that LLP wins everywhere (the paper only claims MST
// wins); it is that one engine reaches competitive performance across
// unrelated problems.
#include <cstdio>

#include "bench_common.hpp"
#include "graph/algorithms/connected_components.hpp"
#include "llp/llp_components.hpp"
#include "llp/llp_market_clearing.hpp"
#include "llp/llp_shortest_path.hpp"
#include "llp/llp_stable_marriage.hpp"
#include "support/timer.hpp"

namespace {

using namespace llpmst;

double time_ms_of(const std::function<void()>& f, int reps) {
  std::vector<double> samples;
  f();  // warmup
  for (int i = 0; i < reps; ++i) {
    Timer t;
    f();
    samples.push_back(t.elapsed_ms());
  }
  return summarize(samples).median;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llpmst::bench;

  CliParser cli("bench_llp_transfer",
                "Generic LLP engine vs classical algorithms on transfer "
                "problems (CC, SSSP, stable marriage)");
  auto& scale = cli.add_int("scale", 15, "RMAT scale for the CC workload");
  auto& grid = cli.add_int("grid", 128, "road grid side for SSSP");
  auto& couples = cli.add_int("couples", 800, "stable marriage instance size");
  auto& threads = cli.add_int("threads", 4, "worker threads");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  ThreadPool pool(static_cast<std::size_t>(threads));
  Table t({"Problem", "Workload", "Classical", "Time", "LLP engine", "Time"});

  {
    const Workload w = make_graph500_workload(static_cast<int>(scale), 1,
                                              /*connect=*/false);
    EdgeList list(w.graph.num_vertices(),
                  {w.graph.edges().begin(), w.graph.edges().end()});
    const double uf_ms = time_ms_of(
        [&] { (void)connected_components(list); }, static_cast<int>(reps));
    const double llp_ms = time_ms_of(
        [&] { (void)llp_connected_components(w.graph, pool); },
        static_cast<int>(reps));
    t.add_row({"Connected components", w.name, "union-find (seq)",
               format_duration_ms(uf_ms), "llp_solve pointer jumping",
               format_duration_ms(llp_ms)});
    // Cross-check once.
    const auto a = connected_components(list);
    const auto b = llp_connected_components(w.graph, pool);
    if (a.label != b.label) {
      std::fprintf(stderr, "FATAL: CC results differ\n");
      return 1;
    }
  }

  {
    RoadParams p;
    p.width = static_cast<std::uint32_t>(grid);
    p.height = static_cast<std::uint32_t>(grid);
    p.unit = 10;  // modest weights: the chaotic iteration is pseudo-poly
    const CsrGraph g = CsrGraph::build(generate_road_network(p));
    const double dij_ms = time_ms_of([&] { (void)dijkstra(g, 0); },
                                     static_cast<int>(reps));
    const double llp_ms = time_ms_of(
        [&] { (void)llp_shortest_paths(g, pool, 0); }, static_cast<int>(reps));
    t.add_row({"Shortest paths", strf("road %lldx%lld",
                                      static_cast<long long>(grid),
                                      static_cast<long long>(grid)),
               "Dijkstra (binary heap)", format_duration_ms(dij_ms),
               "llp_solve Bellman-Ford", format_duration_ms(llp_ms)});
    if (llp_shortest_paths(g, pool, 0).dist != dijkstra(g, 0)) {
      std::fprintf(stderr, "FATAL: SSSP results differ\n");
      return 1;
    }
  }

  {
    const MarriageInstance inst = random_marriage_instance(
        static_cast<std::size_t>(couples), 7);
    const double gs_ms = time_ms_of([&] { (void)gale_shapley(inst); },
                                    static_cast<int>(reps));
    const double llp_ms = time_ms_of(
        [&] { (void)llp_stable_marriage(inst, pool); },
        static_cast<int>(reps));
    t.add_row({"Stable marriage", strf("n=%lld full lists",
                                       static_cast<long long>(couples)),
               "Gale-Shapley (seq)", format_duration_ms(gs_ms),
               "llp_solve proposals", format_duration_ms(llp_ms)});
    if (llp_stable_marriage(inst, pool).wife != gale_shapley(inst)) {
      std::fprintf(stderr, "FATAL: marriage results differ\n");
      return 1;
    }
  }

  {
    const MarketInstance inst = random_market_instance(64, 50, 3);
    const double llp_ms = time_ms_of(
        [&] { (void)llp_market_clearing(inst, pool); },
        static_cast<int>(reps));
    const MarketResult r = llp_market_clearing(inst, pool);
    if (!is_clearing(inst, r.price)) {
      std::fprintf(stderr, "FATAL: prices do not clear\n");
      return 1;
    }
    t.add_row({"Market clearing", "n=64, values<=50",
               "(GDS auction is the classic)", "-", "llp price ascent",
               format_duration_ms(llp_ms)});
  }

  std::printf("LLP framework transfer (threads=%lld)\n\n",
              static_cast<long long>(threads));
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_llp_transfer");
  return 0;
}
