// Common result type for every MST/MSF algorithm in the library.
//
// Because all algorithms order edges by the packed priority (weight, id),
// the minimum spanning forest is unique; each algorithm reports its chosen
// undirected edge ids, canonicalized to ascending order, so results are
// directly comparable with operator== in tests.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/binary_heap.hpp"  // HeapStats
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "support/status.hpp"

namespace llpmst {

/// Instrumentation every algorithm fills in as applicable; the ablation
/// benchmarks report these (Fig. 2's "why is LLP-Prim faster" analysis).
struct MstAlgoStats {
  HeapStats heap;                     // heap traffic (Prim family)
  std::uint64_t fixed_via_heap = 0;   // vertices fixed by a heap pop
  std::uint64_t fixed_via_mwe = 0;    // vertices fixed through the R set
  std::uint64_t staged_in_q = 0;      // deferred heap inserts (LLP-Prim Q)
  std::uint64_t edges_relaxed = 0;    // arc relaxations performed
  std::uint64_t rounds = 0;           // Boruvka rounds / LLP iterations
  std::uint64_t pointer_jumps = 0;    // advance() steps in pointer jumping
  std::uint64_t llp_sweeps = 0;       // worklist/frontier sweeps (LLP family)
  std::uint64_t llp_advances = 0;     // advance() calls, when llp_solve ran
  /// Per-run verdict: anything other than kOk means the result is PARTIAL —
  /// the edge set covers only the work completed before the run stopped
  /// (cancellation, deadline, injected fault, or sweep-cap non-convergence).
  RunOutcome outcome = RunOutcome::kOk;
  bool llp_converged = true;          // false iff an LLP sweep cap was hit
};

/// Folds an algorithm's per-run stats into the process-wide observability
/// counters under "<algo>/..." (e.g. "llp_prim/heap_inserts").  One bulk add
/// per counter per run — hot loops keep using their local stats.  No-op
/// cost when observability is compiled out.
void record_algo_metrics(const char* algo, const MstAlgoStats& s);

struct MstResult {
  /// Chosen undirected edge ids, sorted ascending.
  std::vector<EdgeId> edges;
  /// Sum of weights of the chosen edges.  Meaningless when weight_overflow.
  TotalWeight total_weight = 0;
  /// True if summing the chosen weights overflowed the 64-bit accumulator.
  /// Unreachable with 32-bit weights and < 2^32 edges, but the check keeps
  /// the report honest if Weight ever widens — an overflowed total is
  /// flagged, never silently wrapped.
  bool weight_overflow = false;
  /// Number of trees in the forest (n - |edges| for a valid MSF).
  std::size_t num_trees = 0;
  MstAlgoStats stats;
};

/// Adds `w` into `acc`, detecting unsigned wraparound.  Returns false (and
/// leaves the wrapped value in `acc`) on overflow.  Shared by
/// finalize_result and the verifier so both sides agree on what "overflow"
/// means.
[[nodiscard]] inline bool checked_weight_add(TotalWeight& acc, TotalWeight w) {
#if defined(__GNUC__) || defined(__clang__)
  return !__builtin_add_overflow(acc, w, &acc);
#else
  const TotalWeight before = acc;
  acc += w;
  return acc >= before;
#endif
}

/// Sorts edge ids, sums weights (overflow-checked), and derives num_trees.
/// Every algorithm calls this once at the end.
void finalize_result(const CsrGraph& g, MstResult& r);

}  // namespace llpmst
