// A persistent fork-join thread pool.
//
// This is the runtime substrate the paper gets from Galois/GBBS: a fixed team
// of workers that repeatedly execute data-parallel regions.  The design is a
// *team* pool rather than a task-queue pool: `run_team(f)` wakes every worker
// and runs `f(worker_id)` on each (plus the caller as worker 0), then joins.
// Data-parallel primitives (parallel_for, reduce, scan) are built on top.
//
// Why a team pool: MST rounds are bulk-synchronous data-parallel loops; a
// team dispatch is two atomics per region instead of per-task queue traffic,
// and gives every primitive a stable worker id for per-thread buffers.
//
// Thread-safety: run_team is NOT reentrant (no nested parallel regions) and
// must be called from one thread at a time.  All library entry points take
// the pool by reference, so the caller decides the parallelism degree.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace llpmst {

class ThreadPool {
 public:
  /// Creates a pool that executes team regions with `num_threads` workers in
  /// total (including the calling thread).  `num_threads == 1` spawns no
  /// threads at all: run_team simply invokes f(0) inline, so sequential runs
  /// have zero runtime overhead.
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers, including the caller.
  [[nodiscard]] std::size_t num_threads() const { return num_threads_; }

  /// Runs f(worker_id) on every worker (ids 0..num_threads-1, the calling
  /// thread is id 0) and returns when all have finished.  An exception
  /// escaping f on ANY worker is captured and rethrown here, on the
  /// submitting thread, after the team joins — it never terminates the
  /// process.  When several workers throw, the caller's own exception wins,
  /// then the first captured worker exception; the rest are dropped.  Other
  /// workers are not interrupted, so side effects of the region may be
  /// partially applied — treat a throwing region as poisoned state, not a
  /// transaction.  Hot paths still prefer error codes (CP.2 discipline);
  /// this guarantee exists for failure paths: bad_alloc, injected faults,
  /// bugs that must surface to the submitter instead of aborting a service.
  ///
  /// Dispatch is by borrowed reference (a {object pointer, invoke thunk}
  /// pair), NOT by std::function: team regions are the hottest dispatch
  /// path in the library and a capturing lambda must not cost a heap
  /// allocation per region.  `f` only needs to outlive the call, which the
  /// join guarantees.
  template <typename F>
  void run_team(F&& f) {
    using Fn = std::remove_reference_t<F>;
    run_team_impl(TeamFn{
        const_cast<void*>(static_cast<const void*>(&f)),
        [](void* obj, std::size_t worker_id) {
          (*static_cast<Fn*>(obj))(worker_id);
        }});
  }

  /// A process-wide default pool sized to the hardware concurrency; created
  /// on first use.  Benchmarks construct their own pools per thread-count.
  static ThreadPool& default_pool();

  /// When on (and a trace is collecting), every team region emits one
  /// "pool/region" span per participating worker, which renders the
  /// parallel structure of a run in the trace viewer.  Off by default:
  /// regions are the hottest dispatch path in the library.
  static void set_trace_regions(bool on) {
    trace_regions_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool trace_regions() {
    return trace_regions_.load(std::memory_order_relaxed);
  }

 private:
  /// Borrowed callable: no ownership, no allocation, trivially copyable.
  struct TeamFn {
    void* obj = nullptr;
    void (*invoke)(void*, std::size_t) = nullptr;
  };

  inline static std::atomic<bool> trace_regions_{false};

  void run_team_impl(const TeamFn& fn);
  void worker_loop(std::size_t worker_id);

  std::size_t num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  TeamFn job_;  // valid while a region is in flight (obj != nullptr)
  std::uint64_t epoch_ = 0;        // incremented per region; wakes workers
  std::size_t active_workers_ = 0; // workers still inside the current region
  bool shutdown_ = false;
  // First exception a worker threw in the current region (guarded by
  // mutex_); rethrown by run_team on the submitting thread after the join.
  std::exception_ptr worker_exception_;
};

}  // namespace llpmst
