#include "graph/io/metis.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/io/io_util.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

bool next_token(const char*& cur, const char* end, std::uint64_t& out) {
  while (cur < end && (*cur == ' ' || *cur == '\t' || *cur == '\r')) ++cur;
  if (cur >= end) return false;
  auto [next, ec] = std::from_chars(cur, end, out);
  if (ec != std::errc() || next == cur) return false;
  cur = next;
  return true;
}

/// True iff only whitespace remains — distinguishes "no more tokens" from
/// "a token that failed to parse" (garbage must be an error, not ignored).
bool only_whitespace(const char* cur, const char* end) {
  while (cur < end && (*cur == ' ' || *cur == '\t' || *cur == '\r')) ++cur;
  return cur == end;
}

Status corrupt(std::string message) {
  return {StatusCode::kCorruptInput, std::move(message)};
}

}  // namespace

EdgeListResult read_metis(const std::string& path) {
  EdgeListResult result;
  if (const auto a = LLPMST_FAILPOINT("io/metis"); a != fail::Action::kNone) {
    result.status = io_detail::injected_status(a, "io/metis");
    return result;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.status = {StatusCode::kIoError, "cannot open '" + path + "'"};
    return result;
  }

  std::string line;
  std::size_t line_no = 0;

  // Header (skipping % comments).
  std::uint64_t n = 0, m = 0, fmt = 0;
  for (;;) {
    if (!io_detail::read_line(f, line)) {
      result.status = corrupt("missing header line");
      std::fclose(f);
      return result;
    }
    ++line_no;
    if (line.empty() || line[0] == '%') continue;
    const char* cur = line.data();
    const char* end = line.data() + line.size();
    if (!next_token(cur, end, n) || !next_token(cur, end, m)) {
      result.status =
          corrupt("malformed header at line " + std::to_string(line_no));
      std::fclose(f);
      return result;
    }
    std::uint64_t maybe_fmt = 0;
    if (next_token(cur, end, maybe_fmt)) fmt = maybe_fmt;
    if (!only_whitespace(cur, end)) {
      result.status = corrupt("trailing garbage in header at line " +
                              std::to_string(line_no));
      std::fclose(f);
      return result;
    }
    break;
  }
  if (n >= kInvalidVertex) {
    result.status = corrupt("vertex count exceeds 32-bit id space");
    std::fclose(f);
    return result;
  }
  if (fmt != 0 && fmt != 1) {
    result.status = corrupt("unsupported fmt " + std::to_string(fmt) +
                            " (only edge-weighted fmt 0/1 supported)");
    std::fclose(f);
    return result;
  }
  const bool weighted = (fmt == 1);

  result.graph.ensure_vertices(static_cast<std::size_t>(n));
  // Untrusted header: cap the reservation hint (see dimacs.cpp).
  result.graph.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(m, 1u << 22)));

  std::uint64_t vertex = 0;
  while (vertex < n) {
    if (!io_detail::read_line(f, line)) {
      result.status = corrupt("fewer vertex lines than the header declares");
      std::fclose(f);
      return result;
    }
    ++line_no;
    if (!line.empty() && line[0] == '%') continue;

    const char* cur = line.data();
    const char* end = line.data() + line.size();
    std::uint64_t nbr = 0;
    while (next_token(cur, end, nbr)) {
      std::uint64_t w = 1;
      if (weighted && !next_token(cur, end, w)) {
        result.status =
            corrupt("missing edge weight at line " + std::to_string(line_no));
        std::fclose(f);
        return result;
      }
      if (nbr < 1 || nbr > n || w > 0xffffffffull) {
        result.status = corrupt("neighbor or weight out of range at line " +
                                std::to_string(line_no));
        std::fclose(f);
        return result;
      }
      // Each undirected edge is listed twice; keep one direction.
      if (nbr - 1 > vertex) {
        result.graph.add_edge(static_cast<VertexId>(vertex),
                              static_cast<VertexId>(nbr - 1),
                              static_cast<Weight>(w));
      }
    }
    // next_token stopped: either the line is exhausted or it hit a token
    // that is not a number.  Silently ignoring the latter used to hide
    // corrupt adjacency data.
    if (!only_whitespace(cur, end)) {
      result.status = corrupt("trailing garbage in adjacency at line " +
                              std::to_string(line_no));
      std::fclose(f);
      return result;
    }
    ++vertex;
  }
  std::fclose(f);
  result.graph.normalize();
  // The header's edge count is advisory (self loops / duplicates get
  // dropped); callers can compare num_edges() against expectations.
  return result;
}

Status write_metis(const std::string& path, const EdgeList& list) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return {StatusCode::kIoError, "cannot open '" + path + "' for writing"};
  }

  const std::size_t n = list.num_vertices();
  // Build adjacency (both directions) to emit per-vertex lines.
  std::vector<std::vector<std::pair<VertexId, Weight>>> adj(n);
  for (const WeightedEdge& e : list.edges()) {
    adj[e.u].emplace_back(e.v, e.w);
    adj[e.v].emplace_back(e.u, e.w);
  }

  std::fprintf(f, "%% generated by llpmst\n");
  std::fprintf(f, "%zu %zu 1\n", n, list.num_edges());
  for (std::size_t v = 0; v < n; ++v) {
    bool first = true;
    for (const auto& [to, w] : adj[v]) {
      std::fprintf(f, first ? "%u %u" : " %u %u", to + 1, w);
      first = false;
    }
    std::fputc('\n', f);
  }
  if (std::fclose(f) != 0) {
    return {StatusCode::kIoError, "write error closing '" + path + "'"};
  }
  return Status::Ok();
}

}  // namespace llpmst
