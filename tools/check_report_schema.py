#!/usr/bin/env python3
"""Validate llpmst observability JSON documents against their schemas.

    tools/check_report_schema.py out.json records.bench.jsonl [...]

Understands three document kinds, dispatched on the "schema" field:

  * llpmst-run-report (schema_version 1 through 4) — the --metrics-json
    run report.  Version 2 adds the "hw" (hardware counters, null-safe)
    and "mem" (peak RSS + allocation stats) sections; version 3 adds the
    "rounds" array (per-round solver telemetry) and the "scheduler"
    section (utilization / steal / critical-path summary, null when no
    scheduler events were collected); version 4 adds the "profile"
    section (sampling-profiler phase/stack histograms, null when not
    armed) and the "bandwidth" section (DRAM-bandwidth phase estimates
    derived from hw cache-miss deltas, null when hw was not requested).
    Both v4 sections follow the hw degradation contract: an
    {"available": false, "reason": ...} object when the facility could
    not run.
  * llpmst-bench (schema_version 1) — one structured datapoint per
    benchmark measurement, as emitted by --bench-json and consumed by
    tools/bench_compare.py.  May carry an optional "sched" section
    (null or {utilization, steal_rate}) and an optional "profile"
    section (null or {hz, samples, top_phases, est_gbps}).
  * llpmst-serve-response (schema_version 1) — llpmstd's response
    envelope for control ops (load/unload/list/cancel/healthz) and for
    rejected/cancelled queries: {id, op, status, error, data}.  Executed
    queries instead stream a full llpmst-run-report line carrying an
    extra "request" section ({id, graph, algo, status, error, queue_ms,
    batch, verified}); this checker validates that section whenever it
    is present.  docs/serving.md is the wire-protocol reference.

Files ending in .jsonl are treated as JSON Lines (one document per line,
blank lines and empty files allowed); everything else must hold a single
JSON document or a JSON array of documents.

Exits non-zero (listing every violation) if any document deviates from the
contracts in docs/observability.md / EXPERIMENTS.md.  Uses only the
standard library so CI needs no extra packages.
"""
import json
import sys

# "internal_error" is llpmstd's verdict for a query whose algorithm threw —
# the daemon reports the wreck instead of dying with it.
OUTCOMES = {"ok", "non_converged", "cancelled", "deadline_exceeded",
            "injected_fault", "fallback", "internal_error"}

STATUS_CODES = {"OK", "INVALID_ARGUMENT", "CORRUPT_INPUT", "IO_ERROR",
                "RESOURCE_EXHAUSTED", "CANCELLED", "DEADLINE_EXCEEDED",
                "NON_CONVERGENCE", "INJECTED_FAULT", "INTERNAL"}

HW_COUNTER_FIELDS = ("cycles", "instructions", "cache_references",
                     "cache_misses", "branch_misses")


def make_expect(errors, where):
    def err(msg):
        errors.append(f"{where}: {msg}")

    def expect(cond, msg):
        if not cond:
            err(msg)
        return cond

    return expect


def check_hw_fields(hw, expect, prefix):
    """Validates the per-counter fields shared by the report's hw section
    and its per-phase entries: absent counters are null, present ones are
    non-negative integers; task_clock_ms is null or a number."""
    for key in HW_COUNTER_FIELDS:
        v = hw.get(key, "<missing>")
        expect(v is None or (isinstance(v, int) and v >= 0),
               f"{prefix}.{key} = {v!r} is neither null nor a non-negative "
               "integer")
    tc = hw.get("task_clock_ms", "<missing>")
    expect(tc is None or isinstance(tc, (int, float)),
           f"{prefix}.task_clock_ms = {tc!r} is neither null nor a number")


def check_hw(hw, expect):
    if hw is None:
        return  # --hw-counters not requested
    if not expect(isinstance(hw, dict), "hw is neither null nor an object"):
        return
    avail = hw.get("available")
    if not expect(isinstance(avail, bool),
                  f"hw.available is {avail!r}, not a bool"):
        return
    if not avail:
        expect(isinstance(hw.get("reason"), str) and hw["reason"],
               "hw.available is false but hw.reason is not a non-empty "
               "string")
        return
    check_hw_fields(hw, expect, "hw")
    mr = hw.get("multiplex_ratio")
    expect(isinstance(mr, (int, float)) and 0 <= mr <= 1,
           f"hw.multiplex_ratio = {mr!r} not a number in [0, 1]")
    phases = hw.get("phases")
    if expect(isinstance(phases, list), "hw.phases is not an array"):
        for i, p in enumerate(phases):
            if not expect(isinstance(p, dict),
                          f"hw.phases[{i}] is not an object"):
                continue
            expect(isinstance(p.get("name"), str),
                   f"hw.phases[{i}].name is {p.get('name')!r}")
            expect(isinstance(p.get("count"), int) and p.get("count", 0) >= 1,
                   f"hw.phases[{i}].count is {p.get('count')!r}")
            check_hw_fields(p, expect, f"hw.phases[{i}]")


def check_alloc_section(mem, name, expect, required):
    """Validates mem.<name>, a null-or-{count,bytes,frees} section."""
    section = mem.get(name, "<missing>")
    if section == "<missing>":
        if required:
            expect(False, f"mem.{name} is missing (must be null or an "
                          "object)")
        return
    if section is None:
        return
    if expect(isinstance(section, dict),
              f"mem.{name} is neither null nor an object"):
        for key in ("count", "bytes", "frees"):
            v = section.get(key)
            expect(isinstance(v, int) and v >= 0,
                   f"mem.{name}.{key} = {v!r} is not a non-negative "
                   "integer")


def check_mem(mem, expect, bench_record=False):
    if not expect(isinstance(mem, dict), "mem is not an object"):
        return
    rss = mem.get("peak_rss_bytes")
    expect(isinstance(rss, int) and rss >= 0,
           f"mem.peak_rss_bytes = {rss!r} is not a non-negative integer")
    check_alloc_section(mem, "alloc", expect, required=True)
    # alloc_delta (allocations bracketing the timed reps) is emitted only by
    # bench records; run reports carry cumulative counts alone.
    check_alloc_section(mem, "alloc_delta", expect, required=bench_record)


def check_rounds(rounds, expect):
    """Validates the v3 "rounds" array: always present, possibly empty."""
    if not expect(isinstance(rounds, list), "rounds is not an array"):
        return
    for i, r in enumerate(rounds):
        if not expect(isinstance(r, dict), f"rounds[{i}] is not an object"):
            continue
        expect(isinstance(r.get("label"), str),
               f"rounds[{i}].label is {r.get('label')!r}")
        for key in ("round", "components", "edges", "advances"):
            v = r.get(key)
            expect(isinstance(v, int) and v >= 0,
                   f"rounds[{i}].{key} = {v!r} is not a non-negative integer")
        for key in ("wall_ms", "imbalance"):
            v = r.get(key)
            expect(isinstance(v, (int, float)) and v >= 0,
                   f"rounds[{i}].{key} = {v!r} is not a non-negative number")


def check_scheduler(sched, expect):
    """Validates the v3 "scheduler" section: null (no events) or a summary
    object whose ratios sit in [0, 1] and counts are non-negative ints."""
    if sched == "<missing>":
        expect(False, "scheduler section is missing (must be null or an "
                      "object)")
        return
    if sched is None:
        return  # no scheduler events were collected (e.g. LLPMST_OBS=0)
    if not expect(isinstance(sched, dict),
                  "scheduler is neither null nor an object"):
        return
    for key in ("utilization", "steal_success_rate"):
        v = sched.get(key)
        expect(isinstance(v, (int, float)) and 0 <= v <= 1,
               f"scheduler.{key} = {v!r} is not a number in [0, 1]")
    for key in ("span_us", "busy_us", "idle_us", "steal_attempts",
                "steal_successes", "critical_path_us", "dropped_events"):
        v = sched.get(key)
        expect(isinstance(v, int) and v >= 0,
               f"scheduler.{key} = {v!r} is not a non-negative integer")
    workers = sched.get("workers")
    if expect(isinstance(workers, list) and workers,
              "scheduler.workers is not a non-empty array"):
        for i, w in enumerate(workers):
            if not expect(isinstance(w, dict),
                          f"scheduler.workers[{i}] is not an object"):
                continue
            for key in ("worker", "busy_us", "idle_us", "tasks",
                        "steal_attempts", "steal_successes"):
                v = w.get(key)
                expect(isinstance(v, int) and v >= 0,
                       f"scheduler.workers[{i}].{key} = {v!r} is not a "
                       "non-negative integer")
    hist = sched.get("grain_hist")
    if expect(isinstance(hist, list), "scheduler.grain_hist is not an array"):
        for i, h in enumerate(hist):
            if not expect(isinstance(h, dict),
                          f"scheduler.grain_hist[{i}] is not an object"):
                continue
            for key in ("grain", "count"):
                v = h.get(key)
                expect(isinstance(v, int) and v >= 0,
                       f"scheduler.grain_hist[{i}].{key} = {v!r} is not a "
                       "non-negative integer")


def check_profile(profile, expect):
    """Validates the v4 "profile" section: null (profiler not armed), an
    {"available": false, "reason"} degradation object, or the full
    phase/stack sample histograms."""
    if profile == "<missing>":
        expect(False, "profile section is missing (must be null or an "
                      "object)")
        return
    if profile is None:
        return  # profiler not armed for this run
    if not expect(isinstance(profile, dict),
                  "profile is neither null nor an object"):
        return
    avail = profile.get("available")
    if not expect(isinstance(avail, bool),
                  f"profile.available is {avail!r}, not a bool"):
        return
    if not avail:
        expect(isinstance(profile.get("reason"), str) and profile["reason"],
               "profile.available is false but profile.reason is not a "
               "non-empty string")
        return
    for key in ("hz", "samples", "dropped"):
        v = profile.get(key)
        expect(isinstance(v, int) and v >= 0,
               f"profile.{key} = {v!r} is not a non-negative integer")
    phases = profile.get("phases")
    if expect(isinstance(phases, list), "profile.phases is not an array"):
        for i, p in enumerate(phases):
            if not expect(isinstance(p, dict),
                          f"profile.phases[{i}] is not an object"):
                continue
            expect(isinstance(p.get("name"), str) and p.get("name"),
                   f"profile.phases[{i}].name is {p.get('name')!r}")
            expect(isinstance(p.get("samples"), int)
                   and p.get("samples", 0) >= 1,
                   f"profile.phases[{i}].samples is {p.get('samples')!r}")
    stacks = profile.get("top_stacks")
    if expect(isinstance(stacks, list),
              "profile.top_stacks is not an array"):
        expect(len(stacks) <= 20,
               f"profile.top_stacks has {len(stacks)} entries (cap is 20)")
        for i, s in enumerate(stacks):
            if not expect(isinstance(s, dict),
                          f"profile.top_stacks[{i}] is not an object"):
                continue
            expect(isinstance(s.get("stack"), str) and s.get("stack"),
                   f"profile.top_stacks[{i}].stack is {s.get('stack')!r}")
            expect(isinstance(s.get("samples"), int)
                   and s.get("samples", 0) >= 1,
                   f"profile.top_stacks[{i}].samples is "
                   f"{s.get('samples')!r}")


BANDWIDTH_VERDICTS = {"unknown", "compute-bound", "memory-bound"}


def check_bandwidth(bw, expect):
    """Validates the v4 "bandwidth" section: null (hw not requested), an
    {"available": false, "reason"} degradation object, or per-phase DRAM
    traffic estimates with roofline-style verdicts."""
    if bw == "<missing>":
        expect(False, "bandwidth section is missing (must be null or an "
                      "object)")
        return
    if bw is None:
        return  # --hw-counters not requested
    if not expect(isinstance(bw, dict),
                  "bandwidth is neither null nor an object"):
        return
    avail = bw.get("available")
    if not expect(isinstance(avail, bool),
                  f"bandwidth.available is {avail!r}, not a bool"):
        return
    if not avail:
        expect(isinstance(bw.get("reason"), str) and bw["reason"],
               "bandwidth.available is false but bandwidth.reason is not a "
               "non-empty string")
        return
    lb = bw.get("line_bytes")
    expect(isinstance(lb, int) and lb >= 1,
           f"bandwidth.line_bytes = {lb!r} is not a positive integer")
    phases = bw.get("phases")
    if expect(isinstance(phases, list), "bandwidth.phases is not an array"):
        for i, p in enumerate(phases):
            if not expect(isinstance(p, dict),
                          f"bandwidth.phases[{i}] is not an object"):
                continue
            expect(isinstance(p.get("name"), str) and p.get("name"),
                   f"bandwidth.phases[{i}].name is {p.get('name')!r}")
            for key in ("cache_misses", "est_bytes"):
                v = p.get(key)
                expect(isinstance(v, int) and v >= 0,
                       f"bandwidth.phases[{i}].{key} = {v!r} is not a "
                       "non-negative integer")
            wall = p.get("wall_ms")
            expect(isinstance(wall, (int, float)) and wall >= 0,
                   f"bandwidth.phases[{i}].wall_ms = {wall!r} is not a "
                   "non-negative number")
            for key in ("est_gbps", "instr_per_byte"):
                v = p.get(key, "<missing>")
                expect(v is None or (isinstance(v, (int, float)) and v >= 0),
                       f"bandwidth.phases[{i}].{key} = {v!r} is neither "
                       "null nor a non-negative number")
            verdict = p.get("verdict")
            expect(verdict in BANDWIDTH_VERDICTS,
                   f"bandwidth.phases[{i}].verdict {verdict!r} not one of "
                   f"{sorted(BANDWIDTH_VERDICTS)}")


def check_serve_error(err, expect, prefix):
    """Validates a serve error field: null, or {code, message} with a code
    from the Status taxonomy."""
    if err is None:
        return
    if not expect(isinstance(err, dict),
                  f"{prefix} is neither null nor an object"):
        return
    expect(err.get("code") in STATUS_CODES,
           f"{prefix}.code {err.get('code')!r} not one of "
           f"{sorted(STATUS_CODES)}")
    expect(isinstance(err.get("message"), str) and err["message"],
           f"{prefix}.message is not a non-empty string")


def check_request_section(req, expect):
    """Validates the "request" section llpmstd splices into per-query run
    reports (absent entirely on batch-tool reports)."""
    if not expect(isinstance(req, dict), "request is not an object"):
        return
    for key in ("id", "graph", "algo"):
        expect(isinstance(req.get(key), str) and req[key],
               f"request.{key} is {req.get(key)!r}, not a non-empty string")
    status = req.get("status")
    expect(status in ("ok", "error"),
           f"request.status is {status!r}, not 'ok' or 'error'")
    err = req.get("error", "<missing>")
    expect(err != "<missing>", "request.error is missing")
    if err != "<missing>":
        check_serve_error(err, expect, "request.error")
        if status == "ok":
            expect(err is None, "request.status is 'ok' but request.error "
                                "is not null")
        elif status == "error":
            expect(isinstance(err, dict),
                   "request.status is 'error' but request.error is null")
    qm = req.get("queue_ms")
    expect(isinstance(qm, (int, float)) and qm >= 0,
           f"request.queue_ms = {qm!r} is not a non-negative number")
    batch = req.get("batch")
    expect(isinstance(batch, int) and batch >= 1,
           f"request.batch = {batch!r} is not a positive integer")
    verified = req.get("verified", "<missing>")
    expect(verified is None or isinstance(verified, bool),
           f"request.verified = {verified!r} is neither null nor a bool")


def check_serve_response(doc, errors, where):
    expect = make_expect(errors, where)
    expect(doc.get("schema_version") == 1,
           f"schema_version is {doc.get('schema_version')!r} (expected 1)")
    rid = doc.get("id", "<missing>")
    expect(rid is None or isinstance(rid, str),
           f"id = {rid!r} is neither null nor a string")
    expect(isinstance(doc.get("op"), str),
           f"op is {doc.get('op')!r}, not a string")
    status = doc.get("status")
    expect(status in ("ok", "error"),
           f"status is {status!r}, not 'ok' or 'error'")
    err = doc.get("error", "<missing>")
    expect(err != "<missing>", "error field is missing")
    if err != "<missing>":
        check_serve_error(err, expect, "error")
        if status == "ok":
            expect(err is None, "status is 'ok' but error is not null")
        elif status == "error":
            expect(isinstance(err, dict), "status is 'error' but error is "
                                          "null")
    data = doc.get("data", "<missing>")
    expect(data is None or isinstance(data, dict),
           f"data = {data!r} is neither null nor an object")


def check_run_report(doc, errors, where):
    expect = make_expect(errors, where)
    version = doc.get("schema_version")
    if not expect(version in (1, 2, 3, 4),
                  f"schema_version is {version!r} (expected 1 through 4)"):
        return

    run = doc.get("run")
    if expect(isinstance(run, dict), "run is not an object"):
        for key, typ in (("tool", str), ("algorithm", str), ("threads", int),
                         ("wall_ms", (int, float)), ("outcome", str),
                         ("fallback_reason", str)):
            expect(isinstance(run.get(key), typ),
                   f"run.{key} is {run.get(key)!r}")
        expect(run.get("outcome") in OUTCOMES,
               f"run.outcome {run.get('outcome')!r} not one of "
               f"{sorted(OUTCOMES)}")
        if run.get("outcome") == "fallback":
            expect(bool(run.get("fallback_reason")),
                   "run.outcome is 'fallback' but run.fallback_reason is "
                   "empty")
        graph = run.get("graph")
        if expect(isinstance(graph, dict), "run.graph is not an object"):
            for key in ("vertices", "edges"):
                expect(isinstance(graph.get(key), int),
                       f"run.graph.{key} is {graph.get(key)!r}")

    algo = doc.get("algo")
    if expect(algo is None or isinstance(algo, dict),
              "algo is neither null nor an object") and algo is not None:
        for sub in ("heap", "llp"):
            expect(isinstance(algo.get(sub), dict),
                   f"algo.{sub} is not an object")
        if isinstance(algo.get("llp"), dict):
            expect(isinstance(algo["llp"].get("converged"), bool),
                   "algo.llp.converged is not a bool")
            expect(algo["llp"].get("outcome") in (OUTCOMES - {"fallback"}),
                   f"algo.llp.outcome {algo['llp'].get('outcome')!r} not a "
                   "run outcome")

    if version >= 2:
        check_hw(doc.get("hw"), expect)
        if expect("mem" in doc, "mem section is missing"):
            check_mem(doc.get("mem"), expect)

    if version >= 3:
        check_rounds(doc.get("rounds"), expect)
        check_scheduler(doc.get("scheduler", "<missing>"), expect)

    if version >= 4:
        check_profile(doc.get("profile", "<missing>"), expect)
        check_bandwidth(doc.get("bandwidth", "<missing>"), expect)

    for section in ("counters", "gauges"):
        values = doc.get(section)
        if expect(isinstance(values, dict), f"{section} is not an object"):
            for name, v in values.items():
                expect(isinstance(v, int) and v >= 0,
                       f"{section}[{name!r}] = {v!r} is not a non-negative "
                       "integer")

    phases = doc.get("phases")
    if expect(isinstance(phases, list), "phases is not an array"):
        for i, p in enumerate(phases):
            if not expect(isinstance(p, dict), f"phases[{i}] not an object"):
                continue
            expect(isinstance(p.get("name"), str),
                   f"phases[{i}].name is {p.get('name')!r}")
            expect(isinstance(p.get("count"), int),
                   f"phases[{i}].count is {p.get('count')!r}")
            expect(isinstance(p.get("total_ms"), (int, float)),
                   f"phases[{i}].total_ms is {p.get('total_ms')!r}")

    warnings = doc.get("warnings")
    if expect(isinstance(warnings, list), "warnings is not an array"):
        for i, w in enumerate(warnings):
            expect(isinstance(w, str), f"warnings[{i}] is {w!r}")

    # llpmstd per-query reports carry a trailing "request" section; batch
    # tools (mst_tool, benches) never emit it.
    if "request" in doc:
        check_request_section(doc.get("request"), expect)


def check_bench_record(doc, errors, where):
    expect = make_expect(errors, where)
    expect(doc.get("schema_version") == 1,
           f"schema_version is {doc.get('schema_version')!r}")
    for key, typ in (("bench", str), ("workload", str), ("algo", str),
                     ("threads", int), ("warmup", int),
                     ("repetitions", int), ("verified", bool)):
        expect(isinstance(doc.get(key), typ),
               f"{key} is {doc.get(key)!r}")

    ms = doc.get("ms")
    if expect(isinstance(ms, dict), "ms is not an object"):
        for key in ("median", "p25", "p75", "iqr", "min", "max", "mean",
                    "stddev"):
            v = ms.get(key)
            expect(isinstance(v, (int, float)),
                   f"ms.{key} is {v!r}, not a number")
        if all(isinstance(ms.get(k), (int, float))
               for k in ("p25", "p75", "iqr")):
            # The emitter prints each number with %.6g, so the identity
            # only holds up to 6-significant-digit rounding.
            tol = 1e-9 + 1e-5 * max(abs(ms["p25"]), abs(ms["p75"]))
            expect(abs((ms["p75"] - ms["p25"]) - ms["iqr"]) <= tol,
                   f"ms.iqr {ms['iqr']!r} != p75 - p25")

    samples = doc.get("samples_ms")
    if expect(isinstance(samples, list) and samples,
              "samples_ms is not a non-empty array"):
        for i, s in enumerate(samples):
            expect(isinstance(s, (int, float)) and s >= 0,
                   f"samples_ms[{i}] = {s!r} is not a non-negative number")
        reps = doc.get("repetitions")
        if isinstance(reps, int):
            expect(len(samples) == reps,
                   f"samples_ms has {len(samples)} entries but "
                   f"repetitions = {reps}")

    if "hw" in doc and doc["hw"] is not None:
        hw = doc["hw"]
        if expect(isinstance(hw, dict), "hw is neither null nor an object"):
            check_hw_fields(hw, expect, "hw")
    mem = doc.get("mem")
    if mem is not None:
        check_mem(mem, expect, bench_record=True)

    # Optional scheduler telemetry (records from before PR 6 lack the key).
    sched = doc.get("sched")
    if sched is not None:
        if expect(isinstance(sched, dict),
                  "sched is neither null nor an object"):
            for key in ("utilization", "steal_rate"):
                v = sched.get(key)
                expect(isinstance(v, (int, float)) and 0 <= v <= 1,
                       f"sched.{key} = {v!r} is not a number in [0, 1]")

    # Optional profiler attribution (--profile; records from before PR 8
    # lack the key).
    prof = doc.get("profile")
    if prof is not None:
        if expect(isinstance(prof, dict),
                  "profile is neither null nor an object"):
            for key in ("hz", "samples"):
                v = prof.get(key)
                expect(isinstance(v, int) and v >= 0,
                       f"profile.{key} = {v!r} is not a non-negative "
                       "integer")
            top = prof.get("top_phases")
            if expect(isinstance(top, list),
                      "profile.top_phases is not an array"):
                expect(len(top) <= 3,
                       f"profile.top_phases has {len(top)} entries "
                       "(cap is 3)")
                for i, p in enumerate(top):
                    if not expect(isinstance(p, dict),
                                  f"profile.top_phases[{i}] is not an "
                                  "object"):
                        continue
                    expect(isinstance(p.get("name"), str) and p.get("name"),
                           f"profile.top_phases[{i}].name is "
                           f"{p.get('name')!r}")
                    expect(isinstance(p.get("samples"), int)
                           and p.get("samples", 0) >= 1,
                           f"profile.top_phases[{i}].samples is "
                           f"{p.get('samples')!r}")
            gbps = prof.get("est_gbps", "<missing>")
            expect(gbps is None
                   or (isinstance(gbps, (int, float)) and gbps >= 0),
                   f"profile.est_gbps = {gbps!r} is neither null nor a "
                   "non-negative number")


def check(doc, errors, where):
    expect = make_expect(errors, where)
    if not expect(isinstance(doc, dict), "top level is not an object"):
        return
    schema = doc.get("schema")
    if schema == "llpmst-run-report":
        check_run_report(doc, errors, where)
    elif schema == "llpmst-bench":
        check_bench_record(doc, errors, where)
    elif schema == "llpmst-serve-response":
        check_serve_response(doc, errors, where)
    else:
        expect(False, f"unknown schema {schema!r} (expected "
                      "'llpmst-run-report', 'llpmst-bench', or "
                      "'llpmst-serve-response')")


def load_docs(path):
    """Yields (where, doc) pairs; raises OSError/JSONDecodeError."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    if path.endswith(".jsonl"):
        for lineno, line in enumerate(text.splitlines(), 1):
            if line.strip():
                yield f"{path}:{lineno}", json.loads(line)
        return
    doc = json.loads(text)
    if isinstance(doc, list):
        for i, d in enumerate(doc):
            yield f"{path}[{i}]", d
    else:
        yield path, doc


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in sys.argv[1:]:
        before = len(errors)
        count = 0
        try:
            for where, doc in load_docs(path):
                check(doc, errors, where)
                count += 1
        except (OSError, json.JSONDecodeError) as e:
            errors.append(f"{path}: unreadable: {e}")
            continue
        if len(errors) == before:
            print(f"{path}: ok ({count} document(s))")
    for e in errors:
        print(f"FAIL {e}", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
