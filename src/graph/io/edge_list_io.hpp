// Plain edge-list I/O in two forms:
//   * text: one "u v w" triple per line, '#' comments — the common exchange
//     format for SNAP-style datasets;
//   * binary: a fixed little-endian header + packed (u, v, w) records — fast
//     reload of generated benchmark graphs between runs.
// Readers validate and report errors via the result struct.
#pragma once

#include <string>

#include "graph/edge_list.hpp"

namespace llpmst {

struct EdgeListResult {
  EdgeList graph;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Reads "u v w" lines; vertex space is max id + 1.  Normalizes.
[[nodiscard]] EdgeListResult read_edge_list_text(const std::string& path);

/// Writes one "u v w" line per edge.  Returns empty string on success.
[[nodiscard]] std::string write_edge_list_text(const std::string& path,
                                               const EdgeList& list);

/// Binary format: magic "LLPM", u32 version, u64 n, u64 m, then m packed
/// {u32 u, u32 v, u32 w} records.  Validates magic/version/truncation.
[[nodiscard]] EdgeListResult read_edge_list_binary(const std::string& path);

[[nodiscard]] std::string write_edge_list_binary(const std::string& path,
                                                 const EdgeList& list);

}  // namespace llpmst
