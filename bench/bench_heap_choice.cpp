// Ablation: heap choice inside the Prim family.  The paper's complexity
// discussion (Section IV) contrasts the indexed decrease-key heap of
// Algorithm 2 with the lazy duplicate-insertion heap of its analysis; this
// bench adds d-ary and pairing heaps to map the whole design space on both
// workload morphologies.
#include <cstdio>

#include "bench_common.hpp"
#include "ds/binary_heap.hpp"
#include "ds/dary_heap.hpp"
#include "ds/lazy_heap.hpp"
#include "ds/pairing_heap.hpp"
#include "mst/prim_heaps.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_heap_choice",
                "Ablation: Prim with binary / d-ary / pairing / lazy heaps");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);

  Table t({"Graph", "Heap", "Median", "Push", "Pop", "Adjust", "SiftSteps"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale)),
  };

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, 1);
    const auto add = [&](const char* heap_name,
                         const std::function<MstResult()>& run) {
      const BenchMeasurement m =
          measure_mst(heap_name, w.graph, reference, run, opts);
      const HeapStats& h = m.last_result.stats.heap;
      t.add_row({w.name, heap_name, time_cell(m.time_ms),
                 format_count(h.pushes), format_count(h.pops),
                 format_count(h.adjusts), format_count(h.sift_steps)});
    };

    add("binary (indexed)", [&] {
      return prim_with_heap<BinaryHeap<EdgePriority>>(w.graph, 0);
    });
    add("2-ary (indexed)", [&] {
      return prim_with_heap<DaryHeap<EdgePriority, 2>>(w.graph, 0);
    });
    add("4-ary (indexed)", [&] {
      return prim_with_heap<DaryHeap<EdgePriority, 4>>(w.graph, 0);
    });
    add("8-ary (indexed)", [&] {
      return prim_with_heap<DaryHeap<EdgePriority, 8>>(w.graph, 0);
    });
    add("pairing", [&] {
      return prim_with_heap<PairingHeap<EdgePriority>>(w.graph, 0);
    });
    add("lazy (Sec. IV)", [&] {
      return prim_with_heap<LazyHeap<EdgePriority>>(w.graph, 0);
    });
  }

  std::printf("Ablation: heap choice in Prim\n\n");
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_heap_choice");
  return 0;
}
