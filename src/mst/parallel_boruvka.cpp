#include "mst/parallel_boruvka.hpp"

#include "core/run_context.hpp"
#include "mst/boruvka_engine.hpp"

namespace llpmst {

MstResult parallel_boruvka(const CsrGraph& g, RunContext& ctx) {
  // Context-owned persistent scratch (the explicit replacement for the old
  // thread_local): repeated runs through one context reuse the grown
  // capacity and the learned grain feedback instead of re-allocating and
  // re-measuring from scratch every call.
  BoruvkaConfig config;
  config.jumping = PointerJumping::kSynchronized;
  config.dedup_contracted_edges = true;
  config.obs_label = "parallel_boruvka";
  config.scratch = &ctx.scratch().get<BoruvkaScratch>();
  return boruvka_engine(g, ctx, config);
}

MstAlgorithm parallel_boruvka_algorithm() {
  return {"parallel-boruvka", "Boruvka",
          "bulk-synchronous Boruvka: atomic MWE, sync jumping, dedup",
          {.parallel = true, .msf_capable = true, .deterministic = true,
           .cancellable = true},
          [](const CsrGraph& g, RunContext& ctx) {
            return parallel_boruvka(g, ctx);
          }};
}

}  // namespace llpmst
