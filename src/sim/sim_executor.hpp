// SimExecutor: the deterministic schedule simulator.
//
// Runs the library's team-region surface with N *virtual* workers whose
// interleaving is decided by a seeded PRNG instead of the OS scheduler.
// Workers are real threads, but a baton protocol serializes them: exactly
// one executes user code at any instant, and at every preemption point
// (chunk grabs, steal loops, failpoint yields — see support/sim_hooks.hpp)
// the running worker parks and the scheduler picks the next runnable one.
// Real threads + a mutex/condvar baton were chosen over fibers because the
// CI matrix runs this under ASan and TSan, which understand threads
// natively and break on raw context switching.
//
// Determinism comes from three pieces working together:
//   * all scheduling decisions flow through one seeded Xoshiro256;
//   * a virtual clock (installed process-wide for the executor's lifetime)
//     advances a fixed quantum per decision, so CancelToken deadlines and
//     GrainFeedback measurements see simulated, replayable time;
//   * scripted fault timelines trigger on decision ordinals or failpoint
//     hit counts — never on wall time.
//
// Every decision is recorded into a ScheduleTrace; constructing with
// Options::replay re-enacts a recorded trace pick-for-pick (divergence —
// a recorded pick that is not runnable, e.g. because the code under test
// changed — is flagged, and scheduling continues with a deterministic
// round-robin fill, which is also the policy past the end of a minimized
// prefix).
//
// Scope and caveats:
//   * one SimExecutor at a time per process (it owns the installed virtual
//     clock), constructed and driven from one thread;
//   * probabilistic failpoint specs ("25%yield") draw from the registry's
//     per-OS-thread RNG and are NOT reproducible across executors — use
//     count specs ("1*return") or timelines in simulation;
//   * workers must never park inside a lock scope (audited invariant of
//     the preemption-point placement), or granting another worker could
//     deadlock the baton.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "parallel/executor.hpp"
#include "sim/schedule_trace.hpp"
#include "sim/timeline.hpp"
#include "support/cancel.hpp"
#include "support/random.hpp"
#include "support/sim_hooks.hpp"
#include "support/virtual_time.hpp"

namespace llpmst::sim {

class SimExecutor : public Executor {
 public:
  struct Options {
    std::uint64_t seed = 0;
    std::size_t workers = 4;
    /// Virtual nanoseconds the clock advances per scheduling decision.
    std::uint64_t step_ns = 1000;
    /// Scripted fault timeline (sim/timeline.hpp grammar); empty = none.
    /// A malformed spec is reported through timeline_error().
    std::string timeline;
    /// When non-null, replay this trace instead of drawing from the PRNG.
    /// seed/workers are taken from the trace.
    const ScheduleTrace* replay = nullptr;
  };

  explicit SimExecutor(const Options& options);
  ~SimExecutor() override;

  [[nodiscard]] std::size_t num_threads() const override { return workers_; }

  /// The schedule executed so far (picks accumulate across regions — one
  /// algorithm run through one executor yields one trace).
  [[nodiscard]] ScheduleTrace trace() const;

  /// Scheduling decisions taken so far.
  [[nodiscard]] std::uint64_t decisions() const { return decisions_; }

  /// True when a replayed trace asked for a worker that was not runnable
  /// (the schedule no longer matches the code under test).
  [[nodiscard]] bool replay_diverged() const { return replay_diverged_; }

  /// Non-empty when Options::timeline failed to parse.
  [[nodiscard]] const std::string& timeline_error() const {
    return timeline_error_;
  }

  /// The virtual clock this executor installed (advance it directly to
  /// expire deadlines from a test).
  [[nodiscard]] vtime::VirtualClock& clock() { return clock_; }

  /// Binds the CancelToken that timeline `cancel` actions trigger.
  void bind_cancel(CancelToken* token) { timeline_.bind(token, &clock_); }

 protected:
  void run_region_impl(const TeamFn& fn) override;

 private:
  enum class WorkerState : std::uint8_t { kIdle, kReady, kRunning, kDone };
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  /// Per-worker hook context: worker id + back pointer for the C-style
  /// simhook table.
  struct HookCtx {
    SimExecutor* exec = nullptr;
    std::size_t worker = 0;
  };

  void worker_thread(std::size_t id);
  void run_worker(std::size_t id, const TeamFn& fn);
  /// Takes one scheduling decision under mutex_: advances the virtual
  /// clock, fires due timeline steps, picks the next runnable worker
  /// (replay > PRNG), records the pick, and grants the baton.
  void schedule_next_locked();
  void worker_preempt(std::size_t id);
  void worker_sleep(std::size_t id, std::uint64_t ns);

  std::size_t workers_;
  std::uint64_t seed_;
  std::uint64_t step_ns_;
  Xoshiro256 rng_;
  vtime::VirtualClock clock_;
  vtime::VirtualClock* prev_clock_ = nullptr;
  Timeline timeline_;
  std::string timeline_error_;

  // Trace / replay.
  std::vector<std::uint8_t> picks_;
  const ScheduleTrace* replay_ = nullptr;
  std::size_t replay_pos_ = 0;
  bool replay_diverged_ = false;
  std::uint64_t decisions_ = 0;
  std::size_t last_pick_ = 0;  // round-robin cursor for the fill policy

  // Baton state (guarded by mutex_).
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<WorkerState> state_;
  std::size_t granted_ = kNone;
  std::size_t unfinished_ = 0;
  bool region_active_ = false;
  std::uint64_t epoch_ = 0;
  bool shutdown_ = false;
  TeamFn job_;
  std::exception_ptr first_exception_;

  std::vector<std::thread> threads_;
  std::vector<HookCtx> hook_ctx_;
  std::vector<simhook::WorkerHooks> hook_tables_;
  const simhook::WorkerHooks* main_prev_hooks_ = nullptr;
};

}  // namespace llpmst::sim
