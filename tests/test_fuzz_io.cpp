// Failure-injection / fuzz tests for the file readers: random truncation and
// byte corruption of valid files must always yield a clean error or a valid
// graph — never a crash, hang, or out-of-range edge list.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators/random_graph.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "graph/io/metis.hpp"
#include "support/failpoint.hpp"
#include "support/random.hpp"
#include "support/status.hpp"

namespace llpmst {
namespace {

class FuzzIo : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_fuzz_" + std::to_string(::getpid()) + "_" +
            testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) { return (dir_ / n).string(); }

  static std::string slurp(const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void spit(const std::string& p, const std::string& content) {
    std::ofstream out(p, std::ios::binary);
    out << content;
  }

  /// Checks an accepted graph is internally consistent.
  static void check_sane(const EdgeList& g) {
    for (const WeightedEdge& e : g.edges()) {
      ASSERT_LT(e.u, g.num_vertices());
      ASSERT_LT(e.v, g.num_vertices());
      ASSERT_NE(e.u, e.v);
    }
    ASSERT_TRUE(g.is_normalized());
  }

  std::filesystem::path dir_;
};

EdgeList sample_graph() {
  ErdosRenyiParams p;
  p.num_vertices = 60;
  p.num_edges = 200;
  p.seed = 3;
  return generate_erdos_renyi(p);
}

TEST_F(FuzzIo, DimacsSurvivesTruncationAtEveryPrefix) {
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());
  const std::string full = slurp(path("g.gr"));
  // Every 37th prefix keeps runtime sane while covering all code paths.
  for (std::size_t len = 0; len < full.size(); len += 37) {
    spit(path("t.gr"), full.substr(0, len));
    const DimacsResult r = read_dimacs(path("t.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, DimacsSurvivesRandomByteCorruption) {
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());
  const std::string full = slurp(path("g.gr"));
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    spit(path("m.gr"), mutated);
    const DimacsResult r = read_dimacs(path("m.gr"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesTruncationAtEveryPrefix) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  const std::string full = slurp(path("g.bin"));
  for (std::size_t len = 0; len <= full.size(); len += 5) {
    spit(path("t.bin"), full.substr(0, len));
    const EdgeListResult r = read_edge_list_binary(path("t.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinarySurvivesRandomByteCorruption) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  const std::string full = slurp(path("g.bin"));
  Xoshiro256 rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.bin"), mutated);
    const EdgeListResult r = read_edge_list_binary(path("m.bin"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, BinaryRejectsHugeDeclaredCounts) {
  // Header declaring 2^40 edges over 4 vertices must fail on truncation,
  // not allocate terabytes.
  std::string blob = "LLPM";
  const std::uint32_t version = 1;
  const std::uint64_t n = 4, m = 1ull << 40;
  blob.append(reinterpret_cast<const char*>(&version), 4);
  blob.append(reinterpret_cast<const char*>(&n), 8);
  blob.append(reinterpret_cast<const char*>(&m), 8);
  spit(path("huge.bin"), blob);
  const EdgeListResult r = read_edge_list_binary(path("huge.bin"));
  EXPECT_FALSE(r.ok());
}

TEST_F(FuzzIo, MetisSurvivesTruncationAndCorruption) {
  ASSERT_TRUE(write_metis(path("g.metis"), sample_graph()).ok());
  const std::string full = slurp(path("g.metis"));
  for (std::size_t len = 0; len < full.size(); len += 41) {
    spit(path("t.metis"), full.substr(0, len));
    const EdgeListResult r = read_metis(path("t.metis"));
    if (r.ok()) check_sane(r.graph);
  }
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    mutated[rng.next_below(mutated.size())] =
        static_cast<char>(rng.next_below(256));
    spit(path("m.metis"), mutated);
    const EdgeListResult r = read_metis(path("m.metis"));
    if (r.ok()) check_sane(r.graph);
  }
}

TEST_F(FuzzIo, TextSurvivesGarbage) {
  Xoshiro256 rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    std::string noise;
    const std::size_t len = rng.next_below(400);
    for (std::size_t i = 0; i < len; ++i) {
      noise.push_back(static_cast<char>(rng.next_below(256)));
    }
    spit(path("noise.txt"), noise);
    const EdgeListResult r = read_edge_list_text(path("noise.txt"));
    if (r.ok()) check_sane(r.graph);
  }
}

// ------------------------------------------------- adversarial inputs

TEST_F(FuzzIo, DimacsLongCommentLineIsNotParsedAsData) {
  // A comment line longer than any internal read buffer: with chunked
  // fgets parsing, the continuation "a 1 9999 1" used to be (mis)read as a
  // fresh arc line.  The reader must treat the whole physical line as one
  // comment.
  std::string file = "p sp 2 1\nc ";
  file.append(2000, 'x');
  file += " a 1 2 7\na 1 2 7\n";
  spit(path("long.gr"), file);
  const DimacsResult r = read_dimacs(path("long.gr"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  ASSERT_EQ(r.graph.num_edges(), 1u);
  EXPECT_EQ(r.graph[0], (WeightedEdge{0, 1, 7}));
}

TEST_F(FuzzIo, TextLongCommentLineIsNotParsedAsData) {
  std::string file = "# ";
  file.append(2000, 'y');
  file += " 0 1 5\n0 1 5\n";
  spit(path("long.txt"), file);
  const EdgeListResult r = read_edge_list_text(path("long.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_edges(), 1u);
}

TEST_F(FuzzIo, TextLongDataLineParsesWhole) {
  // A valid data line padded past the old 512-byte buffer must parse as one
  // line (trailing spaces), not split into a spurious second record.
  std::string file = "0 1 5";
  file.append(1500, ' ');
  file += "\n";
  spit(path("wide.txt"), file);
  const EdgeListResult r = read_edge_list_text(path("wide.txt"));
  ASSERT_TRUE(r.ok()) << r.status.to_string();
  EXPECT_EQ(r.graph.num_edges(), 1u);
}

TEST_F(FuzzIo, NonFiniteAndNegativeWeightsRejected) {
  for (const char* bad : {"0 1 nan\n", "0 1 inf\n", "0 1 -3\n", "0 1 1.5\n",
                          "0 1 0x10\n"}) {
    spit(path("bad.txt"), bad);
    const EdgeListResult r = read_edge_list_text(path("bad.txt"));
    EXPECT_FALSE(r.ok()) << "accepted: " << bad;
    EXPECT_EQ(r.status.code(), StatusCode::kCorruptInput) << bad;
  }
}

TEST_F(FuzzIo, TextOutOfRangeVertexIdRejected) {
  spit(path("big.txt"), "0 4294967295 1\n");  // kInvalidVertex
  const EdgeListResult r = read_edge_list_text(path("big.txt"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("out of range"), std::string::npos);
}

TEST_F(FuzzIo, MetisTrailingGarbageRejected) {
  // "2 1 1" header, then vertex lines with a stray non-numeric token that
  // the old reader silently ignored.
  spit(path("g.metis"), "2 1 1\n2 7 garbage\n1 7\n");
  const EdgeListResult r = read_metis(path("g.metis"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("trailing garbage"), std::string::npos);
}

TEST_F(FuzzIo, BinaryTrailingBytesRejected) {
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  std::string blob = slurp(path("g.bin"));
  blob += "EXTRA";
  spit(path("g.bin"), blob);
  const EdgeListResult r = read_edge_list_binary(path("g.bin"));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status.message().find("trailing bytes"), std::string::npos);
}

// ------------------------------------------------- injected reader faults

TEST_F(FuzzIo, InjectedReaderFaultYieldsStatusNotAbort) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(write_dimacs(path("g.gr"), sample_graph()).ok());

  fail::disarm_all();
  ASSERT_TRUE(fail::arm("io/dimacs", "return"));
  const DimacsResult r1 = read_dimacs(path("g.gr"));
  EXPECT_FALSE(r1.ok());
  EXPECT_EQ(r1.status.code(), StatusCode::kInjectedFault);

  ASSERT_TRUE(fail::arm("io/dimacs", "alloc"));
  const DimacsResult r2 = read_dimacs(path("g.gr"));
  EXPECT_FALSE(r2.ok());
  EXPECT_EQ(r2.status.code(), StatusCode::kResourceExhausted);

  fail::disarm_all();
  const DimacsResult r3 = read_dimacs(path("g.gr"));
  EXPECT_TRUE(r3.ok()) << r3.status.to_string();
}

TEST_F(FuzzIo, InjectedFaultBudgetExpires) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), sample_graph()).ok());
  fail::disarm_all();
  ASSERT_TRUE(fail::arm("io/edge_list_binary", "2*return"));
  EXPECT_FALSE(read_edge_list_binary(path("g.bin")).ok());
  EXPECT_FALSE(read_edge_list_binary(path("g.bin")).ok());
  // Budget exhausted: the third read goes through.
  EXPECT_TRUE(read_edge_list_binary(path("g.bin")).ok());
  EXPECT_EQ(fail::fire_count("io/edge_list_binary"), 2u);
  fail::disarm_all();
}

}  // namespace
}  // namespace llpmst
