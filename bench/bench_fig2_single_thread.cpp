// Reproduces Fig. 2: single-threaded Prim vs LLP-Prim (1T) vs Boruvka (1T)
// on the road graph and the graph500 graph.
//
// Paper's claims to reproduce (shape, not absolute numbers):
//   * both Prim variants are ~3x faster than classic (BFS-per-round)
//     Boruvka single-threaded;
//   * LLP-Prim (1T) beats Prim by ~21% on graph500 and ~27% on the road
//     graph.
// The bench also prints the heap-operation counts that explain the gap.
//
// Measurement methodology: the three algorithms are timed INTERLEAVED
// (prim, llp, boruvka, prim, llp, boruvka, ...) rather than in consecutive
// blocks, so slow drift in machine speed (frequency scaling, noisy-neighbor
// steal time on shared VMs) biases all contestants equally instead of
// whichever ran last.  Medians over the repetitions are reported.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench_common.hpp"
#include "core/run_context.hpp"
#include "mst/registry.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_fig2_single_thread",
                "Reproduces Fig. 2 (single-threaded Prim / LLP-Prim / "
                "Boruvka on road + graph500)");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  // The headline percentages are noise-sensitive; default to more
  // repetitions than the other benches.
  auto& reps = cli.add_int("reps", 7, "timed repetitions per algorithm");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  std::printf("Fig. 2: single-threaded MST algorithms "
              "(interleaved timing, median of %lld)\n\n",
              static_cast<long long>(reps));
  Table t({"Graph", "Algorithm", "Median", "vs Prim", "HeapPush", "HeapPop",
           "FixedViaMWE"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale)),
  };

  RunContext ctx;
  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, 1);

    struct Contestant {
      const MstAlgorithm* algo;
      std::vector<double> samples;
      MstResult last;
    };
    Contestant cs[] = {
        {&mst_algorithm("prim"), {}, {}},
        {&mst_algorithm("llp-prim"), {}, {}},
        {&mst_algorithm("boruvka"), {}, {}},
    };

    // Warmup + verification round.
    for (auto& c : cs) {
      const MstResult r = c.algo->run(w.graph, ctx);
      if (r.edges != reference.edges ||
          r.total_weight != reference.total_weight) {
        std::fprintf(stderr, "FATAL: %s produced a different MSF\n",
                     c.algo->name);
        return 1;
      }
    }
    // Interleaved timed rounds.
    for (long long rep = 0; rep < reps; ++rep) {
      for (auto& c : cs) {
        Timer timer;
        c.last = c.algo->run(w.graph, ctx);
        c.samples.push_back(timer.elapsed_ms());
      }
    }

    // The interleaved loop bypasses measure_mst, so feed the bench-record
    // store directly (warmup round above doubles as verification).  Keys
    // are the canonical registry names, matching every other bench.
    for (const auto& c : cs) {
      record_bench_samples(c.algo->name, c.samples, 1, true);
    }

    const double prim_ms = summarize(cs[0].samples).median;
    for (const auto& c : cs) {
      const Summary s = summarize(c.samples);
      const MstAlgoStats& st = c.last.stats;
      t.add_row({w.name, c.algo->label, time_cell(s),
                 strf("%.2fx", prim_ms / s.median),
                 format_count(st.heap.pushes), format_count(st.heap.pops),
                 format_count(st.fixed_via_mwe)});
    }
    const double llp_ms = summarize(cs[1].samples).median;
    const double bor_ms = summarize(cs[2].samples).median;
    // Paired per-round ratios are robust against machine-speed drift
    // between rounds (each round times all three back to back).
    std::vector<double> paired;
    for (std::size_t i = 0; i < cs[0].samples.size(); ++i) {
      paired.push_back(cs[0].samples[i] / cs[1].samples[i]);
    }
    const double paired_speedup = summarize(paired).median;
    std::printf("%s: LLP-Prim (1T) is %.1f%% faster than Prim "
                "(paired per-round median: %.2fx); Boruvka (1T) is %.2fx "
                "slower than Prim\n",
                w.name.c_str(), 100.0 * (prim_ms - llp_ms) / prim_ms,
                paired_speedup, bor_ms / prim_ms);
  }

  std::printf("\n");
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_fig2_single_thread");
  return 0;
}
