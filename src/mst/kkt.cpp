#include "mst/kkt.hpp"

#include <algorithm>
#include <vector>

#include "ds/union_find.hpp"
#include "mst/forest_path.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {

/// Edge in the current contracted space; prio packs (weight, ORIGINAL id).
struct KktEdge {
  VertexId u;
  VertexId v;
  EdgePriority prio;
};

/// Scratch shared across the recursion: n-sized arrays with a version stamp
/// so collecting the active vertices of a small edge set costs O(m), not
/// O(n).
struct KktContext {
  explicit KktContext(std::size_t n, std::uint64_t seed)
      : stamp(n, 0), best(n), best_idx(n), parent(n), rng(seed) {}

  std::vector<std::uint32_t> stamp;
  std::uint32_t version = 0;
  std::vector<EdgePriority> best;
  std::vector<std::size_t> best_idx;
  std::vector<VertexId> parent;
  std::vector<VertexId> actives;
  Xoshiro256 rng;

  /// Marks v active in the current round, initializing its slots once.
  void touch(VertexId v) {
    if (stamp[v] != version) {
      stamp[v] = version;
      best[v] = kInfinitePriority;
      parent[v] = v;
      actives.push_back(v);
    }
  }
};

/// One sequential Boruvka contraction step: appends the chosen MSF edges to
/// `msf`, rewrites `edges` to the contracted multigraph.
void boruvka_step(KktContext& ctx, std::vector<KktEdge>& edges,
                  std::vector<KktEdge>& msf) {
  ++ctx.version;
  ctx.actives.clear();

  // MWE selection per active vertex.
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const KktEdge& e = edges[i];
    ctx.touch(e.u);
    ctx.touch(e.v);
    if (e.prio < ctx.best[e.u]) {
      ctx.best[e.u] = e.prio;
      ctx.best_idx[e.u] = i;
    }
    if (e.prio < ctx.best[e.v]) {
      ctx.best[e.v] = e.prio;
      ctx.best_idx[e.v] = i;
    }
  }

  // Hook with id symmetry breaking; emit each chosen edge once (by the
  // hooking side).
  for (const VertexId v : ctx.actives) {
    if (ctx.best[v] == kInfinitePriority) continue;
    const KktEdge& e = edges[ctx.best_idx[v]];
    const VertexId w = (e.u == v) ? e.v : e.u;
    const bool mutual = ctx.best[w] == e.prio;
    if (mutual && v < w) continue;  // v stays root; w will hook and emit
    ctx.parent[v] = w;
    msf.push_back(e);
  }

  // Collapse hook trees to stars (sequential pointer chase).
  for (const VertexId v : ctx.actives) {
    VertexId r = v;
    while (ctx.parent[r] != r) r = ctx.parent[r];
    // Path-compress the chain for later lookups.
    VertexId c = v;
    while (ctx.parent[c] != r) {
      const VertexId next = ctx.parent[c];
      ctx.parent[c] = r;
      c = next;
    }
  }

  // Contract: remap endpoints, drop self loops.
  std::size_t out = 0;
  for (const KktEdge& e : edges) {
    const VertexId nu = ctx.parent[e.u];
    const VertexId nv = ctx.parent[e.v];
    if (nu != nv) edges[out++] = {nu, nv, e.prio};
  }
  edges.resize(out);
}

/// Base case: Kruskal over a dense relabeling of the active endpoints.
void kruskal_base(std::vector<KktEdge>& edges, std::vector<KktEdge>& msf) {
  if (edges.empty()) return;
  std::sort(edges.begin(), edges.end(),
            [](const KktEdge& a, const KktEdge& b) { return a.prio < b.prio; });
  // Dense ids via a local map (edge sets here are small by construction).
  std::vector<VertexId> ids;
  ids.reserve(2 * edges.size());
  for (const KktEdge& e : edges) {
    ids.push_back(e.u);
    ids.push_back(e.v);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  const auto dense = [&](VertexId v) {
    return static_cast<std::uint32_t>(
        std::lower_bound(ids.begin(), ids.end(), v) - ids.begin());
  };
  UnionFind uf(ids.size());
  for (const KktEdge& e : edges) {
    if (uf.unite(dense(e.u), dense(e.v))) msf.push_back(e);
  }
}

/// Returns the MSF (as KktEdges) of `edges`; consumes `edges`.
void kkt_recurse(KktContext& ctx, std::vector<KktEdge>& edges,
                 std::vector<KktEdge>& msf) {
  constexpr std::size_t kBaseThreshold = 256;

  // Step 1: two Boruvka contractions (at least quarters the vertex count).
  for (int step = 0; step < 2; ++step) {
    if (edges.empty()) return;
    boruvka_step(ctx, edges, msf);
  }
  if (edges.empty()) return;
  if (edges.size() <= kBaseThreshold) {
    kruskal_base(edges, msf);
    return;
  }

  // Step 2: sample half the edges.
  std::vector<KktEdge> sample;
  sample.reserve(edges.size() / 2 + 8);
  for (const KktEdge& e : edges) {
    if (ctx.rng.next_bool(0.5)) sample.push_back(e);
  }

  // Step 3: F = MSF(sample).
  std::vector<KktEdge> forest;
  kkt_recurse(ctx, sample, forest);

  // Step 4: keep only F-light edges.  (Forest endpoints live in the current
  // contracted space, which is a subset of [0, n); the index is built over
  // the full id range — O(n) per level, same as the Boruvka scans.)
  {
    std::vector<WeightedEdge> fe;
    std::vector<EdgePriority> fp;
    fe.reserve(forest.size());
    fp.reserve(forest.size());
    for (const KktEdge& e : forest) {
      fe.push_back({e.u, e.v, priority_weight(e.prio)});
      fp.push_back(e.prio);
    }
    const ForestPathIndex index(ctx.parent.size(), fe, fp);
    std::size_t out = 0;
    for (const KktEdge& e : edges) {
      if (index.is_light(e.u, e.v, e.prio)) edges[out++] = e;
    }
    edges.resize(out);
  }

  // Step 5: recurse on the survivors.
  kkt_recurse(ctx, edges, msf);
}

}  // namespace

MstResult kkt_msf(const CsrGraph& g, std::uint64_t seed) {
  const std::size_t m = g.num_edges();
  std::vector<KktEdge> edges;
  edges.reserve(m);
  for (EdgeId e = 0; e < m; ++e) {
    const WeightedEdge& we = g.edge(e);
    edges.push_back({we.u, we.v, make_priority(we.w, e)});
  }

  KktContext ctx(g.num_vertices(), seed);
  std::vector<KktEdge> msf;
  kkt_recurse(ctx, edges, msf);

  MstResult r;
  r.edges.reserve(msf.size());
  for (const KktEdge& e : msf) r.edges.push_back(priority_edge(e.prio));
  finalize_result(g, r);
  return r;
}

MstResult kkt_msf(const CsrGraph& g, RunContext& /*ctx*/) { return kkt_msf(g); }

MstAlgorithm kkt_algorithm() {
  return {"kkt", "KKT",
          "Karger-Klein-Tarjan randomized MSF, fixed seed (reference [4])",
          {.parallel = false, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) { return kkt_msf(g, ctx); }};
}

}  // namespace llpmst
