#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/cli.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace llpmst {
namespace {

// ---------------------------------------------------------------- random

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, MixIsStateless) {
  EXPECT_EQ(SplitMix64::mix(123), SplitMix64::mix(123));
  EXPECT_NE(SplitMix64::mix(123), SplitMix64::mix(124));
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextBelowCoversAllResidues) {
  Xoshiro256 rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro256, NextInInclusiveBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.next_in(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
  // Degenerate range.
  EXPECT_EQ(rng.next_in(4, 4), 4u);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, BernoulliRoughlyCalibrated) {
  Xoshiro256 rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

// ---------------------------------------------------------------- stats

TEST(Stats, EmptySampleIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, SingleSample) {
  const std::vector<double> v{5.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 5.0);
  EXPECT_EQ(s.max, 5.0);
  EXPECT_EQ(s.mean, 5.0);
  EXPECT_EQ(s.median, 5.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, KnownValues) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, OddMedian) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(summarize(v).median, 5.0);
}

TEST(Stats, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration_ms(0.0005), "500.0 ns");
  EXPECT_EQ(format_duration_ms(0.002), "2.00 us");
  EXPECT_EQ(format_duration_ms(2.5), "2.50 ms");
  EXPECT_EQ(format_duration_ms(1500.0), "1.500 s");
}

TEST(Stats, FormatCountSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(12345678), "12,345,678");
}

// ---------------------------------------------------------------- timer

TEST(Timer, ElapsedMonotone) {
  Timer t;
  const double a = t.elapsed_s();
  const double b = t.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  t.reset();
  EXPECT_LT(t.elapsed_s(), 1.0);
  EXPECT_GE(t.elapsed_ms(), 0.0);
  EXPECT_GE(t.elapsed_us(), 0.0);
}

// ---------------------------------------------------------------- cli

TEST(Cli, ParsesAllFlagKinds) {
  CliParser cli("prog", "test");
  auto& i = cli.add_int("count", 1, "a count");
  auto& d = cli.add_double("ratio", 0.5, "a ratio");
  auto& s = cli.add_string("name", "x", "a name");
  auto& b = cli.add_bool("fast", false, "speed");
  const char* argv[] = {"prog",    "--count", "7",     "--ratio=0.25",
                        "--name",  "hello",   "--fast"};
  cli.parse(7, argv);
  EXPECT_EQ(i, 7);
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(b);
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  CliParser cli("prog", "test");
  auto& i = cli.add_int("count", 42, "a count");
  auto& b = cli.add_bool("fast", true, "speed");
  const char* argv[] = {"prog"};
  cli.parse(1, argv);
  EXPECT_EQ(i, 42);
  EXPECT_TRUE(b);
}

TEST(Cli, NegatedBool) {
  CliParser cli("prog", "test");
  auto& b = cli.add_bool("fast", true, "speed");
  const char* argv[] = {"prog", "--no-fast"};
  cli.parse(2, argv);
  EXPECT_FALSE(b);
}

TEST(Cli, BoolWithExplicitValue) {
  CliParser cli("prog", "test");
  auto& b = cli.add_bool("fast", false, "speed");
  const char* argv[] = {"prog", "--fast=true"};
  cli.parse(2, argv);
  EXPECT_TRUE(b);
}

TEST(Cli, CollectsPositionals) {
  CliParser cli("prog", "test");
  cli.add_int("count", 1, "a count");
  const char* argv[] = {"prog", "alpha", "--count", "3", "beta"};
  cli.parse(5, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, UsageMentionsFlagsAndDefaults) {
  CliParser cli("prog", "description here");
  cli.add_int("count", 42, "how many");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--count"), std::string::npos);
  EXPECT_NE(u.find("42"), std::string::npos);
  EXPECT_NE(u.find("description here"), std::string::npos);
}

TEST(Cli, UnknownFlagExits) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--bogus"};
  EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(2), "unknown flag");
}

TEST(Cli, MalformedIntExits) {
  CliParser cli("prog", "test");
  cli.add_int("count", 1, "a count");
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_EXIT(cli.parse(3, argv), testing::ExitedWithCode(2),
              "expects an integer");
}

TEST(Cli, MissingValueExits) {
  CliParser cli("prog", "test");
  cli.add_int("count", 1, "a count");
  const char* argv[] = {"prog", "--count"};
  EXPECT_EXIT(cli.parse(2, argv), testing::ExitedWithCode(2),
              "requires a value");
}

TEST(Cli, ParseIntList) {
  EXPECT_EQ(CliParser::parse_int_list("1,2,4,8"),
            (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(CliParser::parse_int_list("16"), (std::vector<int>{16}));
  EXPECT_TRUE(CliParser::parse_int_list("").empty());
}

}  // namespace
}  // namespace llpmst
