// Atomic helpers for the lock-free pieces of the MST algorithms.
//
// The central primitive is `atomic_fetch_min`: a CAS loop that lowers an
// atomic to the minimum of its value and a candidate.  Combined with packed
// 64-bit edge priorities (see graph/types.hpp) this implements GBBS-style
// "write the minimum-weight edge into both endpoints" with a single word per
// vertex and no locks.
//
// Memory ordering: the MST rounds are bulk-synchronous — a parallel region
// writes, the team join publishes, the next region reads.  The fences in the
// thread pool's join provide the happens-before edge, so the per-operation
// ordering here can be relaxed; we use acq_rel on the CAS only where a value
// is consumed inside the same region (documented at each call site).
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace llpmst {

/// Lowers `target` to min(target, value).  Returns true iff this call
/// strictly lowered the stored value.
template <typename T>
bool atomic_fetch_min(std::atomic<T>& target, T value,
                      std::memory_order order = std::memory_order_relaxed) {
  static_assert(std::is_integral_v<T>);
  T cur = target.load(std::memory_order_relaxed);
  while (value < cur) {
    if (target.compare_exchange_weak(cur, value, order,
                                     std::memory_order_relaxed)) {
      return true;
    }
    // cur was reloaded by the failed CAS; loop re-tests value < cur.
  }
  return false;
}

/// Raises `target` to max(target, value).  Returns true iff raised.
template <typename T>
bool atomic_fetch_max(std::atomic<T>& target, T value,
                      std::memory_order order = std::memory_order_relaxed) {
  static_assert(std::is_integral_v<T>);
  T cur = target.load(std::memory_order_relaxed);
  while (value > cur) {
    if (target.compare_exchange_weak(cur, value, order,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// One-shot claim of a boolean flag (e.g. "this vertex is now fixed").
/// Returns true iff this call flipped the flag from false to true.
inline bool atomic_claim(std::atomic<bool>& flag) {
  bool expected = false;
  return !flag.load(std::memory_order_relaxed) &&
         flag.compare_exchange_strong(expected, true,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
}

/// Claim on a byte flag stored in a vector<std::atomic<uint8_t>> (vector of
/// atomic<bool> is not guaranteed lock-free everywhere; uint8_t is).
inline bool atomic_claim(std::atomic<std::uint8_t>& flag) {
  std::uint8_t expected = 0;
  return flag.load(std::memory_order_relaxed) == 0 &&
         flag.compare_exchange_strong(expected, 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_relaxed);
}

}  // namespace llpmst
