// Context for Fig. 2: every sequential (and sort-parallel) MSF baseline in
// the library on both workloads — Kruskal, parallel-sort Kruskal,
// Filter-Kruskal, Prim, lazy Prim, classic Boruvka, LLP-Prim (1T).  Places
// the paper's three Fig. 2 contestants inside the wider baseline landscape.
#include <cstdio>

#include "bench_common.hpp"
#include "llp/llp_prim.hpp"
#include "mst/boruvka.hpp"
#include "mst/filter_kruskal.hpp"
#include "mst/kkt.hpp"
#include "mst/kruskal_parallel.hpp"
#include "mst/prim.hpp"
#include "mst/prim_lazy.hpp"

int main(int argc, char** argv) {
  using namespace llpmst;
  using namespace llpmst::bench;

  CliParser cli("bench_sequential_baselines",
                "All sequential MSF baselines on both workloads");
  auto& road_side = cli.add_int("road-side", 512, "road grid side length");
  auto& scale = cli.add_int("scale", 16, "graph500 RMAT scale");
  auto& threads = cli.add_int("threads", 4,
                              "threads for the sort-parallel variants");
  auto& reps = cli.add_int("reps", 3, "timed repetitions");
  auto& csv = cli.add_bool("csv", false, "emit CSV");
  ObsCli obs_cli(cli);
  cli.parse(argc, argv);
  obs_cli.begin();

  BenchOptions opts;
  opts.repetitions = static_cast<int>(reps);
  ThreadPool pool(static_cast<std::size_t>(threads));

  Table t({"Graph", "Algorithm", "Median", "vs Kruskal"});

  const Workload workloads[] = {
      make_road_workload(static_cast<std::uint32_t>(road_side)),
      make_graph500_workload(static_cast<int>(scale)),
  };

  for (const Workload& w : workloads) {
    const MstResult reference = kruskal(w.graph);
    set_bench_context(w.name, static_cast<std::size_t>(threads));
    double kruskal_ms = 0;
    const auto add = [&](const char* name,
                         const std::function<MstResult()>& run) {
      const BenchMeasurement m = measure_mst(name, w.graph, reference, run,
                                             opts);
      if (kruskal_ms == 0) kruskal_ms = m.time_ms.median;
      t.add_row({w.name, name, time_cell(m.time_ms),
                 strf("%.2fx", kruskal_ms / m.time_ms.median)});
    };

    add("Kruskal", [&] { return kruskal(w.graph); });
    add("Kruskal (parallel sort)",
        [&] { return kruskal_parallel(w.graph, pool); });
    add("Filter-Kruskal", [&] { return filter_kruskal(w.graph, pool); });
    add("Prim", [&] { return prim(w.graph); });
    add("Prim (lazy heap)", [&] { return prim_lazy(w.graph); });
    add("Boruvka (classic 1T)", [&] { return boruvka(w.graph); });
    add("KKT (randomized)", [&] { return kkt_msf(w.graph); });
    add("LLP-Prim (1T)", [&] { return llp_prim(w.graph); });
  }

  std::printf("Sequential / sort-parallel MSF baselines (threads=%lld for "
              "sort)\n\n",
              static_cast<long long>(threads));
  t.print(csv);
  obs_cli.write_table(t);
  obs_cli.finish("bench_sequential_baselines");
  return 0;
}
