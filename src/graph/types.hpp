// Fundamental graph types and the packed edge-priority scheme.
//
// The paper assumes distinct edge weights (unique MST) and notes that ties
// can be broken with endpoint identities.  We bake that into the type system:
// every undirected edge has a 32-bit weight and a dense 32-bit id, and its
// **priority** is the packed 64-bit value
//
//     priority(e) = (uint64(weight(e)) << 32) | edge_id(e)
//
// Priorities are unique, so ordering edges by priority is a total order that
// agrees with weight order and breaks ties deterministically.  Consequences:
//   * the MSF is unique — every algorithm in this library returns the same
//     edge set, which tests assert bit-for-bit;
//   * "minimum weight edge" selection under concurrency is an atomic min on
//     one uint64_t (see parallel/atomic_utils.hpp), no comparator object.
#pragma once

#include <cstdint>
#include <limits>

namespace llpmst {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;        // undirected edge index in [0, m)
using Weight = std::uint32_t;        // raw edge weight
using TotalWeight = std::uint64_t;   // sum of up to 2^32 weights
using EdgePriority = std::uint64_t;  // packed (weight << 32) | edge_id

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
/// Larger than every real priority; the "infinity" initial value of per-
/// vertex minima and tentative distances.
inline constexpr EdgePriority kInfinitePriority =
    std::numeric_limits<EdgePriority>::max();

/// Packs weight and edge id into a totally ordered priority.
[[nodiscard]] constexpr EdgePriority make_priority(Weight w, EdgeId e) {
  return (static_cast<EdgePriority>(w) << 32) | e;
}

[[nodiscard]] constexpr Weight priority_weight(EdgePriority p) {
  return static_cast<Weight>(p >> 32);
}

[[nodiscard]] constexpr EdgeId priority_edge(EdgePriority p) {
  return static_cast<EdgeId>(p & 0xffffffffu);
}

/// One undirected weighted edge as stored in an EdgeList.
struct WeightedEdge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  Weight w = 0;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace llpmst
