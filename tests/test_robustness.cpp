// Robustness primitives: the Status/Expected taxonomy, failpoint spec
// parsing and firing semantics, cooperative cancellation (tokens, deadlines,
// watchdog), interruptible parallel loops, and overflow-safe weight
// accumulation.  The chaos suite (test_chaos.cpp) exercises the same pieces
// end-to-end through the MST algorithms.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "graph/generators/special.hpp"
#include "llp/llp_solver.hpp"
#include "mst/kruskal.hpp"
#include "mst/mst_result.hpp"
#include "mst/verifier.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"
#include "support/failpoint.hpp"
#include "support/status.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

// ------------------------------------------------------------ Status

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s(StatusCode::kCorruptInput, "malformed arc line at line 7");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruptInput);
  EXPECT_EQ(s.to_string(), "CORRUPT_INPUT: malformed arc line at line 7");
  EXPECT_EQ(s, Status(StatusCode::kCorruptInput,
                      "malformed arc line at line 7"));
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(status_code_name(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Status, OutcomeMapsOntoStatusTaxonomy) {
  EXPECT_TRUE(outcome_status(RunOutcome::kOk).ok());
  EXPECT_EQ(outcome_status(RunOutcome::kNonConverged).code(),
            StatusCode::kNonConvergence);
  EXPECT_EQ(outcome_status(RunOutcome::kCancelled).code(),
            StatusCode::kCancelled);
  EXPECT_EQ(outcome_status(RunOutcome::kDeadlineExceeded).code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(outcome_status(RunOutcome::kInjectedFault).code(),
            StatusCode::kInjectedFault);
}

TEST(Status, OutcomeNamesAreStable) {
  // These strings are the run.outcome / algo.llp.outcome contract in the
  // metrics JSON (docs/observability.md) — renaming one is a schema break.
  EXPECT_STREQ(run_outcome_name(RunOutcome::kOk), "ok");
  EXPECT_STREQ(run_outcome_name(RunOutcome::kNonConverged), "non_converged");
  EXPECT_STREQ(run_outcome_name(RunOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(run_outcome_name(RunOutcome::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(run_outcome_name(RunOutcome::kInjectedFault),
               "injected_fault");
}

TEST(Expected, ValuePath) {
  Expected<int> e(42);
  ASSERT_TRUE(e.ok());
  EXPECT_TRUE(static_cast<bool>(e));
  EXPECT_EQ(*e, 42);
  *e = 43;
  EXPECT_EQ(e.value(), 43);
}

TEST(Expected, ErrorPath) {
  const Expected<int> e(Status(StatusCode::kIoError, "cannot open"));
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kIoError);
  EXPECT_EQ(e.status().message(), "cannot open");
}

// ------------------------------------------------------------ failpoints

class Failpoints : public testing::Test {
 protected:
  void SetUp() override {
    if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
    fail::disarm_all();
  }
  void TearDown() override { fail::disarm_all(); }
};

TEST_F(Failpoints, MalformedSpecsAreRejected) {
  for (const char* bad :
       {"", "explode", "101%return", "x%return", "0*return", "x*return",
        "sleep", "sleep()", "sleep(x)", "sleep(2000000)", "return(7)",
        "yield(1)", "alloc(1)", "sleep(5"}) {
    EXPECT_FALSE(fail::arm("test/point", bad)) << "accepted: " << bad;
  }
  EXPECT_TRUE(fail::armed_points().empty());
}

TEST_F(Failpoints, UnconditionalReturnFiresEveryHit) {
  ASSERT_TRUE(fail::arm("test/point", "return"));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kError);
  }
  EXPECT_EQ(fail::hit_count("test/point"), 5u);
  EXPECT_EQ(fail::fire_count("test/point"), 5u);
  EXPECT_EQ(LLPMST_FAILPOINT("test/other"), fail::Action::kNone);
}

TEST_F(Failpoints, BudgetAndProbabilityModifiers) {
  ASSERT_TRUE(fail::arm("test/point", "3*alloc"));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (LLPMST_FAILPOINT("test/point") == fail::Action::kAlloc) ++fired;
  }
  EXPECT_EQ(fired, 3);

  // 0% never fires; 100% always does.
  ASSERT_TRUE(fail::arm("test/point", "0%return"));
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kNone);
  }
  ASSERT_TRUE(fail::arm("test/point", "100%return"));
  EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kError);
}

TEST_F(Failpoints, ProbabilisticFiringIsSeedDeterministic) {
  // The RNG reseeds lazily when set_seed() CHANGES the epoch (a repeated
  // set_seed(x) is a no-op), so replay means: seed, run, different seed,
  // seed again, run — the two same-seed runs must fire identically.
  const auto run_once = [](std::uint64_t seed) {
    fail::set_seed(seed);
    EXPECT_TRUE(fail::arm("test/point", "50%return"));
    std::uint64_t pattern = 0;
    for (int i = 0; i < 64; ++i) {
      pattern = (pattern << 1) |
                (LLPMST_FAILPOINT("test/point") == fail::Action::kError);
    }
    EXPECT_NE(pattern, 0u);                      // some hits fire...
    EXPECT_NE(pattern, ~std::uint64_t{0});       // ...but not all
    return pattern;
  };
  const std::uint64_t a = run_once(1234);
  run_once(99);  // bump the epoch away so 1234 re-arms the replay
  const std::uint64_t b = run_once(1234);
  EXPECT_EQ(a, b);
}

TEST_F(Failpoints, PerturbTasksReturnNone) {
  ASSERT_TRUE(fail::arm("test/point", "yield"));
  EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kNone);
  ASSERT_TRUE(fail::arm("test/point", "sleep(10)"));
  EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kNone);
  EXPECT_EQ(fail::fire_count("test/point"), 1u);  // arming reset the counter
}

TEST_F(Failpoints, ConfigureParsesMultiSpecs) {
  std::string error;
  EXPECT_EQ(fail::configure("a=return;b=25%yield;;c=2*sleep(5)", &error), 3u);
  EXPECT_TRUE(error.empty()) << error;
  EXPECT_EQ(fail::armed_points().size(), 3u);

  // Entries without '=' are ignored (an env var set to "1" arms nothing)...
  fail::disarm_all();
  EXPECT_EQ(fail::configure("1", &error), 0u);
  EXPECT_TRUE(error.empty()) << error;

  // ...but a malformed spec stops parsing and reports the entry.
  EXPECT_EQ(fail::configure("a=return;b=explode;c=return", &error), 1u);
  EXPECT_NE(error.find("b=explode"), std::string::npos) << error;
  EXPECT_EQ(fail::armed_points().size(), 1u);
}

TEST_F(Failpoints, OffSpecDisarms) {
  ASSERT_TRUE(fail::arm("test/point", "return"));
  EXPECT_TRUE(fail::any_armed());
  ASSERT_TRUE(fail::arm("test/point", "off"));
  EXPECT_FALSE(fail::any_armed());
  EXPECT_EQ(LLPMST_FAILPOINT("test/point"), fail::Action::kNone);
}

// ------------------------------------------------------------ cancellation

TEST(CancelToken, ExplicitCancelLatches) {
  CancelToken t;
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kOk);
  EXPECT_TRUE(t.status().ok());
  t.cancel();
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kCancelled);
  EXPECT_EQ(t.status().code(), StatusCode::kCancelled);
}

TEST(CancelToken, DeadlineTriggersAndLatches) {
  CancelToken t;
  t.set_deadline_after_ms(0);
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kDeadlineExceeded);
  // A later explicit cancel cannot overwrite the latched reason.
  t.cancel();
  EXPECT_EQ(t.reason(), RunOutcome::kDeadlineExceeded);
}

TEST(CancelToken, ExplicitCancelWinsOverLaterDeadline) {
  CancelToken t;
  t.cancel();
  t.set_deadline_after_ms(0);
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kCancelled);
}

TEST(CancelToken, FutureDeadlineIsNotTriggeredYet) {
  CancelToken t;
  t.set_deadline_after_ms(60'000);  // far future: never fires in this test
  EXPECT_FALSE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kOk);
}

TEST(Watchdog, CancelsAfterTimeout) {
  CancelToken t;
  Watchdog dog(t, 5);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!t.cancelled() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(t.cancelled());
  EXPECT_EQ(t.reason(), RunOutcome::kCancelled);
}

TEST(Watchdog, DisarmPreventsCancel) {
  CancelToken t;
  {
    Watchdog dog(t, 50);
    dog.disarm();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(t.cancelled());
}

// ----------------------------------------------- interruptible parallelism

TEST(ParallelForInterruptible, CompletesWhenLive) {
  ThreadPool pool(4);
  CancelToken t;
  std::atomic<std::size_t> visited{0};
  const std::size_t n = 5000;  // > chunk size, so the team path runs
  EXPECT_TRUE(parallel_for_interruptible(
      pool, 0, n, t, [&](std::size_t) { visited.fetch_add(1); }));
  EXPECT_EQ(visited.load(), n);
}

TEST(ParallelForInterruptible, StopsOnCancelledToken) {
  ThreadPool pool(4);
  CancelToken t;
  t.cancel();
  std::atomic<std::size_t> visited{0};
  EXPECT_FALSE(parallel_for_interruptible(
      pool, 0, 5000, t, [&](std::size_t) { visited.fetch_add(1); }));
  EXPECT_LT(visited.load(), 5000u);
}

// ---------------------------------------------------- llp_solve outcomes

TEST(LlpSolveOutcome, SweepCapYieldsNonConverged) {
  ThreadPool pool(2);
  LlpOptions o;
  o.max_sweeps = 3;
  // forbidden() is always true: the fixpoint is unreachable by design.
  const LlpStats s = llp_solve(
      pool, 100, [](std::size_t) { return true; }, [](std::size_t) {}, o);
  EXPECT_EQ(s.outcome, RunOutcome::kNonConverged);
  EXPECT_FALSE(s.converged);
  EXPECT_EQ(s.sweeps, 3u);
}

TEST(LlpSolveOutcome, PreCancelledTokenStopsBeforeAnySweep) {
  ThreadPool pool(2);
  CancelToken t;
  t.cancel();
  LlpOptions o;
  o.cancel = &t;
  const LlpStats s = llp_solve(
      pool, 100, [](std::size_t) { return true; }, [](std::size_t) {}, o);
  EXPECT_EQ(s.outcome, RunOutcome::kCancelled);
  EXPECT_EQ(s.sweeps, 0u);
  EXPECT_FALSE(s.converged);
}

TEST(LlpSolveOutcome, InjectedSweepFaultStopsTheSolve) {
  if (!fail::kCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  fail::disarm_all();
  ASSERT_TRUE(fail::arm("llp/sweep", "return"));
  ThreadPool pool(2);
  const LlpStats s = llp_solve(
      pool, 100, [](std::size_t) { return true; }, [](std::size_t) {});
  fail::disarm_all();
  EXPECT_EQ(s.outcome, RunOutcome::kInjectedFault);
  EXPECT_EQ(s.sweeps, 0u);
}

// ------------------------------------------------- overflow-safe weights

TEST(CheckedWeightAdd, NormalAdditionSucceeds) {
  TotalWeight acc = 10;
  EXPECT_TRUE(checked_weight_add(acc, 32));
  EXPECT_EQ(acc, 42u);
}

TEST(CheckedWeightAdd, DetectsOverflowAtTheBoundary) {
  const TotalWeight max = ~TotalWeight{0};
  TotalWeight acc = max - 1;
  EXPECT_TRUE(checked_weight_add(acc, 1));
  EXPECT_EQ(acc, max);
  EXPECT_FALSE(checked_weight_add(acc, 1));

  acc = max;
  EXPECT_FALSE(checked_weight_add(acc, max));
  EXPECT_TRUE(checked_weight_add(acc, 0));  // +0 never overflows
}

TEST(CheckedWeightAdd, ExtremeEdgeWeightsSumWithoutOverflow) {
  // 4000 edges at the maximum 32-bit weight: the 64-bit accumulator must
  // take this without tripping the overflow flag.
  EdgeList list = make_path(4001, /*seed=*/0);
  EdgeList extreme(list.num_vertices());
  for (const WeightedEdge& e : list.edges()) {
    extreme.add_edge(e.u, e.v, 0xFFFFFFFFu);
  }
  extreme.normalize();
  const CsrGraph g = csr(extreme);
  const MstResult r = kruskal(g);
  EXPECT_FALSE(r.weight_overflow);
  EXPECT_EQ(r.total_weight, 4000ull * 0xFFFFFFFFull);
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_TRUE(v.ok) << v.error;
}

TEST(CheckedWeightAdd, VerifierRejectsInconsistentOverflowFlag) {
  const CsrGraph g = csr(make_path(64, /*seed=*/1));
  MstResult r = kruskal(g);
  ASSERT_FALSE(r.weight_overflow);
  r.weight_overflow = true;  // lie: the sum fits but the flag says otherwise
  const VerifyResult v = verify_spanning_forest(g, r);
  EXPECT_FALSE(v.ok);
  EXPECT_NE(v.error.find("weight_overflow"), std::string::npos) << v.error;
}

}  // namespace
}  // namespace llpmst
