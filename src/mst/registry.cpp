#include "mst/registry.hpp"

#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_async.hpp"
#include "llp/llp_prim_parallel.hpp"
#include "mst/boruvka.hpp"
#include "mst/filter_kruskal.hpp"
#include "mst/kkt.hpp"
#include "mst/kruskal.hpp"
#include "mst/kruskal_parallel.hpp"
#include "mst/parallel_boruvka.hpp"
#include "mst/prim.hpp"
#include "mst/prim_lazy.hpp"
#include "support/assert.hpp"

namespace llpmst {

const std::vector<MstAlgorithm>& mst_algorithms() {
  // Aggregating the per-algorithm descriptors here (instead of relying on
  // static-initializer self-registration) pins every entry into the binary
  // even though llpmst is a static library.  Presentation order: sequential
  // classics, parallel baselines, then the LLP family.
  static const std::vector<MstAlgorithm>* table = new std::vector<MstAlgorithm>{
      kruskal_algorithm(),
      prim_algorithm(),
      prim_lazy_algorithm(),
      boruvka_algorithm(),
      kkt_algorithm(),
      kruskal_parallel_algorithm(),
      filter_kruskal_algorithm(),
      parallel_boruvka_algorithm(),
      llp_prim_algorithm(),
      llp_prim_parallel_algorithm(),
      llp_prim_async_algorithm(),
      llp_boruvka_algorithm(),
  };
  return *table;
}

const MstAlgorithm* find_mst_algorithm(std::string_view name) {
  for (const MstAlgorithm& a : mst_algorithms()) {
    if (name == a.name) return &a;
  }
  return nullptr;
}

const MstAlgorithm& mst_algorithm(std::string_view name) {
  const MstAlgorithm* a = find_mst_algorithm(name);
  LLPMST_CHECK_MSG(a != nullptr, "unknown MST algorithm in registry lookup");
  return *a;
}

std::string mst_algorithm_names(const char* separator) {
  std::string out;
  for (const MstAlgorithm& a : mst_algorithms()) {
    if (!out.empty()) out += separator;
    out += a.name;
  }
  return out;
}

std::string describe_caps(const AlgoCaps& caps) {
  std::string out;
  out += caps.parallel ? "par" : "seq";
  out += caps.msf_capable ? " msf" : " tree";
  out += caps.deterministic ? " det" : " rnd";
  out += caps.cancellable ? " can" : " -";
  return out;
}

}  // namespace llpmst
