// ConcurrentBag: the unordered "R set" of LLP-Prim (Algorithm 5).
//
// Semantics the algorithm needs:
//   * many workers push items concurrently (vertices fixed via MWE),
//   * items are consumed in *no particular order* — that is the whole point
//     of LLP-Prim: vertices in R need not be processed in cost order,
//   * the bag alternates between a parallel drain phase and a sequential
//     refill-from-heap phase, so a swap-based "frontier" interface fits.
//
// Implementation: one cache-line-padded vector per worker.  push() appends to
// the calling worker's vector with no synchronization; swap_out() (called at
// a team barrier) moves all items into a single frontier vector.  This is the
// GBBS/PBBS per-worker-buffer idiom — zero contention on the hot path.
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/assert.hpp"

namespace llpmst {

template <typename T>
class ConcurrentBag {
 public:
  explicit ConcurrentBag(std::size_t num_workers) : buffers_(num_workers) {}

  /// Appends item to worker `w`'s buffer.  Safe to call concurrently from
  /// distinct workers; two calls with the same `w` must not race.
  void push(std::size_t w, const T& item) {
    LLPMST_ASSERT(w < buffers_.size());
    buffers_[w].local.push_back(item);
  }

  /// Moves the contents of every worker buffer into `out` (appended), leaving
  /// the bag empty.  Must be called outside any parallel region.
  void drain_into(std::vector<T>& out) {
    for (auto& buf : buffers_) {
      out.insert(out.end(), buf.local.begin(), buf.local.end());
      buf.local.clear();
    }
  }

  /// True iff every worker buffer is empty.  Call outside parallel regions.
  [[nodiscard]] bool empty() const {
    for (const auto& buf : buffers_) {
      if (!buf.local.empty()) return false;
    }
    return true;
  }

  /// Total buffered items.  Call outside parallel regions.
  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const auto& buf : buffers_) n += buf.local.size();
    return n;
  }

  [[nodiscard]] std::size_t num_workers() const { return buffers_.size(); }

 private:
  struct alignas(64) PaddedVec {
    std::vector<T> local;
  };
  std::vector<PaddedVec> buffers_;
};

}  // namespace llpmst
