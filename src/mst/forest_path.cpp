#include "mst/forest_path.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace llpmst {

ForestPathIndex::ForestPathIndex(const CsrGraph& g,
                                 const std::vector<EdgeId>& tree_edges) {
  std::vector<WeightedEdge> edges;
  std::vector<EdgePriority> prios;
  edges.reserve(tree_edges.size());
  prios.reserve(tree_edges.size());
  for (const EdgeId e : tree_edges) {
    edges.push_back(g.edge(e));
    prios.push_back(g.edge_priority(e));
  }
  build(g.num_vertices(), edges, prios);
}

ForestPathIndex::ForestPathIndex(std::size_t num_vertices,
                                 const std::vector<WeightedEdge>& edges,
                                 const std::vector<EdgePriority>& priorities) {
  build(num_vertices, edges, priorities);
}

void ForestPathIndex::build(std::size_t n,
                            const std::vector<WeightedEdge>& edges,
                            const std::vector<EdgePriority>& priorities) {
  LLPMST_CHECK(edges.size() == priorities.size());

  // CSR over the forest edges.
  std::vector<std::size_t> off(n + 1, 0);
  for (const WeightedEdge& e : edges) {
    ++off[e.u + 1];
    ++off[e.v + 1];
  }
  for (std::size_t v = 0; v < n; ++v) off[v + 1] += off[v];
  std::vector<std::pair<VertexId, EdgePriority>> adj(off[n]);
  {
    std::vector<std::size_t> cur(off.begin(), off.end() - 1);
    for (std::size_t i = 0; i < edges.size(); ++i) {
      const WeightedEdge& e = edges[i];
      adj[cur[e.u]++] = {e.v, priorities[i]};
      adj[cur[e.v]++] = {e.u, priorities[i]};
    }
  }

  parent_.assign(n, kInvalidVertex);
  parent_prio_.assign(n, kInfinitePriority);
  depth_.assign(n, 0);
  root_.assign(n, kInvalidVertex);

  std::vector<VertexId> stack;
  for (VertexId r = 0; r < n; ++r) {
    if (parent_[r] != kInvalidVertex) continue;
    parent_[r] = r;
    root_[r] = r;
    stack.assign(1, r);
    while (!stack.empty()) {
      const VertexId u = stack.back();
      stack.pop_back();
      for (std::size_t i = off[u]; i < off[u + 1]; ++i) {
        const auto [v, p] = adj[i];
        if (parent_[v] != kInvalidVertex) continue;
        parent_[v] = u;
        parent_prio_[v] = p;
        depth_[v] = depth_[u] + 1;
        root_[v] = r;
        stack.push_back(v);
      }
    }
  }
}

EdgePriority ForestPathIndex::max_on_path(VertexId u, VertexId v) const {
  LLPMST_ASSERT(connected(u, v));
  EdgePriority best = 0;
  while (u != v) {
    if (depth_[u] < depth_[v]) std::swap(u, v);
    best = std::max(best, parent_prio_[u]);
    u = parent_[u];
  }
  return best;
}

}  // namespace llpmst
