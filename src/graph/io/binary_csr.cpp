#include "graph/io/binary_csr.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "graph/io/io_util.hpp"
#include "graph/storage.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

// Fixed little-endian header.  Field order is frozen by the format version;
// grow by appending and bumping kBinaryCsrVersion.
enum SectionId : std::size_t {
  kSecOffsets = 0,
  kSecTargets,
  kSecPriorities,
  kSecMwe,
  kSecMweFlags,
  kSecEdges,
  kSectionCount,
};

struct SectionEntry {
  std::uint64_t offset;  // absolute byte offset in the file, 64-aligned
  std::uint64_t length;  // section payload bytes (no padding)
};

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_bytes;  // sizeof(Header); rejects truncated headers
  std::uint64_t n;             // vertices
  std::uint64_t m;             // undirected edges
  SectionEntry sections[kSectionCount];
  std::uint64_t alignment;         // section alignment (64)
  std::uint64_t payload_checksum;  // FNV-1a over section bytes, in order
  std::uint64_t header_checksum;   // FNV-1a over this struct with the
                                   // field itself zeroed
};
static_assert(sizeof(Header) == 152, "llpmstb v1 header layout is frozen");

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}
constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;

std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

Status corrupt(const std::string& path, std::string what) {
  return {StatusCode::kCorruptInput,
          "'" + path + "': " + std::move(what) + " (not a valid llpmstb snapshot)"};
}

struct SectionView {
  const void* data;
  std::uint64_t length;
};

// Byte views of the six sections of a graph, in file order.
std::array<SectionView, kSectionCount> section_views(const CsrSections& s) {
  return {{{s.offsets.data(), s.offsets.size_bytes()},
           {s.targets.data(), s.targets.size_bytes()},
           {s.priorities.data(), s.priorities.size_bytes()},
           {s.mwe.data(), s.mwe.size_bytes()},
           {s.mwe_flags.data(), s.mwe_flags.size_bytes()},
           {s.edges.data(), s.edges.size_bytes()}}};
}

// Expected section byte lengths for counts (n, m).  Safe for any counts that
// passed the < 2^32 guard: the largest product is 12m < 2^36.
std::array<std::uint64_t, kSectionCount> expected_lengths(std::uint64_t n,
                                                          std::uint64_t m) {
  return {8 * (n + 1), 4 * 2 * m, 8 * 2 * m, 8 * n, 2 * m, 12 * m};
}

}  // namespace

bool sniff_binary_csr(const char* data, std::size_t len) {
  return len >= kBinaryCsrMagic.size() &&
         std::memcmp(data, kBinaryCsrMagic.data(), kBinaryCsrMagic.size()) == 0;
}

bool is_binary_csr_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char head[kBinaryCsrMagic.size()];
  const std::size_t got = std::fread(head, 1, sizeof head, f);
  std::fclose(f);
  return sniff_binary_csr(head, got);
}

Status write_binary_csr(const std::string& path, const CsrGraph& g) {
  if (const auto a = LLPMST_FAILPOINT("io/binary_csr_write");
      a != fail::Action::kNone) {
    return io_detail::injected_status(a, "io/binary_csr_write");
  }
  const CsrSections empty;
  const CsrSections& s =
      g.storage() != nullptr ? g.storage()->sections() : empty;
  const auto views = section_views(s);

  Header h{};
  std::memcpy(h.magic, kBinaryCsrMagic.data(), kBinaryCsrMagic.size());
  h.version = kBinaryCsrVersion;
  h.header_bytes = sizeof(Header);
  h.n = g.num_vertices();
  h.m = g.num_edges();
  h.alignment = kBinaryCsrAlignment;

  std::uint64_t pos = align_up(sizeof(Header), kBinaryCsrAlignment);
  std::uint64_t payload = kFnvBasis;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    h.sections[i].offset = pos;
    h.sections[i].length = views[i].length;
    payload = fnv1a(payload, views[i].data, views[i].length);
    pos = align_up(pos + views[i].length, kBinaryCsrAlignment);
  }
  // No padding after the last section: the file ends exactly where the edge
  // section does, so trailing garbage is detectable on load.
  const std::uint64_t file_size =
      h.sections[kSecEdges].offset + h.sections[kSecEdges].length;
  h.payload_checksum = payload;
  h.header_checksum = 0;
  h.header_checksum = fnv1a(kFnvBasis, &h, sizeof h);

  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return {StatusCode::kIoError, "cannot open '" + path + "' for writing"};
  }
  bool ok = std::fwrite(&h, sizeof h, 1, f) == 1;
  std::uint64_t written = sizeof h;
  const char zeros[kBinaryCsrAlignment] = {};
  for (std::size_t i = 0; ok && i < kSectionCount; ++i) {
    while (ok && written < h.sections[i].offset) {
      const std::size_t pad = static_cast<std::size_t>(
          std::min<std::uint64_t>(sizeof zeros, h.sections[i].offset - written));
      ok = std::fwrite(zeros, 1, pad, f) == pad;
      written += pad;
    }
    if (ok && views[i].length > 0) {
      ok = std::fwrite(views[i].data, 1, views[i].length, f) == views[i].length;
      written += views[i].length;
    }
  }
  ok = (std::fclose(f) == 0) && ok && written == file_size;
  if (!ok) return {StatusCode::kIoError, "write error on '" + path + "'"};
  return Status::Ok();
}

Expected<CsrGraph> read_binary_csr(const std::string& path,
                                   const BinaryCsrOptions& options) {
  if (const auto a = LLPMST_FAILPOINT("io/binary_csr");
      a != fail::Action::kNone) {
    return io_detail::injected_status(a, "io/binary_csr");
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status{StatusCode::kIoError, "cannot open '" + path + "'"};
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status{StatusCode::kIoError, "cannot stat '" + path + "'"};
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(Header)) {
    ::close(fd);
    return corrupt(path, size == 0 ? "empty file" : "truncated header");
  }
  void* base = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    return Status{StatusCode::kIoError, "mmap failed for '" + path + "'"};
  }
  // Hold the mapping through validation; released via MmapStorage on success.
  struct Unmapper {
    void* p;
    std::size_t len;
    ~Unmapper() {
      if (p != nullptr) ::munmap(p, len);
    }
  } guard{base, static_cast<std::size_t>(size)};

  // The header is validated from a local copy: the struct needs no
  // relocation, and memcpy sidesteps any alignment/aliasing concerns.
  Header h{};
  std::memcpy(&h, base, sizeof h);
  if (std::memcmp(h.magic, kBinaryCsrMagic.data(), kBinaryCsrMagic.size()) !=
      0) {
    return corrupt(path, "bad magic");
  }
  if (h.version != kBinaryCsrVersion) {
    return corrupt(path,
                   "unsupported version " + std::to_string(h.version) +
                       " (this build reads version " +
                       std::to_string(kBinaryCsrVersion) + ")");
  }
  if (h.header_bytes != sizeof(Header)) {
    return corrupt(path, "header size mismatch");
  }
  {
    Header check = h;
    check.header_checksum = 0;
    if (fnv1a(kFnvBasis, &check, sizeof check) != h.header_checksum) {
      return corrupt(path, "header checksum mismatch");
    }
  }
  if (h.alignment != kBinaryCsrAlignment) {
    return corrupt(path, "unsupported section alignment");
  }
  // Counts are untrusted: bound them BEFORE any arithmetic so the expected
  // section lengths below cannot overflow (largest product is 12m < 2^36).
  if (h.n >= kInvalidVertex || h.m >= kInvalidEdge) {
    return corrupt(path, "vertex/edge count exceeds the 32-bit id space");
  }
  const auto expect = expected_lengths(h.n, h.m);
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const SectionEntry& e = h.sections[i];
    if (e.length != expect[i]) {
      return corrupt(path, "section " + std::to_string(i) +
                               " length disagrees with the header counts");
    }
    if (e.offset < sizeof(Header) || e.offset % kBinaryCsrAlignment != 0 ||
        e.offset > size || e.length > size - e.offset) {
      return corrupt(path, "section " + std::to_string(i) +
                               " extends past the end of the file");
    }
  }
  if (h.sections[kSecEdges].offset + h.sections[kSecEdges].length != size) {
    return corrupt(path, "trailing bytes after the last section");
  }

  const char* bytes = static_cast<const char*>(base);
  CsrSections sec;
  const auto span_at = [&](SectionId id, auto tag) {
    using T = decltype(tag);
    return std::span<const T>(
        reinterpret_cast<const T*>(bytes + h.sections[id].offset),
        static_cast<std::size_t>(h.sections[id].length / sizeof(T)));
  };
  sec.offsets = span_at(kSecOffsets, std::uint64_t{});
  sec.targets = span_at(kSecTargets, VertexId{});
  sec.priorities = span_at(kSecPriorities, EdgePriority{});
  sec.mwe = span_at(kSecMwe, EdgePriority{});
  sec.mwe_flags = span_at(kSecMweFlags, std::uint8_t{});
  sec.edges = std::span<const WeightedEdge>(
      reinterpret_cast<const WeightedEdge*>(bytes +
                                            h.sections[kSecEdges].offset),
      static_cast<std::size_t>(h.m));

  if (options.verify_payload) {
    std::uint64_t payload = kFnvBasis;
    const auto views = section_views(sec);
    for (const SectionView& v : views) payload = fnv1a(payload, v.data, v.length);
    if (payload != h.payload_checksum) {
      return corrupt(path, "payload checksum mismatch");
    }
    // Structural spot-checks so a deliberately re-checksummed file still
    // cannot drive out-of-bounds access in the algorithms.
    if (sec.offsets.front() != 0 || sec.offsets.back() != 2 * h.m) {
      return corrupt(path, "row offsets do not cover the arc array");
    }
    for (std::size_t v = 0; v + 1 < sec.offsets.size(); ++v) {
      if (sec.offsets[v] > sec.offsets[v + 1]) {
        return corrupt(path, "row offsets are not nondecreasing");
      }
    }
    for (const VertexId t : sec.targets) {
      if (t >= h.n) return corrupt(path, "arc target out of range");
    }
  }

  auto storage = std::make_shared<MmapStorage>(
      base, static_cast<std::size_t>(size), sec, path);
  guard.p = nullptr;  // ownership transferred
  return CsrGraph::from_storage(std::move(storage));
}

}  // namespace llpmst
