#!/usr/bin/env python3
"""End-to-end tests for tools/bench_compare.py (and the llpmst-bench side
of tools/check_report_schema.py): synthesizes baseline/candidate record
sets in temp directories and asserts on the comparator's exit status.

Run directly (python3 tests/test_bench_compare.py) or via ctest; uses only
the standard library.
"""
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent.parent / "tools"
COMPARE = TOOLS / "bench_compare.py"
CHECK = TOOLS / "check_report_schema.py"


def make_record(algo="LLP-Prim", median=10.0, iqr=0.5, workload="Road 16,384",
                bench="bench_fig2_single_thread", threads=1, allocs=None,
                util=None, rss=1 << 20):
    """A schema-complete llpmst-bench record around the given median.

    `allocs` is the per-repetition allocation count; None leaves the
    alloc_delta section null (allocator hooks compiled out).  `util` fills
    the "sched" section's utilization; None omits the section entirely
    (a pre-PR-6 record).  `rss` is mem.peak_rss_bytes; 0 models a host
    where getrusage failed.
    """
    samples = [median - iqr, median, median + iqr]
    alloc_delta = None
    if allocs is not None:
        alloc_delta = {"count": allocs * len(samples),
                       "bytes": allocs * len(samples) * 64,
                       "frees": allocs * len(samples)}
    record = {
        "schema": "llpmst-bench",
        "schema_version": 1,
        "bench": bench,
        "workload": workload,
        "algo": algo,
        "threads": threads,
        "warmup": 1,
        "repetitions": len(samples),
        "verified": True,
        "ms": {
            "median": median,
            "p25": median - iqr / 2,
            "p75": median + iqr / 2,
            "iqr": iqr,
            "min": samples[0],
            "max": samples[-1],
            "mean": median,
            "stddev": iqr,
        },
        "samples_ms": samples,
        "hw": None,
        "mem": {"peak_rss_bytes": rss, "alloc": None,
                "alloc_delta": alloc_delta},
    }
    if util is not None:
        record["sched"] = {"utilization": util, "steal_rate": 0.1}
    return record


def write_jsonl(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def run_compare(*argv):
    return subprocess.run(
        [sys.executable, str(COMPARE), *map(str, argv)],
        capture_output=True, text=True)


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.tmp = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write_sets(self, base_records, cand_records):
        base = self.tmp / "base"
        cand = self.tmp / "cand"
        base.mkdir()
        cand.mkdir()
        write_jsonl(base / "a.bench.jsonl", base_records)
        write_jsonl(cand / "a.bench.jsonl", cand_records)
        return base, cand

    def test_identical_inputs_exit_zero(self):
        records = [make_record("LLP-Prim"), make_record("LLP-Boruvka")]
        base, cand = self.write_sets(records, records)
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK: no regression", r.stdout)

    def test_2x_regression_exits_nonzero(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=10.0, iqr=0.5)],
            [make_record("LLP-Prim", median=20.0, iqr=0.5)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("REGRESSION", r.stdout)

    def test_within_iqr_jitter_is_ignored(self):
        # +30% median shift, but the samples are so noisy (IQR 5 ms) that
        # the delta stays inside the noise floor — must NOT flag.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=10.0, iqr=5.0)],
            [make_record("LLP-Prim", median=13.0, iqr=5.0)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("OK: no regression", r.stdout)

    def test_small_shift_below_threshold_is_ignored(self):
        # Clears the IQR noise floor but is under the 25% threshold.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=10.0, iqr=0.1)],
            [make_record("LLP-Prim", median=11.0, iqr=0.1)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_improvement_never_fails(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=20.0, iqr=0.5)],
            [make_record("LLP-Prim", median=10.0, iqr=0.5)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("improvement", r.stdout)

    def test_missing_key_warns_but_passes_by_default(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim"), make_record("LLP-Boruvka")],
            [make_record("LLP-Prim")])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("missing from candidate", r.stdout)
        r = run_compare(base, cand, "--fail-on-missing")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_baseline_array_form_is_accepted(self):
        # The committed baseline is a pretty-printed JSON array, not JSONL.
        base = self.tmp / "ci-smoke.json"
        base.write_text(json.dumps(
            [make_record("LLP-Prim"), make_record("LLP-Boruvka")], indent=1))
        cand = self.tmp / "cand"
        cand.mkdir()
        write_jsonl(cand / "a.bench.jsonl",
                    [make_record("LLP-Prim"), make_record("LLP-Boruvka")])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_threshold_flag_is_respected(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=10.0, iqr=0.1)],
            [make_record("LLP-Prim", median=11.5, iqr=0.1)])
        self.assertEqual(run_compare(base, cand).returncode, 0)
        r = run_compare(base, cand, "--threshold", "0.10")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)

    def test_synthetic_records_pass_schema_checker(self):
        path = self.tmp / "records.bench.jsonl"
        write_jsonl(path, [make_record("LLP-Prim"),
                           make_record("LLP-Boruvka", allocs=1000)])
        r = subprocess.run([sys.executable, str(CHECK), str(path)],
                           capture_output=True, text=True)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_duplicate_key_in_candidate_is_an_error(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", median=10.0)],
            [make_record("LLP-Prim", median=10.0),
             make_record("LLP-Prim", median=30.0)])
        r = run_compare(base, cand)
        self.assertNotEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("duplicate bench record", r.stderr)

    def test_duplicate_key_in_baseline_is_an_error(self):
        # Two baseline files each carrying the same key (e.g. a stale
        # leftover next to a fresh run) must be rejected, not last-wins.
        base = self.tmp / "base"
        cand = self.tmp / "cand"
        base.mkdir()
        cand.mkdir()
        write_jsonl(base / "old.bench.jsonl", [make_record(median=5.0)])
        write_jsonl(base / "new.bench.jsonl", [make_record(median=10.0)])
        write_jsonl(cand / "a.bench.jsonl", [make_record(median=10.0)])
        r = run_compare(base, cand)
        self.assertNotEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("duplicate bench record", r.stderr)

    def test_alloc_regression_exits_nonzero(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", allocs=1000)],
            [make_record("LLP-Prim", allocs=2000)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("ALLOC REGRESSION", r.stdout)

    def test_small_alloc_increase_is_ignored(self):
        # +40% is under the default 50% alloc threshold.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", allocs=1000)],
            [make_record("LLP-Prim", allocs=1400)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_tiny_absolute_alloc_increase_is_ignored(self):
        # 4 -> 40 allocs/rep is a 10x ratio but below the absolute floor:
        # near-zero counts must not flag on a handful of allocations.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", allocs=4)],
            [make_record("LLP-Prim", allocs=40)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_alloc_gate_skipped_when_either_side_lacks_delta(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", allocs=None)],
            [make_record("LLP-Prim", allocs=100000)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def test_utilization_drift_is_reported_but_never_fails(self):
        # A 0.70 -> 0.30 utilization collapse is worth a log line, but the
        # drift report must not affect the exit status.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", util=0.70)],
            [make_record("LLP-Prim", util=0.30)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("util drift", r.stdout)
        self.assertIn("report-only", r.stdout)

    def test_small_utilization_drift_is_not_reported(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", util=0.70)],
            [make_record("LLP-Prim", util=0.68)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("util drift", r.stdout)

    def test_utilization_skipped_when_either_side_lacks_sched(self):
        # Old baselines predate the "sched" section; comparing against a
        # new candidate must neither report drift nor fail.
        base, cand = self.write_sets(
            [make_record("LLP-Prim")],
            [make_record("LLP-Prim", util=0.05)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("util drift", r.stdout)
        self.assertNotIn("utilization:", r.stdout)

    def test_peak_rss_drift_is_reported_but_never_fails(self):
        # A 64 MiB -> 160 MiB jump (e.g. a backend fell off the mmap path
        # onto the heap) is worth a log line but must not gate.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", rss=64 << 20)],
            [make_record("LLP-Prim", rss=160 << 20)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertIn("peak-RSS drift", r.stdout)
        self.assertIn("report-only", r.stdout)

    def test_small_peak_rss_drift_is_not_reported(self):
        # +10% is under the default 25% drift threshold.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", rss=64 << 20)],
            [make_record("LLP-Prim", rss=int(70.4 * (1 << 20)))])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("peak-RSS drift", r.stdout)

    def test_sub_mib_peak_rss_jitter_is_ignored(self):
        # A 0.5 MiB -> 1.4 MiB move is +180% relative but under the 1 MiB
        # absolute floor: tiny processes jitter at page granularity.
        base, cand = self.write_sets(
            [make_record("LLP-Prim", rss=512 << 10)],
            [make_record("LLP-Prim", rss=1433 << 10)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("peak-RSS drift", r.stdout)

    def test_peak_rss_skipped_when_either_side_lacks_it(self):
        base, cand = self.write_sets(
            [make_record("LLP-Prim", rss=0)],
            [make_record("LLP-Prim", rss=512 << 20)])
        r = run_compare(base, cand)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        self.assertNotIn("peak-RSS drift", r.stdout)
        self.assertNotIn("peak RSS:", r.stdout)

    def test_records_with_sched_pass_schema_checker(self):
        path = self.tmp / "records.bench.jsonl"
        write_jsonl(path, [make_record("LLP-Prim", util=0.5)])
        r = subprocess.run([sys.executable, str(CHECK), str(path)],
                           capture_output=True, text=True)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)


if __name__ == "__main__":
    unittest.main()
