// DIMACS shortest-path challenge ".gr" format reader/writer.
//
// This is the format of the paper's USA-road-d.USA input, so a real road
// file drops straight into the benchmarks when available:
//
//   c comment
//   p sp <num_vertices> <num_arcs>
//   a <u> <v> <weight>     (1-based vertices; arcs usually listed both ways)
//
// read_dimacs maps vertices to 0-based ids and normalizes (the both-ways arc
// listing collapses to one undirected edge).  Malformed input is reported
// via the returned error string, never by crashing.
#pragma once

#include <optional>
#include <string>

#include "graph/edge_list.hpp"

namespace llpmst {

struct DimacsResult {
  EdgeList graph;
  std::string error;  // empty on success

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Reads a .gr file.  On failure, `error` describes the first problem.
[[nodiscard]] DimacsResult read_dimacs(const std::string& path);

/// Writes a normalized edge list as .gr (arcs emitted both directions, as
/// the road files do).  Returns an empty string on success.
[[nodiscard]] std::string write_dimacs(const std::string& path,
                                       const EdgeList& list);

}  // namespace llpmst
