// Per-round telemetry for the iterative solvers: llp_solve sweeps,
// LLP-Prim super-steps, and Boruvka contraction rounds each record one
// RoundRecord per round, answering "which round was the bottleneck and was
// the work balanced?" — the per-round load-imbalance lens that
// "Engineering Massively Parallel MST Algorithms" (arXiv:2302.12199)
// identifies as the dominant scaling-loss signal.
//
// Recording is cold-path by construction (one mutex-guarded append per
// ROUND, not per element) and double-gated: call sites check
// obs::enabled() before gathering the fields, and record_round() checks it
// again so a stray call while obs is idle stays free.  The store caps at
// kMaxRoundRecords to bound memory on pathological non-converging runs;
// overflow drops the newest records and raises a warning once.
//
// The records fold into the run report's schema-v3 "rounds" array (see
// obs/report.cpp and docs/observability.md) and are compiled out entirely
// under LLPMST_OBS=0.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace llpmst::obs {

/// One round of an iterative solver.  Sites fill what they can measure and
/// leave the rest 0 — e.g. llp_solve has no component notion, and
/// imbalance is only known on paths that time per-worker shares.
struct RoundRecord {
  /// Recording site ("llp_boruvka", "llp_prim_parallel", ...).  When left
  /// empty, record_round() substitutes the calling thread's nested phase
  /// path, so generic code (llp_solve) inherits its caller's attribution.
  std::string label;
  std::uint64_t round = 0;       // 1-based round / sweep / super-step index
  std::uint64_t components = 0;  // components (or unfixed vertices) remaining
  std::uint64_t edges = 0;       // edges surviving / frontier size entering
  std::uint64_t advances = 0;    // forbidden-state advances or edges emitted
  double wall_ms = 0.0;          // wall time of this round
  /// max/mean per-worker busy time in the round's dominant sweep;
  /// 1.0 = perfectly balanced, 0.0 = not measured this round.
  double imbalance = 0.0;
};

#if LLPMST_OBS

/// Cap on buffered records: ~100 rounds per algorithm per run in practice;
/// the cap only matters for runaway sweep loops.
inline constexpr std::size_t kMaxRoundRecords = 4096;

/// Appends one record (no-op while obs::enabled() is false; drops and
/// warns once past kMaxRoundRecords).
void record_round(RoundRecord r);

/// All buffered records in recording order.
[[nodiscard]] std::vector<RoundRecord> snapshot_rounds();

/// Records dropped by the cap since the last reset.
[[nodiscard]] std::uint64_t rounds_dropped();

/// Clears the buffer and the drop count.
void reset_rounds();

#else  // !LLPMST_OBS

inline void record_round(const RoundRecord&) {}
[[nodiscard]] inline std::vector<RoundRecord> snapshot_rounds() { return {}; }
[[nodiscard]] inline std::uint64_t rounds_dropped() { return 0; }
inline void reset_rounds() {}

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
