// Prim over every heap implementation (the heap-choice ablation's
// correctness backing): identical MSTs, coherent operation counts.
#include <gtest/gtest.h>

#include "ds/binary_heap.hpp"
#include "ds/dary_heap.hpp"
#include "ds/lazy_heap.hpp"
#include "ds/pairing_heap.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "mst/kruskal.hpp"
#include "mst/prim_heaps.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

template <typename Heap>
class PrimHeapTest : public testing::Test {};

using HeapTypes =
    testing::Types<BinaryHeap<EdgePriority>, DaryHeap<EdgePriority, 2>,
                   DaryHeap<EdgePriority, 4>, DaryHeap<EdgePriority, 8>,
                   PairingHeap<EdgePriority>, LazyHeap<EdgePriority>>;
TYPED_TEST_SUITE(PrimHeapTest, HeapTypes);

TYPED_TEST(PrimHeapTest, MatchesKruskalOnRoadGraph) {
  RoadParams p;
  p.width = 40;
  p.height = 40;
  p.seed = 5;
  const CsrGraph g = csr(generate_road_network(p));
  const MstResult r = prim_with_heap<TypeParam>(g, 0);
  EXPECT_EQ(r.edges, kruskal(g).edges);
}

TYPED_TEST(PrimHeapTest, MatchesKruskalOnDenseGraph) {
  ErdosRenyiParams p;
  p.num_vertices = 400;
  p.num_edges = 6000;
  p.seed = 8;
  EdgeList list = generate_erdos_renyi(p);
  connect_components(list);
  const CsrGraph g = csr(list);
  const MstResult r = prim_with_heap<TypeParam>(g, 0);
  EXPECT_EQ(r.edges, kruskal(g).edges);
}

TYPED_TEST(PrimHeapTest, OperationCountsCoherent) {
  RoadParams p;
  p.width = 30;
  p.height = 30;
  const CsrGraph g = csr(generate_road_network(p));
  const MstResult r = prim_with_heap<TypeParam>(g, 0);
  EXPECT_GE(r.stats.heap.pushes, g.num_vertices() > 0 ? 1u : 0u);
  EXPECT_GE(r.stats.heap.pops, r.stats.fixed_via_heap);
  EXPECT_EQ(r.stats.fixed_via_heap, g.num_vertices());
  EXPECT_LE(r.stats.heap.pushes, 2 * g.num_edges() + 1);  // lazy bound
}

}  // namespace
}  // namespace llpmst
