// Utilization and critical-path analysis over the scheduler event rings
// (obs/sched_events.hpp): per-worker busy/idle breakdowns, steal success
// rate, the adaptive-grain decision histogram, and a critical-path lower
// bound derived from the event timelines.
//
// The critical-path bound is the classic span argument run backwards: any
// wall-clock interval during which at most ONE worker was inside a task
// span is work that could not have been parallelized (or serial coordinator
// time between regions), so summing those intervals lower-bounds T_inf.
// Together with total busy time it brackets the achievable speedup:
// T_p >= max(busy / p, critical_path).
//
// Everything here is pure analysis over a SchedSnapshot, so it compiles in
// both obs flavours — under LLPMST_OBS=0 the snapshot is empty and
// scheduler_summary() reports has_events == false.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "obs/sched_events.hpp"

namespace llpmst::obs {

struct WorkerBreakdown {
  std::uint32_t worker = 0;
  std::uint64_t busy_us = 0;   // summed task spans
  std::uint64_t idle_us = 0;   // summed idle spans (steal-loop waits)
  std::uint64_t tasks = 0;     // task spans recorded
  std::uint64_t steal_attempts = 0;   // failed probes + successes
  std::uint64_t steal_successes = 0;
};

struct SchedulerSummary {
  bool has_events = false;
  /// sum(busy) / (span * workers); in [0, 1] whenever has_events (0 only
  /// when events exist but no task span does, e.g. a single-thread run
  /// that recorded nothing beyond grain decisions).
  double utilization = 0.0;
  /// successes / (failed probes + successes); 0 when no steals happened.
  double steal_success_rate = 0.0;
  std::uint64_t span_us = 0;  // first event start to last event end
  std::uint64_t busy_us = 0;
  std::uint64_t idle_us = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t steal_successes = 0;
  /// Lower bound on the critical path: time with <= 1 worker busy.
  std::uint64_t critical_path_us = 0;
  std::uint64_t dropped_events = 0;
  std::vector<WorkerBreakdown> workers;  // sorted by worker id
  /// (grain value bucketed to its power of two, decision count), sorted.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> grain_hist;
};

/// Pure analysis of a snapshot (unit-testable on synthetic events).
[[nodiscard]] SchedulerSummary analyze_sched(const SchedSnapshot& snap);

/// snapshot_sched_events() + analyze_sched: the current rings' summary.
[[nodiscard]] SchedulerSummary scheduler_summary();

/// Re-emits the buffered scheduler events into the Chrome trace as
/// per-worker tracks — "sched/task" and "sched/idle" spans plus
/// "sched/steal" instants under pid 1, tid = worker — so the trace viewer
/// shows the runtime's timeline next to the phase spans.  Call after the
/// parallel work joined and BEFORE trace_stop(); no-op when the trace is
/// not collecting.
void export_sched_to_trace();

}  // namespace llpmst::obs
