#include "graph/generators/road.hpp"

#include <cmath>
#include <vector>

#include "ds/union_find.hpp"
#include "support/assert.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {

struct Pos {
  double x, y;
};

/// Deterministic jittered embedding of grid vertex (gx, gy).
Pos jittered(std::uint32_t gx, std::uint32_t gy, double jitter,
             std::uint64_t seed) {
  const std::uint64_t h = SplitMix64::mix(
      seed ^ (static_cast<std::uint64_t>(gx) << 32 | gy));
  const double jx = (static_cast<double>(h & 0xffffffffu) / 4294967296.0 - 0.5) *
                    2.0 * jitter;
  const double jy =
      (static_cast<double>(h >> 32) / 4294967296.0 - 0.5) * 2.0 * jitter;
  return {static_cast<double>(gx) + jx, static_cast<double>(gy) + jy};
}

Weight road_weight(const Pos& a, const Pos& b, std::uint32_t unit) {
  const double dx = a.x - b.x, dy = a.y - b.y;
  const double len = std::sqrt(dx * dx + dy * dy);
  // +1 keeps zero-length degenerate cases positive.
  return static_cast<Weight>(len * unit) + 1;
}

}  // namespace

EdgeList generate_road_network(const RoadParams& params) {
  LLPMST_CHECK(params.width >= 1 && params.height >= 1);
  LLPMST_CHECK(params.jitter >= 0.0 && params.jitter < 0.5);
  LLPMST_CHECK(params.keep_street > 0.0 && params.keep_street <= 1.0);
  LLPMST_CHECK(params.unit >= 1);
  const std::uint64_t n64 =
      static_cast<std::uint64_t>(params.width) * params.height;
  LLPMST_CHECK_MSG(n64 < kInvalidVertex, "grid exceeds 32-bit vertex space");

  const std::uint32_t W = params.width, H = params.height;
  const auto vid = [W](std::uint32_t x, std::uint32_t y) {
    return static_cast<VertexId>(y * W + x);
  };
  const auto pos = [&](std::uint32_t x, std::uint32_t y) {
    return jittered(x, y, params.jitter, params.seed);
  };

  EdgeList list(static_cast<std::size_t>(n64));
  Xoshiro256 rng(params.seed);

  // Candidate streets with random drops; record dropped ones so the
  // connectivity patch can restore the cheapest necessary subset.
  std::vector<WeightedEdge> dropped;
  for (std::uint32_t y = 0; y < H; ++y) {
    for (std::uint32_t x = 0; x < W; ++x) {
      const Pos p = pos(x, y);
      if (x + 1 < W) {
        const Weight w = road_weight(p, pos(x + 1, y), params.unit);
        if (rng.next_bool(params.keep_street)) {
          list.add_edge(vid(x, y), vid(x + 1, y), w);
        } else {
          dropped.push_back({vid(x, y), vid(x + 1, y), w});
        }
      }
      if (y + 1 < H) {
        const Weight w = road_weight(p, pos(x, y + 1), params.unit);
        if (rng.next_bool(params.keep_street)) {
          list.add_edge(vid(x, y), vid(x, y + 1), w);
        } else {
          dropped.push_back({vid(x, y), vid(x, y + 1), w});
        }
      }
      // Occasional diagonal shortcut, alternating orientation by parity so
      // shortcuts do not all share a direction.
      if (x + 1 < W && y + 1 < H && rng.next_bool(params.diagonal_p)) {
        if ((x + y) % 2 == 0) {
          list.add_edge(vid(x, y), vid(x + 1, y + 1),
                        road_weight(p, pos(x + 1, y + 1), params.unit));
        } else {
          list.add_edge(vid(x + 1, y), vid(x, y + 1),
                        road_weight(pos(x + 1, y), pos(x, y + 1), params.unit));
        }
      }
    }
  }

  // Connectivity patch: re-add dropped streets that bridge components.
  // Scanning in generation order restores a natural-looking subset.
  UnionFind uf(list.num_vertices());
  for (const WeightedEdge& e : list.edges()) uf.unite(e.u, e.v);
  for (const WeightedEdge& e : dropped) {
    if (uf.num_sets() == 1) break;
    if (uf.unite(e.u, e.v)) list.add_edge(e.u, e.v, e.w);
  }
  LLPMST_CHECK_MSG(uf.num_sets() == 1,
                   "road generator failed to produce a connected graph");

  list.normalize();
  return list;
}

}  // namespace llpmst
