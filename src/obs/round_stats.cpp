#include "obs/round_stats.hpp"

#if LLPMST_OBS

#include <mutex>
#include <utility>

namespace llpmst::obs {

namespace {

struct RoundStore {
  std::mutex mu;
  std::vector<RoundRecord> records;
  std::uint64_t dropped = 0;
};

RoundStore& store() {
  static RoundStore* s = new RoundStore;  // leaked: outlives all threads
  return *s;
}

}  // namespace

void record_round(RoundRecord r) {
  if (!enabled()) return;
  if (r.label.empty()) r.label = detail::phase_path();
  RoundStore& s = store();
  std::lock_guard lock(s.mu);
  if (s.records.size() >= kMaxRoundRecords) {
    if (s.dropped++ == 0) {
      add_warning("round-stats buffer full; dropping further round records");
    }
    return;
  }
  s.records.push_back(std::move(r));
}

std::vector<RoundRecord> snapshot_rounds() {
  RoundStore& s = store();
  std::lock_guard lock(s.mu);
  return s.records;
}

std::uint64_t rounds_dropped() {
  RoundStore& s = store();
  std::lock_guard lock(s.mu);
  return s.dropped;
}

void reset_rounds() {
  RoundStore& s = store();
  std::lock_guard lock(s.mu);
  s.records.clear();
  s.dropped = 0;
}

}  // namespace llpmst::obs

#endif  // LLPMST_OBS
