#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

// Thread counts swept by the parameterized suites: sequential, small team,
// and oversubscribed relative to this machine.
class ParallelPrimitives : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
};

INSTANTIATE_TEST_SUITE_P(Threads, ParallelPrimitives,
                         testing::Values(1, 2, 4, 8));

TEST_P(ParallelPrimitives, ForVisitsEveryIndexOnce) {
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  parallel_for(pool_, 0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelPrimitives, ForStaticVisitsEveryIndexOnce) {
  const std::size_t n = 54321;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  parallel_for_static(pool_, 0, n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST_P(ParallelPrimitives, ForWorkerGivesValidWorkerIds) {
  const std::size_t n = 20000;
  std::atomic<std::size_t> bad{0};
  parallel_for_worker(pool_, 0, n, [&](std::size_t, std::size_t w) {
    if (w >= pool_.num_threads()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST_P(ParallelPrimitives, ForHandlesEmptyAndReversedRanges) {
  int calls = 0;
  parallel_for(pool_, 5, 5, [&](std::size_t) { ++calls; });
  parallel_for(pool_, 7, 3, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST_P(ParallelPrimitives, ForNonZeroBegin) {
  std::atomic<std::uint64_t> sum{0};
  parallel_for(pool_, 100, 200, [&](std::size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), (100ull + 199ull) * 100 / 2);
}

TEST_P(ParallelPrimitives, BlocksCoverRangeWithoutOverlap) {
  const std::size_t n = 9973;  // prime, exercises uneven splits
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  parallel_blocks(pool_, 0, n, [&](std::size_t lo, std::size_t hi,
                                   std::size_t w) {
    EXPECT_LT(w, pool_.num_threads());
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

// --- GrainFeedback: the adaptive-grain controller. --------------------
// The clamp bounds [128, 65536] and the ~30us serial cutoff are part of
// the contract parallel_for_adaptive call sites tune against.

TEST(GrainFeedback, GrainClampsToFloorWhenElementsAreExpensive) {
  GrainFeedback fb;
  fb.update(1000, 1e9);  // 1 ms per element measured
  EXPECT_DOUBLE_EQ(fb.ns_per_item(), 1e6);
  // Target chunk cost / cost-per-item would be a fraction of an element;
  // the floor keeps every dequeue worth its atomic.
  EXPECT_EQ(fb.grain(1u << 20, 4), 128u);
}

TEST(GrainFeedback, GrainClampsToCeilingWhenElementsAreCheap) {
  GrainFeedback fb;
  fb.update(1u << 20, 1000.0);  // ~0.001 ns per element measured
  // Unclamped this would be tens of millions; the ceiling preserves load
  // balance even when elements are nearly free.
  EXPECT_EQ(fb.grain(100000000, 1), std::size_t{1} << 16);
}

TEST(GrainFeedback, NoFeedbackSplitsByRangeShape) {
  GrainFeedback fb;
  EXPECT_DOUBLE_EQ(fb.ns_per_item(), 0.0);
  // n / (threads * 4 slices): 65536 / 16 = 4096, inside the clamp window.
  EXPECT_EQ(fb.grain(65536, 4), 4096u);
  // Small ranges still clamp up to the floor.
  EXPECT_EQ(fb.grain(100, 8), 128u);
}

TEST(GrainFeedback, UpdateMixesWithEwmaAlphaHalf) {
  GrainFeedback fb;
  fb.update(100, 10000.0);  // first sample is taken whole: 100 ns/item
  EXPECT_DOUBLE_EQ(fb.ns_per_item(), 100.0);
  fb.update(100, 20000.0);  // 0.5 * 100 + 0.5 * 200
  EXPECT_DOUBLE_EQ(fb.ns_per_item(), 150.0);
  fb.update(0, 99999.0);  // empty ranges must not poison the estimate
  EXPECT_DOUBLE_EQ(fb.ns_per_item(), 150.0);
}

TEST(GrainFeedback, PrefersSerialOnlyBelowTheMeasuredCutoff) {
  GrainFeedback fb;
  // Unknown cost predicts optimistically (parallel) so the first call
  // gathers a real measurement.
  EXPECT_FALSE(fb.prefers_serial(10));
  fb.update(100, 10000.0);  // 100 ns/item
  EXPECT_TRUE(fb.prefers_serial(100));    // ~10us predicted < ~30us cutoff
  EXPECT_FALSE(fb.prefers_serial(1000));  // ~100us predicted
}

TEST_P(ParallelPrimitives, AdaptiveForVisitsEveryIndexOnceAcrossRounds) {
  const std::size_t n = 50000;
  GrainFeedback fb;
  // Repeated invocations move the grain as the EWMA settles; coverage must
  // hold on the untrained first round and the trained later ones alike.
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    parallel_for_adaptive(pool_, 0, n, fb, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "rep " << rep << " index " << i;
    }
  }
  EXPECT_GT(fb.ns_per_item(), 0.0) << "loop timing never fed back";
}

TEST_P(ParallelPrimitives, AdaptiveForRunsInlineBelowTheSerialCutoff) {
  GrainFeedback fb;
  fb.update(1u << 20, 1000.0);  // measured: elements are nearly free
  ASSERT_TRUE(fb.prefers_serial(256));
  const std::thread::id me = std::this_thread::get_id();
  std::atomic<int> calls{0};
  std::atomic<int> off_thread{0};
  parallel_for_adaptive(pool_, 0, 256, fb, [&](std::size_t) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (std::this_thread::get_id() != me) {
      off_thread.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(calls.load(), 256);
  EXPECT_EQ(off_thread.load(), 0)
      << "serial-cutoff path dispatched a team anyway";
}

TEST_P(ParallelPrimitives, ReduceMatchesSequential) {
  const std::size_t n = 123457;
  std::vector<std::uint64_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = (i * 2654435761u) % 1000;
  const std::uint64_t expected =
      std::accumulate(data.begin(), data.end(), std::uint64_t{0});
  const auto got = parallel_sum(pool_, 0, n, std::uint64_t{0},
                                [&](std::size_t i) { return data[i]; });
  EXPECT_EQ(got, expected);
}

TEST_P(ParallelPrimitives, ReduceWithCustomCombine) {
  const std::size_t n = 100001;
  const auto max_val = parallel_reduce(
      pool_, 0, n, std::uint64_t{0},
      [&](std::size_t i) { return (i * 48271) % 99991; },
      [](std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < n; ++i) {
    expected = std::max(expected, (i * 48271) % 99991);
  }
  EXPECT_EQ(max_val, expected);
}

TEST_P(ParallelPrimitives, CountMatchesPredicate) {
  const std::size_t n = 65536;
  const auto c = parallel_count(pool_, 0, n,
                                [](std::size_t i) { return i % 3 == 0; });
  EXPECT_EQ(c, (n + 2) / 3);
}

TEST_P(ParallelPrimitives, ScanMatchesSequential) {
  for (const std::size_t n : {0ul, 1ul, 7ul, 1000ul, 131071ul}) {
    std::vector<std::uint64_t> data(n), expected(n);
    for (std::size_t i = 0; i < n; ++i) data[i] = (i * 7 + 3) % 13;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      expected[i] = acc;
      acc += data[i];
    }
    const auto total = exclusive_scan_inplace(pool_, data);
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST_P(ParallelPrimitives, FilterPreservesOrder) {
  const std::size_t n = 100000;
  std::vector<std::uint32_t> out;
  const auto kept = parallel_filter(
      pool_, n, out, [](std::size_t i) { return i % 7 == 0; },
      [](std::size_t i) { return static_cast<std::uint32_t>(i); });
  EXPECT_EQ(kept, out.size());
  ASSERT_EQ(out.size(), (n + 6) / 7);
  for (std::size_t k = 0; k < out.size(); ++k) {
    ASSERT_EQ(out[k], k * 7);
  }
}

TEST_P(ParallelPrimitives, FilterKeepsNothingAndEverything) {
  std::vector<int> out{1, 2, 3};  // must be overwritten
  EXPECT_EQ(parallel_filter(
                pool_, 1000, out, [](std::size_t) { return false; },
                [](std::size_t i) { return static_cast<int>(i); }),
            0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(parallel_filter(
                pool_, 1000, out, [](std::size_t) { return true; },
                [](std::size_t i) { return static_cast<int>(i); }),
            1000u);
  EXPECT_EQ(out.size(), 1000u);
}

}  // namespace
}  // namespace llpmst
