// Filter-Kruskal (Osipov, Sanders, Singler 2009): quicksort-style recursion
// on the edge set — pick a pivot, recurse on the light half, then *filter*
// the heavy half through the union-find (edges inside one component can
// never be tree edges) before recursing on it.  Avoids sorting most of the
// heavy edges entirely.
//
// Included as an additional modern baseline: it shares Kruskal's sequential
// union-find spine but does asymptotically less sorting, which positions it
// between Kruskal and the Prim family on dense graphs.  The filter step runs
// on the thread pool (find-only traffic on a lock-free union-find is safe to
// parallelize; unions happen only in the quiesced base case).
#pragma once

#include "mst/registry.hpp"

namespace llpmst {

class RunContext;

/// The filter step runs on ctx.executor(); unions stay sequential.
[[nodiscard]] MstResult filter_kruskal(const CsrGraph& g, RunContext& ctx);
/// Registry descriptor (see mst/registry.hpp).
[[nodiscard]] MstAlgorithm filter_kruskal_algorithm();

}  // namespace llpmst
