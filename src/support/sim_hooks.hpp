// Thread-local scheduler hooks for deterministic simulation.
//
// The deterministic simulator (src/sim/) needs the runtime to hand control
// back at *preemption points*: the spots where a real OS scheduler could
// interleave workers differently between runs — dynamic chunk grabs, the
// work-stealing backoff spin, failpoint sleep/yield actions.  Rather than
// teach every primitive about the simulator, the simulator installs a small
// hook table into each worker thread's TLS; the primitives call the free
// functions below, which are no-ops (one relaxed TLS read) when no hooks are
// installed.
//
// Contract for hook placement (enforced by audit, asserted by design):
// a preemption point must NEVER sit inside a lock scope.  The simulator
// serializes workers — if worker A parked inside a critical section, the
// worker granted the next step could block on that mutex and deadlock the
// simulation.  All current sites (chunk-grab loops, steal backoff, failpoint
// sites) run lock-free.
#pragma once

#include <cstdint>

namespace llpmst::simhook {

/// The hook table a simulated worker carries.  Function pointers rather than
/// virtuals: the table lives in the simulator, workers only borrow it.
struct WorkerHooks {
  void* ctx = nullptr;
  /// Yield to the scheduler; returns when this worker is granted again.
  void (*preempt)(void*) = nullptr;
  /// Sleep `ns` of *virtual* time (advances the clock, yields).
  void (*sleep_ns)(void*, std::uint64_t) = nullptr;
  /// A failpoint site named `name` was hit (armed or not) — drives
  /// scripted "on hit k" timeline triggers.
  void (*on_failpoint)(void*, const char* name) = nullptr;
};

namespace detail {
// Function-local TLS instead of a namespace-scope `extern thread_local`:
// the latter goes through a weak cross-TU wrapper that UBSan can resolve to
// null under -fsanitize=null, turning the first install() into a diagnosed
// null store.  A local static inside an inline function gets a per-TU
// guard-free wrapper (trivially-initialized pointer) and is sanitizer-clean.
inline const WorkerHooks*& tls_slot() noexcept {
  thread_local const WorkerHooks* p = nullptr;
  return p;
}
}  // namespace detail

/// True when the calling thread is a simulated worker.
[[nodiscard]] inline bool active() { return detail::tls_slot() != nullptr; }

/// Installs hooks for the calling thread; returns the previous table so
/// scopes can nest (the simulator restores on exit).
inline const WorkerHooks* install(const WorkerHooks* hooks) {
  const WorkerHooks*& slot = detail::tls_slot();
  const WorkerHooks* prev = slot;
  slot = hooks;
  return prev;
}

/// Preemption point: under simulation, parks this worker and lets the
/// scheduler pick the next runnable one.  Free (one TLS read) otherwise.
inline void preempt() {
  const WorkerHooks* h = detail::tls_slot();
  if (h != nullptr && h->preempt != nullptr) h->preempt(h->ctx);
}

/// Virtual sleep: returns true when handled by the simulator (caller must
/// NOT also sleep in real time), false when the caller should sleep for
/// real.
inline bool virtual_sleep_ns(std::uint64_t ns) {
  const WorkerHooks* h = detail::tls_slot();
  if (h == nullptr || h->sleep_ns == nullptr) return false;
  h->sleep_ns(h->ctx, ns);
  return true;
}

/// Reports a failpoint hit to the simulator's timeline (no-op otherwise).
inline void notify_failpoint(const char* name) {
  const WorkerHooks* h = detail::tls_slot();
  if (h != nullptr && h->on_failpoint != nullptr) h->on_failpoint(h->ctx, name);
}

/// RAII install/restore for a simulated worker's scope.
class ScopedHooks {
 public:
  explicit ScopedHooks(const WorkerHooks* hooks) : prev_(install(hooks)) {}
  ~ScopedHooks() { install(prev_); }
  ScopedHooks(const ScopedHooks&) = delete;
  ScopedHooks& operator=(const ScopedHooks&) = delete;

 private:
  const WorkerHooks* prev_;
};

}  // namespace llpmst::simhook
