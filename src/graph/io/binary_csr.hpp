// `llpmstb`: the binary CSR snapshot format behind the mmap storage backend.
//
// A snapshot file is a fixed 152-byte header followed by the six CSR
// sections, each 64-byte aligned, in declaration order:
//
//   offsets    u64 x (n+1)       row offsets into the arc arrays
//   targets    u32 x 2m          arc targets
//   priorities u64 x 2m          packed arc priorities
//   mwe        u64 x n           per-vertex minimum incident priority
//   mwe_flags  u8  x 2m          per-arc MWE flags
//   edges      {u32,u32,u32} x m undirected edges by edge id
//
// The header carries a version, the counts, a section table (offset +
// length per section), the alignment, an FNV-1a checksum of the payload,
// and an FNV-1a checksum of the header itself.  Loading = open + mmap +
// header validation: the header checksum is always verified, the payload
// checksum only under BinaryCsrOptions::verify_payload, so mounting a
// paper-scale snapshot stays O(header) and never touches the arc bytes.
// Everything in the header is untrusted: counts, offsets, and lengths are
// cross-checked against the file size with overflow-safe arithmetic before
// any span is formed.
//
// The format is distinct from the legacy "LLPM" binary *edge list*
// (edge_list_io.hpp): that one stores raw (u, v, w) records and still pays
// normalize + CSR build on load; this one stores the finished CSR so load
// is a zero-parse mount.  Both live under GraphFormat::kBinary and are
// told apart by their magic bytes (see sniff_binary_csr / read_graph).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/csr_graph.hpp"
#include "support/status.hpp"

namespace llpmst {

inline constexpr std::array<char, 8> kBinaryCsrMagic = {'L', 'L', 'P', 'M',
                                                        'S', 'T', 'B', '\0'};
inline constexpr std::uint32_t kBinaryCsrVersion = 1;
inline constexpr std::uint64_t kBinaryCsrAlignment = 64;

struct BinaryCsrOptions {
  /// Also verify the payload checksum (one pass over every mapped byte).
  /// Off by default so catalog mounts stay mmap + header validation only;
  /// turned on by the fuzz suite and the CI round-trip gate.
  bool verify_payload = false;
};

/// Writes `g` as an llpmstb snapshot at `path` (atomic via rename from a
/// sibling temp file is the caller's business; this writes in place).
[[nodiscard]] Status write_binary_csr(const std::string& path,
                                      const CsrGraph& g);

/// Mounts an llpmstb snapshot: open + mmap (read-only) + header validation.
/// The returned graph's storage is an MmapStorage; no edge-list parse and no
/// CSR rebuild happen.  Errors: kIoError (open/stat/mmap), kCorruptInput
/// (bad magic/version/counts/section table/checksum).
[[nodiscard]] Expected<CsrGraph> read_binary_csr(
    const std::string& path, const BinaryCsrOptions& options = {});

/// True iff the first `len` bytes at `data` begin with the llpmstb magic
/// (len may be short; short buffers never match).
[[nodiscard]] bool sniff_binary_csr(const char* data, std::size_t len);

/// True iff the file at `path` opens and begins with the llpmstb magic —
/// the cheap "can I mount this?" probe for tools and the catalog.
[[nodiscard]] bool is_binary_csr_file(const std::string& path);

}  // namespace llpmst
