// llpmstd: the persistent MST/MSF query service.
//
//   llpmstd --socket /tmp/llpmst.sock --workers 2 --threads 2
//           --preload "road=scenario:road-baseline,big=rmat:16"
//
// A long-lived daemon over the library's serving layer (src/serve/):
// immutable graph snapshots in a catalog, admission-controlled queries on a
// bounded queue, per-query RunContexts with budgets and cancellation, and
// newline-delimited JSON on a unix or TCP socket ("GET /stats" and
// "GET /healthz" work too — same port, plain HTTP).  docs/serving.md is
// the protocol reference; tools/llpmstd_client.py is the reference client.
//
// Shutdown: SIGTERM/SIGINT stop the accept loop, cancel in-flight queries,
// flush cancelled responses, join everything, and exit 0 — CI asserts the
// clean exit.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/catalog.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "support/cli.hpp"
#include "support/failpoint.hpp"

namespace {

using namespace llpmst;

volatile std::sig_atomic_t g_stop = 0;

void handle_stop_signal(int) { g_stop = 1; }

/// "name=source[,name=source...]" — the --preload grammar.  Returns false
/// (with a message on stderr) on a malformed entry or a failed load.
bool preload(serve::GraphCatalog& catalog, const std::string& spec,
             std::uint64_t seed) {
  std::size_t start = 0;
  while (start < spec.size()) {
    auto end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == entry.size()) {
      std::fprintf(stderr, "bad --preload entry '%s' (want name=source)\n",
                   entry.c_str());
      return false;
    }
    const std::string name = entry.substr(0, eq);
    const std::string source = entry.substr(eq + 1);
    Expected<serve::SnapshotPtr> loaded = catalog.load(name, source, seed);
    if (!loaded.ok()) {
      std::fprintf(stderr, "preload '%s' failed: %s\n", entry.c_str(),
                   loaded.status().to_string().c_str());
      return false;
    }
    const serve::GraphSnapshot& s = **loaded;
    std::printf("loaded %-12s %-28s %zu vertices, %zu edges, %zu components\n",
                s.name.c_str(), s.source.c_str(), s.graph.num_vertices(),
                s.graph.num_edges(), s.components);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("llpmstd",
                "persistent MST/MSF query daemon (NDJSON over a unix/TCP "
                "socket; see docs/serving.md)");
  auto& socket_path = cli.add_string(
      "socket", "", "unix-domain socket path to listen on (preferred)");
  auto& host = cli.add_string("host", "127.0.0.1",
                              "TCP listen address (when --socket is unset)");
  auto& port =
      cli.add_int("port", 0, "TCP port (0 = ephemeral, printed at startup)");
  auto& preload_spec = cli.add_string(
      "preload", "",
      "graphs to load before serving: 'name=source,...' where source is "
      "scenario:NAME | road:SIDE | rmat:SCALE | er:VERTICES | file:PATH");
  auto& workers = cli.add_int("workers", 2, "serve-side query worker threads");
  auto& threads = cli.add_int(
      "threads", 1, "ThreadPool size each worker runs its queries on");
  auto& queue_depth = cli.add_int(
      "queue-depth", 64,
      "bounded request queue; beyond it queries are rejected 'overloaded'");
  auto& batch_max = cli.add_int(
      "batch-max", 4, "max same-graph queries one worker dispatch claims");
  auto& seed =
      cli.add_int("seed", 1, "seed for --preload generator/scenario sources");
  cli.parse(argc, argv);

  if (workers < 1 || threads < 1 || queue_depth < 1 || batch_max < 1) {
    std::fprintf(stderr,
                 "--workers/--threads/--queue-depth/--batch-max must be >= 1\n");
    return 2;
  }

  // The daemon is an observability citizen from the start: counters and
  // phase aggregates accumulate across queries and surface on /stats.  In
  // an LLPMST_OBS=0 build this is a no-op and /stats still renders the
  // minimal valid document.
  obs::set_enabled(true);
  // Chaos comes from the environment only ($LLPMST_FAILPOINTS): a daemon
  // has no per-run CLI, and the per-request path must never arm global
  // failpoint state.
  const std::size_t armed = fail::configure_from_env();
  if (armed > 0) {
    std::printf("failpoints: %zu armed from LLPMST_FAILPOINTS\n", armed);
  }

  serve::GraphCatalog catalog;
  if (!preload_spec.empty() &&
      !preload(catalog, preload_spec, static_cast<std::uint64_t>(seed))) {
    return 2;
  }

  serve::ServiceOptions service_options;
  service_options.workers = static_cast<std::size_t>(workers);
  service_options.threads_per_query = static_cast<std::size_t>(threads);
  service_options.queue_depth = static_cast<std::size_t>(queue_depth);
  service_options.batch_max = static_cast<std::size_t>(batch_max);
  serve::QueryService service(catalog, service_options);

  serve::ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.host = host;
  server_options.port = static_cast<int>(port);
  server_options.stop_flag = &g_stop;
  serve::SocketServer server(service, server_options);

  const Status listening = server.listen();
  if (!listening.ok()) {
    std::fprintf(stderr, "cannot listen: %s\n", listening.to_string().c_str());
    return 1;
  }
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGPIPE, SIG_IGN);

  if (!socket_path.empty()) {
    std::printf("llpmstd listening on %s (%d workers x %d threads, queue %d)\n",
                socket_path.c_str(), static_cast<int>(workers),
                static_cast<int>(threads), static_cast<int>(queue_depth));
  } else {
    std::printf("llpmstd listening on %s:%d (%d workers x %d threads, "
                "queue %d)\n",
                host.c_str(), server.bound_port(), static_cast<int>(workers),
                static_cast<int>(threads), static_cast<int>(queue_depth));
  }
  std::fflush(stdout);

  server.run();  // returns after SIGTERM/SIGINT (or stop()), fully drained

  const serve::QueryService::Stats s = service.stats();
  std::printf("llpmstd shut down cleanly: %llu admitted, %llu served, "
              "%llu rejected (%llu overloaded), %llu cancelled, %llu batched\n",
              static_cast<unsigned long long>(s.admitted),
              static_cast<unsigned long long>(s.served),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.overloaded),
              static_cast<unsigned long long>(s.cancelled),
              static_cast<unsigned long long>(s.batched));
  return 0;
}
