#include "mst/auto.hpp"

#include "graph/algorithms/connected_components.hpp"
#include "llp/llp_boruvka.hpp"
#include "llp/llp_prim.hpp"
#include "llp/llp_prim_parallel.hpp"

namespace llpmst {

AutoMstResult minimum_spanning_forest(const CsrGraph& g, ThreadPool& pool,
                                      Connectivity connectivity,
                                      const AutoMstOptions& options) {
  AutoMstResult out;
  if (g.num_vertices() == 0) {
    out.algorithm = "trivial";
    return out;
  }

  bool connected = false;
  switch (connectivity) {
    case Connectivity::kConnected:
      connected = true;
      break;
    case Connectivity::kDisconnected:
      connected = false;
      break;
    case Connectivity::kUnknown: {
      EdgeList list(g.num_vertices(), g.edges());
      connected = is_connected(list);
      break;
    }
  }

  const std::size_t threads = pool.num_threads();
  if (!connected || threads >= options.boruvka_crossover) {
    out.algorithm = "llp_boruvka";
    out.result = llp_boruvka(g, pool);
  } else if (threads == 1) {
    out.algorithm = "llp_prim";
    out.result = llp_prim(g);
  } else {
    out.algorithm = "llp_prim_parallel";
    out.result = llp_prim_parallel(g, pool);
  }
  return out;
}

}  // namespace llpmst
