// Parallel prefix sum (scan), the workhorse of parallel graph construction
// and contraction: CSR row offsets, stream compaction (filter), and stable
// relabeling all reduce to exclusive scans.
//
// Two-pass blocked algorithm: each worker sums its block, the caller scans
// the per-block totals sequentially (t elements), then each worker writes its
// block's exclusive prefixes.  Work O(n), depth O(n/t + t).
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/executor.hpp"

namespace llpmst {

/// In-place exclusive scan of data[0..n); returns the grand total.
template <typename T>
T exclusive_scan_inplace(Executor& pool, std::vector<T>& data) {
  const std::size_t n = data.size();
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 4 * t) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = data[i];
      data[i] = acc;
      acc += v;
    }
    return acc;
  }

  std::vector<T> block_total(t, T{});
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = n * w / t;
    const std::size_t hi = n * (w + 1) / t;
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += data[i];
    block_total[w] = acc;
  });

  T grand{};
  for (std::size_t w = 0; w < t; ++w) {
    T v = block_total[w];
    block_total[w] = grand;
    grand += v;
  }

  pool.run_team([&](std::size_t w) {
    const std::size_t lo = n * w / t;
    const std::size_t hi = n * (w + 1) / t;
    T acc = block_total[w];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = data[i];
      data[i] = acc;
      acc += v;
    }
  });
  return grand;
}

/// Stream compaction: copies every element of [0, n) whose pred(i) holds into
/// the output, preserving order; out[i] receives emit(i).  Returns the number
/// kept.  `out` is resized to the result.
template <typename OutT, typename Pred, typename Emit>
std::size_t parallel_filter(Executor& pool, std::size_t n,
                            std::vector<OutT>& out, Pred&& pred,
                            Emit&& emit) {
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 4 * t) {
    out.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (pred(i)) out.push_back(emit(i));
    }
    return out.size();
  }

  // Pass 1: count survivors per block.
  std::vector<std::size_t> block_count(t, 0);
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = n * w / t;
    const std::size_t hi = n * (w + 1) / t;
    std::size_t c = 0;
    for (std::size_t i = lo; i < hi; ++i) c += pred(i) ? 1 : 0;
    block_count[w] = c;
  });

  std::size_t total = 0;
  for (std::size_t w = 0; w < t; ++w) {
    std::size_t c = block_count[w];
    block_count[w] = total;
    total += c;
  }
  out.resize(total);

  // Pass 2: write survivors at their scanned offsets.
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = n * w / t;
    const std::size_t hi = n * (w + 1) / t;
    std::size_t pos = block_count[w];
    for (std::size_t i = lo; i < hi; ++i) {
      if (pred(i)) out[pos++] = emit(i);
    }
  });
  return total;
}

}  // namespace llpmst
