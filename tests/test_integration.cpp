// End-to-end flows across modules: generate -> persist -> reload -> solve ->
// verify, through every file format and with bench-harness plumbing.
#include <gtest/gtest.h>

#include <filesystem>

#include "bench_util/harness.hpp"
#include "bench_util/table.hpp"
#include "graph/algorithms/degree_stats.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "graph/io/dimacs.hpp"
#include "graph/io/edge_list_io.hpp"
#include "llp/llp_prim.hpp"
#include "mst/kruskal.hpp"
#include "mst/verifier.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::all_msf_algorithms;
using test::csr;

class Integration : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("llpmst_int_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& n) { return (dir_ / n).string(); }
  std::filesystem::path dir_;
};

TEST_F(Integration, GeneratePersistReloadSolveVerify_AllFormats) {
  RoadParams p;
  p.width = 32;
  p.height = 32;
  p.seed = 11;
  const EdgeList original = generate_road_network(p);
  const MstResult expected = kruskal(csr(original));

  // DIMACS.
  ASSERT_TRUE(write_dimacs(path("g.gr"), original).ok());
  const DimacsResult d = read_dimacs(path("g.gr"));
  ASSERT_TRUE(d.ok()) << d.status.to_string();
  EXPECT_EQ(kruskal(csr(d.graph)).total_weight, expected.total_weight);

  // Text.
  ASSERT_TRUE(write_edge_list_text(path("g.txt"), original).ok());
  const EdgeListResult t = read_edge_list_text(path("g.txt"));
  ASSERT_TRUE(t.ok()) << t.status.to_string();
  EXPECT_EQ(kruskal(csr(t.graph)).edges, expected.edges);

  // Binary.
  ASSERT_TRUE(write_edge_list_binary(path("g.bin"), original).ok());
  const EdgeListResult b = read_edge_list_binary(path("g.bin"));
  ASSERT_TRUE(b.ok()) << b.status.to_string();
  EXPECT_EQ(kruskal(csr(b.graph)).edges, expected.edges);
}

TEST_F(Integration, RmatPipelineEndToEnd) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8;
  p.seed = 21;
  EdgeList list = generate_rmat(p);
  connect_components(list);
  const CsrGraph g = csr(list);
  const GraphStats stats = compute_stats(g);
  EXPECT_EQ(stats.num_components, 1u);

  ThreadPool pool(4);
  const MstResult reference = kruskal(g);
  for (const auto& algo : all_msf_algorithms()) {
    const MstResult r = algo.run(g, pool);
    ASSERT_EQ(r.edges, reference.edges) << algo.name;
    const VerifyResult v = verify_spanning_forest(g, r);
    ASSERT_TRUE(v.ok) << algo.name << ": " << v.error;
  }
  const VerifyResult full = verify_msf(g, reference);
  EXPECT_TRUE(full.ok) << full.error;
}

TEST_F(Integration, BenchHarnessMeasuresAndVerifies) {
  RoadParams p;
  p.width = 24;
  p.height = 24;
  const CsrGraph g = csr(generate_road_network(p));
  const MstResult reference = kruskal(g);
  BenchOptions opts;
  opts.warmup = 1;
  opts.repetitions = 2;
  const BenchMeasurement m = measure_mst(
      "llp_prim", g, reference, [&] { return llp_prim(g); }, opts);
  EXPECT_TRUE(m.verified);
  EXPECT_EQ(m.time_ms.count, 2u);
  EXPECT_GE(m.time_ms.min, 0.0);
  EXPECT_EQ(m.last_result.edges, reference.edges);
}

TEST_F(Integration, BenchHarnessAbortsOnWrongResult) {
  // A benchmark of a wrong algorithm must die loudly, not record a time.
  const CsrGraph g = csr(make_paper_figure1());
  MstResult wrong = kruskal(g);
  wrong.total_weight += 1;  // sabotage the reference
  BenchOptions opts;
  opts.warmup = 1;
  opts.repetitions = 1;
  EXPECT_DEATH((void)measure_mst("llp_prim", g, wrong,
                                 [&] { return llp_prim(g); }, opts),
               "different MSF");
}

TEST_F(Integration, TablesRenderBothFormats) {
  Table t({"algo", "time"});
  t.add_row({"prim", "1.5 ms"});
  t.add_row({"llp,prim", "1.2 ms"});  // comma exercises CSV quoting
  const std::string text = t.to_string();
  EXPECT_NE(text.find("algo"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"llp,prim\""), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(Integration, StrfFormats) {
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace llpmst
