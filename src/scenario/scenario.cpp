#include "scenario/scenario.hpp"

#include <cstdio>

#include "graph/csr_graph.hpp"
#include "graph/generators/random_graph.hpp"
#include "graph/generators/rmat.hpp"
#include "graph/generators/road.hpp"
#include "graph/generators/special.hpp"
#include "mst/kruskal.hpp"
#include "scenario/adversarial.hpp"

namespace llpmst {

namespace {

// ---- Generator thunks.  Each takes ONLY the seed; every other parameter
// is pinned here so a scenario name means the same workload forever.

EdgeList rmat_with(int scale, double a, double b, double c,
                   std::uint64_t seed) {
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 8;
  p.a = a;
  p.b = b;
  p.c = c;
  p.seed = seed;
  return generate_rmat(p);
}

EdgeList make_rmat_skew_mild(std::uint64_t seed) {
  // a=0.45: barely skewed — degree distribution close to Erdős–Rényi.
  return rmat_with(10, 0.45, 0.22, 0.22, seed);
}

EdgeList make_rmat_graph500(std::uint64_t seed) {
  // The paper's parameters at test scale.
  return rmat_with(10, 0.57, 0.19, 0.19, seed);
}

EdgeList make_rmat_skew_extreme(std::uint64_t seed) {
  // a=0.70: heavy-tailed degrees, a few huge hubs — worst case for chunked
  // load balance, the regime where the steal fallback must engage.
  return rmat_with(10, 0.70, 0.12, 0.12, seed);
}

EdgeList make_near_duplicate(std::uint64_t seed) {
  NearDuplicateParams p;
  p.seed = seed;
  return make_near_duplicate_weights(p);
}

EdgeList make_uniform_ties(std::uint64_t seed) {
  // spread 0: EVERY weight identical; priority order degenerates to edge
  // ids alone.
  NearDuplicateParams p;
  p.spread = 0;
  p.seed = seed;
  return make_near_duplicate_weights(p);
}

EdgeList make_bundles(std::uint64_t seed) {
  BundleHeavyParams p;
  p.seed = seed;
  return make_bundle_heavy(p);
}

EdgeList make_bundle_storm(std::uint64_t seed) {
  // Bundles wider than the dedup probe cap by an order of magnitude.
  BundleHeavyParams p;
  p.clusters = 12;
  p.cluster_size = 16;
  p.bundle_width = 160;
  p.seed = seed;
  return make_bundle_heavy(p);
}

EdgeList make_hybrid(std::uint64_t seed) {
  GeoRoadHybridParams p;
  p.seed = seed;
  return make_geo_road_hybrid(p);
}

EdgeList make_forest_many(std::uint64_t seed) {
  // 64 random trees: nothing to contract ACROSS components, so component
  // bookkeeping must terminate without any merging work.
  return make_forest(64, 24, seed);
}

EdgeList make_forest_dust(std::uint64_t seed) {
  // Dust regime: hundreds of tiny components, rounds dominated by
  // per-component overhead rather than edge work.
  return make_forest(400, 3, seed);
}

EdgeList make_road_baseline(std::uint64_t seed) {
  RoadParams p;
  p.width = 48;
  p.height = 48;
  p.seed = seed;
  return generate_road_network(p);
}

EdgeList make_geometric_knn(std::uint64_t seed) {
  GeometricParams p;
  p.num_vertices = 3000;
  p.neighbors = 5;
  p.seed = seed;
  EdgeList list = generate_geometric(p);
  connect_components(list, seed ^ 0xc0ffee);
  return list;
}

const std::vector<Scenario>& registry() {
  // Deadlines are deliberately absent (0) on the conformance scenarios —
  // they must run to completion everywhere, including slow sanitizer CI.
  // Chaos-flavoured scenarios arm failpoints instead; they are excluded
  // from bit-exact conformance by their non-empty failpoints spec.
  static const std::vector<Scenario> table = {
      {"rmat-skew-mild", "rmat-skew",
       "RMAT a=0.45: near-uniform degrees, the easy end of the skew sweep",
       make_rmat_skew_mild, {.connected = false, .min_components = 1}, "", 0},
      {"rmat-graph500", "rmat-skew",
       "RMAT a=0.57 (graph500): the paper's workload family at test scale",
       make_rmat_graph500, {.connected = false, .min_components = 1}, "", 0},
      {"rmat-skew-extreme", "rmat-skew",
       "RMAT a=0.70: hub-dominated degrees, stresses chunked load balance "
       "and the steal fallback",
       make_rmat_skew_extreme, {.connected = false, .min_components = 1}, "",
       0},
      {"near-duplicate-weights", "weights",
       "all weights within 1 of each other: (weight, id) tie-breaking "
       "decides nearly every comparison",
       make_near_duplicate, {.connected = false, .min_components = 1}, "", 0},
      {"uniform-weight-ties", "weights",
       "every weight identical: priority order degenerates to edge ids",
       make_uniform_ties, {.connected = false, .min_components = 1}, "", 0},
      {"bundle-heavy", "bundles",
       "clusters collapse in round 1, leaving wide parallel bundles that "
       "stress the contraction dedup probe cap",
       make_bundles, {.connected = true, .min_components = 1}, "", 0},
      {"bundle-storm", "bundles",
       "bundles an order of magnitude wider than the dedup probe cap: the "
       "give-up path must stay exact",
       make_bundle_storm, {.connected = true, .min_components = 1}, "", 0},
      {"geo-road-hybrid", "hybrid",
       "road grid + geometric cloud + random bridges: two morphologies, one "
       "graph, no single-grain sweet spot",
       make_hybrid, {.connected = true, .min_components = 1}, "", 0},
      {"forest-many-components", "forest",
       "64 disjoint random trees: MSF bookkeeping with zero cross-component "
       "merges",
       make_forest_many, {.connected = false, .min_components = 64}, "", 0},
      {"forest-dust", "forest",
       "400 three-vertex components: per-component overhead dominates",
       make_forest_dust, {.connected = false, .min_components = 400}, "", 0},
      {"road-baseline", "baseline",
       "synthetic road grid: the paper's low-degree/high-diameter family",
       make_road_baseline, {.connected = true, .min_components = 1}, "", 0},
      {"geometric-knn", "baseline",
       "k-nearest geometric graph, patched connected: between road and RMAT "
       "morphology",
       make_geometric_knn, {.connected = true, .min_components = 1}, "", 0},
      {"chaos-yield-road", "chaos",
       "road grid with yield perturbation on every team region and LLP "
       "sweep (schedule noise, no injected failures)",
       make_road_baseline, {.connected = true, .min_components = 1},
       "pool/task=30%yield;llp/sweep=40%yield", 0},
      {"chaos-handoff-sleep", "chaos",
       "road grid with 200us sleeps at the LLP-Prim bag/heap handoff "
       "(stretches the sequential window)",
       make_road_baseline, {.connected = true, .min_components = 1},
       "llp_prim/handoff=50%sleep(200)", 0},
  };
  return table;
}

}  // namespace

const std::vector<Scenario>& scenarios() { return registry(); }

const Scenario* find_scenario(std::string_view name) {
  for (const Scenario& s : registry()) {
    if (name == s.name) return &s;
  }
  return nullptr;
}

std::string scenario_names(const char* separator) {
  std::string out;
  for (const Scenario& s : registry()) {
    if (!out.empty()) out += separator;
    out += s.name;
  }
  return out;
}

std::string check_scenario_result(const Scenario& scenario, const CsrGraph& g,
                                  const MstResult& result,
                                  bool compare_edges) {
  char buf[160];
  const std::size_t n = g.num_vertices();

  // Structural expectations first: they catch broken GENERATORS as well as
  // broken algorithms.
  if (scenario.expect.connected && result.num_trees != 1) {
    std::snprintf(buf, sizeof buf,
                  "expected a spanning tree but got %zu trees",
                  result.num_trees);
    return buf;
  }
  if (result.num_trees < scenario.expect.min_components) {
    std::snprintf(buf, sizeof buf, "expected >= %zu components, got %zu",
                  scenario.expect.min_components, result.num_trees);
    return buf;
  }
  if (result.edges.size() + result.num_trees != n) {
    std::snprintf(buf, sizeof buf,
                  "forest accounting broken: %zu edges + %zu trees != %zu "
                  "vertices",
                  result.edges.size(), result.num_trees, n);
    return buf;
  }

  // Oracle conformance: the unique (weight, id)-priority MSF.
  const MstResult oracle = kruskal(g);
  if (result.total_weight != oracle.total_weight) {
    std::snprintf(buf, sizeof buf,
                  "total weight %llu != oracle %llu",
                  static_cast<unsigned long long>(result.total_weight),
                  static_cast<unsigned long long>(oracle.total_weight));
    return buf;
  }
  if (compare_edges && result.edges != oracle.edges) {
    return "edge set differs from the Kruskal oracle (weights agree — "
           "tie-break divergence)";
  }
  return "";
}

}  // namespace llpmst
