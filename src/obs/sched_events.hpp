// Scheduler event collection: a fixed-capacity, lock-free ring buffer per
// worker thread recording what the parallel runtime actually did — task
// (team-region) spans, idle spans inside the work-stealing loop, steal
// attempts/successes, and adaptive-grain decisions.  This is the raw
// material for the per-worker timelines, the utilization / critical-path
// analysis (obs/critical_path.hpp), the run report's "scheduler" section,
// and the "sched/*" tracks in the Chrome trace.
//
// Design contract (mirrors obs/metrics.hpp):
//   * SPSC per ring: each thread writes only its own ring (found via a
//     thread_local pointer, registered once under a cold mutex).  Slots are
//     a pair of relaxed atomics, so a straggler emit overlapping a snapshot
//     is at worst a stale/torn *event*, never a data race.
//   * Drop-oldest: the writer always overwrites slot (head % capacity); a
//     full ring keeps the newest kSchedRingCapacity events and the snapshot
//     reports how many older ones were overwritten.
//   * Cost when collection is off: one relaxed load per call site.  Cost
//     when on: two relaxed stores + the caller's clock reads — no locks, no
//     allocation after the ring exists (one 256 KiB block per thread,
//     allocated on that thread's first event).
//   * Fully compiled out under LLPMST_OBS=0: every function below becomes
//     an inline no-op and the call sites fold away.
//
// Lifecycle contract: sched_start() / sched_stop() / snapshot_sched_events()
// are coordinator calls — make them while no parallel region is in flight
// (the same rule trace_start/trace_stop follow).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics.hpp"

namespace llpmst::obs {

enum class SchedEventKind : std::uint8_t {
  /// Span: one worker's share of a team region; value = duration in us.
  kTask = 0,
  /// Span: a worker idling inside the work-stealing loop (empty deque, no
  /// victim had work); value = duration in us.
  kIdle = 1,
  /// Point: end of an idle episode; value = failed steal probes during it.
  kStealAttempt = 2,
  /// Point: a steal probe handed over an item; value = 1.
  kStealSuccess = 3,
  /// Point: parallel_for_adaptive dispatched a team; value = chosen grain.
  kGrain = 4,
  /// Point: parallel_for_adaptive ran inline (predicted cost below the
  /// serial cutoff); value = range size.
  kGrainSerial = 5,
};

struct SchedEvent {
  SchedEventKind kind = SchedEventKind::kTask;
  std::uint32_t worker = 0;  // obs shard id of the recording thread
  std::uint64_t ts_us = 0;   // span start (spans) / event time (points)
  std::uint64_t value = 0;   // duration, probe count, or grain (see kind)
};

struct SchedSnapshot {
  /// Grouped by worker; time-ordered within each worker's run of events.
  std::vector<SchedEvent> events;
  /// Events overwritten by drop-oldest across all rings since sched_start().
  std::uint64_t dropped = 0;
};

#if LLPMST_OBS

/// Events retained per worker thread (16 bytes each).  Sized so a full
/// Graph500-scale solve keeps every region span while a pathological steal
/// storm degrades to "newest events win" instead of unbounded memory.
inline constexpr std::size_t kSchedRingCapacity = 1u << 14;

/// One relaxed load; the gate every recording call site checks.
[[nodiscard]] bool sched_collecting();

/// Resets all rings (head and drop counts) and begins collecting.
void sched_start();
/// Stops collecting; buffered events stay readable until the next start.
void sched_stop();

/// Appends one event to the calling thread's ring.  No-op unless
/// collecting.  Timestamps come from obs::now_us().
void sched_record(SchedEventKind kind, std::uint64_t ts_us,
                  std::uint64_t value);

/// Copies out all buffered events (call after parallel work has joined).
[[nodiscard]] SchedSnapshot snapshot_sched_events();

#else  // !LLPMST_OBS — the whole subsystem folds away.

inline constexpr std::size_t kSchedRingCapacity = 0;
[[nodiscard]] inline bool sched_collecting() { return false; }
inline void sched_start() {}
inline void sched_stop() {}
inline void sched_record(SchedEventKind, std::uint64_t, std::uint64_t) {}
[[nodiscard]] inline SchedSnapshot snapshot_sched_events() { return {}; }

#endif  // LLPMST_OBS

}  // namespace llpmst::obs
