#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"

namespace llpmst::serve {

namespace {

Status errno_status(const std::string& what) {
  return Status(StatusCode::kIoError, what + ": " + std::strerror(errno));
}

/// Full send with SIGPIPE suppressed (a dying client must not kill the
/// daemon; the write just fails).
bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// Shared between the reader thread and any worker holding a ResponseFn.
/// `mutex` orders writes against each other AND against close, so a late
/// response to a gone client is dropped, never written to a recycled fd.
struct SocketServer::Connection {
  int fd = -1;
  std::uint64_t client = 0;
  std::mutex mutex;
  bool closed = false;

  /// One response line (appends '\n').  Safe after close: no-op.
  void write_line(const std::string& line) {
    std::lock_guard lock(mutex);
    if (closed) return;
    std::string out = line;
    out.push_back('\n');
    (void)send_all(fd, out.data(), out.size());
  }

  void write_raw(const std::string& bytes) {
    std::lock_guard lock(mutex);
    if (closed) return;
    (void)send_all(fd, bytes.data(), bytes.size());
  }

  void close() {
    std::lock_guard lock(mutex);
    if (closed) return;
    closed = true;
    ::close(fd);
  }

  /// Unblocks a recv() stuck in the reader thread without racing fd reuse
  /// (the fd stays open until close()).
  void shutdown_io() {
    std::lock_guard lock(mutex);
    if (!closed) ::shutdown(fd, SHUT_RDWR);
  }
};

SocketServer::SocketServer(QueryService& service, ServerOptions options)
    : service_(service), options_(std::move(options)) {}

SocketServer::~SocketServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

Status SocketServer::listen() {
  if (!options_.unix_path.empty()) {
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return errno_status("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status(StatusCode::kInvalidArgument,
                    "unix socket path too long: " + options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(options_.unix_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return errno_status("bind(" + options_.unix_path + ")");
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return errno_status("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
    if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
      return Status(StatusCode::kInvalidArgument,
                    "bad listen address: " + options_.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      return errno_status("bind(" + options_.host + ":" +
                          std::to_string(options_.port) + ")");
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0) {
      bound_port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) < 0) return errno_status("listen");
  return Status::Ok();
}

void SocketServer::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    if (options_.stop_flag != nullptr && *options_.stop_flag != 0) break;
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, 100);  // 100 ms: the SIGTERM latency bound
    if (r < 0) {
      if (errno == EINTR) continue;  // signal delivery lands here
      break;
    }
    if (r == 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->client = next_client_.fetch_add(1, std::memory_order_relaxed);
    if (obs::kCompiledIn) obs::counter("serve/connections").increment();
    {
      std::lock_guard lock(conns_mutex_);
      conns_.push_back(conn);
      threads_.emplace_back([this, conn] { serve_connection(conn); });
    }
  }
  // Shut down in order: stop admitting (accept loop already exited), end
  // the service (cancels + responds), then unblock and join readers.
  service_.shutdown();
  std::vector<std::weak_ptr<Connection>> conns;
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conns_mutex_);
    conns.swap(conns_);
    threads.swap(threads_);
  }
  for (const auto& weak : conns) {
    if (const auto conn = weak.lock()) conn->shutdown_io();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void SocketServer::stop() { stop_.store(true, std::memory_order_relaxed); }

void SocketServer::serve_http(const std::shared_ptr<Connection>& conn,
                              const std::string& head) {
  // head is the request line ("GET /stats HTTP/1.1"); headers that follow
  // are irrelevant to these two endpoints and simply drained by close.
  const auto path_start = head.find(' ');
  const auto path_end =
      path_start == std::string::npos ? std::string::npos
                                      : head.find(' ', path_start + 1);
  const std::string path =
      path_end == std::string::npos
          ? ""
          : head.substr(path_start + 1, path_end - path_start - 1);

  std::string body;
  std::string content_type = "text/plain; charset=utf-8";
  const char* status_line = "HTTP/1.1 200 OK";
  if (path == "/stats" || path == "/metrics") {
    body = obs::render_openmetrics();
    content_type = obs::openmetrics_content_type();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status_line = "HTTP/1.1 404 Not Found";
    body = "not found\n";
  }
  std::string out = status_line;
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  conn->write_raw(out);
}

void SocketServer::serve_connection(const std::shared_ptr<Connection>& conn) {
  std::string buffer;
  bool http_checked = false;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client went away
    buffer.append(chunk, static_cast<std::size_t>(n));

    if (!http_checked && buffer.size() >= 4) {
      http_checked = true;
      if (buffer.compare(0, 4, "GET ") == 0) {
        // Drain until the request line is complete, answer once, done.
        while (buffer.find('\n') == std::string::npos) {
          const ssize_t m = ::recv(conn->fd, chunk, sizeof(chunk), 0);
          if (m <= 0) break;
          buffer.append(chunk, static_cast<std::size_t>(m));
        }
        const auto eol = buffer.find('\n');
        serve_http(conn, buffer.substr(0, eol == std::string::npos
                                              ? buffer.size()
                                              : eol));
        break;
      }
    }

    std::size_t start = 0;
    for (auto eol = buffer.find('\n', start); eol != std::string::npos;
         eol = buffer.find('\n', start)) {
      std::string line = buffer.substr(start, eol - start);
      start = eol + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      service_.handle(line, conn->client,
                      [conn](const std::string& out) { conn->write_line(out); });
    }
    buffer.erase(0, start);

    if (buffer.size() > options_.max_line_bytes) {
      conn->write_line(
          "{\"schema\":\"llpmst-serve-response\",\"schema_version\":1,"
          "\"id\":null,\"op\":\"\",\"status\":\"error\",\"error\":{"
          "\"code\":\"INVALID_ARGUMENT\",\"message\":\"request line exceeds "
          "1 MiB\"},\"data\":null}");
      break;
    }
  }
  // Reader gone: cancel whatever this client still has in flight, then
  // close under the write mutex (workers' late responses become no-ops).
  service_.disconnect_client(conn->client);
  conn->close();
}

}  // namespace llpmst::serve
