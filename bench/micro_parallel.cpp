// google-benchmark microbenchmarks for the parallel runtime substrate:
// team dispatch overhead, parallel_for/reduce/scan/filter throughput, and
// the concurrent bag the LLP-Prim R set uses.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "parallel/concurrent_bag.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/reduce.hpp"
#include "parallel/scan.hpp"
#include "parallel/sort.hpp"
#include "parallel/thread_pool.hpp"
#include "parallel/work_stealing.hpp"
#include "support/random.hpp"

namespace {

using namespace llpmst;

void bm_team_dispatch(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    pool.run_team([](std::size_t id) { benchmark::DoNotOptimize(id); });
  }
}

void bm_parallel_for(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 20;
  std::vector<std::uint32_t> data(n, 1);
  for (auto _ : state) {
    parallel_for(pool, 0, n, [&](std::size_t i) { data[i] += 1; });
    benchmark::DoNotOptimize(data.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_parallel_reduce(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 20;
  std::vector<std::uint32_t> data(n);
  for (std::size_t i = 0; i < n; ++i) data[i] = static_cast<std::uint32_t>(i);
  for (auto _ : state) {
    auto s = parallel_sum(pool, 0, n, std::uint64_t{0},
                          [&](std::size_t i) { return data[i]; });
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_exclusive_scan(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 20;
  std::vector<std::uint64_t> scratch(n);
  for (auto _ : state) {
    state.PauseTiming();
    for (std::size_t i = 0; i < n; ++i) scratch[i] = i % 7;
    state.ResumeTiming();
    benchmark::DoNotOptimize(exclusive_scan_inplace(pool, scratch));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_parallel_filter(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 20;
  std::vector<std::uint32_t> out;
  for (auto _ : state) {
    auto kept = parallel_filter(
        pool, n, out, [](std::size_t i) { return (i & 3) == 0; },
        [](std::size_t i) { return static_cast<std::uint32_t>(i); });
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_concurrent_bag(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  const std::size_t n = 1 << 18;
  ConcurrentBag<std::uint32_t> bag(threads);
  std::vector<std::uint32_t> sink;
  for (auto _ : state) {
    parallel_for_worker(pool, 0, n, [&](std::size_t i, std::size_t w) {
      bag.push(w, static_cast<std::uint32_t>(i));
    });
    sink.clear();
    bag.drain_into(sink);
    benchmark::DoNotOptimize(sink.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_parallel_sort(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  const std::size_t n = 1 << 19;
  std::vector<std::uint64_t> base(n);
  Xoshiro256 rng(5);
  for (auto& v : base) v = rng.next();
  std::vector<std::uint64_t> scratch;
  for (auto _ : state) {
    state.PauseTiming();
    scratch = base;
    state.ResumeTiming();
    parallel_sort(pool, scratch);
    benchmark::DoNotOptimize(scratch.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void bm_work_stealing(benchmark::State& state) {
  // Chain-with-leaves workload: heavy skew, exercises stealing.
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::atomic<std::uint64_t> sink{0};
    work_stealing_run<std::uint32_t>(
        pool, {0u},
        [&](std::uint32_t item, WorkStealingContext<std::uint32_t>& ctx) {
          sink.fetch_add(item, std::memory_order_relaxed);
          if (item < 20000) {
            ctx.push(item + 1);
            ctx.push(item + 1000000);  // leaf
          }
        });
    benchmark::DoNotOptimize(sink.load());
  }
}

}  // namespace

BENCHMARK(bm_team_dispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8);
BENCHMARK(bm_parallel_for)->Arg(1)->Arg(4);
BENCHMARK(bm_parallel_reduce)->Arg(1)->Arg(4);
BENCHMARK(bm_exclusive_scan)->Arg(1)->Arg(4);
BENCHMARK(bm_parallel_filter)->Arg(1)->Arg(4);
BENCHMARK(bm_concurrent_bag)->Arg(1)->Arg(4);
BENCHMARK(bm_parallel_sort)->Arg(1)->Arg(4);
BENCHMARK(bm_work_stealing)->Arg(1)->Arg(4);

BENCHMARK_MAIN();
