// Degree and size statistics for the Table I dataset inventory.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace llpmst {

struct GraphStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t min_degree = 0;
  std::size_t max_degree = 0;
  double avg_degree = 0.0;      // 2m/n (undirected degree)
  double edges_per_vertex = 0.0;  // m/n, the paper's morphology measure
  std::size_t num_components = 0;
  Weight min_weight = 0;
  Weight max_weight = 0;
};

[[nodiscard]] GraphStats compute_stats(const CsrGraph& g);

/// One-line human-readable rendering, e.g. for Table I rows.
[[nodiscard]] std::string describe(const GraphStats& s);

}  // namespace llpmst
