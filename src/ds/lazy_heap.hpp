// Lazy-insertion min-heap: the heap of the paper's complexity analysis
// (Section IV): "instead of adjusting the key in the heap for a vertex, we
// simply insert the vertex in the heap.  As a result the heap may have a
// vertex multiple times with different keys.  When a vertex is removed, we
// check if it has already been fixed."
//
// This trades O(m) heap entries for not needing a position index.  Callers
// must skip stale pops themselves (they already track `fixed`), or use
// pop_valid() with a predicate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "ds/binary_heap.hpp"  // for HeapStats
#include "support/assert.hpp"

namespace llpmst {

template <typename Key, typename Id = std::uint32_t>
class LazyHeap {
 public:
  LazyHeap() = default;
  /// Capacity is advisory (reserve only); any id may be pushed.
  explicit LazyHeap(std::size_t expected) { heap_.reserve(expected); }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Always inserts; duplicates of an id are allowed.
  void push(Id id, Key key) {
    heap_.push_back({key, id});
    std::push_heap(heap_.begin(), heap_.end(), Greater{});
    ++stats_.pushes;
  }

  /// Removes and returns the minimum entry, stale or not.
  std::pair<Id, Key> pop() {
    LLPMST_ASSERT(!empty());
    std::pop_heap(heap_.begin(), heap_.end(), Greater{});
    Entry e = heap_.back();
    heap_.pop_back();
    ++stats_.pops;
    return {e.id, e.key};
  }

  /// Pops until an entry whose id satisfies `alive` is found; returns it, or
  /// nullopt when the heap drains.  Stale pops are counted in stats().pops.
  template <typename Alive>
  std::optional<std::pair<Id, Key>> pop_valid(Alive&& alive) {
    while (!empty()) {
      auto [id, key] = pop();
      if (alive(id)) return std::make_pair(id, key);
    }
    return std::nullopt;
  }

  void clear() { heap_.clear(); }

  [[nodiscard]] const HeapStats& stats() const { return stats_; }
  void reset_stats() { stats_ = HeapStats{}; }

 private:
  struct Entry {
    Key key;
    Id id;
  };
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const {
      return b.key < a.key;
    }
  };

  std::vector<Entry> heap_;
  HeapStats stats_;
};

}  // namespace llpmst
