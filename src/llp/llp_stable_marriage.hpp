// LLP stable marriage (Gale–Shapley as predicate detection) — the third
// framework-transfer demo.  The paper's related work (and Garg et al., SPAA
// 2020) lists the stable marriage problem as one of the problems the LLP
// framework subsumes; implementing it here exercises the generic engine on a
// lattice that is NOT a graph-distance lattice.
//
// Lattice: vectors G where G[m] is the index (0-based, into m's preference
// list) of the woman man m is currently proposing to.  Order is
// component-wise <=; the bottom is all-zeros (every man proposes to his
// favourite).  Predicate:
//     B(G) = no man is "rejected" under G
// where man m is rejected iff the woman w = pref_m[G[m]] prefers another
// CURRENT proposer m' to m.  forbidden(m) = rejected(m); advance(m) =
// G[m] += 1 (propose to the next choice).  The least vector satisfying B is
// the man-optimal stable matching — every man ends with the best partner he
// has in any stable matching.
#pragma once

#include <cstdint>
#include <vector>

#include "llp/llp_solver.hpp"
#include "parallel/executor.hpp"

namespace llpmst {

/// A stable-marriage instance with n men and n women.  men_pref[m] is m's
/// ranking of women (best first); women_rank[w][m] is w's rank of man m
/// (lower = preferred) — the inverse-permutation form that makes the
/// rejected() test O(1).
struct MarriageInstance {
  std::size_t n = 0;
  std::vector<std::vector<std::uint32_t>> men_pref;
  std::vector<std::vector<std::uint32_t>> women_rank;
};

/// Builds a random instance with full preference lists.
[[nodiscard]] MarriageInstance random_marriage_instance(std::size_t n,
                                                        std::uint64_t seed);

struct MarriageResult {
  /// wife[m] = woman matched to man m (the man-optimal stable matching).
  std::vector<std::uint32_t> wife;
  LlpStats llp;
};

/// Solves via the generic LLP engine.
[[nodiscard]] MarriageResult llp_stable_marriage(const MarriageInstance& inst,
                                                 Executor& pool);

/// Reference sequential Gale–Shapley (men-proposing) for cross-checking.
[[nodiscard]] std::vector<std::uint32_t> gale_shapley(
    const MarriageInstance& inst);

/// True iff `wife` is a perfect matching with no blocking pair.
[[nodiscard]] bool is_stable_matching(const MarriageInstance& inst,
                                      const std::vector<std::uint32_t>& wife);

}  // namespace llpmst
