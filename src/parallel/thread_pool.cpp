#include "parallel/thread_pool.hpp"

#include <new>
#include <utility>

#include "obs/profiler.hpp"
#include "obs/sched_events.hpp"
#include "obs/trace.hpp"
#include "support/assert.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {

}  // namespace

/// Runs one worker's share of a team region, emitting a trace span when
/// region tracing is on.  The span carries the worker's thread (trace tid),
/// so concurrent regions stack up lane-by-lane in the viewer.
namespace {
template <typename Fn>
inline void run_region(const Fn& f, std::size_t worker_id) {
  // Chaos hook: "pool/task" fires once per worker per region.  Yield/sleep
  // specs perturb worker start order; failure specs throw and exercise the
  // pool's exception propagation end to end.
  switch (LLPMST_FAILPOINT("pool/task")) {
    case fail::Action::kError:
      throw fail::FailpointError("pool/task");
    case fail::Action::kAlloc:
      throw std::bad_alloc();
    case fail::Action::kNone:
      break;
  }
  // Workers arm their per-thread profiler timers lazily, here: one relaxed
  // load when profiling is off, a one-time cold arm per thread per profile
  // session otherwise.  (The coordinator thread is armed by prof_start().)
  obs::prof_ensure_thread_timer();
  // Both gates are compile-time false in LLPMST_OBS=0 builds, so the whole
  // timed branch folds away there; with obs in but idle the cost is two
  // relaxed loads per worker per region.
  const bool trace = obs::trace_collecting() && ThreadPool::trace_regions();
  const bool sched = obs::sched_collecting();
  if (!trace && !sched) {
    f.invoke(f.obj, worker_id);
    return;
  }
  const std::uint64_t t0 = obs::now_us();
  f.invoke(f.obj, worker_id);
  const std::uint64_t dur = obs::now_us() - t0;
  if (trace) obs::trace_emit("pool/region", t0, dur);
  if (sched) obs::sched_record(obs::SchedEventKind::kTask, t0, dur);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads)
    : num_threads_(num_threads == 0 ? 1 : num_threads) {
  threads_.reserve(num_threads_ - 1);
  for (std::size_t id = 1; id < num_threads_; ++id) {
    threads_.emplace_back([this, id] { worker_loop(id); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_region_impl(const TeamFn& fn) {
  if (num_threads_ == 1) {
    run_region(fn, 0);  // exceptions propagate naturally on the inline path
    return;
  }
  {
    std::lock_guard lock(mutex_);
    LLPMST_CHECK_MSG(job_.obj == nullptr, "run_team is not reentrant");
    job_ = fn;
    active_workers_ = num_threads_ - 1;
    ++epoch_;
  }
  work_ready_.notify_all();

  // The caller participates as worker 0.  Its exception must not skip the
  // join — the workers still reference fn's target and the caller's stack.
  std::exception_ptr caller_exception;
  try {
    run_region(fn, 0);
  } catch (...) {
    caller_exception = std::current_exception();
  }

  std::exception_ptr worker_exception;
  {
    std::unique_lock lock(mutex_);
    work_done_.wait(lock, [this] { return active_workers_ == 0; });
    job_ = TeamFn{};
    worker_exception = std::exchange(worker_exception_, nullptr);
  }
  if (caller_exception != nullptr) std::rethrow_exception(caller_exception);
  if (worker_exception != nullptr) std::rethrow_exception(worker_exception);
}

void ThreadPool::worker_loop(std::size_t worker_id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    TeamFn job;
    {
      std::unique_lock lock(mutex_);
      work_ready_.wait(lock, [&] {
        return shutdown_ || epoch_ != seen_epoch;
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    std::exception_ptr thrown;
    try {
      run_region(job, worker_id);
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::lock_guard lock(mutex_);
      if (thrown != nullptr && worker_exception_ == nullptr) {
        worker_exception_ = std::move(thrown);  // first thrower wins
      }
      if (--active_workers_ == 0) work_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::default_pool() {
  static ThreadPool pool(std::thread::hardware_concurrency());
  return pool;
}

}  // namespace llpmst
