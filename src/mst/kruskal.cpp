#include "mst/kruskal.hpp"

#include <algorithm>
#include <numeric>

#include "ds/union_find.hpp"

namespace llpmst {

MstResult kruskal(const CsrGraph& g) {
  const std::size_t n = g.num_vertices();
  const std::size_t m = g.num_edges();

  // Sort edge ids by packed priority == (weight, id) lexicographic.
  std::vector<EdgeId> order(m);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return g.edge_priority(a) < g.edge_priority(b);
  });

  MstResult r;
  r.edges.reserve(n > 0 ? n - 1 : 0);
  UnionFind uf(n);
  for (const EdgeId e : order) {
    const WeightedEdge& we = g.edge(e);
    if (uf.unite(we.u, we.v)) {
      r.edges.push_back(e);
      if (r.edges.size() + 1 == n) break;  // spanning tree complete
    }
  }
  finalize_result(g, r);
  return r;
}

MstResult kruskal(const CsrGraph& g, RunContext& /*ctx*/) { return kruskal(g); }

MstAlgorithm kruskal_algorithm() {
  return {"kruskal", "Kruskal",
          "sort all edges, grow the forest through union-find (the oracle)",
          {.parallel = false, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) { return kruskal(g, ctx); }};
}

}  // namespace llpmst
