#include "llp/llp_boruvka.hpp"

namespace llpmst {

MstResult llp_boruvka(const CsrGraph& g, ThreadPool& pool,
                      const CancelToken* cancel) {
  // Per-thread persistent scratch: repeated runs reuse capacity and grain
  // feedback (see parallel_boruvka.cpp).
  thread_local BoruvkaScratch scratch;
  BoruvkaConfig config;
  config.jumping = PointerJumping::kAsynchronous;
  config.dedup_contracted_edges = false;
  config.obs_label = "llp_boruvka";
  config.cancel = cancel;
  config.scratch = &scratch;
  return boruvka_engine(g, pool, config);
}

MstResult llp_boruvka_configured(const CsrGraph& g, ThreadPool& pool,
                                 const BoruvkaConfig& config) {
  return boruvka_engine(g, pool, config);
}

}  // namespace llpmst
