// Parallel reductions over an Executor.
//
//   auto total = parallel_reduce(pool, 0, n, 0.0,
//       [&](std::size_t i) { return cost[i]; },       // map
//       [](double a, double b) { return a + b; });    // combine
//
// Per-worker partials are combined on the calling thread in worker order, so
// results are deterministic for a fixed thread count (and exactly equal to
// the sequential result for associative+commutative integer ops).
#pragma once

#include <cstddef>
#include <vector>

#include "parallel/executor.hpp"

namespace llpmst {

template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(Executor& pool, std::size_t begin,
                                std::size_t end, T identity, Map&& map,
                                Combine&& combine) {
  if (begin >= end) return identity;
  const std::size_t n = end - begin;
  const std::size_t t = pool.num_threads();
  if (t == 1 || n < 4 * t) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  std::vector<T> partial(t, identity);
  pool.run_team([&](std::size_t w) {
    const std::size_t lo = begin + n * w / t;
    const std::size_t hi = begin + n * (w + 1) / t;
    T acc = identity;
    for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
    partial[w] = acc;
  });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Convenience: parallel sum of map(i) over [begin, end).
template <typename T, typename Map>
[[nodiscard]] T parallel_sum(Executor& pool, std::size_t begin,
                             std::size_t end, T identity, Map&& map) {
  return parallel_reduce(pool, begin, end, identity, map,
                         [](T a, T b) { return a + b; });
}

/// Parallel count of indices satisfying pred.
template <typename Pred>
[[nodiscard]] std::size_t parallel_count(Executor& pool, std::size_t begin,
                                         std::size_t end, Pred&& pred) {
  return parallel_sum(pool, begin, end, std::size_t{0}, [&](std::size_t i) {
    return pred(i) ? std::size_t{1} : std::size_t{0};
  });
}

}  // namespace llpmst
