#include <gtest/gtest.h>

#include "graph/edge_list.hpp"

namespace llpmst {
namespace {

TEST(EdgeList, StartsEmpty) {
  EdgeList list(4);
  EXPECT_EQ(list.num_vertices(), 4u);
  EXPECT_EQ(list.num_edges(), 0u);
  EXPECT_TRUE(list.empty());
  EXPECT_TRUE(list.is_normalized());
}

TEST(EdgeList, NormalizeDropsSelfLoops) {
  EdgeList list(3);
  list.add_edge(0, 0, 5);
  list.add_edge(0, 1, 3);
  list.add_edge(2, 2, 1);
  list.normalize();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list[0], (WeightedEdge{0, 1, 3}));
}

TEST(EdgeList, NormalizeCanonicalizesEndpointOrder) {
  EdgeList list(3);
  list.add_edge(2, 0, 7);
  list.normalize();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list[0].u, 0u);
  EXPECT_EQ(list[0].v, 2u);
}

TEST(EdgeList, NormalizeKeepsLightestParallelEdge) {
  EdgeList list(2);
  list.add_edge(0, 1, 9);
  list.add_edge(1, 0, 4);
  list.add_edge(0, 1, 6);
  list.normalize();
  ASSERT_EQ(list.num_edges(), 1u);
  EXPECT_EQ(list[0].w, 4u);
}

TEST(EdgeList, NormalizeSortsByEndpoints) {
  EdgeList list(4);
  list.add_edge(2, 3, 1);
  list.add_edge(0, 1, 2);
  list.add_edge(1, 3, 3);
  list.add_edge(0, 2, 4);
  list.normalize();
  ASSERT_EQ(list.num_edges(), 4u);
  EXPECT_TRUE(list.is_normalized());
  EXPECT_EQ(list[0], (WeightedEdge{0, 1, 2}));
  EXPECT_EQ(list[1], (WeightedEdge{0, 2, 4}));
  EXPECT_EQ(list[2], (WeightedEdge{1, 3, 3}));
  EXPECT_EQ(list[3], (WeightedEdge{2, 3, 1}));
}

TEST(EdgeList, IsNormalizedDetectsViolations) {
  EdgeList loops(2);
  loops.edges().push_back({1, 1, 1});
  EXPECT_FALSE(loops.is_normalized());

  EdgeList reversed(3);
  reversed.edges().push_back({2, 1, 1});
  EXPECT_FALSE(reversed.is_normalized());

  EdgeList dup(3);
  dup.edges().push_back({0, 1, 1});
  dup.edges().push_back({0, 1, 2});
  EXPECT_FALSE(dup.is_normalized());

  EdgeList out_of_range(2);
  out_of_range.edges().push_back({0, 5, 1});
  EXPECT_FALSE(out_of_range.is_normalized());
}

TEST(EdgeList, EnsureVerticesOnlyGrows) {
  EdgeList list(3);
  list.ensure_vertices(10);
  EXPECT_EQ(list.num_vertices(), 10u);
  list.ensure_vertices(5);
  EXPECT_EQ(list.num_vertices(), 10u);
}

TEST(EdgeList, NormalizeIdempotent) {
  EdgeList list(4);
  list.add_edge(3, 1, 2);
  list.add_edge(1, 3, 8);
  list.add_edge(2, 2, 1);
  list.normalize();
  const auto snapshot = list.edges();
  list.normalize();
  EXPECT_EQ(list.edges(), snapshot);
}

}  // namespace
}  // namespace llpmst
