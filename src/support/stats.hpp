// Small summary-statistics helpers for the benchmark harness: given repeated
// timing samples, report min/median/mean/max/stddev.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace llpmst {

/// Summary of a sample of real-valued measurements.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  // Quartiles (linear interpolation on the sorted sample); p75 - p25 is
  // the IQR that the bench-record noise guard uses.
  double p25 = 0.0;
  double p75 = 0.0;
};

/// Computes summary statistics.  An empty span yields an all-zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> samples);

/// Formats a duration given in milliseconds with an adaptive unit,
/// e.g. "12.3 us", "4.56 ms", "1.23 s".
[[nodiscard]] std::string format_duration_ms(double ms);

/// Formats a count with thousands separators, e.g. 1234567 -> "1,234,567".
[[nodiscard]] std::string format_count(unsigned long long n);

}  // namespace llpmst
