#!/usr/bin/env python3
"""Assert the README algorithm table matches `mst_tool --list-algos`.

The registry (src/mst/registry.cpp) is the single source of truth for
algorithm names, capability flags, and summaries.  The README carries a
human-readable copy between `<!-- mst-algorithms:begin -->` and
`<!-- mst-algorithms:end -->` markers; this script re-derives the table
from the built binary and fails CI when the two drift (a renamed entry,
a flipped capability flag, an algorithm added to one side only).

    tools/check_algos_doc.py --tool build/examples/mst_tool [--readme README.md]
"""
import argparse
import re
import subprocess
import sys
from pathlib import Path

BEGIN = "<!-- mst-algorithms:begin -->"
END = "<!-- mst-algorithms:end -->"
# describe_caps() emits exactly four single-space-separated tokens.
NUM_FLAG_TOKENS = 4


def parse_tool(tool: str):
    """Rows from --list-algos: (name, flags, summary), in listed order."""
    out = subprocess.run([tool, "--list-algos"], check=True,
                         capture_output=True, text=True).stdout
    rows = []
    for line in out.splitlines():
        if not line.startswith("  "):
            continue  # header / legend / trailing notes
        tokens = line.split()
        if len(tokens) < NUM_FLAG_TOKENS + 2:
            continue  # the flags legend line
        name = tokens[0]
        flags = " ".join(tokens[1:1 + NUM_FLAG_TOKENS])
        summary = " ".join(tokens[1 + NUM_FLAG_TOKENS:])
        rows.append((name, flags, summary))
    return rows


def parse_readme(readme: Path):
    """Rows from the marked markdown table, in document order."""
    text = readme.read_text()
    if BEGIN not in text or END not in text:
        sys.exit(f"error: {readme} is missing the {BEGIN} / {END} markers")
    table = text.split(BEGIN, 1)[1].split(END, 1)[0]
    rows = []
    for line in table.splitlines():
        line = line.strip()
        if not line.startswith("|") or re.match(r"^\|[\s:|-]+\|$", line):
            continue  # separator row
        cells = [c.strip() for c in line.strip("|").split("|")]
        if len(cells) != 3 or cells[0] == "Name":
            continue  # header row
        name = cells[0].strip("`")
        rows.append((name, cells[1], cells[2]))
    return rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tool", default="build/examples/mst_tool",
                    help="path to the built mst_tool binary")
    ap.add_argument("--readme", default=None,
                    help="README to check (default: repo-root README.md)")
    args = ap.parse_args()

    repo_root = Path(__file__).resolve().parent.parent
    readme = Path(args.readme) if args.readme else repo_root / "README.md"

    tool_rows = parse_tool(args.tool)
    doc_rows = parse_readme(readme)
    if not tool_rows:
        sys.exit(f"error: no algorithms parsed from {args.tool} --list-algos")

    ok = True
    tool_by_name = {r[0]: r for r in tool_rows}
    doc_by_name = {r[0]: r for r in doc_rows}
    for name in tool_by_name.keys() - doc_by_name.keys():
        print(f"MISSING from README: {name} (registered in the binary)")
        ok = False
    for name in doc_by_name.keys() - tool_by_name.keys():
        print(f"STALE in README: {name} (not registered in the binary)")
        ok = False
    for name in tool_by_name.keys() & doc_by_name.keys():
        for field, got, want in zip(("flags", "summary"),
                                    doc_by_name[name][1:],
                                    tool_by_name[name][1:]):
            if got != want:
                print(f"DRIFT for {name}: README {field} {got!r} != "
                      f"binary {field} {want!r}")
                ok = False
    if [r[0] for r in tool_rows] != [r[0] for r in doc_rows] and ok:
        print("ORDER drift: README rows are not in registry order")
        print(f"  binary: {[r[0] for r in tool_rows]}")
        print(f"  readme: {[r[0] for r in doc_rows]}")
        ok = False

    if not ok:
        sys.exit(1)
    print(f"OK: README table matches --list-algos "
          f"({len(tool_rows)} algorithms)")


if __name__ == "__main__":
    main()
