// Portfolio entry point: pick the MST/MSF algorithm the paper's conclusions
// recommend for the given graph and thread budget.
//
// Section VII/VIII's findings, operationalized:
//   * 1 thread            -> LLP-Prim (1T) — fastest sequential (Fig. 2);
//   * few threads (< the crossover the paper places around 8) and a
//     connected graph     -> parallel LLP-Prim (Fig. 3 left);
//   * many threads, or a disconnected graph (the Prim family cannot run)
//                         -> LLP-Boruvka (Fig. 3 right / Fig. 4).
//
// The crossover is a tunable with the paper's observed default.
#pragma once

#include <string>

#include "mst/mst_result.hpp"
#include "parallel/thread_pool.hpp"
#include "support/cancel.hpp"

namespace llpmst {

struct AutoMstOptions {
  /// Thread count at which the Boruvka family starts winning (Fig. 3's ~8).
  std::size_t boruvka_crossover = 8;
  /// Wall-clock budget for the chosen parallel algorithm, in milliseconds
  /// (0 = none).  Enforced with an internal CancelToken deadline, so a
  /// wedged or pathologically slow parallel run is stopped cooperatively.
  double deadline_ms = 0;
  /// External cancellation, observed alongside the deadline.  A user cancel
  /// is honoured as a cancel — it does NOT trigger the fallback.
  const CancelToken* cancel = nullptr;
  /// When the parallel algorithm fails (deadline, injected fault, thrown
  /// exception, non-convergence), rerun with sequential Kruskal — slower
  /// but dependable — instead of returning the partial result.
  bool fallback_to_sequential = true;
};

struct AutoMstResult {
  MstResult result;
  std::string algorithm;  // which algorithm ultimately produced `result`
  /// True when the chosen parallel algorithm failed and sequential Kruskal
  /// produced the result instead; `fallback_reason` says why (e.g.
  /// "deadline_exceeded", "injected_fault", "exception: ...").
  bool fell_back = false;
  std::string fallback_reason;
};

/// Computes the MSF with the recommended algorithm.  `connected` may be
/// passed when the caller already knows it (kUnknown triggers a check).
enum class Connectivity { kUnknown, kConnected, kDisconnected };

[[nodiscard]] AutoMstResult minimum_spanning_forest(
    const CsrGraph& g, ThreadPool& pool,
    Connectivity connectivity = Connectivity::kUnknown,
    const AutoMstOptions& options = {});

}  // namespace llpmst
