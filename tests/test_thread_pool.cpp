#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int calls = 0;
  pool.run_team([&](std::size_t id) {
    EXPECT_EQ(id, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, AllWorkerIdsParticipate) {
  constexpr std::size_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::vector<std::atomic<int>> hits(kThreads);
  for (auto& h : hits) h.store(0);
  pool.run_team([&](std::size_t id) {
    ASSERT_LT(id, kThreads);
    hits[id].fetch_add(1);
  });
  for (std::size_t i = 0; i < kThreads; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "worker " << i;
  }
}

TEST(ThreadPool, ManyConsecutiveRegions) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.run_team([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, RegionsSeeEachOthersWrites) {
  // The join of region k must happen-before region k+1: worker 0 writes,
  // all workers read in the next region.
  ThreadPool pool(4);
  int shared = 0;
  std::atomic<int> mismatches{0};
  for (int round = 1; round <= 50; ++round) {
    pool.run_team([&](std::size_t id) {
      if (id == 0) shared = round;
    });
    pool.run_team([&](std::size_t) {
      if (shared != round) mismatches.fetch_add(1);
    });
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPool, CallerIsWorkerZero) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen{};
  pool.run_team([&](std::size_t id) {
    if (id == 0) seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, DestructionWithNoRegionsIsClean) {
  // Pools that never ran anything must still shut their workers down.
  for (int i = 0; i < 20; ++i) {
    ThreadPool pool(4);
  }
  SUCCEED();
}

}  // namespace
}  // namespace llpmst
