// Deterministic structured graphs for unit tests and edge-case coverage:
// paths, cycles, stars, complete graphs, random spanning trees, and the
// 5-vertex example graph from the paper's Fig. 1.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace llpmst {

/// Path 0-1-2-...-(n-1).  Weights wrap over [1, 1000] unless a fixed weight
/// is given (0 means "vary").
[[nodiscard]] EdgeList make_path(std::uint32_t n, Weight fixed_weight = 0);

/// Cycle over n vertices (n >= 3).
[[nodiscard]] EdgeList make_cycle(std::uint32_t n, Weight fixed_weight = 0);

/// Star: center 0 joined to 1..n-1.
[[nodiscard]] EdgeList make_star(std::uint32_t n, Weight fixed_weight = 0);

/// Complete graph K_n with distinct weights.
[[nodiscard]] EdgeList make_complete(std::uint32_t n, std::uint64_t seed = 1);

/// Uniform random spanning tree (random attachment), exactly n-1 edges.
[[nodiscard]] EdgeList make_random_tree(std::uint32_t n,
                                        std::uint64_t seed = 1,
                                        Weight max_weight = 1u << 20);

/// Disjoint union of `parts` copies of a random tree (a forest) — exercises
/// the MSF path of every algorithm.
[[nodiscard]] EdgeList make_forest(std::uint32_t parts,
                                   std::uint32_t part_size,
                                   std::uint64_t seed = 1);

/// The undirected weighted graph of the paper's Fig. 1:
/// vertices {a=0, b=1, c=2, d=3, e=4}; edges a-b:5, a-c:4, b-c:3, b-d:7,
/// c-d:9, c-e:11, d-e:2.  Its unique MST is {2, 3, 4, 7} with weight 16.
[[nodiscard]] EdgeList make_paper_figure1();

}  // namespace llpmst
