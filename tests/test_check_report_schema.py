#!/usr/bin/env python3
"""End-to-end tests for the run-report side of tools/check_report_schema.py:
synthesizes v1-v4 llpmst-run-report documents (and bench records with the
optional profile section) in temp files and asserts on the checker's exit
status.  The v4 focus: the "profile" and "bandwidth" sections must accept
null, the {"available": false, "reason"} degradation shape, and the full
payload — and reject structural violations.

Run directly (python3 tests/test_check_report_schema.py) or via ctest;
uses only the standard library.
"""
import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

CHECK = Path(__file__).resolve().parent.parent / "tools" / \
    "check_report_schema.py"


def make_report(version=4):
    """A schema-complete llpmst-run-report at the given version."""
    doc = {
        "schema": "llpmst-run-report",
        "schema_version": version,
        "run": {
            "tool": "test", "algorithm": "llp-prim", "threads": 2,
            "wall_ms": 1.5, "outcome": "ok", "fallback_reason": "",
            "graph": {"vertices": 10, "edges": 20},
        },
        "algo": None,
        "counters": {"llp_prim/heap_inserts": 7},
        "gauges": {},
        "phases": [{"name": "solve", "count": 1, "total_ms": 1.2}],
        "warnings": [],
    }
    if version >= 2:
        doc["hw"] = None
        doc["mem"] = {"peak_rss_bytes": 1024,
                      "alloc": {"count": 3, "bytes": 96, "frees": 3}}
    if version >= 3:
        doc["rounds"] = []
        doc["scheduler"] = None
    if version >= 4:
        doc["profile"] = None
        doc["bandwidth"] = None
    return doc


def full_profile():
    return {
        "available": True, "hz": 97, "samples": 12, "dropped": 0,
        "phases": [{"name": "solve/round", "samples": 12}],
        "top_stacks": [{"stack": "solve;round;main", "samples": 12}],
    }


def full_bandwidth():
    return {
        "available": True, "line_bytes": 64,
        "phases": [{"name": "solve/round", "cache_misses": 1000,
                    "est_bytes": 64000, "wall_ms": 2.0,
                    "est_gbps": 0.032, "instr_per_byte": None,
                    "verdict": "unknown"}],
    }


def make_bench_record(profile="absent"):
    """A schema-complete llpmst-bench record; `profile` is "absent" (a
    pre-PR-8 record), None, or a profile dict."""
    doc = {
        "schema": "llpmst-bench", "schema_version": 1,
        "bench": "bench_fig3_scaling", "workload": "Road 16,384",
        "algo": "llp-prim-parallel", "threads": 2, "warmup": 1,
        "repetitions": 3, "verified": True,
        "ms": {"median": 10.0, "p25": 9.75, "p75": 10.25, "iqr": 0.5,
               "min": 9.5, "max": 10.5, "mean": 10.0, "stddev": 0.4},
        "samples_ms": [9.5, 10.0, 10.5],
        "hw": None, "mem": None, "sched": None,
    }
    if profile != "absent":
        doc["profile"] = profile
    return doc


def make_serve_response(**overrides):
    """A schema-complete llpmst-serve-response envelope (llpmstd control
    ops and query rejections)."""
    doc = {
        "schema": "llpmst-serve-response", "schema_version": 1,
        "id": "q1", "op": "load", "status": "ok", "error": None,
        "data": {"name": "road", "vertices": 10, "edges": 20,
                 "components": 1},
    }
    doc.update(overrides)
    return doc


def make_request_section(**overrides):
    """The "request" section llpmstd splices into per-query run reports."""
    section = {
        "id": "q1", "graph": "road", "algo": "auto", "status": "ok",
        "error": None, "queue_ms": 0.2, "batch": 1, "verified": None,
    }
    section.update(overrides)
    return section


class CheckReportSchemaTest(unittest.TestCase):
    def run_check(self, *docs):
        """Writes each doc to its own .json file and runs the checker."""
        with tempfile.TemporaryDirectory() as td:
            paths = []
            for i, doc in enumerate(docs):
                p = Path(td) / f"doc{i}.json"
                p.write_text(json.dumps(doc))
                paths.append(str(p))
            return subprocess.run(
                [sys.executable, str(CHECK), *paths],
                capture_output=True, text=True)

    def assert_ok(self, *docs):
        r = self.run_check(*docs)
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)

    def assert_fails(self, doc, needle):
        r = self.run_check(doc)
        self.assertNotEqual(r.returncode, 0,
                            "checker accepted a bad document:\n" + r.stdout)
        self.assertIn(needle, r.stderr, r.stderr)

    # --- version acceptance ---------------------------------------------

    def test_accepts_every_schema_version(self):
        self.assert_ok(*[make_report(v) for v in (1, 2, 3, 4)])

    def test_rejects_unknown_version(self):
        doc = make_report(1)
        doc["schema_version"] = 5
        self.assert_fails(doc, "schema_version")

    # --- the v4 profile section -----------------------------------------

    def test_profile_null_degraded_and_full_all_pass(self):
        null = make_report(4)
        degraded = make_report(4)
        degraded["profile"] = {"available": False,
                               "reason": "profiler not started"}
        full = make_report(4)
        full["profile"] = full_profile()
        self.assert_ok(null, degraded, full)

    def test_profile_missing_section_fails(self):
        doc = make_report(4)
        del doc["profile"]
        self.assert_fails(doc, "profile section is missing")

    def test_profile_degraded_without_reason_fails(self):
        doc = make_report(4)
        doc["profile"] = {"available": False}
        self.assert_fails(doc, "profile.reason")

    def test_profile_bad_phase_samples_fails(self):
        doc = make_report(4)
        doc["profile"] = full_profile()
        doc["profile"]["phases"][0]["samples"] = 0
        self.assert_fails(doc, "profile.phases[0].samples")

    def test_profile_too_many_top_stacks_fails(self):
        doc = make_report(4)
        doc["profile"] = full_profile()
        doc["profile"]["top_stacks"] = [
            {"stack": f"s{i}", "samples": 1} for i in range(21)]
        self.assert_fails(doc, "top_stacks has 21")

    # --- the v4 bandwidth section ---------------------------------------

    def test_bandwidth_null_degraded_and_full_all_pass(self):
        degraded = make_report(4)
        degraded["bandwidth"] = {"available": False, "reason": "no PMU"}
        full = make_report(4)
        full["bandwidth"] = full_bandwidth()
        self.assert_ok(make_report(4), degraded, full)

    def test_bandwidth_missing_section_fails(self):
        doc = make_report(4)
        del doc["bandwidth"]
        self.assert_fails(doc, "bandwidth section is missing")

    def test_bandwidth_bad_verdict_fails(self):
        doc = make_report(4)
        doc["bandwidth"] = full_bandwidth()
        doc["bandwidth"]["phases"][0]["verdict"] = "cursed"
        self.assert_fails(doc, "verdict")

    def test_bandwidth_negative_est_gbps_fails(self):
        doc = make_report(4)
        doc["bandwidth"] = full_bandwidth()
        doc["bandwidth"]["phases"][0]["est_gbps"] = -1.0
        self.assert_fails(doc, "est_gbps")

    # --- v1-v3 documents must not be held to v4 ---------------------------

    def test_old_versions_need_no_v4_sections(self):
        # A v3 report has neither profile nor bandwidth; that is not an
        # error — only v4+ documents owe the sections.
        self.assert_ok(make_report(3), make_report(2), make_report(1))

    # --- bench records: the optional profile section ----------------------

    def test_bench_record_profile_variants_pass(self):
        self.assert_ok(make_bench_record("absent"),
                       make_bench_record(None),
                       make_bench_record({
                           "hz": 97, "samples": 5,
                           "top_phases": [{"name": "solve", "samples": 5}],
                           "est_gbps": None}))

    def test_bench_record_profile_too_many_top_phases_fails(self):
        doc = make_bench_record({
            "hz": 97, "samples": 5,
            "top_phases": [{"name": f"p{i}", "samples": 1}
                           for i in range(4)],
            "est_gbps": 1.0})
        self.assert_fails(doc, "top_phases has 4")

    def test_bench_record_profile_bad_hz_fails(self):
        doc = make_bench_record({"hz": -1, "samples": 5, "top_phases": [],
                                 "est_gbps": None})
        self.assert_fails(doc, "profile.hz")

    # --- llpmstd serve shapes (PR 9) ------------------------------------

    def test_serve_response_ok_and_error_pass(self):
        self.assert_ok(make_serve_response(),
                       make_serve_response(status="error",
                                           error={"code": "INVALID_ARGUMENT",
                                                  "message": "bad graph"}),
                       make_serve_response(id=None, data=None))

    def test_serve_response_inconsistent_status_error_fails(self):
        self.assert_fails(
            make_serve_response(status="error", error=None),
            "status is 'error' but error is null")
        self.assert_fails(
            make_serve_response(error={"code": "CANCELLED",
                                       "message": "gone"}),
            "status is 'ok' but error is not null")

    def test_serve_response_bad_error_code_fails(self):
        self.assert_fails(
            make_serve_response(status="error",
                                error={"code": "WAT", "message": "x"}),
            "error.code")

    def test_report_request_section_ok_and_error_pass(self):
        ok = make_report()
        ok["request"] = make_request_section()
        degraded = make_report()
        degraded["run"]["outcome"] = "injected_fault"
        degraded["request"] = make_request_section(
            status="error",
            error={"code": "INJECTED_FAULT", "message": "chaos"})
        self.assert_ok(ok, degraded)

    def test_report_request_section_violations_fail(self):
        doc = make_report()
        doc["request"] = make_request_section(queue_ms=-1)
        self.assert_fails(doc, "request.queue_ms")
        doc = make_report()
        doc["request"] = make_request_section(batch=0)
        self.assert_fails(doc, "request.batch")
        doc = make_report()
        doc["request"] = make_request_section(status="error", error=None)
        self.assert_fails(doc, "request.status is 'error'")

    def test_report_internal_error_outcome_accepted(self):
        doc = make_report()
        doc["run"]["outcome"] = "internal_error"
        doc["request"] = make_request_section(
            status="error", error={"code": "INTERNAL", "message": "threw"})
        self.assert_ok(doc)


if __name__ == "__main__":
    unittest.main()
