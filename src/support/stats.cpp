#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

namespace llpmst {

Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;

  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());

  s.min = sorted.front();
  s.max = sorted.back();

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  const std::size_t n = sorted.size();
  s.median = (n % 2 == 1) ? sorted[n / 2]
                          : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);

  // Quartiles by linear interpolation at rank q*(n-1).
  const auto quantile = [&](double q) {
    const double rank = q * static_cast<double>(n - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    return lo + 1 < n ? sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac
                      : sorted[lo];
  };
  s.p25 = quantile(0.25);
  s.p75 = quantile(0.75);

  if (n >= 2) {
    double sq = 0.0;
    for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(n - 1));
  }
  return s;
}

std::string format_duration_ms(double ms) {
  char buf[64];
  if (ms < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.1f ns", ms * 1e6);
  } else if (ms < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f us", ms * 1e3);
  } else if (ms < 1e3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", ms);
  } else {
    std::snprintf(buf, sizeof buf, "%.3f s", ms / 1e3);
  }
  return buf;
}

std::string format_count(unsigned long long n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

}  // namespace llpmst
