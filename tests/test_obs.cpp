// The observability layer: sharded counters under a real worker team,
// nested phase paths, trace JSON well-formedness, the run report document,
// and the compiled-out no-op contract.
//
// This file must compile (and pass) under both LLPMST_OBS=1 and
// LLPMST_OBS=0 — CI builds the disabled flavour to keep the no-op branch
// honest.  Tests that measure real recording guard on obs::kCompiledIn.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <ctime>

#include "mst/mst_result.hpp"
#include "obs/bandwidth.hpp"
#include "obs/critical_path.hpp"
#include "obs/exposition.hpp"
#include "obs/hw_counters.hpp"
#include "obs/mem_stats.hpp"
#include "obs/metrics.hpp"
#include "obs/phase_timer.hpp"
#include "obs/profiler.hpp"
#include "obs/report.hpp"
#include "obs/round_stats.hpp"
#include "obs/sched_events.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"

namespace llpmst {
namespace {

// --- The compile-time contract. ---------------------------------------
static_assert(obs::kCompiledIn == (LLPMST_OBS != 0));
#if !LLPMST_OBS
// The disabled build must make every recorder an empty object so that
// instrumented call sites carry no storage and fold to nothing.
static_assert(std::is_empty_v<obs::Counter>);
static_assert(std::is_empty_v<obs::Gauge>);
static_assert(std::is_empty_v<obs::PhaseTimer>);
static_assert(std::is_empty_v<obs::ScopedHwCounters>);
#endif

/// Minimal JSON well-formedness check: balanced {}/[] outside strings,
/// nothing after the top-level value.  Not a full parser, but enough to
/// catch the classic serializer bugs (trailing commas are caught by the
/// stricter python -m json.tool pass in CI).
bool json_balanced(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        if (stack.empty()) {
          // Only whitespace may follow the top-level value.
          for (std::size_t j = i + 1; j < s.size(); ++j) {
            if (s[j] != ' ' && s[j] != '\n' && s[j] != '\t' &&
                s[j] != '\r') {
              return false;
            }
          }
          return true;
        }
        break;
      default: break;
    }
  }
  return false;  // unterminated string or never closed
}

std::uint64_t find_counter(const std::vector<obs::MetricSample>& samples,
                           const std::string& name) {
  for (const auto& s : samples) {
    if (s.name == name && !s.is_gauge) return s.value;
  }
  return 0;
}

const obs::PhaseSample* find_phase(
    const std::vector<obs::PhaseSample>& phases, const std::string& name) {
  for (const auto& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

TEST(ObsCounter, AggregatesAcrossTeamWorkers) {
  obs::reset_metrics();
  obs::Counter& c = obs::counter("test/team_adds");
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kAddsPerWorker = 10000;
  ThreadPool pool(kThreads);
  pool.run_team([&](std::size_t) {
    for (std::uint64_t i = 0; i < kAddsPerWorker; ++i) c.increment();
  });
  if constexpr (obs::kCompiledIn) {
    // Every worker's shard must be folded into the aggregate — a lost
    // shard here would mean shard_id() handed two threads the same slot
    // index with non-atomic writes (the slots are atomic, so even shared
    // slots must not lose counts).
    EXPECT_EQ(c.value(), kThreads * kAddsPerWorker);
    EXPECT_EQ(find_counter(obs::snapshot_metrics(), "test/team_adds"),
              kThreads * kAddsPerWorker);
  } else {
    EXPECT_EQ(c.value(), 0u);
    EXPECT_TRUE(obs::snapshot_metrics().empty());
  }
}

TEST(ObsCounter, ResetZeroesButKeepsRegistration) {
  obs::reset_metrics();
  obs::Counter& c = obs::counter("test/resettable");
  c.add(41);
  obs::reset_metrics();
  c.increment();  // the cached reference must survive the reset
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(c.value(), 1u);
  }
}

TEST(ObsGauge, SetMaxIsRaiseOnly) {
  obs::reset_metrics();
  obs::Gauge& g = obs::gauge("test/high_water");
  g.set_max(7);
  g.set_max(3);
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(g.value(), 7u);
    g.set(2);  // plain set may lower
    EXPECT_EQ(g.value(), 2u);
  }
}

TEST(ObsPhaseTimer, NestedScopesProduceJoinedPaths) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  obs::set_enabled(true);
  {
    obs::PhaseTimer outer("outer");
    {
      obs::PhaseTimer inner("inner");
    }
    {
      obs::PhaseTimer inner("inner");
    }
  }
  obs::set_enabled(false);
  const auto phases = obs::snapshot_phases();
  const obs::PhaseSample* outer = find_phase(phases, "outer");
  const obs::PhaseSample* inner = find_phase(phases, "outer/inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The child's time is a subset of the parent's.
  EXPECT_LE(inner->total_us, outer->total_us);
  EXPECT_EQ(find_phase(phases, "inner"), nullptr)
      << "nested phase leaked out of its parent path";
}

TEST(ObsPhaseTimer, DisabledAtRuntimeRecordsNothing) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  obs::set_enabled(false);
  {
    obs::PhaseTimer t("should_not_appear");
  }
  EXPECT_EQ(find_phase(obs::snapshot_phases(), "should_not_appear"),
            nullptr);
}

TEST(ObsTrace, JsonIsWellFormedAndRoundTrips) {
  obs::reset_metrics();
  obs::set_enabled(true);
  obs::trace_start();
  {
    obs::PhaseTimer t("trace_span");
  }
  obs::trace_emit_counter("trace_counter", obs::now_us(), 42);
  obs::trace_stop();
  obs::set_enabled(false);

  const std::string json = obs::trace_json();
  EXPECT_TRUE(json_balanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  if constexpr (obs::kCompiledIn) {
    EXPECT_GE(obs::trace_event_count(), 2u);
    EXPECT_NE(json.find("\"trace_span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_counter\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  } else {
    // The disabled build still serializes a valid (empty) document.
    EXPECT_EQ(obs::trace_event_count(), 0u);
  }
}

TEST(ObsTrace, StartClearsPreviousEvents) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::trace_start();
  obs::trace_emit("stale", obs::now_us(), 1);
  obs::trace_stop();
  obs::trace_start();
  obs::trace_stop();
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST(ObsWarnings, RecordedRegardlessOfBuildFlavour) {
  obs::clear_warnings();
  obs::add_warning("something looked off");
  const auto warnings = obs::snapshot_warnings();
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0], "something looked off");
  obs::clear_warnings();
  EXPECT_TRUE(obs::snapshot_warnings().empty());
}

TEST(ObsReport, DocumentIsWellFormedWithAndWithoutAlgoStats) {
  obs::reset_metrics();
  obs::clear_warnings();
  obs::RunInfo info;
  info.tool = "test_obs";
  info.algorithm = "llp-prim";
  info.threads = 4;
  info.vertices = 100;
  info.edges = 250;
  info.wall_ms = 1.5;

  const std::string bare = obs::build_run_report(info, nullptr);
  EXPECT_TRUE(json_balanced(bare)) << bare;
  EXPECT_NE(bare.find("\"schema\":\"llpmst-run-report\""),
            std::string::npos);
  EXPECT_NE(bare.find("\"algo\":null"), std::string::npos);

  MstAlgoStats stats;
  stats.heap.pushes = 12;
  stats.fixed_via_mwe = 34;
  stats.llp_sweeps = 5;
  const std::string full = obs::build_run_report(info, &stats);
  EXPECT_TRUE(json_balanced(full)) << full;
  EXPECT_NE(full.find("\"heap\""), std::string::npos);
  EXPECT_NE(full.find("\"llp\""), std::string::npos);
  EXPECT_NE(full.find("\"tool\":\"test_obs\""), std::string::npos);
}

TEST(ObsReport, NonConvergenceSurfacesAsWarningAndCounter) {
  obs::reset_metrics();
  obs::clear_warnings();
  MstAlgoStats stats;
  stats.llp_converged = false;
  record_algo_metrics("test_algo", stats);
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(find_counter(obs::snapshot_metrics(),
                           "test_algo/non_convergence"),
              1u);
    const auto warnings = obs::snapshot_warnings();
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_NE(warnings[0].find("test_algo"), std::string::npos);
  }
  obs::clear_warnings();
}

TEST(ObsReport, JsonQuoteEscapes) {
  EXPECT_EQ(obs::json_quote("plain"), "\"plain\"");
  EXPECT_EQ(obs::json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(obs::json_quote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(obs::json_quote("a\nb"), "\"a\\nb\"");
}

// --- Hardware counters (schema v2 "hw" section). ----------------------

obs::RunInfo test_run_info() {
  obs::RunInfo info;
  info.tool = "test_obs";
  info.algorithm = "llp-prim";
  info.threads = 1;
  info.vertices = 10;
  info.edges = 20;
  info.wall_ms = 0.5;
  return info;
}

TEST(ObsHwCounters, DegradesToExplicitUnavailableWhenDenied) {
  // Compiled-out builds refuse unconditionally; compiled-in builds are
  // forced onto the denial path — either way hw_begin must fail softly
  // with a reason, and the report must carry the explicit shape.
  obs::hw_force_unavailable(true);
  std::string why;
  EXPECT_FALSE(obs::hw_begin(&why));
  EXPECT_FALSE(why.empty());
  EXPECT_FALSE(obs::hw_active());

  const obs::HwSample s = obs::hw_read();
  EXPECT_FALSE(s.available);
  EXPECT_FALSE(s.unavailable_reason.empty());

  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, &s);
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"hw\":{\"available\":false"), std::string::npos)
      << report;
  obs::hw_force_unavailable(false);
}

TEST(ObsHwCounters, BeginDoesNotThrowAndReadsWhenAvailable) {
  // On bare metal the group opens and counts must be live; in containers
  // and VMs without a PMU it must refuse with a reason.  Both outcomes
  // are correct — the contract is "never fail the run".
  std::string why;
  const bool ok = obs::hw_begin(&why);
  if (!ok) {
    EXPECT_FALSE(why.empty());
    GTEST_SKIP() << "hardware counters unavailable here: " << why;
  }
  EXPECT_TRUE(obs::hw_active());

  // Burn some cycles so the deltas are visibly non-zero.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 2000000; ++i) sink += static_cast<std::uint64_t>(i);

  const obs::HwSample s = obs::hw_read();
  EXPECT_TRUE(s.available);
  ASSERT_NE(s.cycles, obs::kHwAbsent);
  EXPECT_GT(s.cycles, 0u);
  EXPECT_GT(s.multiplex_ratio, 0.0);
  EXPECT_LE(s.multiplex_ratio, 1.0);

  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, &s);
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"hw\":{\"available\":true"), std::string::npos)
      << report;
  obs::hw_end();
  EXPECT_FALSE(obs::hw_active());
}

TEST(ObsHwCounters, ScopedDeltasFoldIntoPhaseAggregates) {
  std::string why;
  if (!obs::hw_begin(&why)) {
    GTEST_SKIP() << "hardware counters unavailable here: " << why;
  }
  obs::hw_reset_phases();
  obs::set_enabled(true);
  {
    obs::PhaseTimer phase("hw_test_phase");
    obs::ScopedHwCounters scope("hw_test_label");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1000000; ++i) sink += static_cast<std::uint64_t>(i);
  }
  obs::set_enabled(false);
  const auto phases = obs::snapshot_hw_phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].name, "hw_test_phase");
  EXPECT_EQ(phases[0].count, 1u);
  EXPECT_GT(phases[0].totals.cycles, 0u);
  obs::hw_reset_phases();
  obs::hw_end();
}

// --- Memory stats (schema v2 "mem" section). --------------------------

TEST(ObsMemStats, PeakRssIsPositiveAndMonotonic) {
  const obs::MemSample before = obs::mem_sample();
  EXPECT_GT(before.peak_rss_bytes, 0u) << "getrusage reported no peak RSS";

  // Touch a real allocation so the high-water mark cannot shrink.
  std::vector<char> block(1 << 20, 1);
  EXPECT_NE(block[1 << 19], 0);

  const obs::MemSample after = obs::mem_sample();
  EXPECT_GE(after.peak_rss_bytes, before.peak_rss_bytes)
      << "peak RSS went backwards";
}

TEST(ObsMemStats, AllocationCountersGrowWhenCompiledIn) {
  const obs::MemSample before = obs::mem_sample();
  if constexpr (obs::kCompiledIn) {
    EXPECT_TRUE(before.alloc_tracking);
    // Escape the pointer so the allocation cannot be elided.
    auto* v = new std::vector<int>(1024, 7);
    EXPECT_EQ((*v)[512], 7);
    const obs::MemSample during = obs::mem_sample();
    EXPECT_GT(during.alloc_count, before.alloc_count);
    EXPECT_GT(during.alloc_bytes, before.alloc_bytes);
    delete v;
    const obs::MemSample after = obs::mem_sample();
    EXPECT_GT(after.free_count, before.free_count);
    // Cumulative counters never decrease.
    EXPECT_GE(after.alloc_count, during.alloc_count);
  } else {
    EXPECT_FALSE(before.alloc_tracking);
    EXPECT_EQ(before.alloc_count, 0u);
  }
}

// --- The v3 report document. ------------------------------------------

TEST(ObsReport, SchemaV4CarriesHwNullMemRoundsAndScheduler) {
  obs::reset_rounds();
  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, nullptr);
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"schema_version\":4"), std::string::npos);
  // --hw-counters not requested: hw must be JSON null, not omitted.
  EXPECT_NE(report.find("\"hw\":null"), std::string::npos) << report;
  EXPECT_NE(report.find("\"mem\":{\"peak_rss_bytes\":"), std::string::npos)
      << report;
  // v3: the rounds array and scheduler section are always present — empty
  // and null when nothing was collected, never omitted.
  EXPECT_NE(report.find("\"rounds\":["), std::string::npos) << report;
  EXPECT_NE(report.find("\"scheduler\":"), std::string::npos) << report;
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(report.find("\"alloc\":{\"count\":"), std::string::npos)
        << report;
  } else {
    EXPECT_NE(report.find("\"alloc\":null"), std::string::npos) << report;
  }
}

TEST(ObsReport, SchemaV3SerializesRecordedRounds) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_rounds();
  obs::set_enabled(true);
  obs::RoundRecord r;
  r.label = "report_site";
  r.round = 7;
  r.components = 11;
  r.edges = 13;
  r.advances = 17;
  r.wall_ms = 0.25;
  r.imbalance = 1.5;
  obs::record_round(r);
  obs::set_enabled(false);
  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, nullptr);
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"label\":\"report_site\""), std::string::npos)
      << report;
  EXPECT_NE(report.find("\"round\":7"), std::string::npos) << report;
  EXPECT_NE(report.find("\"imbalance\":1.5"), std::string::npos) << report;
  obs::reset_rounds();
}

// --- Scheduler event rings (schema v3 "scheduler" section). -----------

TEST(ObsSchedEvents, RecordsOnlyWhileCollecting) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::sched_record(obs::SchedEventKind::kTask, 10, 5);  // before start
  obs::sched_start();
  EXPECT_TRUE(obs::sched_collecting());
  obs::sched_record(obs::SchedEventKind::kTask, 100, 40);
  obs::sched_record(obs::SchedEventKind::kStealSuccess, 150, 1);
  obs::sched_stop();
  EXPECT_FALSE(obs::sched_collecting());
  obs::sched_record(obs::SchedEventKind::kTask, 200, 5);  // after stop
  const obs::SchedSnapshot snap = obs::snapshot_sched_events();
  ASSERT_EQ(snap.events.size(), 2u)
      << "events recorded outside start/stop leaked into the ring";
  EXPECT_EQ(snap.dropped, 0u);
  EXPECT_EQ(snap.events[0].kind, obs::SchedEventKind::kTask);
  EXPECT_EQ(snap.events[0].ts_us, 100u);
  EXPECT_EQ(snap.events[0].value, 40u);
  EXPECT_EQ(snap.events[1].kind, obs::SchedEventKind::kStealSuccess);
  EXPECT_EQ(snap.events[1].ts_us, 150u);
  // Buffered events survive until the next start, which clears them.
  obs::sched_start();
  obs::sched_stop();
  EXPECT_TRUE(obs::snapshot_sched_events().events.empty());
}

TEST(ObsSchedEvents, DropOldestKeepsNewestAndCountsDrops) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::sched_start();
  const std::uint64_t extra = 100;
  const std::uint64_t total = obs::kSchedRingCapacity + extra;
  for (std::uint64_t i = 0; i < total; ++i) {
    obs::sched_record(obs::SchedEventKind::kTask, i, i);
  }
  obs::sched_stop();
  const obs::SchedSnapshot snap = obs::snapshot_sched_events();
  EXPECT_EQ(snap.events.size(), obs::kSchedRingCapacity);
  EXPECT_EQ(snap.dropped, extra);
  // Drop-oldest: the survivors are exactly the newest capacity events.
  std::uint64_t min_ts = UINT64_MAX, max_ts = 0;
  for (const obs::SchedEvent& e : snap.events) {
    min_ts = std::min(min_ts, e.ts_us);
    max_ts = std::max(max_ts, e.ts_us);
  }
  EXPECT_EQ(min_ts, extra);
  EXPECT_EQ(max_ts, total - 1);
  obs::sched_start();  // leave no bulk buffered for later tests
  obs::sched_stop();
}

// --- Critical-path analysis (pure, both flavours). --------------------

TEST(ObsCriticalPath, EmptySnapshotHasNoEvents) {
  const obs::SchedulerSummary sum = obs::analyze_sched({});
  EXPECT_FALSE(sum.has_events);
  EXPECT_EQ(sum.utilization, 0.0);
  EXPECT_TRUE(sum.workers.empty());
}

TEST(ObsCriticalPath, AnalyzesSyntheticTimeline) {
  obs::SchedSnapshot snap;
  auto add = [&snap](obs::SchedEventKind k, std::uint32_t w,
                     std::uint64_t ts, std::uint64_t v) {
    obs::SchedEvent e;
    e.kind = k;
    e.worker = w;
    e.ts_us = ts;
    e.value = v;
    snap.events.push_back(e);
  };
  // Worker 0 busy [0,100); worker 1 idles [0,50) then busy [50,150).
  add(obs::SchedEventKind::kTask, 0, 0, 100);
  add(obs::SchedEventKind::kIdle, 1, 0, 50);
  add(obs::SchedEventKind::kTask, 1, 50, 100);
  add(obs::SchedEventKind::kStealAttempt, 1, 50, 3);  // 3 failed probes
  add(obs::SchedEventKind::kStealSuccess, 1, 50, 1);
  add(obs::SchedEventKind::kGrain, 0, 10, 4096);
  add(obs::SchedEventKind::kGrain, 0, 20, 5000);  // same pow2 bucket
  add(obs::SchedEventKind::kGrainSerial, 0, 30, 64);
  snap.dropped = 2;

  const obs::SchedulerSummary sum = obs::analyze_sched(snap);
  EXPECT_TRUE(sum.has_events);
  EXPECT_EQ(sum.span_us, 150u);
  EXPECT_EQ(sum.busy_us, 200u);
  EXPECT_EQ(sum.idle_us, 50u);
  EXPECT_EQ(sum.dropped_events, 2u);
  EXPECT_NEAR(sum.utilization, 200.0 / (150.0 * 2.0), 1e-12);
  EXPECT_EQ(sum.steal_attempts, 4u);
  EXPECT_EQ(sum.steal_successes, 1u);
  EXPECT_DOUBLE_EQ(sum.steal_success_rate, 0.25);
  // Only [50,100) has both workers busy; the rest is critical path.
  EXPECT_EQ(sum.critical_path_us, 100u);
  ASSERT_EQ(sum.workers.size(), 2u);
  EXPECT_EQ(sum.workers[0].worker, 0u);
  EXPECT_EQ(sum.workers[0].busy_us, 100u);
  EXPECT_EQ(sum.workers[0].tasks, 1u);
  EXPECT_EQ(sum.workers[1].idle_us, 50u);
  EXPECT_EQ(sum.workers[1].steal_successes, 1u);
  // Grain histogram: bucket 0 = ran inline, 4096 holds both grain picks.
  ASSERT_EQ(sum.grain_hist.size(), 2u);
  EXPECT_EQ(sum.grain_hist[0], (std::pair<std::uint64_t, std::uint64_t>{
                                   0u, 1u}));
  EXPECT_EQ(sum.grain_hist[1], (std::pair<std::uint64_t, std::uint64_t>{
                                   4096u, 2u}));
}

TEST(ObsCriticalPath, PointOnlySnapshotCountsAsFullyUtilized) {
  obs::SchedSnapshot snap;
  obs::SchedEvent e;
  e.kind = obs::SchedEventKind::kStealSuccess;
  e.ts_us = 42;
  e.value = 1;
  snap.events.push_back(e);
  const obs::SchedulerSummary sum = obs::analyze_sched(snap);
  EXPECT_TRUE(sum.has_events);
  EXPECT_EQ(sum.span_us, 0u);
  // Zero span: defined as fully utilized, keeping the (0, 1] contract.
  EXPECT_DOUBLE_EQ(sum.utilization, 1.0);
}

// --- Per-round solver telemetry (schema v3 "rounds" array). -----------

TEST(ObsRounds, RecordSnapshotAndResetHonourTheEnabledGate) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_rounds();
  obs::set_enabled(false);
  obs::RoundRecord gated;
  gated.label = "gated";
  obs::record_round(gated);
  EXPECT_TRUE(obs::snapshot_rounds().empty()) << "recorded while disabled";

  obs::set_enabled(true);
  obs::RoundRecord r;
  r.label = "test_site";
  r.round = 3;
  r.components = 17;
  r.edges = 99;
  r.advances = 5;
  r.wall_ms = 1.25;
  r.imbalance = 2.0;
  obs::record_round(r);
  obs::set_enabled(false);

  const std::vector<obs::RoundRecord> rounds = obs::snapshot_rounds();
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].label, "test_site");
  EXPECT_EQ(rounds[0].round, 3u);
  EXPECT_EQ(rounds[0].components, 17u);
  EXPECT_EQ(rounds[0].edges, 99u);
  EXPECT_EQ(rounds[0].advances, 5u);
  EXPECT_DOUBLE_EQ(rounds[0].wall_ms, 1.25);
  EXPECT_DOUBLE_EQ(rounds[0].imbalance, 2.0);
  EXPECT_EQ(obs::rounds_dropped(), 0u);
  obs::reset_rounds();
  EXPECT_TRUE(obs::snapshot_rounds().empty());
}

TEST(ObsRounds, EmptyLabelInheritsThePhasePath) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  obs::reset_rounds();
  obs::set_enabled(true);
  {
    obs::PhaseTimer t("round_site");
    obs::RoundRecord r;
    r.round = 1;
    obs::record_round(r);  // empty label -> caller's phase path
  }
  obs::set_enabled(false);
  const std::vector<obs::RoundRecord> rounds = obs::snapshot_rounds();
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].label, "round_site");
  obs::reset_rounds();
}

// --- OpenMetrics exposition (--stats-out). ----------------------------

TEST(ObsExposition, RendersTerminatedDocumentInBothFlavours) {
  obs::reset_metrics();
  obs::clear_warnings();
  const std::string doc = obs::render_openmetrics();
  // The document always ends with the "# EOF" terminator...
  const std::string tail = "# EOF\n";
  ASSERT_GE(doc.size(), tail.size());
  EXPECT_EQ(doc.compare(doc.size() - tail.size(), tail.size(), tail), 0)
      << doc;
  // ...and carries the build-flavour marker scrapers branch on.
  const std::string marker = std::string("llpmst_build_info{obs=\"") +
                             (obs::kCompiledIn ? '1' : '0') + "\"} 1";
  EXPECT_NE(doc.find(marker), std::string::npos) << doc;
  EXPECT_NE(doc.find("llpmst_warnings 0"), std::string::npos) << doc;
}

TEST(ObsExposition, CountersPhasesAndRoundsMapToFamilies) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  obs::reset_rounds();
  obs::clear_warnings();
  obs::set_enabled(true);
  obs::counter("expo/test_counter").add(7);
  {
    obs::PhaseTimer t("expo_phase");
  }
  obs::RoundRecord r;
  r.label = "expo_site";
  r.round = 2;
  r.wall_ms = 1.0;
  obs::record_round(r);
  obs::set_enabled(false);

  const std::string doc = obs::render_openmetrics();
  // '/' sanitizes to '_' and the counter sample carries "_total".
  EXPECT_NE(doc.find("# TYPE llpmst_expo_test_counter counter"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("llpmst_expo_test_counter_total 7"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("llpmst_phase_seconds_total{phase=\"expo_phase\"}"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("llpmst_phase_count_total{phase=\"expo_phase\"} 1"),
            std::string::npos)
      << doc;
  // One recorded round at site "expo_site".
  EXPECT_NE(doc.find("llpmst_solver_rounds{site=\"expo_site\"} 1"),
            std::string::npos)
      << doc;
  EXPECT_NE(doc.find("llpmst_solver_round_seconds_total{site=\"expo_site\"}"),
            std::string::npos)
      << doc;
  obs::reset_rounds();
  obs::reset_metrics();
}

TEST(ObsExposition, CollidingFamiliesSkipAfterSanitization) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  // "collide/x" and "collide.x" both sanitize to llpmst_collide_x; the
  // exposition spec forbids two families with one name, so the second
  // must be skipped with an explanatory comment, not emitted twice.
  obs::counter("collide/x").add(1);
  obs::counter("collide.x").add(2);
  const std::string doc = obs::render_openmetrics();
  std::size_t type_lines = 0;
  for (std::size_t pos = 0;
       (pos = doc.find("# TYPE llpmst_collide_x counter", pos)) !=
       std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u) << doc;
  EXPECT_NE(doc.find("# skipped: duplicate family after sanitization: "
                     "llpmst_collide_x"),
            std::string::npos)
      << doc;
  obs::reset_metrics();
}

TEST(ObsExposition, SchedulerSummaryShowsUpAfterCollection) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  obs::reset_metrics();
  obs::sched_start();
  obs::sched_record(obs::SchedEventKind::kTask, obs::now_us(), 25);
  obs::sched_stop();
  const std::string doc = obs::render_openmetrics();
  EXPECT_NE(doc.find("llpmst_sched_utilization_ratio"), std::string::npos)
      << doc;
  EXPECT_NE(doc.find("llpmst_sched_worker_busy_seconds_total{worker=\""),
            std::string::npos)
      << doc;
  obs::sched_start();  // clear the rings for whatever runs next
  obs::sched_stop();
}

// --- The sampling profiler (schema v4 "profile" section). --------------

/// Burns at least `ms` of this thread's CPU time (the profiler's timers
/// count CPU time, not wall time) and returns a value derived from the
/// work so the loop cannot be optimized away.
double burn_cpu_ms(double ms) {
  timespec t0{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
  double x = 1.0;
  for (;;) {
    for (int i = 0; i < 20000; ++i) x = x * 1.0000001 + 1e-9;
    timespec t{};
    clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t);
    const double elapsed_ms =
        (static_cast<double>(t.tv_sec) - static_cast<double>(t0.tv_sec)) *
            1e3 +
        (static_cast<double>(t.tv_nsec) - static_cast<double>(t0.tv_nsec)) *
            1e-6;
    if (elapsed_ms >= ms) return x;
  }
}

TEST(ObsProfiler, UnstartedOrUnsupportedDegradesToExplicitUnavailable) {
  // Never started: the snapshot must carry the explicit degradation shape
  // in every flavour, and prof_start must refuse softly when unsupported.
  const obs::ProfSnapshot s = obs::prof_snapshot();
  if (!obs::prof_collecting()) {
    EXPECT_FALSE(s.available);
    EXPECT_FALSE(s.unavailable_reason.empty());
  }
  if (!obs::prof_supported()) {
    std::string why;
    EXPECT_FALSE(obs::prof_start(97, &why));
    EXPECT_FALSE(why.empty());
    if constexpr (!obs::kCompiledIn) {
      EXPECT_NE(why.find("LLPMST_OBS=0"), std::string::npos) << why;
    }
  }
}

TEST(ObsProfiler, RejectsOutOfRangeRate) {
  if (!obs::prof_supported()) {
    GTEST_SKIP() << "sampling profiler unsupported here";
  }
  // Above kMaxProfileHz the timer interval rounds to 0 ns, which
  // timer_settime treats as "disarm" — prof_start must refuse with a
  // reason instead of reporting success for an empty profile.  This is
  // also where a negative CLI value wrapped through the unsigned cast
  // lands.
  std::string why;
  EXPECT_FALSE(obs::prof_start(obs::kMaxProfileHz + 1, &why));
  EXPECT_NE(why.find("out of range"), std::string::npos) << why;
  EXPECT_FALSE(obs::prof_collecting());
  EXPECT_FALSE(obs::prof_snapshot().available);
  // The subsystem recovers: a valid rate still starts.
  ASSERT_TRUE(obs::prof_start(obs::kDefaultProfileHz, &why)) << why;
  obs::prof_stop();
}

TEST(ObsProfiler, AttributesSamplesToPhaseTimerPaths) {
  if (!obs::prof_supported()) {
    GTEST_SKIP() << "sampling profiler unsupported here";
  }
  // Stack-only mode: exactly what --profile arms in the benches.
  obs::set_phase_stack_enabled(true);
  std::string why;
  ASSERT_TRUE(obs::prof_start(997, &why)) << why;
  double sink = 0.0;
  {
    obs::PhaseTimer outer("prof_outer");
    obs::PhaseTimer inner("prof_inner");
    sink = burn_cpu_ms(120.0);
  }
  obs::prof_stop();
  obs::set_phase_stack_enabled(false);
  EXPECT_NE(sink, 0.0);

  const obs::ProfSnapshot s = obs::prof_snapshot();
  ASSERT_TRUE(s.available) << s.unavailable_reason;
  EXPECT_EQ(s.hz, 997u);
  // 120 ms of CPU at 997 Hz is ~120 expected samples; even a heavily
  // loaded CI machine delivers a handful.
  ASSERT_GT(s.samples, 0u);
  // The burn loop ran entirely inside prof_outer/prof_inner, so the
  // dominant phase path must match the PhaseTimer nesting.
  std::uint64_t attributed = 0;
  for (const obs::ProfPhaseCount& p : s.phases) {
    if (p.name == "prof_outer/prof_inner") attributed += p.samples;
  }
  EXPECT_GT(attributed, s.samples / 2)
      << "samples did not attribute to the live PhaseTimer path";

  // The folded rendering parses: every line is "<frames> <count>" with
  // ';'-separated non-empty frames, and the hot path leads some line.
  const std::string folded = obs::prof_render_folded(s);
  ASSERT_FALSE(folded.empty());
  bool hot_line = false;
  std::size_t start = 0;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(std::stoull(line.substr(space + 1)), 0u) << line;
    const std::string frames = line.substr(0, space);
    EXPECT_FALSE(frames.empty()) << line;
    EXPECT_EQ(frames.find(";;"), std::string::npos) << line;
    if (frames.rfind("prof_outer;prof_inner", 0) == 0) hot_line = true;
  }
  EXPECT_TRUE(hot_line) << folded;
}

#if LLPMST_OBS
// Preprocessor-gated (not GTEST_SKIP): detail::phase_stack() itself only
// exists in the compiled-in flavour.
TEST(ObsProfiler, StackOnlyModeSkipsTimingAggregates) {
  obs::reset_metrics();
  obs::set_phase_stack_enabled(true);
  {
    obs::PhaseTimer t("stack_only_phase");
    EXPECT_EQ(obs::detail::phase_stack().depth.load(), 1u);
    EXPECT_EQ(obs::detail::phase_path(), "stack_only_phase");
  }
  EXPECT_EQ(obs::detail::phase_stack().depth.load(), 0u);
  obs::set_phase_stack_enabled(false);
  // The stack was maintained, but nothing folded into the aggregates —
  // that is the whole point of the cheap mode.
  for (const obs::PhaseSample& p : obs::snapshot_phases()) {
    EXPECT_NE(p.name, "stack_only_phase");
  }
}
#endif  // LLPMST_OBS

// --- DRAM-bandwidth accounting (schema v4 "bandwidth" section). --------

TEST(ObsBandwidth, DegradationContractMatchesHwShape) {
  // No hw sample: explicit "not requested" reason.
  const obs::BandwidthSnapshot none = obs::bandwidth_snapshot(nullptr);
  EXPECT_FALSE(none.available);
  EXPECT_FALSE(none.unavailable_reason.empty());

  // Unavailable hw: the reason must pass through verbatim.
  obs::HwSample hw;
  hw.available = false;
  hw.unavailable_reason = "no PMU in this VM";
  const obs::BandwidthSnapshot degraded = obs::bandwidth_snapshot(&hw);
  EXPECT_FALSE(degraded.available);
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(degraded.unavailable_reason, "no PMU in this VM");
  }
}

TEST(ObsBandwidth, VerdictNamesAreStable) {
  // tools/check_report_schema.py hard-codes these strings.
  EXPECT_STREQ(obs::bound_verdict_name(obs::BoundVerdict::kUnknown),
               "unknown");
  EXPECT_STREQ(obs::bound_verdict_name(obs::BoundVerdict::kComputeBound),
               "compute-bound");
  EXPECT_STREQ(obs::bound_verdict_name(obs::BoundVerdict::kMemoryBound),
               "memory-bound");
}

// --- The v4 report document. ------------------------------------------

TEST(ObsReport, SchemaV4ProfileAndBandwidthNullWhenNotRequested) {
  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, nullptr, nullptr);
  EXPECT_TRUE(json_balanced(report)) << report;
  EXPECT_NE(report.find("\"profile\":null"), std::string::npos) << report;
  EXPECT_NE(report.find("\"bandwidth\":null"), std::string::npos) << report;
}

TEST(ObsReport, SchemaV4SerializesProfileSnapshot) {
  obs::ProfSnapshot prof;
  prof.available = true;
  prof.hz = 97;
  prof.samples = 5;
  prof.dropped = 1;
  prof.phases.push_back({"solve/round", 5});
  prof.stacks.push_back({"solve;round;contract", 3});
  prof.stacks.push_back({"solve;round;mwe", 2});
  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, nullptr, &prof);
  EXPECT_TRUE(json_balanced(report)) << report;
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(report.find("\"profile\":{\"available\":true,\"hz\":97"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"name\":\"solve/round\",\"samples\":5"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"stack\":\"solve;round;contract\""),
              std::string::npos)
        << report;
  } else {
    // Compiled out: the report serializer is flavour-independent, so the
    // section is still present and well-formed.
    EXPECT_NE(report.find("\"profile\":"), std::string::npos) << report;
  }
}

TEST(ObsReport, SchemaV4SerializesDegradedProfileAndBandwidth) {
  obs::ProfSnapshot prof;
  prof.available = false;
  prof.unavailable_reason = "profiler not started";
  obs::HwSample hw;
  hw.available = false;
  hw.unavailable_reason = "no PMU";
  const std::string report =
      obs::build_run_report(test_run_info(), nullptr, &hw, &prof);
  EXPECT_TRUE(json_balanced(report)) << report;
  if constexpr (obs::kCompiledIn) {
    EXPECT_NE(report.find("\"profile\":{\"available\":false,\"reason\":"),
              std::string::npos)
        << report;
    EXPECT_NE(report.find("\"bandwidth\":{\"available\":false,\"reason\":"),
              std::string::npos)
        << report;
  }
}

}  // namespace
}  // namespace llpmst
