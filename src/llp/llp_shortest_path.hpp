// LLP single-source shortest paths (Bellman-Ford as predicate detection).
//
// This is the transfer demo the paper's introduction promises: the same
// generic engine (llp_solver.hpp) that powers the MST work solves other
// combinatorial problems.  Following Garg et al. (SPAA 2020), the lattice is
// the vector of tentative distances G (component-wise order, bottom = all
// zeros); the predicate is
//     B(G) = forall v != src :  G[v] >= min over edges (u,v) of G[u] + w
// whose least satisfying vector with G[src] = 0 is exactly the shortest
// distance vector.  forbidden(v) tests the inequality; advance(v) raises
// G[v] to the min.  Distances only rise, so chaotic parallel sweeps are safe.
//
// Convergence note: with chaotic sweeps the iteration is pseudo-polynomial —
// two vertices joined by a light cycle edge far from the source raise each
// other in increments bounded by the cycle weight, so the sweep count can
// grow with the distance values, not just n (Garg's LLP-Dijkstra recovers
// the polynomial bound by scheduling the minimum forbidden vertex first;
// this demo keeps the unscheduled form because its point is the framework,
// not SSSP performance).  Weights are integers >= 1, so every advance rises
// by >= 1 and the iteration always terminates.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "llp/llp_solver.hpp"
#include "parallel/executor.hpp"

namespace llpmst {

/// Distance value; unreachable vertices end at kUnreachableDist.
using Dist = std::uint64_t;
inline constexpr Dist kUnreachableDist = ~Dist{0} >> 1;  // headroom for +w

struct ShortestPathResult {
  std::vector<Dist> dist;
  LlpStats llp;
};

/// Shortest path distances from `source` over the undirected graph (every
/// edge usable in both directions), computed by the generic LLP engine.
[[nodiscard]] ShortestPathResult llp_shortest_paths(const CsrGraph& g,
                                                    Executor& pool,
                                                    VertexId source);

/// Reference Dijkstra (binary heap) for cross-checking in tests.
[[nodiscard]] std::vector<Dist> dijkstra(const CsrGraph& g, VertexId source);

}  // namespace llpmst
