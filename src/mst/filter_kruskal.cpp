#include "mst/filter_kruskal.hpp"

#include <algorithm>
#include <vector>

#include "core/run_context.hpp"
#include "ds/concurrent_union_find.hpp"
#include "parallel/scan.hpp"
#include "support/random.hpp"

namespace llpmst {

namespace {

struct FilterKruskalState {
  const CsrGraph& g;
  Executor& pool;
  ConcurrentUnionFind uf;
  std::vector<EdgeId> chosen;
  std::size_t components;  // remaining merges possible
  Xoshiro256 rng{0x9e3779b9u};

  explicit FilterKruskalState(const CsrGraph& graph, Executor& p)
      : g(graph), pool(p), uf(graph.num_vertices()),
        components(graph.num_vertices()) {}

  /// Base case: sort the slice and run plain Kruskal over it.
  void kruskal_base(std::vector<EdgePriority>& edges) {
    std::sort(edges.begin(), edges.end());
    for (const EdgePriority p : edges) {
      const WeightedEdge& we = g.edge(priority_edge(p));
      if (uf.unite(we.u, we.v)) {
        chosen.push_back(priority_edge(p));
        --components;
        if (components == 1) return;
      }
    }
  }

  /// Removes edges whose endpoints are already connected.  find-only
  /// concurrent traffic on the lock-free UF; unions are quiesced here.
  void filter(std::vector<EdgePriority>& edges) {
    std::vector<EdgePriority> kept;
    parallel_filter(
        pool, edges.size(), kept,
        [&](std::size_t i) {
          const WeightedEdge& we = g.edge(priority_edge(edges[i]));
          return uf.find(we.u) != uf.find(we.v);
        },
        [&](std::size_t i) { return edges[i]; });
    edges.swap(kept);
  }

  void solve(std::vector<EdgePriority>& edges) {
    constexpr std::size_t kBaseThreshold = 2048;
    if (components <= 1 || edges.empty()) return;
    if (edges.size() <= kBaseThreshold) {
      kruskal_base(edges);
      return;
    }

    // Median-of-three random pivot on the packed priority.
    const auto sample = [&] {
      return edges[rng.next_below(edges.size())];
    };
    EdgePriority a = sample(), b = sample(), c = sample();
    if (a > b) std::swap(a, b);
    if (b > c) std::swap(b, c);
    if (a > b) std::swap(a, b);
    const EdgePriority pivot = b;

    std::vector<EdgePriority> light, heavy;
    light.reserve(edges.size() / 2);
    heavy.reserve(edges.size() / 2);
    for (const EdgePriority p : edges) {
      (p <= pivot ? light : heavy).push_back(p);
    }
    if (heavy.empty()) {
      // Degenerate pivot (the maximum priority): no split happened.  Fall
      // back to plain Kruskal on the slice rather than recursing in place.
      kruskal_base(light);
      return;
    }
    edges.clear();
    edges.shrink_to_fit();

    solve(light);
    if (components > 1 && !heavy.empty()) {
      filter(heavy);
      solve(heavy);
    }
  }
};

}  // namespace

MstResult filter_kruskal(const CsrGraph& g, RunContext& ctx) {
  FilterKruskalState state(g, ctx.executor());
  std::vector<EdgePriority> edges(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) edges[e] = g.edge_priority(e);
  state.solve(edges);

  MstResult r;
  r.edges = std::move(state.chosen);
  finalize_result(g, r);
  return r;
}

MstAlgorithm filter_kruskal_algorithm() {
  return {"filter-kruskal", "Filter-Kruskal",
          "pivot recursion + parallel component filter (OSS 2009)",
          {.parallel = true, .msf_capable = true, .deterministic = true,
           .cancellable = false},
          [](const CsrGraph& g, RunContext& ctx) {
            return filter_kruskal(g, ctx);
          }};
}

}  // namespace llpmst
