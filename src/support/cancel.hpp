// Cooperative cancellation with deadline support.
//
// A CancelToken is a shared flag the coordinator loops poll at natural
// checkpoints (per sweep, per Boruvka round, per parallel_for chunk) — the
// hot per-element paths never see it.  Cancellation is *cooperative*: a run
// stops at the next checkpoint, hands back whatever partial state is sound,
// and records why in its RunOutcome.
//
// Deadlines piggyback on the same token: set_deadline_after_ms() arms a
// steady-clock deadline that cancelled() starts reporting once passed.  The
// first observed trigger latches the reason, so a run that was cancelled
// explicitly keeps reporting kCancelled even after the deadline also passes.
//
// A token can additionally observe() a parent token: cancelled() then also
// reports (and latches the reason of) the parent's cancellation.  This is
// how RunContext composes a per-run deadline with a caller-owned cancel —
// a served query polls ONE token yet stops on whichever of "client went
// away" / "budget expired" fires first, with the true reason preserved.
//
// Watchdog is the thread-backed variant for code that should be stopped even
// when nobody is around to call cancel(): it cancels the token after a
// timeout unless disarmed first.  Deadline checks cost a clock read, which
// is why tokens are polled at chunk granularity, not per element.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "support/status.hpp"
#include "support/virtual_time.hpp"

namespace llpmst {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation.  Idempotent; safe from any thread.
  void cancel() { latch(RunOutcome::kCancelled); }

  /// Arms (or re-arms) a deadline `ms` from now on the steady clock — the
  /// virtual clock when the deterministic simulator has one installed (the
  /// virtual epoch starts at 1s, so even a 0 ms deadline never lands on
  /// the 0 == "no deadline" encoding below).
  void set_deadline_after_ms(double ms) {
    const double delta_ns = (ms < 0 ? 0 : ms) * 1e6;
    deadline_ns_.store(
        vtime::steady_now_ns() + static_cast<std::uint64_t>(delta_ns),
        std::memory_order_relaxed);
  }

  /// Forwards cancellation from `parent`: once parent->cancelled() is true,
  /// this token reports cancelled with the parent's reason.  Pass nullptr to
  /// detach.  The parent is borrowed and must outlive this token (or be
  /// detached first); observation is one-way and adds one relaxed load plus
  /// a forwarded poll per cancelled() call.
  void observe(const CancelToken* parent) {
    parent_.store(parent, std::memory_order_release);
  }

  /// True once cancelled explicitly, past the deadline, or via an observed
  /// parent token.  The reason is latched on first observation.
  [[nodiscard]] bool cancelled() const {
    if (reason_.load(std::memory_order_acquire) != RunOutcome::kOk) {
      return true;
    }
    if (const CancelToken* p = parent_.load(std::memory_order_acquire);
        p != nullptr && p->cancelled()) {
      latch(p->reason());
      return true;
    }
    const std::uint64_t dl = deadline_ns_.load(std::memory_order_relaxed);
    if (dl != 0) {
      if (vtime::steady_now_ns() >= dl) {
        latch(RunOutcome::kDeadlineExceeded);
        return true;
      }
    }
    return false;
  }

  /// kOk while live; kCancelled / kDeadlineExceeded once triggered.
  [[nodiscard]] RunOutcome reason() const {
    (void)cancelled();  // fold a passed deadline into the latched reason
    return reason_.load(std::memory_order_acquire);
  }

  [[nodiscard]] Status status() const { return outcome_status(reason()); }

 private:
  void latch(RunOutcome why) const {
    RunOutcome expected = RunOutcome::kOk;
    reason_.compare_exchange_strong(expected, why, std::memory_order_acq_rel,
                                    std::memory_order_acquire);
  }

  mutable std::atomic<RunOutcome> reason_{RunOutcome::kOk};
  std::atomic<std::uint64_t> deadline_ns_{0};  // steady epoch ns; 0 = none
  std::atomic<const CancelToken*> parent_{nullptr};  // borrowed; may be null
};

/// Cancels a token after `timeout_ms` unless disarmed first.  The watchdog
/// thread sleeps on a condition variable, so disarming (or destruction) is
/// immediate — no busy wait, no stray cancel after disarm.
///
/// The watchdog waits in REAL time even under the deterministic simulator:
/// it exists to stop runs that stopped making progress, and a wedged
/// simulation would never advance a virtual clock.  Deterministic deadline
/// tests use CancelToken::set_deadline_after_ms instead, which the
/// simulator's virtual clock drives.
class Watchdog {
 public:
  Watchdog(CancelToken& token, double timeout_ms)
      : thread_([this, &token, timeout_ms] {
          std::unique_lock lock(mutex_);
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double, std::milli>(
                      timeout_ms < 0 ? 0 : timeout_ms));
          cv_.wait_until(lock, deadline, [this] { return disarmed_; });
          if (!disarmed_) token.cancel();
        }) {}

  ~Watchdog() { disarm(); }

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Stops the watchdog without cancelling.  Idempotent; joins the thread.
  void disarm() {
    {
      std::lock_guard lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

}  // namespace llpmst
