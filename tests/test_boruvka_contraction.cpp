// Round-by-round invariants of the Boruvka engine's fused contraction path
// (self-loop drop + bundle-min filter + dense relabeling in one sweep), plus
// a wide randomized cross-check against kruskal.
//
// The checks lean on two facts the engine must preserve:
//   * an MSF edge is emitted in the SAME round its endpoints merge, becomes
//     a self-loop in that round's contraction, and is dropped there — so the
//     reference-MSF edges among a round's drops must number exactly that
//     round's emissions (a drop of a not-yet-emitted MSF edge — e.g. a
//     bundle filter removing a bundle minimum — breaks this immediately);
//   * every input edge is dropped exactly once across the whole run (it
//     either survives a contraction into the next round's list or is
//     dropped; the run ends with an empty list).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generators/random_graph.hpp"
#include "graph/generators/special.hpp"
#include "llp/llp_boruvka.hpp"
#include "mst/kruskal.hpp"
#include "test_util.hpp"

namespace llpmst {
namespace {

using test::csr;

struct RoundLog {
  std::vector<BoruvkaRoundStats> rounds;        // dropped_edge_ids nulled
  std::vector<std::vector<EdgeId>> dropped;     // per-round copies
};

MstResult run_logged(const CsrGraph& g, RunContext& ctx, BoruvkaConfig c,
                     RoundLog& log) {
  c.collect_dropped_edges = true;
  c.round_observer = [&log](const BoruvkaRoundStats& info) {
    log.rounds.push_back(info);
    log.rounds.back().dropped_edge_ids = nullptr;  // points into scratch
    ASSERT_NE(info.dropped_edge_ids, nullptr);
    log.dropped.push_back(*info.dropped_edge_ids);
  };
  return llp_boruvka_configured(g, ctx, c);
}

/// Asserts every per-round invariant plus the whole-run drop accounting.
void check_rounds(const CsrGraph& g, const MstResult& reference,
                  const RoundLog& log, bool dedup) {
  const std::set<EdgeId> msf(reference.edges.begin(), reference.edges.end());
  std::set<EdgeId> dropped_union;
  std::size_t dropped_total = 0;

  ASSERT_EQ(log.rounds.size(), log.dropped.size());
  std::size_t prev_components = g.num_vertices() + 1;
  for (std::size_t i = 0; i < log.rounds.size(); ++i) {
    const BoruvkaRoundStats& r = log.rounds[i];
    SCOPED_TRACE(testing::Message() << "round " << r.round);

    // Exact edge bookkeeping: everything entering a round either survives
    // into the next list or is counted in one of the two drop buckets.
    EXPECT_EQ(r.edges_after, r.active_edges - r.self_loops_dropped -
                                 r.bundle_edges_dropped);
    EXPECT_EQ(log.dropped[i].size(),
              r.self_loops_dropped + r.bundle_edges_dropped);
    if (!dedup) {
      EXPECT_EQ(r.bundle_edges_dropped, 0u);
    }

    // Progress: a round with edges emits at least one MSF edge, which then
    // contracts to a self-loop — the edge list strictly shrinks.
    ASSERT_GT(r.active_edges, 0u);
    EXPECT_GE(r.msf_edges_emitted, 1u);
    EXPECT_LT(r.edges_after, r.active_edges);

    // Components monotonically decrease; each emission merges two (fully
    // spanned components vanish from the count entirely, hence <=).  From
    // round 2 on every live component has an incident edge and must merge,
    // so the count at least halves.
    EXPECT_LT(r.components, prev_components);
    EXPECT_LE(r.components_after, r.components - r.msf_edges_emitted);
    if (r.round >= 2) {
      EXPECT_LE(2 * r.components_after, r.components);
    }
    prev_components = r.components;

    // Cycle property: the reference-MSF edges among this round's drops are
    // exactly the edges emitted this round (already-merged duplicates and
    // bundle-filtered heavy edges are provably non-MSF).
    std::size_t msf_drops = 0;
    for (const EdgeId e : log.dropped[i]) {
      ASSERT_LT(e, g.num_edges());
      msf_drops += msf.count(e);
      EXPECT_TRUE(dropped_union.insert(e).second)
          << "edge " << e << " dropped twice";
    }
    EXPECT_EQ(msf_drops, r.msf_edges_emitted);
    dropped_total += log.dropped[i].size();
  }

  // Whole-run accounting: every input edge is dropped exactly once.
  EXPECT_EQ(dropped_total, g.num_edges());
  EXPECT_EQ(dropped_union.size(), g.num_edges());
}

class BoruvkaContraction : public testing::TestWithParam<int> {
 protected:
  ThreadPool pool_{static_cast<std::size_t>(GetParam())};
  RunContext ctx_{pool_};
};
INSTANTIATE_TEST_SUITE_P(Threads, BoruvkaContraction, testing::Values(1, 2, 4));

TEST_P(BoruvkaContraction, RoundInvariantsAcrossAllEngineConfigs) {
  ErdosRenyiParams p;
  p.num_vertices = 2000;
  p.num_edges = 8000;
  p.seed = 42;
  const CsrGraph g = csr(generate_erdos_renyi(p));
  const MstResult reference = kruskal(g);
  for (const auto jumping :
       {PointerJumping::kAsynchronous, PointerJumping::kSynchronized}) {
    for (const bool dedup : {false, true}) {
      for (const auto lb :
           {BoruvkaLoadBalance::kAdaptive, BoruvkaLoadBalance::kWorkStealing,
            BoruvkaLoadBalance::kFixedChunk}) {
        SCOPED_TRACE(testing::Message()
                     << "async=" << (jumping == PointerJumping::kAsynchronous)
                     << " dedup=" << dedup
                     << " lb=" << static_cast<int>(lb));
        BoruvkaConfig c;
        c.jumping = jumping;
        c.dedup_contracted_edges = dedup;
        c.load_balance = lb;
        RoundLog log;
        const MstResult r = run_logged(g, ctx_, c, log);
        ASSERT_EQ(r.edges, reference.edges);
        check_rounds(g, reference, log, dedup);
      }
    }
  }
}

TEST_P(BoruvkaContraction, ScratchReuseAcrossRunsIsClean) {
  // One scratch driven through graphs of very different shapes: stale
  // capacity from a bigger earlier run must never leak into a later one.
  BoruvkaScratch scratch;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ErdosRenyiParams big;
    big.num_vertices = 1500;
    big.num_edges = 6000;
    big.seed = seed;
    const CsrGraph g1 = csr(generate_erdos_renyi(big));
    const CsrGraph g2 = csr(make_forest(5, 30, seed));
    for (const CsrGraph* g : {&g1, &g2}) {
      BoruvkaConfig c;
      c.dedup_contracted_edges = true;
      c.scratch = &scratch;
      const MstResult r = llp_boruvka_configured(*g, ctx_, c);
      EXPECT_EQ(r.edges, kruskal(*g).edges);
    }
  }
}

TEST_P(BoruvkaContraction, HundredSeedCrossCheckVsKruskal) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);

    // Sparse (m ~ 2n, disconnected fragments + isolated vertices), dense
    // (heavy parallel-bundle pressure after the first contraction), forest
    // (MSF = input, every algorithm's degenerate case).
    ErdosRenyiParams sparse;
    sparse.num_vertices = 300;
    sparse.num_edges = 600;
    sparse.seed = seed;
    ErdosRenyiParams dense;
    dense.num_vertices = 48;
    dense.num_edges = 1000;
    dense.seed = seed;
    const CsrGraph graphs[] = {csr(generate_erdos_renyi(sparse)),
                               csr(generate_erdos_renyi(dense)),
                               csr(make_forest(4, 25, seed))};
    for (const CsrGraph& g : graphs) {
      const MstResult reference = kruskal(g);
      for (const bool dedup : {false, true}) {
        BoruvkaConfig c;
        c.dedup_contracted_edges = dedup;
        RoundLog log;
        const MstResult r = run_logged(g, ctx_, c, log);
        ASSERT_EQ(r.edges, reference.edges)
            << "dedup=" << dedup << " n=" << g.num_vertices()
            << " m=" << g.num_edges();
        check_rounds(g, reference, log, dedup);
      }
    }
  }
}

}  // namespace
}  // namespace llpmst
