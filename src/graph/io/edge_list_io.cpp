#include "graph/io/edge_list_io.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <vector>

#include "graph/io/io_util.hpp"
#include "support/failpoint.hpp"

namespace llpmst {

namespace {
constexpr char kMagic[4] = {'L', 'L', 'P', 'M'};
constexpr std::uint32_t kVersion = 1;

struct BinaryRecord {
  std::uint32_t u, v, w;
};
static_assert(sizeof(BinaryRecord) == 12);

Status corrupt(std::string message) {
  return {StatusCode::kCorruptInput, std::move(message)};
}
}  // namespace

EdgeListResult read_edge_list_text(const std::string& path) {
  EdgeListResult result;
  if (const auto a = LLPMST_FAILPOINT("io/edge_list_text");
      a != fail::Action::kNone) {
    result.status = io_detail::injected_status(a, "io/edge_list_text");
    return result;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.status = {StatusCode::kIoError, "cannot open '" + path + "'"};
    return result;
  }

  std::string buf;
  std::size_t line_no = 0;
  VertexId max_vertex = 0;
  bool any = false;
  while (io_detail::read_line(f, buf)) {
    ++line_no;
    const char* p = buf.c_str();
    const char* end = buf.c_str() + buf.size();
    while (*p == ' ' || *p == '\t') ++p;
    if (p == end || *p == '#' || *p == '\r') continue;

    // Integer-only parse: "nan", "inf", negatives, floats, and hex all fail
    // from_chars here and surface as malformed lines — the weight domain is
    // uint32 by contract, and anything non-finite must be rejected, not
    // coerced.
    std::uint64_t vals[3];
    const char* cur = p;
    bool ok = true;
    for (int k = 0; k < 3 && ok; ++k) {
      while (cur < end && (*cur == ' ' || *cur == '\t')) ++cur;
      auto [next, ec] = std::from_chars(cur, end, vals[k]);
      ok = (ec == std::errc() && next != cur);
      cur = next;
    }
    // Trailing garbage other than whitespace is an error.
    while (ok && cur < end && (*cur == ' ' || *cur == '\t' || *cur == '\r')) {
      ++cur;
    }
    if (!ok || cur != end) {
      result.status = corrupt("malformed line " + std::to_string(line_no));
      std::fclose(f);
      return result;
    }
    if (vals[0] >= kInvalidVertex || vals[1] >= kInvalidVertex ||
        vals[2] > 0xffffffffull) {
      result.status =
          corrupt("value out of range at line " + std::to_string(line_no));
      std::fclose(f);
      return result;
    }
    const auto u = static_cast<VertexId>(vals[0]);
    const auto v = static_cast<VertexId>(vals[1]);
    max_vertex = std::max({max_vertex, u, v});
    result.graph.ensure_vertices(static_cast<std::size_t>(max_vertex) + 1);
    result.graph.add_edge(u, v, static_cast<Weight>(vals[2]));
    any = true;
  }
  std::fclose(f);
  if (any) result.graph.normalize();
  return result;
}

Status write_edge_list_text(const std::string& path, const EdgeList& list) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return {StatusCode::kIoError, "cannot open '" + path + "' for writing"};
  }
  std::fprintf(f, "# llpmst edge list: %zu vertices, %zu edges\n",
               list.num_vertices(), list.num_edges());
  for (const WeightedEdge& e : list.edges()) {
    std::fprintf(f, "%u %u %u\n", e.u, e.v, e.w);
  }
  if (std::fclose(f) != 0) {
    return {StatusCode::kIoError, "write error closing '" + path + "'"};
  }
  return Status::Ok();
}

EdgeListResult read_edge_list_binary(const std::string& path) {
  EdgeListResult result;
  if (const auto a = LLPMST_FAILPOINT("io/edge_list_binary");
      a != fail::Action::kNone) {
    result.status = io_detail::injected_status(a, "io/edge_list_binary");
    return result;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.status = {StatusCode::kIoError, "cannot open '" + path + "'"};
    return result;
  }

  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t n = 0, m = 0;
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    result.status = corrupt("bad magic (not an llpmst binary edge list)");
    std::fclose(f);
    return result;
  }
  if (std::fread(&version, sizeof version, 1, f) != 1 || version != kVersion) {
    result.status = corrupt("unsupported version");
    std::fclose(f);
    return result;
  }
  if (std::fread(&n, sizeof n, 1, f) != 1 ||
      std::fread(&m, sizeof m, 1, f) != 1 || n >= kInvalidVertex) {
    result.status = corrupt("corrupt header");
    std::fclose(f);
    return result;
  }

  // Validate the declared record count against the actual file size BEFORE
  // allocating anything — a corrupt header must not drive a huge reserve().
  const long header_end = std::ftell(f);
  if (header_end < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    result.status = {StatusCode::kIoError, "cannot determine file size"};
    std::fclose(f);
    return result;
  }
  const long file_end = std::ftell(f);
  std::fseek(f, header_end, SEEK_SET);
  const std::uint64_t record_bytes =
      static_cast<std::uint64_t>(file_end - header_end);
  // Divide rather than multiply: m is untrusted and m * 12 can wrap.
  if (m > record_bytes / sizeof(BinaryRecord)) {
    result.status = corrupt(
        "truncated edge records (header declares more than the file holds)");
    std::fclose(f);
    return result;
  }
  if (record_bytes != m * sizeof(BinaryRecord)) {
    // Extra bytes past the declared records mean the header and the payload
    // disagree — refusing is safer than guessing which one is right.
    result.status =
        corrupt("trailing bytes after the declared edge records");
    std::fclose(f);
    return result;
  }

  result.graph.ensure_vertices(static_cast<std::size_t>(n));
  result.graph.reserve(static_cast<std::size_t>(m));
  std::vector<BinaryRecord> chunk(4096);
  std::uint64_t remaining = m;
  while (remaining > 0) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(remaining,
                                                         chunk.size()));
    if (std::fread(chunk.data(), sizeof(BinaryRecord), want, f) != want) {
      result.status = corrupt("truncated edge records");
      std::fclose(f);
      return result;
    }
    for (std::size_t i = 0; i < want; ++i) {
      if (chunk[i].u >= n || chunk[i].v >= n) {
        result.status = corrupt("edge endpoint out of range");
        std::fclose(f);
        return result;
      }
      result.graph.add_edge(chunk[i].u, chunk[i].v, chunk[i].w);
    }
    remaining -= want;
  }
  std::fclose(f);
  result.graph.normalize();
  return result;
}

Status write_edge_list_binary(const std::string& path, const EdgeList& list) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return {StatusCode::kIoError, "cannot open '" + path + "' for writing"};
  }
  const std::uint64_t n = list.num_vertices();
  const std::uint64_t m = list.num_edges();
  bool ok = std::fwrite(kMagic, 1, 4, f) == 4 &&
            std::fwrite(&kVersion, sizeof kVersion, 1, f) == 1 &&
            std::fwrite(&n, sizeof n, 1, f) == 1 &&
            std::fwrite(&m, sizeof m, 1, f) == 1;
  std::vector<BinaryRecord> chunk;
  chunk.reserve(4096);
  for (std::size_t i = 0; ok && i < list.num_edges();) {
    chunk.clear();
    const std::size_t hi = std::min(i + 4096, list.num_edges());
    for (; i < hi; ++i) {
      const WeightedEdge& e = list[i];
      chunk.push_back({e.u, e.v, e.w});
    }
    ok = std::fwrite(chunk.data(), sizeof(BinaryRecord), chunk.size(), f) ==
         chunk.size();
  }
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) return {StatusCode::kIoError, "write error on '" + path + "'"};
  return Status::Ok();
}

}  // namespace llpmst
